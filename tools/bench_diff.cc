// bench_diff: the CLI face of the bench regression gate
// (obs/bench_gate.h).
//
//   bench_diff check PATH...
//     Envelope contract over each artifact; a PATH that is a directory
//     expands to its BENCH_*.json files.
//
//   bench_diff diff [--tolerance=R] [--noise-floor=N] OLD NEW
//     Numeric regression diff. OLD and NEW are either two files or two
//     directories (matched by file name; a baseline artifact missing
//     from NEW is a violation).
//
// Exit status: 0 all checks passed, 1 violations found, 2 usage or I/O
// error. CI runs `check` over the committed artifact set on every push
// and `diff` against the previous commit's artifacts where available.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/numeric.h"
#include "obs/bench_gate.h"

namespace {

namespace fs = std::filesystem;
using nc::Status;
using nc::obs::BenchGateOptions;
using nc::obs::BenchGateResult;
using nc::obs::BenchIssue;
using nc::obs::JsonValue;

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff check PATH...\n"
               "       bench_diff diff [--tolerance=R] [--noise-floor=N] "
               "OLD NEW\n");
  return 2;
}

// A file path passes through; a directory expands to its BENCH_*.json
// children, sorted for stable output.
std::vector<std::string> ExpandPath(const std::string& path) {
  std::error_code ec;
  if (!fs::is_directory(path, ec)) return {path};
  std::vector<std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(path, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int Finish(const BenchGateResult& result) {
  std::fputs(result.ToText().c_str(), stdout);
  return result.ok() ? 0 : 1;
}

int RunCheck(const std::vector<std::string>& paths) {
  if (paths.empty()) return Usage();
  BenchGateResult result;
  for (const std::string& arg : paths) {
    const std::vector<std::string> files = ExpandPath(arg);
    if (files.empty()) {
      std::fprintf(stderr, "bench_diff: no BENCH_*.json under %s\n",
                   arg.c_str());
      return 2;
    }
    for (const std::string& file : files) {
      JsonValue doc;
      const Status status = nc::obs::ReadBenchFile(file, &doc);
      if (!status.ok()) {
        result.issues.push_back(
            BenchIssue{file, "", status.message()});
        ++result.files_checked;
        continue;
      }
      nc::obs::CheckBenchDoc(file, doc, &result);
    }
  }
  return Finish(result);
}

int RunDiff(const BenchGateOptions& options, const std::string& old_path,
            const std::string& new_path) {
  std::error_code ec;
  const bool dirs = fs::is_directory(old_path, ec);
  if (dirs != fs::is_directory(new_path, ec)) {
    std::fprintf(stderr,
                 "bench_diff: OLD and NEW must both be files or both be "
                 "directories\n");
    return 2;
  }
  BenchGateResult result;
  std::vector<std::pair<std::string, std::string>> pairs;
  if (dirs) {
    for (const std::string& old_file : ExpandPath(old_path)) {
      const std::string name = fs::path(old_file).filename().string();
      pairs.emplace_back(old_file, (fs::path(new_path) / name).string());
    }
    if (pairs.empty()) {
      std::fprintf(stderr, "bench_diff: no BENCH_*.json under %s\n",
                   old_path.c_str());
      return 2;
    }
  } else {
    pairs.emplace_back(old_path, new_path);
  }
  for (const auto& [old_file, new_file] : pairs) {
    JsonValue baseline;
    Status status = nc::obs::ReadBenchFile(old_file, &baseline);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_diff: %s\n", status.message().c_str());
      return 2;
    }
    JsonValue current;
    status = nc::obs::ReadBenchFile(new_file, &current);
    if (!status.ok()) {
      // A baseline artifact that vanished is a gate violation, not an
      // I/O accident: a bench silently stopping to emit its envelope is
      // exactly what the gate exists to catch.
      result.issues.push_back(BenchIssue{
          fs::path(old_file).filename().string(), "", status.message()});
      ++result.files_checked;
      continue;
    }
    nc::obs::DiffBenchDocs(fs::path(old_file).filename().string(), baseline,
                           current, options, &result);
  }
  return Finish(result);
}

bool ParseFlag(const char* arg, const char* name, double* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  return nc::ParseDouble(arg + len + 1, out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string mode = argv[1];
  if (mode == "check") {
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) paths.emplace_back(argv[i]);
    return RunCheck(paths);
  }
  if (mode == "diff") {
    BenchGateOptions options;
    std::vector<std::string> positional;
    for (int i = 2; i < argc; ++i) {
      if (ParseFlag(argv[i], "--tolerance", &options.tolerance) ||
          ParseFlag(argv[i], "--noise-floor", &options.noise_floor)) {
        continue;
      }
      if (std::strncmp(argv[i], "--", 2) == 0) return Usage();
      positional.emplace_back(argv[i]);
    }
    if (positional.size() != 2 || !options.Validate().ok()) return Usage();
    return RunDiff(options, positional[0], positional[1]);
  }
  return Usage();
}
