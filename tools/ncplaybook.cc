// ncplaybook: the chaos-playbook command line.
//
//   ncplaybook soak --seed S --count N [--max-seconds X] [--max-failures K]
//              [--stop-on-first] [--only NAME] [--baseline FILE]
//              [--packet FILE] [--engine-only]
//       Generate N seeded chaos variants and run them under the invariant
//       oracles. Exit 0 when every executed variant passes, 1 when any is
//       flagged (the engineer packet names each one with its repro
//       command), 2 on usage errors.
//   ncplaybook gen --seed S --count N [--only NAME]
//       Print the generated variants as canonical "ncplay 1" documents.
//   ncplaybook run --spec FILE [--baseline FILE] [--packet FILE]
//       Run one serialized scenario document under the oracles.
//   ncplaybook print --seed S --count N --only NAME
//       Print one generated variant's one-line signature and document.
//
// The same (seed, count) always regenerates the byte-identical variant
// list, so "<soak line> --only <name>" reruns exactly the flagged
// variant - that string is what the packet records as `repro`.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/numeric.h"
#include "playbook/runner.h"
#include "playbook/scenario.h"
#include "playbook/variant.h"

namespace nc::playbook {
namespace {

struct CliOptions {
  std::string command;
  uint64_t seed = 1;
  size_t count = 50;
  std::string only;
  std::string spec_path;
  std::string baseline_path;
  std::string packet_path;
  StopConditions stop;
  // Drop server variants (workers stay 0): the ASan/UBSan soak keeps the
  // thread count flat, and the engine path is where the oracles bite.
  bool engine_only = false;
};

int Usage() {
  std::cerr
      << "usage: ncplaybook soak --seed S --count N [--max-seconds X]\n"
         "                  [--max-failures K] [--stop-on-first]\n"
         "                  [--only NAME] [--baseline FILE] [--packet FILE]\n"
         "                  [--engine-only]\n"
         "       ncplaybook gen --seed S --count N [--only NAME]\n"
         "       ncplaybook run --spec FILE [--baseline FILE] [--packet FILE]\n"
         "       ncplaybook print --seed S --count N --only NAME\n";
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  if (argc < 2) return false;
  options->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = value();
      uint64_t seed = 0;
      if (v == nullptr || !ParseUInt64(v, &seed)) return false;
      options->seed = seed;
    } else if (arg == "--count") {
      const char* v = value();
      uint64_t count = 0;
      if (v == nullptr || !ParseUInt64(v, &count) || count == 0) return false;
      options->count = static_cast<size_t>(count);
    } else if (arg == "--max-seconds") {
      const char* v = value();
      double seconds = 0.0;
      if (v == nullptr || !ParseDouble(v, &seconds) || seconds < 0.0) {
        return false;
      }
      options->stop.max_wall_seconds = seconds;
    } else if (arg == "--max-failures") {
      const char* v = value();
      uint64_t failures = 0;
      if (v == nullptr || !ParseUInt64(v, &failures)) return false;
      options->stop.max_failures = static_cast<size_t>(failures);
    } else if (arg == "--stop-on-first") {
      options->stop.stop_on_first_anomaly = true;
    } else if (arg == "--only") {
      const char* v = value();
      if (v == nullptr) return false;
      options->only = v;
    } else if (arg == "--spec") {
      const char* v = value();
      if (v == nullptr) return false;
      options->spec_path = v;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return false;
      options->baseline_path = v;
    } else if (arg == "--packet") {
      const char* v = value();
      if (v == nullptr) return false;
      options->packet_path = v;
    } else if (arg == "--engine-only") {
      options->engine_only = true;
    } else {
      std::cerr << "ncplaybook: unknown flag " << arg << "\n";
      return false;
    }
  }
  return true;
}

std::vector<ScenarioSpec> GenerateVariants(const CliOptions& options) {
  VariantAxes axes = VariantAxes::ChaosDefaults();
  if (options.engine_only) axes.worker_counts = {0};
  VariantGenerator generator(std::move(axes), options.seed);
  std::vector<ScenarioSpec> variants = generator.Generate(options.count);
  if (!options.only.empty()) {
    std::vector<ScenarioSpec> filtered;
    for (ScenarioSpec& spec : variants) {
      if (spec.name == options.only) filtered.push_back(std::move(spec));
    }
    variants = std::move(filtered);
  }
  return variants;
}

bool WritePacket(const std::string& path, const PlaybookReport& report) {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "ncplaybook: cannot write packet to " << path << "\n";
    return false;
  }
  out << report.ToJson();
  return out.good();
}

int ReportOutcome(const PlaybookReport& report, const CliOptions& options) {
  std::cout << report.ToText();
  if (!WritePacket(options.packet_path, report)) return 2;
  return report.flagged == 0 ? 0 : 1;
}

int RunSoak(const CliOptions& options) {
  const std::vector<ScenarioSpec> variants = GenerateVariants(options);
  if (variants.empty()) {
    std::cerr << "ncplaybook: no variants to run\n";
    return 2;
  }
  RunnerOptions runner_options;
  runner_options.stop = options.stop;
  runner_options.repro_prefix =
      "ncplaybook soak --seed " + std::to_string(options.seed) +
      " --count " + std::to_string(options.count) +
      (options.engine_only ? " --engine-only" : "");
  if (!options.baseline_path.empty()) {
    std::ifstream in(options.baseline_path);
    if (!in) {
      std::cerr << "ncplaybook: cannot read baseline "
                << options.baseline_path << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const Status status =
        LoadBaseline(buffer.str(), &runner_options.baseline);
    if (!status.ok()) {
      std::cerr << "ncplaybook: " << status.ToString() << "\n";
      return 2;
    }
  }
  PlaybookRunner runner(std::move(runner_options));
  return ReportOutcome(runner.Run(variants), options);
}

int RunGen(const CliOptions& options) {
  for (const ScenarioSpec& spec : GenerateVariants(options)) {
    std::cout << spec.Serialize();
  }
  return 0;
}

int RunSpecFile(const CliOptions& options) {
  std::ifstream in(options.spec_path);
  if (!in) {
    std::cerr << "ncplaybook: cannot read " << options.spec_path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ScenarioSpec spec;
  const Status status = ParseScenario(buffer.str(), &spec);
  if (!status.ok()) {
    std::cerr << "ncplaybook: " << status.ToString() << "\n";
    return 2;
  }
  RunnerOptions runner_options;
  runner_options.stop = options.stop;
  if (!options.baseline_path.empty()) {
    std::ifstream baseline_in(options.baseline_path);
    std::ostringstream baseline_buffer;
    baseline_buffer << baseline_in.rdbuf();
    const Status baseline_status =
        LoadBaseline(baseline_buffer.str(), &runner_options.baseline);
    if (!baseline_status.ok()) {
      std::cerr << "ncplaybook: " << baseline_status.ToString() << "\n";
      return 2;
    }
  }
  PlaybookRunner runner(std::move(runner_options));
  return ReportOutcome(runner.Run({spec}), options);
}

int RunPrint(const CliOptions& options) {
  if (options.only.empty()) {
    std::cerr << "ncplaybook: print needs --only NAME\n";
    return 2;
  }
  const std::vector<ScenarioSpec> variants = GenerateVariants(options);
  if (variants.empty()) {
    std::cerr << "ncplaybook: no variant named " << options.only << "\n";
    return 2;
  }
  for (const ScenarioSpec& spec : variants) {
    std::cout << spec.Signature() << "\n" << spec.Serialize();
  }
  return 0;
}

int Main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return Usage();
  if (options.command == "soak") return RunSoak(options);
  if (options.command == "gen") return RunGen(options);
  if (options.command == "run") {
    if (options.spec_path.empty()) return Usage();
    return RunSpecFile(options);
  }
  if (options.command == "print") return RunPrint(options);
  return Usage();
}

}  // namespace
}  // namespace nc::playbook

int main(int argc, char** argv) { return nc::playbook::Main(argc, argv); }
