// Error propagation without exceptions.
//
// Fallible public operations return nc::Status. The set of codes is small
// and mirrors the situations the middleware can actually hit: malformed
// queries, scenarios that cannot answer the query (e.g., a predicate with
// neither access type), and internal errors.

#ifndef NC_COMMON_STATUS_H_
#define NC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace nc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kUnsupported,
  kResourceExhausted,
  // A source (or its access type) is not currently serving requests:
  // retries were exhausted or the source died permanently mid-run.
  kUnavailable,
  kInternal,
};

// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

// A success-or-error result. Cheap to copy on the success path (no
// allocation); error paths carry a message.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Propagates a non-OK status to the caller.
#define NC_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::nc::Status _nc_status = (expr);         \
    if (!_nc_status.ok()) return _nc_status;  \
  } while (false)

}  // namespace nc

#endif  // NC_COMMON_STATUS_H_
