// Lightweight assertion macros for internal invariants.
//
// The library does not use exceptions (fallible public operations return
// nc::Status); NC_CHECK/NC_DCHECK guard invariants that indicate programmer
// error, aborting with a source location and message when violated.

#ifndef NC_COMMON_CHECK_H_
#define NC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Always-on invariant check. `cond` is evaluated exactly once.
#define NC_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "NC_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

// Debug-only invariant check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define NC_DCHECK(cond) \
  do {                  \
  } while (false)
#else
#define NC_DCHECK(cond) NC_CHECK(cond)
#endif

#endif  // NC_COMMON_CHECK_H_
