// Small descriptive-statistics helpers used by the optimizer (predicate
// selectivity estimation from samples), the benchmarks (series summaries),
// and the tests (distribution checks on generated data).

#ifndef NC_COMMON_STATS_H_
#define NC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace nc {

// Arithmetic mean; 0.0 for an empty input.
double Mean(const std::vector<double>& values);

// Population variance / standard deviation; 0.0 for fewer than 2 values.
double Variance(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

// Linear-interpolated percentile, q in [0, 1]. Sorts a copy. Returns
// quiet NaN for empty input (there is no quantile of nothing).
double Percentile(std::vector<double> values, double q);

// Pearson correlation coefficient; 0.0 if either side is constant.
// Requires xs.size() == ys.size().
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

// Running aggregate for streaming series (Welford).
class RunningStat {
 public:
  void Add(double value);
  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace nc

#endif  // NC_COMMON_STATS_H_
