// Small descriptive-statistics helpers used by the optimizer (predicate
// selectivity estimation from samples), the benchmarks (series summaries),
// and the tests (distribution checks on generated data).

#ifndef NC_COMMON_STATS_H_
#define NC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace nc {

// Arithmetic mean; 0.0 for an empty input.
double Mean(const std::vector<double>& values);

// Population variance / standard deviation; 0.0 for fewer than 2 values.
double Variance(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

// Linear-interpolated percentile, q in [0, 1]. Sorts a copy. Returns
// quiet NaN for empty input (there is no quantile of nothing).
double Percentile(std::vector<double> values, double q);

// Pearson correlation coefficient; 0.0 if either side is constant.
// Requires xs.size() == ys.size().
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

// The complete marker state of a P2Quantile, exposed so long-lived
// embedders (the TelemetryHub's "nchub 1" persistence) can serialize a
// sketch and reconstruct it bit-for-bit: heights, 1-based marker
// positions, and desired positions. While count <= 5 the heights hold
// the exact sorted seed buffer (entries [count, 5) still zero).
struct P2QuantileState {
  double q = 0.5;
  size_t count = 0;
  double heights[5] = {0, 0, 0, 0, 0};
  double positions[5] = {1, 2, 3, 4, 5};
  double desired[5] = {1, 1, 1, 1, 1};
};

// Streaming quantile estimate via the P² (piecewise-parabolic) algorithm
// of Jain & Chlamtac (CACM 1985): five markers track the running q-th
// quantile in O(1) memory and O(1) time per observation, no sample buffer.
// The first five observations are held exactly (a sorted seed buffer);
// from the sixth on, marker heights move by the parabolic update, falling
// back to linear interpolation when the parabola would leave the bracket.
//
// Accuracy: P² is an estimate, not an order statistic. On i.i.d. streams
// the estimate converges to the true quantile; the property test in
// stats_test.cc bounds it by the exact Percentile of the same stream at
// q +- 0.05 (a rank band of +-5 percentile points), which holds across
// uniform, exponential, and bimodal inputs at n >= 200. Callers needing
// exact small-sample quantiles should keep the buffer and use Percentile.
class P2Quantile {
 public:
  // q in (0, 1), e.g. 0.95 for the p95.
  explicit P2Quantile(double q);

  void Add(double value);
  size_t count() const { return count_; }
  double quantile() const { return q_; }

  // The current estimate; exact while count() <= 5; NaN while count() == 0
  // (no sample, no quantile - mirroring Percentile).
  double value() const;

  // Marker-state snapshot / reconstruction. FromState(state()) yields a
  // sketch whose every future Add produces bit-identical estimates - the
  // round-trip contract the hub's persistence rests on.
  P2QuantileState state() const;
  static P2Quantile FromState(const P2QuantileState& state);

 private:
  double q_ = 0.5;
  size_t count_ = 0;
  // Marker heights, positions (1-based ranks), and desired positions.
  double heights_[5] = {0, 0, 0, 0, 0};
  double positions_[5] = {1, 2, 3, 4, 5};
  double desired_[5] = {1, 1, 1, 1, 1};
  double increments_[5] = {0, 0, 0, 0, 0};
};

// Running aggregate for streaming series (Welford).
class RunningStat {
 public:
  void Add(double value);
  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace nc

#endif  // NC_COMMON_STATS_H_
