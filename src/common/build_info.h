// Build provenance baked in at configure time.
//
// Every introspection surface (/healthz, /varz, the bench JSON envelope)
// wants to answer "which build is this?" without the operator grepping
// deploy logs. CMake runs `git describe` at configure time and confines
// the resulting -D definitions to build_info.cc, so touching the git
// head re-compiles one small file, not the world.

#ifndef NC_COMMON_BUILD_INFO_H_
#define NC_COMMON_BUILD_INFO_H_

namespace nc {

// `git describe --always --dirty` at configure time; "unknown" when the
// tree was built outside git.
const char* BuildVersion();

// "Sanitize", "Release", or "Debug" (mirrors bench/bench_util.h's
// BuildType so servers and benches report the same vocabulary).
const char* BuildFlavor();

// True when the build was configured with NC_SANITIZE=ON
// (address+undefined instrumentation; see CMakeLists.txt).
bool BuildSanitized();

}  // namespace nc

#endif  // NC_COMMON_BUILD_INFO_H_
