#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace nc {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mu = Mean(values);
  double total = 0.0;
  for (double v : values) total += (v - mu) * (v - mu);
  return total / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Percentile(std::vector<double> values, double q) {
  NC_CHECK(q >= 0.0 && q <= 1.0);
  // No sample, no quantile: NaN forces callers to face the distinction
  // between "empty" and "all zeros" instead of silently reporting 0.
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  NC_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  NC_CHECK(q > 0.0 && q < 1.0);
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q;
  desired_[2] = 1.0 + 4.0 * q;
  desired_[3] = 3.0 + 2.0 * q;
  desired_[4] = 5.0;
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::Add(double value) {
  NC_CHECK(std::isfinite(value));
  if (count_ < 5) {
    heights_[count_] = value;
    ++count_;
    std::sort(heights_, heights_ + count_);
    return;
  }
  ++count_;

  // Which bracket the observation lands in; boundary markers absorb
  // out-of-range values.
  size_t cell;
  if (value < heights_[0]) {
    heights_[0] = value;
    cell = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights_[cell + 1]) ++cell;
  }
  for (size_t i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three interior markers toward their desired positions.
  for (size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool right = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool left = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!right && !left) continue;
    const double sign = right ? 1.0 : -1.0;
    // Piecewise-parabolic prediction of the new marker height.
    const double np = positions_[i] + sign;
    const double q_prev = heights_[i - 1];
    const double q_cur = heights_[i];
    const double q_next = heights_[i + 1];
    const double n_prev = positions_[i - 1];
    const double n_cur = positions_[i];
    const double n_next = positions_[i + 1];
    double candidate =
        q_cur + sign / (n_next - n_prev) *
                    ((n_cur - n_prev + sign) * (q_next - q_cur) /
                         (n_next - n_cur) +
                     (n_next - n_cur - sign) * (q_cur - q_prev) /
                         (n_cur - n_prev));
    // The parabola must keep markers ordered; otherwise move linearly
    // toward the neighbor in the travel direction.
    if (candidate <= q_prev || candidate >= q_next) {
      const double neighbor = sign > 0.0 ? q_next : q_prev;
      const double neighbor_pos = sign > 0.0 ? n_next : n_prev;
      candidate = q_cur + sign * (neighbor - q_cur) / (neighbor_pos - n_cur);
    }
    heights_[i] = candidate;
    positions_[i] = np;
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (count_ <= 5) {
    // Exact small-sample quantile: the seed buffer is still the sorted
    // sample itself until the first marker adjustment.
    return Percentile(std::vector<double>(heights_, heights_ + count_), q_);
  }
  return heights_[2];
}

P2QuantileState P2Quantile::state() const {
  P2QuantileState s;
  s.q = q_;
  s.count = count_;
  for (size_t i = 0; i < 5; ++i) {
    s.heights[i] = heights_[i];
    s.positions[i] = positions_[i];
    s.desired[i] = desired_[i];
  }
  return s;
}

P2Quantile P2Quantile::FromState(const P2QuantileState& state) {
  // The constructor validates q and rebuilds increments_ (a pure
  // function of q, so it need not ride in the state).
  P2Quantile sketch(state.q);
  sketch.count_ = state.count;
  for (size_t i = 0; i < 5; ++i) {
    sketch.heights_[i] = state.heights[i];
    sketch.positions_[i] = state.positions[i];
    sketch.desired_[i] = state.desired[i];
  }
  return sketch;
}

void RunningStat::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace nc
