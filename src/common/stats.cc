#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace nc {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mu = Mean(values);
  double total = 0.0;
  for (double v : values) total += (v - mu) * (v - mu);
  return total / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Percentile(std::vector<double> values, double q) {
  NC_CHECK(q >= 0.0 && q <= 1.0);
  // No sample, no quantile: NaN forces callers to face the distinction
  // between "empty" and "all zeros" instead of silently reporting 0.
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  NC_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStat::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace nc
