#include "common/numeric.h"

#include <charconv>
#include <cmath>
#include <system_error>

namespace nc {

std::string FormatDouble(double v) {
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), v);
  // The buffer comfortably exceeds the longest shortest-round-trip form.
  return std::string(buffer, result.ptr);
}

std::string FormatHexDouble(double v) {
  if (std::isnan(v)) return std::signbit(v) ? "-nan" : "nan";
  std::string out;
  if (std::signbit(v)) {
    out.push_back('-');
    v = -v;
  }
  if (std::isinf(v)) {
    out += "inf";
    return out;
  }
  char buffer[64];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), v, std::chars_format::hex);
  out += "0x";
  out.append(buffer, result.ptr);
  return out;
}

bool ParseDouble(std::string_view token, double* out) {
  if (token.empty() || out == nullptr) return false;
  bool negative = false;
  std::string_view rest = token;
  if (rest.front() == '+' || rest.front() == '-') {
    negative = rest.front() == '-';
    rest.remove_prefix(1);
    // Exactly one sign: from_chars would otherwise accept a second '-'.
    if (rest.empty() || rest.front() == '+' || rest.front() == '-') {
      return false;
    }
  }
  std::chars_format format = std::chars_format::general;
  if (rest.size() > 2 && rest[0] == '0' && (rest[1] == 'x' || rest[1] == 'X')) {
    rest.remove_prefix(2);
    format = std::chars_format::hex;
  }
  double value = 0.0;
  const auto result =
      std::from_chars(rest.data(), rest.data() + rest.size(), value, format);
  if (result.ec != std::errc() || result.ptr != rest.data() + rest.size()) {
    return false;
  }
  *out = negative ? -value : value;
  return true;
}

bool ParseUInt64(std::string_view token, uint64_t* out) {
  if (token.empty() || out == nullptr) return false;
  uint64_t value = 0;
  const auto result =
      std::from_chars(token.data(), token.data() + token.size(), value, 10);
  if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace nc
