// Core scalar types shared across the library.
//
// Predicate scores and aggregate query scores live in [0, 1] (Section 3.1
// of the paper). Access costs are nonnegative doubles; an impossible access
// has cost kImpossibleCost (+infinity).

#ifndef NC_COMMON_SCORE_H_
#define NC_COMMON_SCORE_H_

#include <cstdint>
#include <limits>

namespace nc {

// A predicate or aggregate score in [0, 1].
using Score = double;

// Identifies an object in a database; dense in [0, n).
using ObjectId = uint32_t;

// Identifies a ranking predicate p_i; dense in [0, m).
using PredicateId = uint32_t;

inline constexpr Score kMinScore = 0.0;
inline constexpr Score kMaxScore = 1.0;

// Unit cost marking an unsupported access type (Figure 2's "impossible").
inline constexpr double kImpossibleCost =
    std::numeric_limits<double>::infinity();

// Sentinel ObjectId for the virtual "unseen" object used under the
// no-wild-guesses model (Section 8): it stands for every object not yet
// returned by any sorted access.
inline constexpr ObjectId kUnseenObject =
    std::numeric_limits<ObjectId>::max();

// Returns true iff `s` is a valid predicate/aggregate score.
inline bool IsValidScore(Score s) { return s >= kMinScore && s <= kMaxScore; }

// Clamps `s` into the valid score range.
inline Score ClampScore(Score s) {
  if (s < kMinScore) return kMinScore;
  if (s > kMaxScore) return kMaxScore;
  return s;
}

}  // namespace nc

#endif  // NC_COMMON_SCORE_H_
