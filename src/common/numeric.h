// Locale-independent numeric formatting and parsing.
//
// std::strtod and std::snprintf("%g" / "%a") honor the process's global C
// locale: under a comma-decimal locale (de_DE, fr_FR, ...) they emit
// "3,14" and stop parsing "3.14" at the '.', silently truncating the
// value. Checkpoints (core/checkpoint.h), CSV datasets (data/csv.h), and
// the JSON artifacts (obs/json.h) are *interchange formats* whose grammar
// fixes '.' as the decimal separator, so every writer and parser of those
// formats funnels through the std::from_chars / std::to_chars helpers
// here, which are locale-independent by specification. A server embedding
// the library must be free to call setlocale() (or link code that does)
// without corrupting its own persistence formats.

#ifndef NC_COMMON_NUMERIC_H_
#define NC_COMMON_NUMERIC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace nc {

// Shortest decimal form that parses back to exactly `v` ("0.1",
// "2.5e-12"). Non-finite values format as "inf" / "-inf" / "nan".
std::string FormatDouble(double v);

// C-hexfloat form with the "0x" prefix ("0x1.8p+1"), matching printf %a
// in the C locale: byte-exact round-trips for every double, infinities
// included. Used by the checkpoint format.
std::string FormatHexDouble(double v);

// Parses a complete token as a double: decimal or hexfloat (with the
// "0x" prefix), plus "inf" / "infinity" / "nan", all optionally signed.
// The whole token must be consumed; ',' is never a decimal separator.
// Returns false on failure with *out untouched.
bool ParseDouble(std::string_view token, double* out);

// Parses a complete token as a base-10 uint64_t (digits only: no sign,
// whitespace, or base prefix). Returns false on failure, *out untouched.
bool ParseUInt64(std::string_view token, uint64_t* out);

}  // namespace nc

#endif  // NC_COMMON_NUMERIC_H_
