#include "common/build_info.h"

namespace nc {

const char* BuildVersion() {
#if defined(NC_BUILD_GIT_VERSION)
  return NC_BUILD_GIT_VERSION;
#else
  return "unknown";
#endif
}

const char* BuildFlavor() {
#if defined(NC_SANITIZE_BUILD)
  return "Sanitize";
#elif defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

bool BuildSanitized() {
#if defined(NC_SANITIZE_BUILD)
  return true;
#else
  return false;
#endif
}

}  // namespace nc
