// Deterministic random number generation.
//
// All randomness in the library (data generation, sampling, hill-climbing
// restarts, latency jitter) flows through nc::Rng so that every experiment
// is reproducible from a seed.
//
// Thread safety: an Rng is a mutable stream cursor and is NOT
// synchronized - concurrent draws from one instance are a data race AND
// destroy seed-reproducibility (the interleaving would decide who gets
// which draw). Every stream must be thread-confined: owned by exactly one
// worker's source stack (the query server's WorkerStack builds a private
// SourceSet / ReplicaFleet / FaultInjector - and thus private latency,
// retry, jitter, and per-replica fault streams - per worker thread; see
// src/server/server.h) or guarded by the owner's external mutex. Sharing
// one fleet's per-replica RNG streams across worker threads is the bug
// class the server's per-worker ownership exists to prevent.

#ifndef NC_COMMON_RNG_H_
#define NC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace nc {

// A seeded pseudo-random generator with the handful of draw shapes the
// library needs. Copyable; copies continue the same stream independently.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [0, 1).
  double Uniform01();

  // Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  // Uniform integer in [0, bound). Requires bound > 0.
  uint64_t UniformInt(uint64_t bound);

  // Standard normal draw scaled to mean/stddev.
  double Gaussian(double mean, double stddev);

  // Zipf-distributed rank in [0, n) with exponent `skew` > 0: rank r is
  // drawn with probability proportional to 1 / (r + 1)^skew.
  uint64_t ZipfRank(uint64_t n, double skew);

  // Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    NC_CHECK(values != nullptr);
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  // Draws `count` distinct indices from [0, n) (count <= n), in increasing
  // order (reservoir-free selection sampling; deterministic given the seed).
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t count);

  // --- Checkpoint support ----------------------------------------------
  // The engine's stream state as a token string (std::mt19937_64's
  // standard stream format). The Zipf CDF cache is a pure cache keyed by
  // its inputs and is not part of the state: a restored Rng replays the
  // exact draw sequence regardless.
  std::string SerializeState() const;

  // Restores a SerializeState() string; InvalidArgument on malformed
  // input (the stream state is then unchanged).
  Status DeserializeState(const std::string& text);

 private:
  std::mt19937_64 engine_;

  // Cached CDF for ZipfRank, keyed by (n, skew) of the last call.
  uint64_t zipf_cache_n_ = 0;
  double zipf_cache_skew_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace nc

#endif  // NC_COMMON_RNG_H_
