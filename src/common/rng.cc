#include "common/rng.h"

#include <cmath>
#include <sstream>

namespace nc {

double Rng::Uniform01() {
  // Uses the top 53 bits for a uniform double in [0, 1).
  return (engine_() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  NC_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform01();
}

uint64_t Rng::UniformInt(uint64_t bound) {
  NC_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t value = engine_();
  while (value >= limit) value = engine_();
  return value % bound;
}

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; uses one draw per call (discards the sibling for stream
  // simplicity and determinism of interleaved draw shapes).
  double u1 = Uniform01();
  double u2 = Uniform01();
  if (u1 <= 0.0) u1 = 1e-300;
  const double radius = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * radius * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::ZipfRank(uint64_t n, double skew) {
  NC_CHECK(n > 0);
  NC_CHECK(skew > 0.0);
  // Inverse-CDF via the standard rejection-inversion approximation for the
  // continuous envelope, clamped to [0, n).
  //
  // For the moderate n used in experiments a simple inversion against the
  // harmonic normalizer is exact and fast enough once the normalizer is
  // cached per (n, skew).
  if (n != zipf_cache_n_ || skew != zipf_cache_skew_) {
    zipf_cdf_.resize(n);
    double total = 0.0;
    for (uint64_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
      zipf_cdf_[r] = total;
    }
    for (uint64_t r = 0; r < n; ++r) zipf_cdf_[r] /= total;
    zipf_cache_n_ = n;
    zipf_cache_skew_ = skew;
  }
  const double u = Uniform01();
  // Binary search for the first rank whose CDF covers u.
  uint64_t lo = 0;
  uint64_t hi = n - 1;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n,
                                                    uint64_t count) {
  NC_CHECK(count <= n);
  std::vector<uint64_t> picked;
  picked.reserve(count);
  // Selection sampling (Knuth 3.4.2 Algorithm S).
  uint64_t remaining = count;
  for (uint64_t i = 0; i < n && remaining > 0; ++i) {
    const double threshold = static_cast<double>(remaining) /
                             static_cast<double>(n - i);
    if (Uniform01() < threshold) {
      picked.push_back(i);
      --remaining;
    }
  }
  return picked;
}

std::string Rng::SerializeState() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

Status Rng::DeserializeState(const std::string& text) {
  std::istringstream is(text);
  std::mt19937_64 restored;
  is >> restored;
  if (is.fail()) {
    return Status::InvalidArgument("malformed RNG state");
  }
  engine_ = restored;
  return Status::OK();
}

}  // namespace nc
