#include "baselines/mpro.h"

#include <vector>

#include "baselines/candidate_table.h"
#include "common/check.h"
#include "core/bound_heap.h"
#include "core/candidate.h"

namespace nc {

Status RunMPro(SourceSet* sources, const ScoringFunction& scoring, size_t k,
               const std::vector<PredicateId>& schedule, TopKResult* out) {
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(RequireUniformCapabilities(*sources,
                                                /*need_sorted=*/false,
                                                /*need_random=*/true,
                                                "MPro"));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const size_t m = sources->num_predicates();
  const size_t n = sources->num_objects();

  std::vector<PredicateId> order = schedule;
  if (order.empty()) {
    order.resize(m);
    for (PredicateId i = 0; i < m; ++i) order[i] = i;
  }
  if (order.size() != m) {
    return Status::InvalidArgument("schedule must cover every predicate");
  }

  CandidatePool pool(m);
  BoundEvaluator bounds(&scoring);
  // Probes only - no sorted streams - so ceilings stay at 1.
  const std::vector<Score> ceilings(m, kMaxScore);

  LazyBoundHeap heap;
  const Score initial = scoring.Evaluate(ceilings);
  for (ObjectId u = 0; u < n; ++u) {
    pool.GetOrCreate(u);
    heap.Push(u, initial);
  }

  const auto bound_fn = [&](ObjectId u) -> std::optional<Score> {
    const Candidate* c = pool.Find(u);
    NC_CHECK(c != nullptr);
    if (c->IsComplete(m)) return bounds.Exact(*c);
    return bounds.Upper(*c, ceilings);
  };
  // The whole universe is seeded into the pool, so no unseen ceiling.
  const auto emit_certified = [&](TerminationReason reason) {
    std::vector<CertifiedRow> rows;
    PoolCertifiedRows(pool, bounds, ceilings, &rows);
    BuildCertifiedResult(rows, kMinScore, k, reason, out);
    return Status::OK();
  };

  std::vector<LazyBoundHeap::Entry> top;
  while (true) {
    heap.PopTopK(k, bound_fn, &top);
    const Candidate* next_probe = nullptr;
    for (const LazyBoundHeap::Entry& e : top) {
      const Candidate* c = pool.Find(e.object);
      if (!c->IsComplete(m)) {
        next_probe = c;
        break;
      }
    }
    if (next_probe == nullptr) {
      out->entries.clear();
      for (const LazyBoundHeap::Entry& e : top) {
        out->entries.push_back(TopKEntry{e.object, e.bound});
      }
      heap.Reinsert(top);
      return Status::OK();
    }
    // Probe the next unevaluated predicate in global-schedule order.
    Candidate* c = pool.Find(next_probe->id);
    for (PredicateId i : order) {
      if (!c->IsEvaluated(i)) {
        if (BudgetBarred(*sources, i)) {
          heap.Reinsert(top);
          return emit_certified(BudgetBarReason(sources, i));
        }
        c->SetScore(i, sources->RandomAccess(i, c->id));
        break;
      }
    }
    heap.Reinsert(top);
  }
}

}  // namespace nc
