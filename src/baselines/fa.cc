#include "baselines/fa.h"

#include <unordered_map>
#include <vector>

#include "baselines/candidate_table.h"
#include "common/check.h"

namespace nc {

Status RunFA(SourceSet* sources, const ScoringFunction& scoring, size_t k,
             TopKResult* out) {
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(RequireUniformCapabilities(*sources, /*need_sorted=*/true,
                                                /*need_random=*/true, "FA"));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const size_t m = sources->num_predicates();
  const uint64_t full_mask = (m == 64) ? ~uint64_t{0} : (uint64_t{1} << m) - 1;

  // Phase 1: drain lists round-robin until k objects carry the full mask.
  std::unordered_map<ObjectId, uint64_t> seen_mask;
  std::unordered_map<ObjectId, std::vector<Score>> partial;
  // A budget bar settles with a certified answer assembled from every
  // seen object's interval (phase 2 keeps the masks current, so this
  // works mid-completion too).
  const auto emit_certified = [&](TerminationReason reason) {
    std::vector<Score> ceilings(m);
    for (PredicateId j = 0; j < m; ++j) ceilings[j] = sources->last_seen(j);
    std::vector<CertifiedRow> rows;
    rows.reserve(seen_mask.size());
    for (const auto& [object, mask] : seen_mask) {
      rows.push_back(
          PartialRow(scoring, object, partial[object], mask, ceilings));
    }
    BuildCertifiedResult(rows, scoring.Evaluate(ceilings), k, reason, out);
    return Status::OK();
  };
  size_t fully_seen = 0;
  bool any_stream_live = true;
  while (fully_seen < k && any_stream_live) {
    any_stream_live = false;
    for (PredicateId i = 0; i < m && fully_seen < k; ++i) {
      if (sources->exhausted(i)) continue;
      if (BudgetBarred(*sources, i)) {
        return emit_certified(BudgetBarReason(sources, i));
      }
      const std::optional<SortedHit> hit = sources->SortedAccess(i);
      if (!hit.has_value()) continue;
      any_stream_live = true;
      uint64_t& mask = seen_mask[hit->object];
      auto [it, created] = partial.try_emplace(hit->object,
                                               std::vector<Score>(m, 0.0));
      (void)created;
      if ((mask & (uint64_t{1} << i)) == 0) {
        mask |= uint64_t{1} << i;
        it->second[i] = hit->score;
        if (mask == full_mask) ++fully_seen;
      }
    }
  }

  // Phase 2: random-complete every seen object; best k win.
  TopKCollector collector(k);
  for (auto& [object, mask] : seen_mask) {
    std::vector<Score>& row = partial[object];
    for (PredicateId i = 0; i < m; ++i) {
      if ((mask & (uint64_t{1} << i)) == 0) {
        if (BudgetBarred(*sources, i)) {
          return emit_certified(BudgetBarReason(sources, i));
        }
        row[i] = sources->RandomAccess(i, object);
        mask |= uint64_t{1} << i;
      }
    }
    collector.Offer(object, scoring.Evaluate(row));
  }
  *out = collector.Take();
  return Status::OK();
}

}  // namespace nc
