// Upper (Bruno, Gravano & Marian, ICDE 2002; [2] in the paper): a
// probe-scheduling algorithm for Web sources that always works on the
// object with the highest maximal-possible score.
//
// Our rendition covers both of Upper's published settings:
//  * probe-only (no sorted access): like MPro but with a per-object probe
//    choice - the undetermined predicate with the best expected
//    bound-reduction per unit cost, (ceiling_i - E[p_i]) / cr_i - instead
//    of a fixed global schedule.
//  * discovery via sorted access: when the top of the queue is the
//    virtual unseen object, perform a round-robin sorted access.
//
// E[p_i] comes from samples (the optimizer's machinery); pass empty
// expectations for the uninformed default of 0.5.

#ifndef NC_BASELINES_UPPER_H_
#define NC_BASELINES_UPPER_H_

#include <vector>

#include "access/source.h"
#include "common/status.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

// Runs Upper for the top-k. Requires random access on every predicate;
// uses sorted access for candidate discovery when available.
Status RunUpper(SourceSet* sources, const ScoringFunction& scoring, size_t k,
                const std::vector<double>& expected_scores, TopKResult* out);

}  // namespace nc

#endif  // NC_BASELINES_UPPER_H_
