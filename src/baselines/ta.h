// The Threshold Algorithm (Fagin/Nepal/Guentzer; [14, 9] in the paper),
// the reference algorithm for the uniform-cost scenario cs_i ~ cr_i.
//
// Round-robin sorted access on every list; each newly seen object is
// immediately random-completed on its remaining predicates and its exact
// score enters the top-k buffer. Halt as soon as the k-th buffered score
// reaches the threshold T = F(l_1..l_m).
//
// Characteristic behaviors the paper contrasts NC against (Section 8.1):
// equal-depth sorted access, exhaustive random access, early stop.

#ifndef NC_BASELINES_TA_H_
#define NC_BASELINES_TA_H_

#include "access/source.h"
#include "common/status.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

// Runs TA for the top-k. Requires sorted and random access on every
// predicate (returns Unsupported otherwise).
Status RunTA(SourceSet* sources, const ScoringFunction& scoring, size_t k,
             TopKResult* out);

}  // namespace nc

#endif  // NC_BASELINES_TA_H_
