#include "baselines/stream_combine.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "baselines/candidate_table.h"
#include "common/check.h"
#include "core/candidate.h"

namespace nc {

namespace {

struct RankedState {
  ObjectId object;
  Score lower;
  Score upper;
  uint64_t evaluated_mask;
};

}  // namespace

Status RunStreamCombine(SourceSet* sources, const ScoringFunction& scoring,
                        size_t k, size_t lookback, TopKResult* out) {
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(RequireUniformCapabilities(*sources, /*need_sorted=*/true,
                                                /*need_random=*/false,
                                                "Stream-Combine"));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (lookback == 0) lookback = 1;
  const size_t m = sources->num_predicates();
  CandidatePool pool(m);
  BoundEvaluator bounds(&scoring);
  std::vector<Score> ceilings(m, kMaxScore);
  std::vector<std::deque<Score>> history(m);

  while (true) {
    // Rank candidates by lower bound to find the current top-k set and
    // which predicates they are missing.
    for (PredicateId i = 0; i < m; ++i) ceilings[i] = sources->last_seen(i);
    std::vector<RankedState> states;
    states.reserve(pool.size());
    for (Candidate& c : pool) {
      states.push_back(RankedState{c.id, bounds.Lower(c),
                                   bounds.Upper(c, ceilings),
                                   c.evaluated_mask});
    }
    const size_t take = std::min(k, states.size());
    std::partial_sort(states.begin(), states.begin() + take, states.end(),
                      [](const RankedState& a, const RankedState& b) {
                        if (a.lower != b.lower) return a.lower > b.lower;
                        return a.object > b.object;
                      });

    // Classic NRA halting test.
    if (take == k) {
      const Score kth_lower = states[k - 1].lower;
      bool halted = true;
      if (pool.size() < sources->num_objects() &&
          scoring.Evaluate(ceilings) > kth_lower) {
        halted = false;
      }
      for (size_t idx = k; halted && idx < states.size(); ++idx) {
        if (states[idx].upper > kth_lower) halted = false;
      }
      if (halted) {
        out->entries.clear();
        for (size_t idx = 0; idx < k; ++idx) {
          out->entries.push_back(
              TopKEntry{states[idx].object, states[idx].lower});
        }
        return Status::OK();
      }
    }

    // Indicator: weight each list by how many *relevant* candidates miss
    // it. Relevant = the current top-k by lower bound (the would-be
    // answers) plus the top-k by upper bound (the blockers whose bounds
    // keep the halting test false); counting only the former saturates at
    // zero once the leaders are fully seen and leaves the list choice to
    // noise.
    std::vector<size_t> missing(m, 0);
    const auto count_missing = [&](const RankedState& s) {
      for (PredicateId i = 0; i < m; ++i) {
        if ((s.evaluated_mask & (uint64_t{1} << i)) == 0) ++missing[i];
      }
    };
    for (size_t idx = 0; idx < take; ++idx) count_missing(states[idx]);
    if (states.size() > take) {
      std::partial_sort(states.begin() + take,
                        states.begin() + std::min(states.size(), 2 * take),
                        states.end(),
                        [](const RankedState& a, const RankedState& b) {
                          if (a.upper != b.upper) return a.upper > b.upper;
                          return a.object > b.object;
                        });
      const size_t blockers = std::min(states.size() - take, take);
      for (size_t idx = take; idx < take + blockers; ++idx) {
        count_missing(states[idx]);
      }
    }
    PredicateId pick = m;
    double best_delta = -1.0;
    for (PredicateId i = 0; i < m; ++i) {
      if (sources->exhausted(i)) continue;
      // Optimistic until two observations exist (a single one would read
      // as a zero drop and starve the list).
      const double drop = history[i].size() < 2
                              ? 1.0
                              : history[i].front() - history[i].back();
      const double derivative = PartialDerivative(scoring, ceilings, i);
      // +1 keeps lists with no missing top-k candidates explorable.
      const double delta =
          static_cast<double>(missing[i] + 1) * derivative * drop;
      if (pick == m || delta > best_delta) {
        pick = i;
        best_delta = delta;
      }
    }
    if (pick == m) {
      // Streams drained: every candidate is complete.
      TopKCollector collector(k);
      for (Candidate& c : pool) collector.Offer(c.id, bounds.Exact(c));
      *out = collector.Take();
      return Status::OK();
    }

    if (BudgetBarred(*sources, pick)) {
      // Ceilings were refreshed this iteration and no access has happened
      // since, so the pool bounds are current.
      std::vector<CertifiedRow> rows;
      PoolCertifiedRows(pool, bounds, ceilings, &rows);
      const Score unseen = pool.size() < sources->num_objects()
                               ? scoring.Evaluate(ceilings)
                               : kMinScore;
      BuildCertifiedResult(rows, unseen, k, BudgetBarReason(sources, pick),
                           out);
      return Status::OK();
    }
    const std::optional<SortedHit> hit = sources->SortedAccess(pick);
    NC_CHECK(hit.has_value());
    Candidate& c = pool.GetOrCreate(hit->object);
    if (!c.IsEvaluated(pick)) c.SetScore(pick, hit->score);
    std::deque<Score>& h = history[pick];
    h.push_back(sources->last_seen(pick));
    if (h.size() > lookback + 1) h.pop_front();
  }
}

}  // namespace nc
