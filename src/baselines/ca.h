// Combined Algorithm (CA, [9]): the reference algorithm when random
// access is much more expensive than sorted access (cr >> cs).
//
// CA amortizes each random-access burst over h = cr/cs rounds of sorted
// access: run h round-robin sorted rounds, then completely evaluate the
// most promising incomplete candidate (highest upper bound), and halt
// once k complete candidates dominate every upper bound and the unseen
// ceiling. We implement Fagin et al.'s published skeleton with the
// standard simplification of completing one candidate per phase.

#ifndef NC_BASELINES_CA_H_
#define NC_BASELINES_CA_H_

#include "access/source.h"
#include "common/status.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

// Runs CA for the top-k. Requires sorted and random access on every
// predicate. `h` overrides the sorted-rounds-per-probe-phase ratio; 0
// derives it from the cost model (mean cr / mean cs, at least 1).
Status RunCA(SourceSet* sources, const ScoringFunction& scoring, size_t k,
             size_t h, TopKResult* out);

}  // namespace nc

#endif  // NC_BASELINES_CA_H_
