#include "baselines/upper.h"

#include <vector>

#include "baselines/candidate_table.h"
#include "common/check.h"
#include "core/bound_heap.h"
#include "core/candidate.h"

namespace nc {

Status RunUpper(SourceSet* sources, const ScoringFunction& scoring, size_t k,
                const std::vector<double>& expected_scores, TopKResult* out) {
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(RequireUniformCapabilities(*sources,
                                                /*need_sorted=*/false,
                                                /*need_random=*/true,
                                                "Upper"));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const size_t m = sources->num_predicates();
  const size_t n = sources->num_objects();
  std::vector<double> expected = expected_scores;
  if (expected.empty()) expected.assign(m, 0.5);
  if (expected.size() != m) {
    return Status::InvalidArgument("expected_scores size mismatch");
  }

  const bool discovery = sources->cost_model().any_sorted();
  CandidatePool pool(m);
  BoundEvaluator bounds(&scoring);
  std::vector<Score> ceilings(m, kMaxScore);
  const auto refresh_ceilings = [&] {
    for (PredicateId i = 0; i < m; ++i) ceilings[i] = sources->last_seen(i);
  };

  LazyBoundHeap heap;
  const Score initial = scoring.Evaluate(std::vector<Score>(m, kMaxScore));
  if (discovery) {
    heap.Push(kUnseenObject, initial);
  } else {
    for (ObjectId u = 0; u < n; ++u) {
      pool.GetOrCreate(u);
      heap.Push(u, initial);
    }
  }

  const auto bound_fn = [&](ObjectId u) -> std::optional<Score> {
    refresh_ceilings();
    if (u == kUnseenObject) {
      if (pool.size() >= n) return std::nullopt;
      return scoring.Evaluate(ceilings);
    }
    const Candidate* c = pool.Find(u);
    NC_CHECK(c != nullptr);
    if (c->IsComplete(m)) return bounds.Exact(*c);
    return bounds.Upper(*c, ceilings);
  };
  const auto emit_certified = [&](TerminationReason reason) {
    refresh_ceilings();
    std::vector<CertifiedRow> rows;
    PoolCertifiedRows(pool, bounds, ceilings, &rows);
    const Score unseen = (discovery && pool.size() < n)
                             ? scoring.Evaluate(ceilings)
                             : kMinScore;
    BuildCertifiedResult(rows, unseen, k, reason, out);
    return Status::OK();
  };

  PredicateId rr_sorted = 0;
  std::vector<LazyBoundHeap::Entry> top;
  while (true) {
    heap.PopTopK(k, bound_fn, &top);
    ObjectId target = kUnseenObject;
    bool found = false;
    for (const LazyBoundHeap::Entry& e : top) {
      if (e.object == kUnseenObject) {
        target = e.object;
        found = true;
        break;
      }
      if (!pool.Find(e.object)->IsComplete(m)) {
        target = e.object;
        found = true;
        break;
      }
    }
    if (!found) {
      out->entries.clear();
      for (const LazyBoundHeap::Entry& e : top) {
        out->entries.push_back(TopKEntry{e.object, e.bound});
      }
      heap.Reinsert(top);
      return Status::OK();
    }

    if (target == kUnseenObject) {
      // Discover a candidate: round-robin over the sorted-capable lists.
      for (size_t tries = 0; tries < m; ++tries) {
        const PredicateId i = rr_sorted % m;
        rr_sorted = (rr_sorted + 1) % m;
        if (!sources->has_sorted(i) || sources->exhausted(i)) continue;
        if (BudgetBarred(*sources, i)) {
          heap.Reinsert(top);
          return emit_certified(BudgetBarReason(sources, i));
        }
        const std::optional<SortedHit> hit = sources->SortedAccess(i);
        NC_CHECK(hit.has_value());
        bool created = false;
        Candidate& c = pool.GetOrCreate(hit->object, &created);
        if (!c.IsEvaluated(i)) c.SetScore(i, hit->score);
        if (created) {
          refresh_ceilings();
          heap.Push(c.id, bounds.Upper(c, ceilings));
        }
        break;
      }
    } else {
      // Probe the predicate with the best expected bound-drop per cost.
      Candidate* c = pool.Find(target);
      refresh_ceilings();
      PredicateId best = m;
      double best_rate = -1.0;
      for (PredicateId i = 0; i < m; ++i) {
        if (c->IsEvaluated(i)) continue;
        const double cost = sources->cost_model().random_cost[i];
        const double drop = ceilings[i] - expected[i];
        const double rate = cost > 0.0 ? drop / cost : drop * 1e12;
        if (rate > best_rate) {
          best = i;
          best_rate = rate;
        }
      }
      NC_CHECK(best < m);
      if (BudgetBarred(*sources, best)) {
        heap.Reinsert(top);
        return emit_certified(BudgetBarReason(sources, best));
      }
      c->SetScore(best, sources->RandomAccess(best, c->id));
    }
    heap.Reinsert(top);
  }
}

}  // namespace nc
