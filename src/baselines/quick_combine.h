// Quick-Combine (Guentzer, Balke & Kiessling, VLDB 2000; [10] in the
// paper): TA enhanced with a runtime indicator for choosing which list to
// read next.
//
// Instead of TA's strict round-robin, the next sorted access goes to the
// list with the largest indicator
//     delta_i = dF/dx_i (at the current ceiling vector)
//               * (l_i d-steps-ago - l_i now),
// i.e., the list whose stream is dropping fastest weighted by how much the
// scoring function cares. Newly seen objects are random-completed
// immediately and the TA threshold test halts the run. The paper points
// out the indicator's limit: for F = min the partial derivative carries
// almost no signal - visible in the benchmarks.

#ifndef NC_BASELINES_QUICK_COMBINE_H_
#define NC_BASELINES_QUICK_COMBINE_H_

#include "access/source.h"
#include "common/status.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

// Runs Quick-Combine for the top-k. Requires sorted and random access on
// every predicate. `lookback` is the indicator window d (>= 1).
Status RunQuickCombine(SourceSet* sources, const ScoringFunction& scoring,
                       size_t k, size_t lookback, TopKResult* out);

}  // namespace nc

#endif  // NC_BASELINES_QUICK_COMBINE_H_
