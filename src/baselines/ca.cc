#include "baselines/ca.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/candidate_table.h"
#include "common/check.h"
#include "core/candidate.h"

namespace nc {

namespace {

size_t DeriveH(const CostModel& model) {
  double cs_total = 0.0;
  double cr_total = 0.0;
  for (PredicateId i = 0; i < model.num_predicates(); ++i) {
    cs_total += model.sorted_cost[i];
    cr_total += model.random_cost[i];
  }
  if (cs_total <= 0.0) return 1;
  const double ratio = cr_total / cs_total;
  return static_cast<size_t>(std::max(1.0, std::floor(ratio)));
}

}  // namespace

Status RunCA(SourceSet* sources, const ScoringFunction& scoring, size_t k,
             size_t h, TopKResult* out) {
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(RequireUniformCapabilities(*sources, /*need_sorted=*/true,
                                                /*need_random=*/true, "CA"));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (h == 0) h = DeriveH(sources->cost_model());
  const size_t m = sources->num_predicates();
  CandidatePool pool(m);
  BoundEvaluator bounds(&scoring);
  std::vector<Score> ceilings(m);
  const auto emit_certified = [&](TerminationReason reason) {
    for (PredicateId i = 0; i < m; ++i) ceilings[i] = sources->last_seen(i);
    std::vector<CertifiedRow> rows;
    PoolCertifiedRows(pool, bounds, ceilings, &rows);
    const Score unseen = pool.size() < sources->num_objects()
                             ? scoring.Evaluate(ceilings)
                             : kMinScore;
    BuildCertifiedResult(rows, unseen, k, reason, out);
    return Status::OK();
  };

  while (true) {
    // h rounds of round-robin sorted access.
    bool live = false;
    for (size_t round = 0; round < h; ++round) {
      for (PredicateId i = 0; i < m; ++i) {
        if (sources->exhausted(i)) continue;
        if (BudgetBarred(*sources, i)) {
          return emit_certified(BudgetBarReason(sources, i));
        }
        const std::optional<SortedHit> hit = sources->SortedAccess(i);
        if (!hit.has_value()) continue;
        live = true;
        Candidate& c = pool.GetOrCreate(hit->object);
        if (!c.IsEvaluated(i)) c.SetScore(i, hit->score);
      }
    }

    for (PredicateId i = 0; i < m; ++i) ceilings[i] = sources->last_seen(i);

    // Probe phase: completely evaluate the most promising incomplete
    // candidate.
    Candidate* best_incomplete = nullptr;
    Score best_upper = -1.0;
    for (Candidate& c : pool) {
      if (c.IsComplete(m)) continue;
      const Score upper = bounds.Upper(c, ceilings);
      if (upper > best_upper ||
          (upper == best_upper && best_incomplete != nullptr &&
           c.id > best_incomplete->id)) {
        best_incomplete = &c;
        best_upper = upper;
      }
    }
    if (best_incomplete != nullptr) {
      for (PredicateId i = 0; i < m; ++i) {
        if (!best_incomplete->IsEvaluated(i)) {
          if (BudgetBarred(*sources, i)) {
            return emit_certified(BudgetBarReason(sources, i));
          }
          best_incomplete->SetScore(
              i, sources->RandomAccess(i, best_incomplete->id));
        }
      }
    }

    // Halting: k complete candidates whose exact scores dominate every
    // upper bound and the unseen ceiling.
    TopKCollector collector(k);
    Score max_incomplete_upper = -1.0;
    for (Candidate& c : pool) {
      if (c.IsComplete(m)) {
        collector.Offer(c.id, bounds.Exact(c));
      } else {
        max_incomplete_upper =
            std::max(max_incomplete_upper, bounds.Upper(c, ceilings));
      }
    }
    const bool unseen_possible = pool.size() < sources->num_objects();
    Score cap = max_incomplete_upper;
    if (unseen_possible) cap = std::max(cap, scoring.Evaluate(ceilings));
    if (collector.full() && collector.kth_score() >= cap) {
      *out = collector.Take();
      return Status::OK();
    }
    if (!live && best_incomplete == nullptr) {
      // Nothing left to read or probe: rank what we have.
      *out = collector.Take();
      return Status::OK();
    }
  }
}

}  // namespace nc
