// Uniform handle over every implemented algorithm (NC and the baselines),
// used by the benchmark harness to run "each algorithm in each scenario it
// supports" without per-binary wiring.

#ifndef NC_BASELINES_REGISTRY_H_
#define NC_BASELINES_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "access/source.h"
#include "common/status.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc::obs {
class MetricsRegistry;
class QueryTracer;
}  // namespace nc::obs

namespace nc {

struct AlgorithmInfo {
  std::string name;
  // True when the algorithm's published scenario covers `model`.
  std::function<bool(const CostModel&)> applicable;
  // Runs the algorithm; `sources` is rewound by the caller.
  std::function<Status(SourceSet*, const ScoringFunction&, size_t,
                       TopKResult*)>
      run;
  // True when the algorithm returns exact scores (Definition 1's
  // semantics); set-only algorithms (classic NRA, Stream-Combine) return
  // a correct top-k set whose reported scores are lower bounds.
  bool exact_scores = true;
};

// Every baseline: FA, TA, CA, NRA (both modes), MPro, Upper,
// Quick-Combine, Stream-Combine. NC itself is run via core/planner.h.
const std::vector<AlgorithmInfo>& AllBaselines();

// Looks up one baseline by name; nullptr if unknown.
const AlgorithmInfo* FindBaseline(const std::string& name);

// Optional observability sinks for an instrumented baseline run. Both
// pointers may be null (and must outlive the run when set).
struct ObsHooks {
  obs::QueryTracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

// Runs `info` with observability attached: the tracer is installed on the
// SourceSet for the duration (and detached on every exit path), the run
// is bracketed in a phase span named after the algorithm, and the
// finished AccessStats are flushed into the registry under
// {algorithm=info.name} via obs::RecordSourceMetrics.
Status RunBaselineInstrumented(const AlgorithmInfo& info, SourceSet* sources,
                               const ScoringFunction& scoring, size_t k,
                               const ObsHooks& hooks, TopKResult* out);

}  // namespace nc

#endif  // NC_BASELINES_REGISTRY_H_
