#include "baselines/candidate_table.h"

#include <algorithm>

#include "common/check.h"

namespace nc {

std::vector<PredicateId> SortedCapable(const CostModel& model) {
  std::vector<PredicateId> out;
  for (PredicateId i = 0; i < model.num_predicates(); ++i) {
    if (model.has_sorted(i)) out.push_back(i);
  }
  return out;
}

std::vector<PredicateId> RandomCapable(const CostModel& model) {
  std::vector<PredicateId> out;
  for (PredicateId i = 0; i < model.num_predicates(); ++i) {
    if (model.has_random(i)) out.push_back(i);
  }
  return out;
}

Status RequireUniformCapabilities(const SourceSet& sources, bool need_sorted,
                                  bool need_random, const char* algorithm) {
  const CostModel& model = sources.cost_model();
  for (PredicateId i = 0; i < model.num_predicates(); ++i) {
    if (need_sorted && !model.has_sorted(i)) {
      return Status::Unsupported(std::string(algorithm) +
                                 " requires sorted access on predicate " +
                                 std::to_string(i));
    }
    if (need_random && !model.has_random(i)) {
      return Status::Unsupported(std::string(algorithm) +
                                 " requires random access on predicate " +
                                 std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace nc
