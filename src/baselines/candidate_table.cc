#include "baselines/candidate_table.h"

#include <algorithm>

#include "common/check.h"

namespace nc {

std::vector<PredicateId> SortedCapable(const CostModel& model) {
  std::vector<PredicateId> out;
  for (PredicateId i = 0; i < model.num_predicates(); ++i) {
    if (model.has_sorted(i)) out.push_back(i);
  }
  return out;
}

std::vector<PredicateId> RandomCapable(const CostModel& model) {
  std::vector<PredicateId> out;
  for (PredicateId i = 0; i < model.num_predicates(); ++i) {
    if (model.has_random(i)) out.push_back(i);
  }
  return out;
}

bool BudgetBarred(const SourceSet& sources, PredicateId next_predicate) {
  return sources.access_barred(next_predicate);
}

TerminationReason BudgetBarReason(SourceSet* sources,
                                  PredicateId next_predicate) {
  // The access the caller was about to issue was refused by the budget;
  // account it like a Try*-level refusal (nothing was billed).
  sources->NoteBudgetRefusal();
  if (sources->cost_budget_exhausted()) {
    return TerminationReason::kCostBudget;
  }
  if (sources->deadline_exceeded()) return TerminationReason::kDeadline;
  NC_CHECK(sources->quota_exhausted(next_predicate));
  return TerminationReason::kQuota;
}

CertifiedRow PartialRow(const ScoringFunction& scoring, ObjectId object,
                        const std::vector<Score>& row, uint64_t known_mask,
                        std::span<const Score> ceilings) {
  const size_t m = row.size();
  std::vector<Score> filled(m);
  CertifiedRow out;
  out.object = object;
  for (PredicateId i = 0; i < m; ++i) {
    filled[i] = ((known_mask >> i) & 1) != 0 ? row[i] : 0.0;
  }
  out.lower = scoring.Evaluate(filled);
  for (PredicateId i = 0; i < m; ++i) {
    filled[i] = ((known_mask >> i) & 1) != 0 ? row[i] : ceilings[i];
  }
  out.upper = scoring.Evaluate(filled);
  return out;
}

void PoolCertifiedRows(CandidatePool& pool, BoundEvaluator& bounds,
                       std::span<const Score> ceilings,
                       std::vector<CertifiedRow>* rows) {
  const size_t m = pool.num_predicates();
  rows->clear();
  rows->reserve(pool.size());
  for (Candidate& c : pool) {
    if (c.IsComplete(m)) {
      const Score exact = bounds.Exact(c);
      rows->push_back(CertifiedRow{c.id, exact, exact});
    } else {
      rows->push_back(
          CertifiedRow{c.id, bounds.Lower(c), bounds.Upper(c, ceilings)});
    }
  }
}

Status RequireUniformCapabilities(const SourceSet& sources, bool need_sorted,
                                  bool need_random, const char* algorithm) {
  const CostModel& model = sources.cost_model();
  for (PredicateId i = 0; i < model.num_predicates(); ++i) {
    if (need_sorted && !model.has_sorted(i)) {
      return Status::Unsupported(std::string(algorithm) +
                                 " requires sorted access on predicate " +
                                 std::to_string(i));
    }
    if (need_random && !model.has_random(i)) {
      return Status::Unsupported(std::string(algorithm) +
                                 " requires random access on predicate " +
                                 std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace nc
