// MPro (Chang & Hwang, SIGMOD 2002; [5] in the paper): the reference
// algorithm when sorted access is impossible and predicates are evaluated
// by probes only.
//
// The object universe is known up front (per MPro's model the candidates
// come from a driving filter; here that is SourceSet's dataset). A
// priority queue ranks candidates by maximal-possible score; the top
// incomplete candidate is probed on its next unevaluated predicate
// following a fixed global schedule; the query halts when the top k are
// complete. MPro proved this probe-optimal for the given schedule - it is
// also exactly the behavior NC converges to in the probe-only corner.

#ifndef NC_BASELINES_MPRO_H_
#define NC_BASELINES_MPRO_H_

#include <vector>

#include "access/source.h"
#include "common/status.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

// Runs MPro for the top-k using the global probe `schedule` (a permutation
// of the predicates; pass an empty vector for the identity schedule).
// Requires random access on every predicate; never performs sorted
// access.
Status RunMPro(SourceSet* sources, const ScoringFunction& scoring, size_t k,
               const std::vector<PredicateId>& schedule, TopKResult* out);

}  // namespace nc

#endif  // NC_BASELINES_MPRO_H_
