// Stream-Combine (Guentzer, Balke & Kiessling, 2001; [11] in the paper):
// the sorted-access-only sibling of Quick-Combine.
//
// Like NRA it never performs random access; like Quick-Combine it replaces
// round-robin with an indicator,
//     delta_i = (#current top-k candidates missing p_i)
//               * dF/dx_i (at the ceilings) * recent drop of l_i,
// reading the list expected to tighten the top candidates fastest. Halting
// and output semantics follow classic NRA (a correct top-k set whose
// reported scores are lower bounds).

#ifndef NC_BASELINES_STREAM_COMBINE_H_
#define NC_BASELINES_STREAM_COMBINE_H_

#include "access/source.h"
#include "common/status.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

// Runs Stream-Combine for the top-k. Requires sorted access on every
// predicate; never performs random access. `lookback` is the indicator
// window d (>= 1).
Status RunStreamCombine(SourceSet* sources, const ScoringFunction& scoring,
                        size_t k, size_t lookback, TopKResult* out);

}  // namespace nc

#endif  // NC_BASELINES_STREAM_COMBINE_H_
