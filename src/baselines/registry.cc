#include "baselines/registry.h"

#include "baselines/ca.h"
#include "baselines/fa.h"
#include "baselines/mpro.h"
#include "baselines/nra.h"
#include "baselines/quick_combine.h"
#include "baselines/stream_combine.h"
#include "baselines/ta.h"
#include "baselines/taz.h"
#include "baselines/upper.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/tracer.h"

namespace nc {

namespace {

bool AllSorted(const CostModel& model) {
  for (PredicateId i = 0; i < model.num_predicates(); ++i) {
    if (!model.has_sorted(i)) return false;
  }
  return true;
}

bool AllRandom(const CostModel& model) {
  for (PredicateId i = 0; i < model.num_predicates(); ++i) {
    if (!model.has_random(i)) return false;
  }
  return true;
}

std::vector<AlgorithmInfo> BuildRegistry() {
  std::vector<AlgorithmInfo> algorithms;
  algorithms.push_back(AlgorithmInfo{
      "FA",
      [](const CostModel& m) { return AllSorted(m) && AllRandom(m); },
      [](SourceSet* s, const ScoringFunction& f, size_t k, TopKResult* out) {
        return RunFA(s, f, k, out);
      },
      /*exact_scores=*/true});
  algorithms.push_back(AlgorithmInfo{
      "TA",
      [](const CostModel& m) { return AllSorted(m) && AllRandom(m); },
      [](SourceSet* s, const ScoringFunction& f, size_t k, TopKResult* out) {
        return RunTA(s, f, k, out);
      },
      /*exact_scores=*/true});
  algorithms.push_back(AlgorithmInfo{
      "TAz",
      [](const CostModel& m) { return AllRandom(m) && m.any_sorted(); },
      [](SourceSet* s, const ScoringFunction& f, size_t k, TopKResult* out) {
        return RunTAz(s, f, k, out);
      },
      /*exact_scores=*/true});
  algorithms.push_back(AlgorithmInfo{
      "CA",
      [](const CostModel& m) { return AllSorted(m) && AllRandom(m); },
      [](SourceSet* s, const ScoringFunction& f, size_t k, TopKResult* out) {
        return RunCA(s, f, k, /*h=*/0, out);
      },
      /*exact_scores=*/true});
  algorithms.push_back(AlgorithmInfo{
      "Quick-Combine",
      [](const CostModel& m) { return AllSorted(m) && AllRandom(m); },
      [](SourceSet* s, const ScoringFunction& f, size_t k, TopKResult* out) {
        return RunQuickCombine(s, f, k, /*lookback=*/5, out);
      },
      /*exact_scores=*/true});
  algorithms.push_back(AlgorithmInfo{
      "NRA",
      [](const CostModel& m) { return AllSorted(m); },
      [](SourceSet* s, const ScoringFunction& f, size_t k, TopKResult* out) {
        return RunNRA(s, f, k, NRAMode::kSetOnly, out);
      },
      /*exact_scores=*/false});
  algorithms.push_back(AlgorithmInfo{
      "NRA-exact",
      [](const CostModel& m) { return AllSorted(m); },
      [](SourceSet* s, const ScoringFunction& f, size_t k, TopKResult* out) {
        return RunNRA(s, f, k, NRAMode::kExactScores, out);
      },
      /*exact_scores=*/true});
  algorithms.push_back(AlgorithmInfo{
      "Stream-Combine",
      [](const CostModel& m) { return AllSorted(m); },
      [](SourceSet* s, const ScoringFunction& f, size_t k, TopKResult* out) {
        return RunStreamCombine(s, f, k, /*lookback=*/5, out);
      },
      /*exact_scores=*/false});
  algorithms.push_back(AlgorithmInfo{
      "MPro",
      [](const CostModel& m) { return AllRandom(m); },
      [](SourceSet* s, const ScoringFunction& f, size_t k, TopKResult* out) {
        return RunMPro(s, f, k, /*schedule=*/{}, out);
      },
      /*exact_scores=*/true});
  algorithms.push_back(AlgorithmInfo{
      "Upper",
      [](const CostModel& m) { return AllRandom(m); },
      [](SourceSet* s, const ScoringFunction& f, size_t k, TopKResult* out) {
        return RunUpper(s, f, k, /*expected_scores=*/{}, out);
      },
      /*exact_scores=*/true});
  return algorithms;
}

}  // namespace

const std::vector<AlgorithmInfo>& AllBaselines() {
  static const std::vector<AlgorithmInfo>& registry =
      *new std::vector<AlgorithmInfo>(BuildRegistry());
  return registry;
}

const AlgorithmInfo* FindBaseline(const std::string& name) {
  for (const AlgorithmInfo& info : AllBaselines()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

Status RunBaselineInstrumented(const AlgorithmInfo& info, SourceSet* sources,
                               const ScoringFunction& scoring, size_t k,
                               const ObsHooks& hooks, TopKResult* out) {
  obs::QueryTracer* const previous = sources->tracer();
  sources->set_tracer(hooks.tracer);
  const bool tracing = obs::ShouldTrace(hooks.tracer);
  // Registry entries live in a function-local static, so info.name's
  // storage satisfies BeginPhase's lifetime requirement.
  if (tracing) hooks.tracer->BeginPhase(info.name.c_str());
  const Status status = info.run(sources, scoring, k, out);
  // Baseline loops build the certificate but do not trace it themselves;
  // surface it here so engine and baseline runs emit the same event.
  if (tracing && status.ok() && out->certificate.has_value()) {
    hooks.tracer->RecordCertificate(
        TerminationReasonName(out->certificate->reason),
        out->certificate->epsilon, out->certificate->excluded_ceiling,
        sources->accrued_cost());
  }
  if (tracing) hooks.tracer->EndPhase(info.name.c_str());
  sources->set_tracer(previous);
  if (hooks.metrics != nullptr) {
    obs::RecordSourceMetrics(hooks.metrics, info.name, *sources);
    if (status.ok() && out->certificate.has_value()) {
      hooks.metrics
          ->counter(
              "nc_baseline_certified_runs_total",
              {{"algorithm", info.name},
               {"reason", TerminationReasonName(out->certificate->reason)}})
          .Increment();
    }
  }
  return status;
}

}  // namespace nc
