// Fagin's Algorithm (FA, [8, 16] in the paper), the original middleware
// top-k algorithm for uniform access costs.
//
// Phase 1: round-robin sorted access until at least k objects have been
// seen on *every* list. Phase 2: random-complete every seen object and
// return the best k. FA predates the threshold test, so it reads deeper
// and probes more than TA - the benchmarks show exactly that.

#ifndef NC_BASELINES_FA_H_
#define NC_BASELINES_FA_H_

#include "access/source.h"
#include "common/status.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

// Runs FA for the top-k. Requires sorted and random access on every
// predicate (returns Unsupported otherwise).
Status RunFA(SourceSet* sources, const ScoringFunction& scoring, size_t k,
             TopKResult* out);

}  // namespace nc

#endif  // NC_BASELINES_FA_H_
