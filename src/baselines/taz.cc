#include "baselines/taz.h"

#include <unordered_set>
#include <vector>

#include "baselines/candidate_table.h"
#include "common/check.h"

namespace nc {

Status RunTAz(SourceSet* sources, const ScoringFunction& scoring, size_t k,
              TopKResult* out) {
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(RequireUniformCapabilities(*sources,
                                                /*need_sorted=*/false,
                                                /*need_random=*/true,
                                                "TAz"));
  const std::vector<PredicateId> streams =
      SortedCapable(sources->cost_model());
  if (streams.empty()) {
    return Status::Unsupported(
        "TAz requires sorted access on at least one predicate");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const size_t m = sources->num_predicates();

  TopKCollector collector(k);
  std::unordered_set<ObjectId> completed;
  std::vector<Score> row(m);
  // Ceiling 1 on probe-only predicates: nothing bounds an unseen score
  // there.
  std::vector<Score> ceilings(m, kMaxScore);
  std::vector<CertifiedRow> rows;
  const auto refresh_ceilings = [&] {
    for (const PredicateId s : streams) ceilings[s] = sources->last_seen(s);
  };
  const auto emit_certified = [&](TerminationReason reason) {
    refresh_ceilings();
    BuildCertifiedResult(rows, scoring.Evaluate(ceilings), k, reason, out);
    return Status::OK();
  };

  bool any_stream_live = true;
  while (any_stream_live) {
    any_stream_live = false;
    for (const PredicateId i : streams) {
      if (sources->exhausted(i)) continue;
      if (BudgetBarred(*sources, i)) {
        return emit_certified(BudgetBarReason(sources, i));
      }
      const std::optional<SortedHit> hit = sources->SortedAccess(i);
      if (!hit.has_value()) continue;
      any_stream_live = true;
      if (completed.insert(hit->object).second) {
        row[i] = hit->score;
        uint64_t known = uint64_t{1} << i;
        for (PredicateId j = 0; j < m; ++j) {
          if (j == i) continue;
          if (BudgetBarred(*sources, j)) {
            refresh_ceilings();
            rows.push_back(
                PartialRow(scoring, hit->object, row, known, ceilings));
            return emit_certified(BudgetBarReason(sources, j));
          }
          row[j] = sources->RandomAccess(j, hit->object);
          known |= uint64_t{1} << j;
        }
        const Score exact = scoring.Evaluate(row);
        collector.Offer(hit->object, exact);
        rows.push_back(CertifiedRow{hit->object, exact, exact});
      }
      // Threshold: last-seen on the streams in z, ceiling 1 elsewhere.
      for (const PredicateId s : streams) ceilings[s] = sources->last_seen(s);
      const Score threshold = scoring.Evaluate(ceilings);
      if (collector.full() && collector.kth_score() >= threshold) {
        *out = collector.Take();
        return Status::OK();
      }
    }
  }
  // Streams drained: every object was seen (each stream covers the whole
  // database) and completed.
  *out = collector.Take();
  return Status::OK();
}

}  // namespace nc
