// No-Random-Access algorithm (NRA, [9]): the reference algorithm when
// random access is impossible (cr_i = infinity).
//
// Round-robin sorted access on every list, maintaining per-candidate lower
// bounds (unknown -> 0) and upper bounds (unknown -> l_i). Two halting
// semantics are provided:
//
//   kSetOnly     - the classic NRA contract: halt once the k-th best lower
//                  bound dominates every other candidate's upper bound and
//                  the unseen ceiling F(l). The returned objects are the
//                  top-k, but reported scores are lower bounds, not
//                  necessarily exact.
//   kExactScores - the paper's query semantics (Definition 1 requires
//                  exact scores for answers): keep reading until the top-k
//                  by upper bound are completely evaluated. Costs more;
//                  this is the apples-to-apples mode for comparing against
//                  NC.

#ifndef NC_BASELINES_NRA_H_
#define NC_BASELINES_NRA_H_

#include "access/source.h"
#include "common/status.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

enum class NRAMode {
  kSetOnly,
  kExactScores,
};

// Runs NRA for the top-k. Requires sorted access on every predicate
// (returns Unsupported otherwise); never performs random access.
Status RunNRA(SourceSet* sources, const ScoringFunction& scoring, size_t k,
              NRAMode mode, TopKResult* out);

}  // namespace nc

#endif  // NC_BASELINES_NRA_H_
