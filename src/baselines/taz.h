// TAz (Fagin, Lotem & Naor's TA variant for sources without sorted
// access, "Optimal aggregation algorithms for middleware" Section 8):
// the reference algorithm when only a subset z of the predicates exposes
// sorted streams but every predicate can be probed.
//
// Round-robin sorted access over the streams in z; each newly seen object
// is immediately random-completed on all remaining predicates; the
// threshold reads the last-seen score on streams in z and the trivial
// ceiling 1 elsewhere. Halts when k collected exact scores reach the
// threshold.

#ifndef NC_BASELINES_TAZ_H_
#define NC_BASELINES_TAZ_H_

#include "access/source.h"
#include "common/status.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

// Runs TAz for the top-k. Requires random access on every predicate and
// sorted access on at least one (returns Unsupported otherwise).
Status RunTAz(SourceSet* sources, const ScoringFunction& scoring, size_t k,
              TopKResult* out);

}  // namespace nc

#endif  // NC_BASELINES_TAZ_H_
