#include "baselines/quick_combine.h"

#include <deque>
#include <unordered_set>
#include <vector>

#include "baselines/candidate_table.h"
#include "common/check.h"

namespace nc {

namespace {

// Sliding window of the last `lookback` ceiling values per list, for the
// drop-rate factor of the indicator.
class DropTracker {
 public:
  DropTracker(size_t num_predicates, size_t lookback)
      : lookback_(lookback), history_(num_predicates) {}

  void Record(PredicateId i, Score ceiling) {
    std::deque<Score>& h = history_[i];
    h.push_back(ceiling);
    if (h.size() > lookback_ + 1) h.pop_front();
  }

  // l_i d-steps-ago minus l_i now; optimistic 1.0 until two observations
  // exist, so every list gets sampled before its rate is trusted (a
  // single observation would read as a zero drop and starve the list).
  double Drop(PredicateId i) const {
    const std::deque<Score>& h = history_[i];
    if (h.size() < 2) return 1.0;
    return h.front() - h.back();
  }

 private:
  size_t lookback_;
  std::vector<std::deque<Score>> history_;
};

}  // namespace

Status RunQuickCombine(SourceSet* sources, const ScoringFunction& scoring,
                       size_t k, size_t lookback, TopKResult* out) {
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(RequireUniformCapabilities(*sources, /*need_sorted=*/true,
                                                /*need_random=*/true,
                                                "Quick-Combine"));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (lookback == 0) lookback = 1;
  const size_t m = sources->num_predicates();

  TopKCollector collector(k);
  std::unordered_set<ObjectId> completed;
  DropTracker drops(m, lookback);
  std::vector<Score> ceilings(m, kMaxScore);
  std::vector<Score> row(m);
  std::vector<CertifiedRow> rows;
  const auto emit_certified = [&](TerminationReason reason) {
    std::vector<Score> bounds(m);
    for (PredicateId j = 0; j < m; ++j) bounds[j] = sources->last_seen(j);
    BuildCertifiedResult(rows, scoring.Evaluate(bounds), k, reason, out);
    return Status::OK();
  };

  while (true) {
    // Pick the live list with the best indicator.
    PredicateId pick = m;
    double best_delta = -1.0;
    for (PredicateId i = 0; i < m; ++i) {
      if (sources->exhausted(i)) continue;
      const double derivative = PartialDerivative(scoring, ceilings, i);
      const double delta = derivative * drops.Drop(i);
      if (pick == m || delta > best_delta) {
        pick = i;
        best_delta = delta;
      }
    }
    if (pick == m) {
      // All streams drained.
      *out = collector.Take();
      return Status::OK();
    }

    if (BudgetBarred(*sources, pick)) {
      return emit_certified(BudgetBarReason(sources, pick));
    }
    const std::optional<SortedHit> hit = sources->SortedAccess(pick);
    NC_CHECK(hit.has_value());
    ceilings[pick] = sources->last_seen(pick);
    drops.Record(pick, ceilings[pick]);

    if (completed.insert(hit->object).second) {
      row[pick] = hit->score;
      uint64_t known = uint64_t{1} << pick;
      for (PredicateId j = 0; j < m; ++j) {
        if (j == pick) continue;
        if (BudgetBarred(*sources, j)) {
          std::vector<Score> bounds(m);
          for (PredicateId b = 0; b < m; ++b) {
            bounds[b] = sources->last_seen(b);
          }
          rows.push_back(
              PartialRow(scoring, hit->object, row, known, bounds));
          return emit_certified(BudgetBarReason(sources, j));
        }
        row[j] = sources->RandomAccess(j, hit->object);
        known |= uint64_t{1} << j;
      }
      const Score exact = scoring.Evaluate(row);
      collector.Offer(hit->object, exact);
      rows.push_back(CertifiedRow{hit->object, exact, exact});
    }

    const Score threshold = scoring.Evaluate(ceilings);
    if (collector.full() && collector.kth_score() >= threshold) {
      *out = collector.Take();
      return Status::OK();
    }
  }
}

}  // namespace nc
