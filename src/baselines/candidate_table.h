// Shared plumbing for the baseline algorithms (Figure 2's matrix).
//
// Every baseline works off the same primitives as the NC engine - the
// access layer, the candidate pool, and bound evaluation - but implements
// its published control loop independently, so cost comparisons between
// NC and a baseline compare genuinely different schedulers rather than
// two spellings of one engine.

#ifndef NC_BASELINES_CANDIDATE_TABLE_H_
#define NC_BASELINES_CANDIDATE_TABLE_H_

#include <vector>

#include "access/source.h"
#include "common/score.h"
#include "common/status.h"
#include "core/result.h"
#include "core/topk_collector.h"
#include "scoring/scoring_function.h"

namespace nc {

// The predicates of `model` that support the given access type, ascending.
std::vector<PredicateId> SortedCapable(const CostModel& model);
std::vector<PredicateId> RandomCapable(const CostModel& model);

// Returns Unsupported unless every predicate supports sorted access
// (and random access, when `need_random` is set). Baselines use this to
// declare their scenario requirements up front.
Status RequireUniformCapabilities(const SourceSet& sources, bool need_sorted,
                                  bool need_random, const char* algorithm);

}  // namespace nc

#endif  // NC_BASELINES_CANDIDATE_TABLE_H_
