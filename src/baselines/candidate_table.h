// Shared plumbing for the baseline algorithms (Figure 2's matrix).
//
// Every baseline works off the same primitives as the NC engine - the
// access layer, the candidate pool, and bound evaluation - but implements
// its published control loop independently, so cost comparisons between
// NC and a baseline compare genuinely different schedulers rather than
// two spellings of one engine.

#ifndef NC_BASELINES_CANDIDATE_TABLE_H_
#define NC_BASELINES_CANDIDATE_TABLE_H_

#include <span>
#include <vector>

#include "access/source.h"
#include "common/score.h"
#include "common/status.h"
#include "core/candidate.h"
#include "core/result.h"
#include "core/topk_collector.h"
#include "scoring/scoring_function.h"

namespace nc {

// The predicates of `model` that support the given access type, ascending.
std::vector<PredicateId> SortedCapable(const CostModel& model);
std::vector<PredicateId> RandomCapable(const CostModel& model);

// Returns Unsupported unless every predicate supports sorted access
// (and random access, when `need_random` is set). Baselines use this to
// declare their scenario requirements up front.
Status RequireUniformCapabilities(const SourceSet& sources, bool need_sorted,
                                  bool need_random, const char* algorithm);

// --- Budget support (access/budget.h) ----------------------------------
// True when the access layer would refuse the next access on predicate
// `next_predicate` (cost cap, deadline, or per-predicate quota). The
// baselines' crashing access wrappers abort on a refusal, so every
// baseline access site tests this first and settles with a certified
// anytime answer (BuildCertifiedResult) instead. Unlike NC, the published
// control loops are rigid - they cannot steer around one quota-spent
// predicate - so any bar ends the whole run.
bool BudgetBarred(const SourceSet& sources, PredicateId next_predicate);

// The TerminationReason behind a bar observed on `next_predicate`. Also
// records the refused access in AccessStats::budget_refusals - call it
// exactly once, at the access site that stopped the run.
TerminationReason BudgetBarReason(SourceSet* sources,
                                  PredicateId next_predicate);

// Proven [lower, upper] interval of a partially evaluated row: unknown
// predicates (unset bits of `known_mask`) read as 0 for the lower bound
// and as ceilings[j] for the upper bound.
CertifiedRow PartialRow(const ScoringFunction& scoring, ObjectId object,
                        const std::vector<Score>& row, uint64_t known_mask,
                        std::span<const Score> ceilings);

// Certified rows for every candidate in `pool` (exact for complete
// candidates, [Lower, Upper-vs-ceilings] otherwise) - shared by the
// pool-based baselines when a budget bar stops the run.
void PoolCertifiedRows(CandidatePool& pool, BoundEvaluator& bounds,
                       std::span<const Score> ceilings,
                       std::vector<CertifiedRow>* rows);

}  // namespace nc

#endif  // NC_BASELINES_CANDIDATE_TABLE_H_
