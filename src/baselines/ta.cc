#include "baselines/ta.h"

#include <unordered_set>
#include <vector>

#include "baselines/candidate_table.h"
#include "common/check.h"

namespace nc {

Status RunTA(SourceSet* sources, const ScoringFunction& scoring, size_t k,
             TopKResult* out) {
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(RequireUniformCapabilities(*sources, /*need_sorted=*/true,
                                                /*need_random=*/true, "TA"));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const size_t m = sources->num_predicates();

  TopKCollector collector(k);
  std::unordered_set<ObjectId> completed;
  std::vector<Score> row(m);
  // Exact scores of every completed object, for the certified answer a
  // budget bar settles with.
  std::vector<CertifiedRow> rows;
  std::vector<Score> ceilings(m);
  const auto refresh_ceilings = [&] {
    for (PredicateId j = 0; j < m; ++j) ceilings[j] = sources->last_seen(j);
  };
  const auto emit_certified = [&](TerminationReason reason) {
    refresh_ceilings();
    BuildCertifiedResult(rows, scoring.Evaluate(ceilings), k, reason, out);
    return Status::OK();
  };

  bool any_stream_live = true;
  while (any_stream_live) {
    any_stream_live = false;
    for (PredicateId i = 0; i < m; ++i) {
      if (sources->exhausted(i)) continue;
      if (BudgetBarred(*sources, i)) {
        return emit_certified(BudgetBarReason(sources, i));
      }
      const std::optional<SortedHit> hit = sources->SortedAccess(i);
      if (!hit.has_value()) continue;
      any_stream_live = true;
      if (completed.insert(hit->object).second) {
        // Exhaustive random access: complete the object right away.
        row[i] = hit->score;
        uint64_t known = uint64_t{1} << i;
        for (PredicateId j = 0; j < m; ++j) {
          if (j == i) continue;
          if (BudgetBarred(*sources, j)) {
            // Barred mid-row: the object in progress enters the answer
            // with its partial interval.
            refresh_ceilings();
            rows.push_back(
                PartialRow(scoring, hit->object, row, known, ceilings));
            return emit_certified(BudgetBarReason(sources, j));
          }
          row[j] = sources->RandomAccess(j, hit->object);
          known |= uint64_t{1} << j;
        }
        const Score exact = scoring.Evaluate(row);
        collector.Offer(hit->object, exact);
        rows.push_back(CertifiedRow{hit->object, exact, exact});
      }
      // Early stop: k collected objects already at or above the
      // maximal-possible score of anything unseen.
      refresh_ceilings();
      const Score threshold = scoring.Evaluate(ceilings);
      if (collector.full() && collector.kth_score() >= threshold) {
        *out = collector.Take();
        return Status::OK();
      }
    }
  }
  // Streams exhausted (k >= n or extreme ties): everything was seen and
  // completed.
  *out = collector.Take();
  return Status::OK();
}

}  // namespace nc
