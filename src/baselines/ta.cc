#include "baselines/ta.h"

#include <unordered_set>
#include <vector>

#include "baselines/candidate_table.h"
#include "common/check.h"

namespace nc {

Status RunTA(SourceSet* sources, const ScoringFunction& scoring, size_t k,
             TopKResult* out) {
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(RequireUniformCapabilities(*sources, /*need_sorted=*/true,
                                                /*need_random=*/true, "TA"));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const size_t m = sources->num_predicates();

  TopKCollector collector(k);
  std::unordered_set<ObjectId> completed;
  std::vector<Score> row(m);

  bool any_stream_live = true;
  while (any_stream_live) {
    any_stream_live = false;
    for (PredicateId i = 0; i < m; ++i) {
      if (sources->exhausted(i)) continue;
      const std::optional<SortedHit> hit = sources->SortedAccess(i);
      if (!hit.has_value()) continue;
      any_stream_live = true;
      if (completed.insert(hit->object).second) {
        // Exhaustive random access: complete the object right away.
        row[i] = hit->score;
        for (PredicateId j = 0; j < m; ++j) {
          if (j == i) continue;
          row[j] = sources->RandomAccess(j, hit->object);
        }
        collector.Offer(hit->object, scoring.Evaluate(row));
      }
      // Early stop: k collected objects already at or above the
      // maximal-possible score of anything unseen.
      std::vector<Score> ceilings(m);
      for (PredicateId j = 0; j < m; ++j) ceilings[j] = sources->last_seen(j);
      const Score threshold = scoring.Evaluate(ceilings);
      if (collector.full() && collector.kth_score() >= threshold) {
        *out = collector.Take();
        return Status::OK();
      }
    }
  }
  // Streams exhausted (k >= n or extreme ties): everything was seen and
  // completed.
  *out = collector.Take();
  return Status::OK();
}

}  // namespace nc
