#include "baselines/nra.h"

#include <algorithm>
#include <vector>

#include "baselines/candidate_table.h"
#include "common/check.h"
#include "core/candidate.h"

namespace nc {

namespace {

// One full round of sorted accesses; returns false when every stream is
// exhausted. A budget bar cuts the round short: *bar receives the reason
// and the round reports whatever it managed before the bar.
bool SortedRound(SourceSet* sources, CandidatePool* pool,
                 std::optional<TerminationReason>* bar) {
  bool any = false;
  const size_t m = sources->num_predicates();
  for (PredicateId i = 0; i < m; ++i) {
    if (sources->exhausted(i)) continue;
    if (BudgetBarred(*sources, i)) {
      *bar = BudgetBarReason(sources, i);
      return any;
    }
    const std::optional<SortedHit> hit = sources->SortedAccess(i);
    if (!hit.has_value()) continue;
    any = true;
    Candidate& c = pool->GetOrCreate(hit->object);
    if (!c.IsEvaluated(i)) c.SetScore(i, hit->score);
  }
  return any;
}

// The classic halting test: true when the k-th best lower bound dominates
// every other candidate's upper bound and the unseen ceiling. On success
// fills `out` with the winners (scores = lower bounds at halt).
bool SetOnlyHalted(const SourceSet& sources, CandidatePool& pool,
                   BoundEvaluator& bounds, size_t k, TopKResult* out) {
  const size_t m = sources.num_predicates();
  std::vector<Score> ceilings(m);
  for (PredicateId i = 0; i < m; ++i) ceilings[i] = sources.last_seen(i);

  struct State {
    ObjectId object;
    Score lower;
    Score upper;
  };
  std::vector<State> states;
  states.reserve(pool.size());
  for (Candidate& c : pool) {
    states.push_back(
        State{c.id, bounds.Lower(c), bounds.Upper(c, ceilings)});
  }
  if (states.size() < k) return false;

  // Top-k by lower bound (ties by ObjectId, descending).
  std::partial_sort(states.begin(), states.begin() + k, states.end(),
                    [](const State& a, const State& b) {
                      if (a.lower != b.lower) return a.lower > b.lower;
                      return a.object > b.object;
                    });
  const Score kth_lower = states[k - 1].lower;

  // Unseen objects are capped by F(l).
  const bool unseen_possible = pool.size() < sources.num_objects();
  if (unseen_possible) {
    const Score unseen_cap = bounds.scoring().Evaluate(ceilings);
    if (unseen_cap > kth_lower) return false;
  }
  for (size_t idx = k; idx < states.size(); ++idx) {
    if (states[idx].upper > kth_lower) return false;
  }
  out->entries.clear();
  for (size_t idx = 0; idx < k; ++idx) {
    out->entries.push_back(TopKEntry{states[idx].object, states[idx].lower});
  }
  return true;
}

// Exact-score halting (Theorem 1 shape): true when the k best candidates
// by upper bound are all complete; fills `out` with their exact scores.
bool ExactHalted(const SourceSet& sources, CandidatePool& pool,
                 BoundEvaluator& bounds, size_t k, TopKResult* out) {
  const size_t m = sources.num_predicates();
  std::vector<Score> ceilings(m);
  for (PredicateId i = 0; i < m; ++i) ceilings[i] = sources.last_seen(i);

  struct State {
    ObjectId object;
    Score upper;
    bool complete;
  };
  std::vector<State> states;
  states.reserve(pool.size());
  for (Candidate& c : pool) {
    states.push_back(
        State{c.id, bounds.Upper(c, ceilings), c.IsComplete(m)});
  }
  const size_t take = std::min(k, states.size());
  if (take == 0) return false;
  std::partial_sort(states.begin(), states.begin() + take, states.end(),
                    [](const State& a, const State& b) {
                      if (a.upper != b.upper) return a.upper > b.upper;
                      return a.object > b.object;
                    });
  const bool unseen_possible = pool.size() < sources.num_objects();
  if (unseen_possible) {
    // An unseen object could still outrank the k-th candidate.
    const Score unseen_cap = bounds.scoring().Evaluate(ceilings);
    if (states.size() < k || unseen_cap > states[take - 1].upper) {
      return false;
    }
  }
  for (size_t idx = 0; idx < take; ++idx) {
    if (!states[idx].complete) return false;
  }
  out->entries.clear();
  for (size_t idx = 0; idx < take; ++idx) {
    out->entries.push_back(TopKEntry{states[idx].object, states[idx].upper});
  }
  return true;
}

}  // namespace

Status RunNRA(SourceSet* sources, const ScoringFunction& scoring, size_t k,
              NRAMode mode, TopKResult* out) {
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(RequireUniformCapabilities(*sources, /*need_sorted=*/true,
                                                /*need_random=*/false, "NRA"));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const size_t m = sources->num_predicates();
  CandidatePool pool(m);
  BoundEvaluator bounds(&scoring);

  while (true) {
    std::optional<TerminationReason> bar;
    const bool live = SortedRound(sources, &pool, &bar);
    const bool halted =
        mode == NRAMode::kSetOnly
            ? SetOnlyHalted(*sources, pool, bounds, k, out)
            : ExactHalted(*sources, pool, bounds, k, out);
    if (halted) return Status::OK();
    if (bar.has_value()) {
      // The budget bars further reads and the halting test has not
      // fired: settle with a certified answer over the current bounds.
      std::vector<Score> ceilings(m);
      for (PredicateId i = 0; i < m; ++i) {
        ceilings[i] = sources->last_seen(i);
      }
      std::vector<CertifiedRow> rows;
      PoolCertifiedRows(pool, bounds, ceilings, &rows);
      const Score unseen = pool.size() < sources->num_objects()
                               ? scoring.Evaluate(ceilings)
                               : kMinScore;
      BuildCertifiedResult(rows, unseen, k, *bar, out);
      return Status::OK();
    }
    if (!live) {
      // Streams drained: every candidate is complete; rank them directly.
      TopKCollector collector(k);
      for (Candidate& c : pool) {
        collector.Offer(c.id, bounds.Exact(c));
      }
      *out = collector.Take();
      return Status::OK();
    }
  }
}

}  // namespace nc
