// Framework NC: the paper's core contribution (Section 6).
//
// The engine iterates Theorem 1's loop:
//   1. Maintain K_P, the current top-k objects by maximal-possible score
//      F-bar (lazy bound heap; the virtual `unseen` object stands for all
//      objects not yet returned by any sorted access).
//   2. If every member of K_P is completely evaluated, halt: K_P is the
//      final answer with exact scores.
//   3. Otherwise the highest-ranked incomplete member v_j designates an
//      unsatisfied scoring task; its necessary choices N_j (Definition 2)
//      are exactly the supported accesses that can determine one of v_j's
//      undetermined predicates. A pluggable SelectPolicy picks one; the
//      engine performs it and loops.
//
// Necessary-choice completeness (the argument behind Theorem 2) guarantees
// that restricting selection to N_j loses no optimality; the policy is
// where cost-based optimization plugs in (core/srg_policy.h implements the
// SR/G heuristics, core/optimizer.h searches their parameter space).

#ifndef NC_CORE_ENGINE_H_
#define NC_CORE_ENGINE_H_

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "access/access.h"
#include "access/source.h"
#include "common/score.h"
#include "common/status.h"
#include "core/bound_heap.h"
#include "core/candidate.h"
#include "core/result.h"
#include "core/topk_collector.h"
#include "scoring/scoring_function.h"

namespace nc::obs {
class Histogram;
class MetricsRegistry;
class Profiler;
class QueryTracer;
}  // namespace nc::obs

namespace nc {

struct EngineCheckpoint;  // core/checkpoint.h

// Read-only context handed to SelectPolicy::Select.
struct EngineView {
  const SourceSet* sources = nullptr;
  const ScoringFunction* scoring = nullptr;
  size_t k = 0;
  // The object whose unsatisfied task induced the alternatives;
  // kUnseenObject when it is the virtual unseen object.
  ObjectId target = 0;
  // Score state of the target (nullptr for the unseen object).
  const Candidate* target_state = nullptr;
};

// Access-selection strategy: the one degree of freedom Framework NC leaves
// open. Select must return one of the offered alternatives.
class SelectPolicy {
 public:
  virtual ~SelectPolicy() = default;

  // Called once per Run before the first Select.
  virtual void Reset(const SourceSet& sources) { (void)sources; }

  virtual Access Select(std::span<const Access> alternatives,
                        const EngineView& view) = 0;

  // --- Checkpoint support ----------------------------------------------
  // Policies with mutable per-run state (cursors, RNG streams) override
  // this pair so EngineCheckpoint can capture and restore it. The string
  // is opaque to the engine; it must be newline-free. Stateless policies
  // keep the defaults: save nothing, accept only nothing.
  virtual std::string SaveState() const { return ""; }
  virtual Status RestoreState(const std::string& state) {
    if (!state.empty()) {
      return Status::InvalidArgument("policy carries no per-run state");
    }
    return Status::OK();
  }
};

struct EngineOptions {
  size_t k = 1;

  // Under no-wild-guesses (the standard middleware restriction, [9]) an
  // object can be random-accessed only after a sorted access has seen it;
  // the engine tracks unseen objects through a virtual sentinel. With the
  // flag off - or whenever the scenario has no sorted access at all
  // (MPro's probe-only setting) - the object universe is known up front
  // and every object starts as a candidate.
  bool no_wild_guesses = true;

  // Optional hard cap on accesses; 0 means "only the internal runaway
  // guard". The budget applies to each Run or Extend phase separately (an
  // Extend starts with a fresh budget). Exceeding it returns
  // ResourceExhausted.
  size_t max_accesses = 0;

  // Theta-approximation (Fagin's relaxation): with theta > 1 the engine
  // may halt once it holds k completely evaluated objects y_1..y_k such
  // that theta * score(y_k) dominates the maximal-possible score of every
  // other object - every returned object is within a factor theta of
  // anything it displaced. theta = 1 (the default) is the exact
  // semantics. Exactness of the produced answer is reported through
  // NCEngine::last_run_exact().
  double approximation_theta = 1.0;

  // With best_effort set, exhausting max_accesses returns OK and the
  // *current* top-k by maximal-possible score - an anytime answer whose
  // reported scores are upper bounds. NCEngine::last_run_exact()
  // distinguishes such approximate answers from completed ones. (The
  // k-th reported bound always dominates the true k-th score, so the
  // answer degrades gracefully with the budget.)
  bool best_effort = false;

  // Graceful degradation under source failure (access/fault.h). When an
  // access fails unrecoverably (kUnavailable: retries exhausted or the
  // source died), the engine re-derives the necessary choices against the
  // surviving capabilities and keeps going; if a scoring task becomes
  // unsatisfiable because of a death, it returns OK with the current
  // top-k by maximal-possible score through the best-effort machinery
  // (last_run_exact() false) instead of failing. With the flag off, the
  // first unrecovered failure surfaces as a kUnavailable error. Runs
  // without fault injection never hit either path.
  bool tolerate_source_failure = true;

  // Invoked after every performed access with the running access count;
  // used by the adaptive executor to re-optimize mid-flight.
  std::function<void(size_t)> access_callback;

  // --- Observability (see docs/OBSERVABILITY.md) -----------------------
  // Optional tracer (must outlive the engine). The engine brackets each
  // Run/Extend in a phase span and records one kIteration event per
  // performed access: the chosen target, the necessary-choice width, the
  // ceiling threshold theta, the k-th bound, and the heap size. Access
  // events themselves come from the SourceSet's tracer - attach the same
  // tracer to both for a complete timeline. nullptr (the default) and a
  // disabled tracer cost one branch per iteration.
  obs::QueryTracer* tracer = nullptr;

  // Optional metrics registry (must outlive the engine): run/access
  // totals and the choice-width histogram, labeled {algorithm="NC"}.
  obs::MetricsRegistry* metrics = nullptr;

  // Optional profiler (must outlive the engine; obs/profiler.h). The
  // engine bills candidate-heap maintenance and certificate construction
  // to their cost centers; access-level centers come from the SourceSet's
  // profiler - attach the same profiler to both for a complete breakdown.
  // nullptr (the default) costs one branch per scope.
  obs::Profiler* profiler = nullptr;
};

class NCEngine {
 public:
  // All pointers must outlive the engine. `policy` may be shared across
  // runs; it is Reset at the start of each Run.
  NCEngine(SourceSet* sources, const ScoringFunction* scoring,
           SelectPolicy* policy, EngineOptions options);

  NCEngine(const NCEngine&) = delete;
  NCEngine& operator=(const NCEngine&) = delete;

  // Executes the query against the sources' current state. On OK, *out
  // holds min(k, n) completely evaluated entries in final rank order.
  Status Run(TopKResult* out);

  // Progressive retrieval: after a successful Run, widens the answer to
  // the top new_k (>= the previous k) by continuing from the engine's
  // current score state - no access already performed is repeated, and
  // only the extra scoring tasks are paid for. May be called repeatedly
  // with growing k, and each Extend gets a fresh max_accesses budget.
  //
  // Extend requires a *completed* prior answer: if the last Run/Extend was
  // truncated (best-effort budget exhaustion or source-failure
  // degradation, see last_run_truncated()), the score state does not
  // describe a finished top-k and Extend returns FailedPrecondition -
  // re-Run instead. Extending a theta-approximate answer is legal.
  Status Extend(size_t new_k, TopKResult* out);

  // --- Checkpoint / resume (core/checkpoint.h) -------------------------
  // Snapshots the full mid-query state: candidate bounds, heap entries,
  // counters, policy state, and the SourceSet (cursors, last-seen
  // bounds, accrued cost, injector state, RNG streams). Legal whenever
  // the engine is between iterations - in practice from the
  // access_callback (the heap is whole there) or after a Run returns.
  EngineCheckpoint Checkpoint() const;

  // Continues a checkpointed run on a *freshly configured* engine: same
  // dataset/provider, scenario, scoring function, policy type and
  // config, and options as the engine that produced the checkpoint (only
  // `k` is taken from the checkpoint). The sources are restored in
  // place, so no already-paid access is re-issued, and the continuation
  // replays bit-identically to the uninterrupted run. Validation errors
  // (shape mismatch, malformed state) leave the engine unusable for
  // queries until a successful Run or Resume.
  Status Resume(const EngineCheckpoint& checkpoint, TopKResult* out);

  // Total accesses performed across Run and any Extends.
  size_t accesses_performed() const { return accesses_; }

  // False iff the last Run/Extend returned an approximate answer: a
  // best-effort (budget-capped or degraded) one, or a theta-approximate
  // one.
  bool last_run_exact() const { return last_run_exact_; }

  // True iff the last Run/Extend stopped early with a best-effort answer
  // (budget exhausted or sources failed) - such an answer cannot be
  // Extended. Theta-approximate answers are complete, not truncated.
  bool last_run_truncated() const { return last_run_truncated_; }

  // True iff the last Run/Extend hit an unrecoverable source failure and
  // finished in degraded mode (whether or not the final answer still
  // completed exactly on the surviving capabilities).
  bool last_run_degraded() const { return last_run_degraded_; }

  // Mean size of the necessary-choice sets offered to the policy - the
  // specificity metric Section 6.2 contrasts against TG's O(n*m)-wide
  // pools (never exceeds 2m here).
  double mean_choice_width() const {
    return accesses_ == 0
               ? 0.0
               : choice_width_total_ / static_cast<double>(accesses_);
  }

 private:
  // Theorem 1's iteration, shared by Run and Extend: work unsatisfied
  // tasks until the current top-k are all complete.
  Status Loop(TopKResult* out);

  // Wraps Loop in a tracer phase span and records run-level metrics.
  Status InstrumentedLoop(const char* phase, TopKResult* out);

  // Returns the current bound of `u` (nullopt retires the unseen sentinel
  // once everything is seen).
  std::optional<Score> CurrentBound(ObjectId u);

  // Fills `alternatives_` with the necessary choices for `target`
  // (Definition 2) in deterministic order: sorted accesses by predicate,
  // then random accesses by predicate. Dead sources offer nothing, so a
  // mid-run death re-derives the choices automatically.
  void BuildAlternatives(ObjectId target);

  // Performs `access`, updating candidates and the heap. kUnavailable
  // when the access failed unrecoverably (no state was consumed).
  Status Perform(const Access& access);

  // Emits the current top-k by maximal-possible score into *out with an
  // AnytimeCertificate: per-object [lower, upper] score intervals and
  // the proven precision bound epsilon against everything excluded
  // (including the unseen remainder). Scores are upper bounds; the
  // unseen sentinel never appears as an entry. Flags the run truncated.
  void EmitCertified(TerminationReason reason, TopKResult* out);

  SourceSet* sources_;
  const ScoringFunction* scoring_;
  SelectPolicy* policy_;
  EngineOptions options_;

  CandidatePool pool_;
  BoundEvaluator bounds_;
  LazyBoundHeap heap_;
  // Best complete candidates so far; drives the theta-halting test.
  // Engaged only when approximation_theta > 1.
  std::optional<TopKCollector> complete_topk_;
  std::vector<Score> ceilings_;
  std::vector<Access> alternatives_;
  std::vector<LazyBoundHeap::Entry> topk_scratch_;
  size_t accesses_ = 0;
  // Accesses performed in the current Run/Extend phase; the max_accesses
  // budget is charged against this, not the cumulative count.
  size_t phase_accesses_ = 0;
  // Consecutive unrecovered access failures; guards against livelock when
  // sources flake persistently without dying.
  size_t consecutive_failures_ = 0;
  double choice_width_total_ = 0.0;
  // Set by BuildAlternatives when a quota-spent predicate was withheld
  // from the offered choices; empty alternatives then certify as kQuota.
  bool skipped_quota_ = false;
  bool universe_seeded_ = false;
  bool has_run_ = false;
  bool last_run_exact_ = true;
  bool last_run_truncated_ = false;
  bool last_run_degraded_ = false;
};

// Convenience wrapper: constructs an engine and runs the query once.
Status RunNC(SourceSet* sources, const ScoringFunction* scoring,
             SelectPolicy* policy, const EngineOptions& options,
             TopKResult* out);

}  // namespace nc

#endif  // NC_CORE_ENGINE_H_
