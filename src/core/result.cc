#include "core/result.h"

#include <sstream>

namespace nc {

std::string TopKResult::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) os << " ";
    os << "u" << entries[i].object << ":" << entries[i].score;
  }
  return os.str();
}

}  // namespace nc
