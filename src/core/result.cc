#include "core/result.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "core/rank_order.h"

namespace nc {

const char* TerminationReasonName(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kCostBudget:
      return "CostBudget";
    case TerminationReason::kDeadline:
      return "Deadline";
    case TerminationReason::kQuota:
      return "Quota";
    case TerminationReason::kSourceFailure:
      return "SourceFailure";
    case TerminationReason::kAccessCap:
      return "AccessCap";
    case TerminationReason::kTheta:
      return "Theta";
  }
  return "Unknown";
}

double CertifiedEpsilon(Score min_lower, Score excluded_ceiling) {
  if (excluded_ceiling <= 0.0) return 0.0;
  if (min_lower <= 0.0) return std::numeric_limits<double>::infinity();
  const double epsilon = excluded_ceiling / min_lower - 1.0;
  return epsilon > 0.0 ? epsilon : 0.0;
}

std::string AnytimeCertificate::ToString() const {
  std::ostringstream os;
  os << TerminationReasonName(reason) << " eps=";
  if (std::isinf(epsilon)) {
    os << "inf";
  } else {
    os << epsilon;
  }
  os << " excluded<=" << excluded_ceiling;
  return os.str();
}

std::string TopKResult::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) os << " ";
    os << "u" << entries[i].object << ":" << entries[i].score;
  }
  if (certificate.has_value()) {
    if (!entries.empty()) os << " ";
    os << "[" << certificate->ToString() << "]";
  }
  return os.str();
}

void BuildCertifiedResult(const std::vector<CertifiedRow>& rows,
                          Score unseen_ceiling, size_t k,
                          TerminationReason reason, TopKResult* out) {
  NC_CHECK(out != nullptr);
  std::vector<CertifiedRow> ranked = rows;
  std::sort(ranked.begin(), ranked.end(),
            [](const CertifiedRow& a, const CertifiedRow& b) {
              return RanksAbove(a.upper, a.object, b.upper, b.object);
            });

  out->entries.clear();
  AnytimeCertificate certificate;
  certificate.reason = reason;
  certificate.excluded_ceiling = unseen_ceiling;

  Score min_lower = kMaxScore;
  const size_t taken = std::min(k, ranked.size());
  for (size_t i = 0; i < taken; ++i) {
    const CertifiedRow& row = ranked[i];
    NC_DCHECK(row.lower <= row.upper);
    out->entries.push_back({row.object, row.upper});
    certificate.intervals.push_back({row.lower, row.upper});
    min_lower = std::min(min_lower, row.lower);
  }
  for (size_t i = taken; i < ranked.size(); ++i) {
    certificate.excluded_ceiling =
        std::max(certificate.excluded_ceiling, ranked[i].upper);
  }
  if (taken == 0) min_lower = kMinScore;
  certificate.epsilon =
      CertifiedEpsilon(min_lower, certificate.excluded_ceiling);
  out->certificate = certificate;
}

}  // namespace nc
