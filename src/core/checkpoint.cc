#include "core/checkpoint.h"

#include <sstream>

#include "access/trace_format.h"
#include "common/check.h"
#include "common/numeric.h"

namespace nc {

namespace {

// C hexfloat: byte-exact double round-trips, inf included. Locale-safe
// (common/numeric.h): printf("%a") would emit "0x1,8p+1" under a
// comma-decimal locale and strtod would truncate it on the way back.
std::string HexDouble(double v) { return FormatHexDouble(v); }

bool ParseU64(const std::string& token, uint64_t* out) {
  return ParseUInt64(token, out);
}

bool ParseF64(const std::string& token, double* out) {
  return ParseDouble(token, out);
}

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed checkpoint: " + what);
}

// Emits the fixed-order `key value` lines (bare key when the value is
// empty, so empty strings round-trip).
class Writer {
 public:
  void Line(const char* key, const std::string& value) {
    os_ << key;
    if (!value.empty()) os_ << ' ' << value;
    os_ << '\n';
  }
  void UInt(const char* key, uint64_t v) { Line(key, std::to_string(v)); }
  void Double(const char* key, double v) { Line(key, HexDouble(v)); }
  void Bool(const char* key, bool v) { Line(key, v ? "1" : "0"); }

  void UIntVec(const char* key, const std::vector<size_t>& values) {
    std::ostringstream v;
    v << values.size();
    for (size_t x : values) v << ' ' << x;
    Line(key, v.str());
  }
  void DoubleVec(const char* key, const std::vector<double>& values) {
    std::ostringstream v;
    v << values.size();
    for (double x : values) v << ' ' << HexDouble(x);
    Line(key, v.str());
  }
  void BoolVec(const char* key, const std::vector<bool>& values) {
    std::ostringstream v;
    v << values.size();
    for (bool x : values) v << ' ' << (x ? 1 : 0);
    Line(key, v.str());
  }
  template <typename A, typename B>
  void PairVec(const char* key, const std::vector<std::pair<A, B>>& values) {
    std::ostringstream v;
    v << values.size();
    for (const auto& [a, b] : values) {
      v << ' ' << static_cast<uint64_t>(a) << ' ' << static_cast<uint64_t>(b);
    }
    Line(key, v.str());
  }

  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

// Consumes the same fixed-order lines. Every accessor returns a Status so
// truncation and key mismatches surface with the expected key named.
class Parser {
 public:
  explicit Parser(const std::string& text) : in_(text) {}

  Status Expect(const char* key, std::string* value) {
    std::string line;
    if (!std::getline(in_, line)) {
      return Malformed(std::string("truncated before '") + key + "'");
    }
    const std::string k(key);
    if (line == k) {
      value->clear();
      return Status::OK();
    }
    if (line.size() > k.size() && line.compare(0, k.size(), k) == 0 &&
        line[k.size()] == ' ') {
      *value = line.substr(k.size() + 1);
      return Status::OK();
    }
    return Malformed(std::string("expected '") + key + "', got '" + line +
                     "'");
  }

  Status UInt(const char* key, uint64_t* out) {
    std::string value;
    NC_RETURN_IF_ERROR(Expect(key, &value));
    if (!ParseU64(value, out)) return Malformed(std::string(key));
    return Status::OK();
  }

  Status Double(const char* key, double* out) {
    std::string value;
    NC_RETURN_IF_ERROR(Expect(key, &value));
    if (!ParseF64(value, out)) return Malformed(std::string(key));
    return Status::OK();
  }

  Status Bool(const char* key, bool* out) {
    uint64_t v = 0;
    NC_RETURN_IF_ERROR(UInt(key, &v));
    if (v > 1) return Malformed(std::string(key) + " is not a flag");
    *out = v == 1;
    return Status::OK();
  }

  // Splits a counted-vector value into its raw tokens.
  Status Tokens(const char* key, std::vector<std::string>* out,
                size_t per_element = 1) {
    std::string value;
    NC_RETURN_IF_ERROR(Expect(key, &value));
    std::istringstream tokens(value);
    std::string count_token;
    uint64_t count = 0;
    if (!(tokens >> count_token) || !ParseU64(count_token, &count)) {
      return Malformed(std::string(key) + " count");
    }
    out->clear();
    std::string token;
    while (tokens >> token) out->push_back(token);
    if (out->size() != count * per_element) {
      return Malformed(std::string(key) + " element count");
    }
    return Status::OK();
  }

  Status UIntVec(const char* key, std::vector<size_t>* out) {
    std::vector<std::string> tokens;
    NC_RETURN_IF_ERROR(Tokens(key, &tokens));
    out->clear();
    for (const std::string& t : tokens) {
      uint64_t v = 0;
      if (!ParseU64(t, &v)) return Malformed(std::string(key));
      out->push_back(static_cast<size_t>(v));
    }
    return Status::OK();
  }

  Status DoubleVec(const char* key, std::vector<double>* out) {
    std::vector<std::string> tokens;
    NC_RETURN_IF_ERROR(Tokens(key, &tokens));
    out->clear();
    for (const std::string& t : tokens) {
      double v = 0.0;
      if (!ParseF64(t, &v)) return Malformed(std::string(key));
      out->push_back(v);
    }
    return Status::OK();
  }

  Status BoolVec(const char* key, std::vector<bool>* out) {
    std::vector<std::string> tokens;
    NC_RETURN_IF_ERROR(Tokens(key, &tokens));
    out->clear();
    for (const std::string& t : tokens) {
      uint64_t v = 0;
      if (!ParseU64(t, &v) || v > 1) return Malformed(std::string(key));
      out->push_back(v == 1);
    }
    return Status::OK();
  }

  template <typename A, typename B>
  Status PairVec(const char* key, std::vector<std::pair<A, B>>* out) {
    std::vector<std::string> tokens;
    NC_RETURN_IF_ERROR(Tokens(key, &tokens, 2));
    out->clear();
    for (size_t i = 0; i < tokens.size(); i += 2) {
      uint64_t a = 0;
      uint64_t b = 0;
      if (!ParseU64(tokens[i], &a) || !ParseU64(tokens[i + 1], &b)) {
        return Malformed(std::string(key));
      }
      out->emplace_back(static_cast<A>(a), static_cast<B>(b));
    }
    return Status::OK();
  }

  Status ReadLine(std::string* line, const char* context) {
    if (!std::getline(in_, *line)) {
      return Malformed(std::string("truncated in ") + context);
    }
    return Status::OK();
  }

  bool AtEnd() {
    return in_.peek() == std::char_traits<char>::eof();
  }

 private:
  std::istringstream in_;
};

}  // namespace

std::string SerializeCheckpoint(const EngineCheckpoint& ck) {
  Writer w;
  w.Line("ncckpt", std::to_string(ck.version));
  w.UInt("k", ck.k);
  w.UInt("m", ck.num_predicates);
  w.UInt("n", ck.num_objects);
  w.UInt("accesses", ck.accesses);
  w.UInt("phase_accesses", ck.phase_accesses);
  w.UInt("consecutive_failures", ck.consecutive_failures);
  w.Double("choice_width_total", ck.choice_width_total);
  w.Bool("universe_seeded", ck.universe_seeded);
  {
    std::ostringstream v;
    v << (ck.has_complete_topk ? 1 : 0) << ' ' << ck.complete_topk.size();
    for (const TopKEntry& e : ck.complete_topk) {
      v << ' ' << e.object << ' ' << HexDouble(e.score);
    }
    w.Line("complete_topk", v.str());
  }
  w.UInt("pool", ck.pool.size());
  for (const CandidateCheckpoint& c : ck.pool) {
    std::ostringstream v;
    v << c.object << ' ' << c.mask;
    for (Score s : c.scores) v << ' ' << HexDouble(s);
    w.Line("cand", v.str());
  }
  {
    std::ostringstream v;
    v << ck.heap.size();
    for (const LazyBoundHeap::Entry& e : ck.heap) {
      v << ' ' << e.object << ' ' << HexDouble(e.bound);
    }
    w.Line("heap", v.str());
  }
  w.Line("policy", ck.policy_state);

  const SourceCheckpoint& src = ck.sources;
  w.UIntVec("src_positions", src.positions);
  w.DoubleVec("src_last_seen", src.last_seen);
  w.Double("src_accrued_cost", src.accrued_cost);
  w.Double("src_last_penalty", src.last_access_penalty);
  w.Double("src_total_penalty", src.total_penalty);
  w.PairVec("src_probed", src.probed);
  w.DoubleVec("src_sorted_cost", src.sorted_cost);
  w.DoubleVec("src_random_cost", src.random_cost);
  w.BoolVec("src_source_down", src.source_down);
  w.UIntVec("src_breaker_consecutive", src.breaker_consecutive);
  w.BoolVec("src_breaker_open", src.breaker_open);
  w.DoubleVec("src_breaker_open_until", src.breaker_open_until);
  w.Line("src_latency_rng", src.latency_rng_state);
  w.Line("src_retry_rng", src.retry_rng_state);
  w.Bool("src_has_injector", src.has_injector);
  w.Line("src_injector_rng", src.injector_rng_state);
  w.PairVec("src_injector_attempts", src.injector_attempts);
  w.PairVec("src_injector_scripts", src.injector_script_pos);
  w.Bool("src_trace_enabled", src.trace_enabled);
  w.Line("src_attempt_trace", SerializeAttemptTrace(src.attempt_trace));

  const AccessStats& stats = src.stats;
  w.UIntVec("stats_sorted_count", stats.sorted_count);
  w.UIntVec("stats_random_count", stats.random_count);
  w.DoubleVec("stats_sorted_cost", stats.sorted_cost_accrued);
  w.DoubleVec("stats_random_cost", stats.random_cost_accrued);
  w.UInt("stats_duplicate_random", stats.duplicate_random_count);
  w.UIntVec("stats_retried", stats.retried_attempts);
  w.UInt("stats_transient", stats.transient_failures);
  w.UInt("stats_timeout", stats.timeout_failures);
  w.UInt("stats_abandoned", stats.abandoned_accesses);
  w.UInt("stats_deaths", stats.source_deaths);
  w.UIntVec("stats_breaker_trips", stats.breaker_trips);
  w.UInt("stats_breaker_fast_failures", stats.breaker_fast_failures);
  w.UInt("stats_budget_refusals", stats.budget_refusals);
  w.UInt("stats_replica_failovers", stats.replica_failovers);
  w.UInt("stats_hedges_issued", stats.hedges_issued);
  w.UInt("stats_hedge_wins", stats.hedge_wins);

  // --- Replica fleet (version 2) ---------------------------------------
  const ReplicaFleetState& fleet = src.fleet_state;
  w.Bool("src_has_fleet", src.has_fleet);
  w.Line("fleet_latency_rng", fleet.latency_rng_state);
  w.PairVec("fleet_rr_cursors", fleet.rr_cursors);
  w.UInt("fleet_slots", fleet.slots.size());
  for (const ReplicaSlotState& slot : fleet.slots) {
    const ReplicaRuntime& rt = slot.runtime;
    std::ostringstream v;
    v << slot.predicate << ' ' << slot.replica << ' '
      << rt.breaker_consecutive << ' ' << (rt.breaker_open ? 1 : 0) << ' '
      << HexDouble(rt.breaker_open_until) << ' ' << (rt.dead ? 1 : 0) << ' '
      << (rt.has_ewma ? 1 : 0) << ' ' << HexDouble(rt.ewma_latency) << ' '
      << rt.served << ' ' << rt.failovers << ' ' << rt.breaker_trips << ' '
      << rt.hedges_issued << ' ' << rt.hedge_wins << ' '
      << HexDouble(rt.cost_accrued) << ' ' << rt.latency_count << ' '
      << HexDouble(rt.latency_sum) << ' ' << HexDouble(rt.latency_min) << ' '
      << HexDouble(rt.latency_max) << ' ' << slot.injector_attempts << ' '
      << slot.injector_script_pos;
    w.Line("fleet_slot", v.str());
    w.Line("fleet_slot_rng", slot.injector_rng_state);
  }
  return w.str();
}

Status ParseCheckpoint(const std::string& text, EngineCheckpoint* out) {
  NC_CHECK(out != nullptr);
  Parser p(text);
  EngineCheckpoint ck;
  uint64_t version = 0;
  NC_RETURN_IF_ERROR(p.UInt("ncckpt", &version));
  if (version != kEngineCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  ck.version = static_cast<uint32_t>(version);
  uint64_t u = 0;
  NC_RETURN_IF_ERROR(p.UInt("k", &u));
  ck.k = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UInt("m", &u));
  ck.num_predicates = static_cast<size_t>(u);
  if (ck.num_predicates == 0 || ck.num_predicates > 64) {
    return Malformed("predicate count out of range");
  }
  NC_RETURN_IF_ERROR(p.UInt("n", &u));
  ck.num_objects = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UInt("accesses", &u));
  ck.accesses = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UInt("phase_accesses", &u));
  ck.phase_accesses = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UInt("consecutive_failures", &u));
  ck.consecutive_failures = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.Double("choice_width_total", &ck.choice_width_total));
  NC_RETURN_IF_ERROR(p.Bool("universe_seeded", &ck.universe_seeded));

  {
    std::string value;
    NC_RETURN_IF_ERROR(p.Expect("complete_topk", &value));
    std::istringstream tokens(value);
    std::string token;
    uint64_t has = 0;
    uint64_t count = 0;
    if (!(tokens >> token) || !ParseU64(token, &has) || has > 1 ||
        !(tokens >> token) || !ParseU64(token, &count)) {
      return Malformed("complete_topk header");
    }
    ck.has_complete_topk = has == 1;
    for (uint64_t i = 0; i < count; ++i) {
      std::string score_token;
      uint64_t object = 0;
      double score = 0.0;
      if (!(tokens >> token >> score_token) || !ParseU64(token, &object) ||
          !ParseF64(score_token, &score)) {
        return Malformed("complete_topk entry");
      }
      ck.complete_topk.push_back(
          TopKEntry{static_cast<ObjectId>(object), score});
    }
    if (tokens >> token) return Malformed("complete_topk trailing tokens");
  }

  uint64_t pool_count = 0;
  NC_RETURN_IF_ERROR(p.UInt("pool", &pool_count));
  ck.pool.reserve(static_cast<size_t>(pool_count));
  for (uint64_t c = 0; c < pool_count; ++c) {
    std::string line;
    NC_RETURN_IF_ERROR(p.ReadLine(&line, "pool"));
    std::istringstream tokens(line);
    std::string token;
    if (!(tokens >> token) || token != "cand") {
      return Malformed("expected 'cand' line");
    }
    CandidateCheckpoint cand;
    uint64_t object = 0;
    uint64_t mask = 0;
    std::string object_token;
    std::string mask_token;
    if (!(tokens >> object_token >> mask_token) ||
        !ParseU64(object_token, &object) || !ParseU64(mask_token, &mask)) {
      return Malformed("cand header");
    }
    cand.object = static_cast<ObjectId>(object);
    cand.mask = mask;
    if (ck.num_predicates < 64 && (mask >> ck.num_predicates) != 0) {
      return Malformed("cand mask names unknown predicates");
    }
    const int bits = __builtin_popcountll(mask);
    for (int b = 0; b < bits; ++b) {
      double score = 0.0;
      if (!(tokens >> token) || !ParseF64(token, &score)) {
        return Malformed("cand score");
      }
      cand.scores.push_back(score);
    }
    if (tokens >> token) return Malformed("cand trailing tokens");
    ck.pool.push_back(std::move(cand));
  }

  {
    std::vector<std::string> tokens;
    NC_RETURN_IF_ERROR(p.Tokens("heap", &tokens, 2));
    for (size_t i = 0; i < tokens.size(); i += 2) {
      uint64_t object = 0;
      double bound = 0.0;
      if (!ParseU64(tokens[i], &object) || !ParseF64(tokens[i + 1], &bound)) {
        return Malformed("heap entry");
      }
      ck.heap.push_back(
          LazyBoundHeap::Entry{bound, static_cast<ObjectId>(object)});
    }
  }
  NC_RETURN_IF_ERROR(p.Expect("policy", &ck.policy_state));

  SourceCheckpoint& src = ck.sources;
  NC_RETURN_IF_ERROR(p.UIntVec("src_positions", &src.positions));
  NC_RETURN_IF_ERROR(p.DoubleVec("src_last_seen", &src.last_seen));
  NC_RETURN_IF_ERROR(p.Double("src_accrued_cost", &src.accrued_cost));
  NC_RETURN_IF_ERROR(p.Double("src_last_penalty", &src.last_access_penalty));
  NC_RETURN_IF_ERROR(p.Double("src_total_penalty", &src.total_penalty));
  NC_RETURN_IF_ERROR(p.PairVec("src_probed", &src.probed));
  NC_RETURN_IF_ERROR(p.DoubleVec("src_sorted_cost", &src.sorted_cost));
  NC_RETURN_IF_ERROR(p.DoubleVec("src_random_cost", &src.random_cost));
  NC_RETURN_IF_ERROR(p.BoolVec("src_source_down", &src.source_down));
  NC_RETURN_IF_ERROR(
      p.UIntVec("src_breaker_consecutive", &src.breaker_consecutive));
  NC_RETURN_IF_ERROR(p.BoolVec("src_breaker_open", &src.breaker_open));
  NC_RETURN_IF_ERROR(
      p.DoubleVec("src_breaker_open_until", &src.breaker_open_until));
  NC_RETURN_IF_ERROR(p.Expect("src_latency_rng", &src.latency_rng_state));
  NC_RETURN_IF_ERROR(p.Expect("src_retry_rng", &src.retry_rng_state));
  NC_RETURN_IF_ERROR(p.Bool("src_has_injector", &src.has_injector));
  NC_RETURN_IF_ERROR(p.Expect("src_injector_rng", &src.injector_rng_state));
  NC_RETURN_IF_ERROR(
      p.PairVec("src_injector_attempts", &src.injector_attempts));
  NC_RETURN_IF_ERROR(
      p.PairVec("src_injector_scripts", &src.injector_script_pos));
  NC_RETURN_IF_ERROR(p.Bool("src_trace_enabled", &src.trace_enabled));
  {
    std::string value;
    NC_RETURN_IF_ERROR(p.Expect("src_attempt_trace", &value));
    NC_RETURN_IF_ERROR(ParseAttemptTrace(value, &src.attempt_trace));
  }

  AccessStats& stats = src.stats;
  NC_RETURN_IF_ERROR(p.UIntVec("stats_sorted_count", &stats.sorted_count));
  NC_RETURN_IF_ERROR(p.UIntVec("stats_random_count", &stats.random_count));
  NC_RETURN_IF_ERROR(
      p.DoubleVec("stats_sorted_cost", &stats.sorted_cost_accrued));
  NC_RETURN_IF_ERROR(
      p.DoubleVec("stats_random_cost", &stats.random_cost_accrued));
  NC_RETURN_IF_ERROR(p.UInt("stats_duplicate_random", &u));
  stats.duplicate_random_count = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UIntVec("stats_retried", &stats.retried_attempts));
  NC_RETURN_IF_ERROR(p.UInt("stats_transient", &u));
  stats.transient_failures = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UInt("stats_timeout", &u));
  stats.timeout_failures = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UInt("stats_abandoned", &u));
  stats.abandoned_accesses = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UInt("stats_deaths", &u));
  stats.source_deaths = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UIntVec("stats_breaker_trips", &stats.breaker_trips));
  NC_RETURN_IF_ERROR(p.UInt("stats_breaker_fast_failures", &u));
  stats.breaker_fast_failures = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UInt("stats_budget_refusals", &u));
  stats.budget_refusals = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UInt("stats_replica_failovers", &u));
  stats.replica_failovers = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UInt("stats_hedges_issued", &u));
  stats.hedges_issued = static_cast<size_t>(u);
  NC_RETURN_IF_ERROR(p.UInt("stats_hedge_wins", &u));
  stats.hedge_wins = static_cast<size_t>(u);

  ReplicaFleetState& fleet = src.fleet_state;
  NC_RETURN_IF_ERROR(p.Bool("src_has_fleet", &src.has_fleet));
  NC_RETURN_IF_ERROR(p.Expect("fleet_latency_rng", &fleet.latency_rng_state));
  NC_RETURN_IF_ERROR(p.PairVec("fleet_rr_cursors", &fleet.rr_cursors));
  uint64_t slot_count = 0;
  NC_RETURN_IF_ERROR(p.UInt("fleet_slots", &slot_count));
  fleet.slots.reserve(static_cast<size_t>(slot_count));
  for (uint64_t c = 0; c < slot_count; ++c) {
    std::string value;
    NC_RETURN_IF_ERROR(p.Expect("fleet_slot", &value));
    std::istringstream tokens(value);
    std::vector<std::string> fields;
    std::string token;
    while (tokens >> token) fields.push_back(token);
    if (fields.size() != 20) return Malformed("fleet_slot field count");
    ReplicaSlotState slot;
    ReplicaRuntime& rt = slot.runtime;
    size_t f = 0;
    const auto next_size = [&](size_t* out) {
      uint64_t v = 0;
      if (!ParseU64(fields[f++], &v)) return false;
      *out = static_cast<size_t>(v);
      return true;
    };
    const auto next_f64 = [&](double* out) {
      return ParseF64(fields[f++], out);
    };
    const auto next_flag = [&](bool* out) {
      uint64_t v = 0;
      if (!ParseU64(fields[f++], &v) || v > 1) return false;
      *out = v == 1;
      return true;
    };
    uint64_t predicate = 0;
    const bool ok = ParseU64(fields[f++], &predicate) &&
                    next_size(&slot.replica) &&
                    next_size(&rt.breaker_consecutive) &&
                    next_flag(&rt.breaker_open) &&
                    next_f64(&rt.breaker_open_until) && next_flag(&rt.dead) &&
                    next_flag(&rt.has_ewma) && next_f64(&rt.ewma_latency) &&
                    next_size(&rt.served) && next_size(&rt.failovers) &&
                    next_size(&rt.breaker_trips) &&
                    next_size(&rt.hedges_issued) &&
                    next_size(&rt.hedge_wins) && next_f64(&rt.cost_accrued) &&
                    next_size(&rt.latency_count) &&
                    next_f64(&rt.latency_sum) && next_f64(&rt.latency_min) &&
                    next_f64(&rt.latency_max) &&
                    next_size(&slot.injector_attempts) &&
                    next_size(&slot.injector_script_pos);
    if (!ok) return Malformed("fleet_slot entry");
    slot.predicate = static_cast<PredicateId>(predicate);
    NC_RETURN_IF_ERROR(
        p.Expect("fleet_slot_rng", &slot.injector_rng_state));
    fleet.slots.push_back(std::move(slot));
  }
  if (!p.AtEnd()) return Malformed("trailing content");
  *out = std::move(ck);
  return Status::OK();
}

}  // namespace nc
