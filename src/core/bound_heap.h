// Lazy max-heap over maximal-possible scores.
//
// Upper bounds in top-k processing only ever decrease (F is monotone, the
// last-seen scores l_i fall, and an exact score never exceeds the bound it
// replaces). The heap exploits this: cached priorities are stale-high, so
// the entry at the root is the true maximum iff its recomputed bound
// matches its cached one; otherwise it is reinserted with the fresh bound
// and the search continues. This is MPro's queue trick and gives
// O(log n) amortized top-k maintenance without global rescans.
//
// Each live object has exactly one entry; ties order by descending
// ObjectId (the library-wide deterministic tie-breaker), except that the
// virtual unseen object (id = kUnseenObject) ranks below any seen object
// with an equal bound - a hit object immediately surfaces above `unseen`
// (the paper's Figure 10).

#ifndef NC_CORE_BOUND_HEAP_H_
#define NC_CORE_BOUND_HEAP_H_

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "common/score.h"

namespace nc {

class LazyBoundHeap {
 public:
  struct Entry {
    Score bound = 0.0;
    ObjectId object = 0;
  };

  // Recomputes the current bound of an object; nullopt retires the entry
  // (used for the unseen sentinel once every object has been seen).
  // Must never return a value above the entry's cached bound.
  using BoundFn = std::function<std::optional<Score>(ObjectId)>;

  // Adds an entry. The caller guarantees the object is not already in the
  // heap.
  void Push(ObjectId object, Score bound);

  // Pops up to `k` entries in verified rank order (highest current bound
  // first) into `out` (cleared first). Popped entries leave the heap; put
  // them back with Reinsert. Returns the number of entries produced
  // (fewer than k only when the heap ran out).
  size_t PopTopK(size_t k, const BoundFn& bound_fn, std::vector<Entry>* out);

  // Returns previously popped entries to the heap.
  void Reinsert(std::span<const Entry> entries);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // The live entries in internal (heap-array) order, for checkpointing.
  // Behavior depends only on the *multiset* of entries (the comparator is
  // a strict total order), so re-Pushing these in any order reproduces
  // identical pop sequences.
  const std::vector<Entry>& entries() const { return heap_; }

 private:
  // std::push_heap/pop_heap over this comparator keep the max on top.
  static bool Before(const Entry& a, const Entry& b);

  std::vector<Entry> heap_;
};

}  // namespace nc

#endif  // NC_CORE_BOUND_HEAP_H_
