// A policy that picks uniformly at random among the necessary choices.
//
// Every run it produces is a valid NC algorithm (it never leaves the
// necessary-choice sets), which makes it the natural ablation baseline
// for cost-based optimization: the gap between RandomSelectPolicy's cost
// and the planner's plan is exactly what the optimizer buys over
// arbitrary-but-correct scheduling. It is also a fuzzing workhorse in the
// tests - random schedules explore engine states the deterministic
// policies never reach.

#ifndef NC_CORE_RANDOM_POLICY_H_
#define NC_CORE_RANDOM_POLICY_H_

#include "common/rng.h"
#include "core/engine.h"

namespace nc {

class RandomSelectPolicy final : public SelectPolicy {
 public:
  explicit RandomSelectPolicy(uint64_t seed) : seed_(seed), rng_(seed) {}

  // Re-seeds so that repeated Runs replay the same access sequence.
  void Reset(const SourceSet& sources) override {
    (void)sources;
    rng_ = Rng(seed_);
  }

  Access Select(std::span<const Access> alternatives,
                const EngineView& view) override {
    (void)view;
    NC_CHECK(!alternatives.empty());
    return alternatives[rng_.UniformInt(alternatives.size())];
  }

  // The RNG stream is the only per-run state; restoring it mid-stream
  // replays the exact remaining selection sequence.
  std::string SaveState() const override { return rng_.SerializeState(); }
  Status RestoreState(const std::string& state) override {
    if (state.empty()) {
      rng_ = Rng(seed_);
      return Status::OK();
    }
    return rng_.DeserializeState(state);
  }

 private:
  uint64_t seed_;
  Rng rng_;
};

}  // namespace nc

#endif  // NC_CORE_RANDOM_POLICY_H_
