#include "core/bound_heap.h"

#include <algorithm>

#include "common/check.h"
#include "core/rank_order.h"

namespace nc {

bool LazyBoundHeap::Before(const Entry& a, const Entry& b) {
  // "Less" for a max-heap: true when a ranks strictly below b, under the
  // library-wide rank order (core/rank_order.h).
  return RanksAbove(b.bound, b.object, a.bound, a.object);
}

void LazyBoundHeap::Push(ObjectId object, Score bound) {
  heap_.push_back(Entry{bound, object});
  std::push_heap(heap_.begin(), heap_.end(), Before);
}

size_t LazyBoundHeap::PopTopK(size_t k, const BoundFn& bound_fn,
                              std::vector<Entry>* out) {
  NC_CHECK(out != nullptr);
  out->clear();
  while (out->size() < k && !heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Before);
    Entry top = heap_.back();
    heap_.pop_back();
    const std::optional<Score> current = bound_fn(top.object);
    if (!current.has_value()) continue;  // Entry retired.
    NC_DCHECK(*current <= top.bound);
    if (*current < top.bound) {
      // Stale: refresh and keep searching.
      top.bound = *current;
      heap_.push_back(top);
      std::push_heap(heap_.begin(), heap_.end(), Before);
      continue;
    }
    out->push_back(top);
  }
  return out->size();
}

void LazyBoundHeap::Reinsert(std::span<const Entry> entries) {
  for (const Entry& e : entries) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Before);
  }
}

}  // namespace nc
