#include "core/estimator.h"

#include <cstdio>

#include "access/source.h"
#include "common/check.h"
#include "core/engine.h"
#include "obs/profiler.h"

namespace nc {

namespace {

std::string ConfigKey(const SRGConfig& config) {
  std::string key;
  char buffer[32];
  for (double h : config.depths) {
    std::snprintf(buffer, sizeof(buffer), "%.12g|", h);
    key += buffer;
  }
  key += "#";
  for (PredicateId p : config.schedule) {
    key += std::to_string(p);
    key += ",";
  }
  return key;
}

}  // namespace

SimulationCostEstimator::SimulationCostEstimator(Dataset sample,
                                                 CostModel cost,
                                                 const ScoringFunction* scoring,
                                                 size_t k_prime)
    : SimulationCostEstimator(
          [&sample] {
            std::vector<Dataset> samples;
            samples.push_back(std::move(sample));
            return samples;
          }(),
          std::move(cost), scoring, k_prime) {}

SimulationCostEstimator::SimulationCostEstimator(std::vector<Dataset> samples,
                                                 CostModel cost,
                                                 const ScoringFunction* scoring,
                                                 size_t k_prime)
    : samples_(std::move(samples)),
      cost_(std::move(cost)),
      scoring_(scoring),
      k_prime_(k_prime) {
  NC_CHECK(scoring_ != nullptr);
  NC_CHECK(k_prime_ > 0);
  NC_CHECK(!samples_.empty());
  for (const Dataset& sample : samples_) {
    NC_CHECK(cost_.num_predicates() == sample.num_predicates());
  }
}

double SimulationCostEstimator::EstimateCost(const SRGConfig& config) {
  const std::string key = ConfigKey(config);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  // Malformed configs (bad depths, non-permutation schedules) surface as
  // infinite cost so searches steer away instead of crashing mid-climb.
  if (!config.Validate(cost_.num_predicates()).ok()) {
    const double inf = std::numeric_limits<double>::infinity();
    memo_.emplace(key, inf);
    return inf;
  }

  // Only live simulations are billed; memoized repeats return above
  // without touching the profiler. The inner engines run unprofiled so
  // simulation work never pollutes the access-level cost centers.
  NC_PROFILE_SCOPE(profiler_, kOptimizerSimulate);
  double total = 0.0;
  for (const Dataset& sample : samples_) {
    SourceSet sources(&sample, cost_);
    SRGPolicy policy(config);
    EngineOptions options;
    options.k = k_prime_;
    TopKResult ignored;
    const Status status =
        RunNC(&sources, scoring_, &policy, options, &ignored);
    if (!status.ok()) {
      total = std::numeric_limits<double>::infinity();
      break;
    }
    total += sources.accrued_cost();
  }
  const double cost = std::isinf(total)
                          ? total
                          : total / static_cast<double>(samples_.size());
  ++simulations_;
  memo_.emplace(key, cost);
  return cost;
}

void SimulationCostEstimator::Predict(const SRGConfig& config, size_t full_n,
                                      CostPrediction* out) {
  NC_CHECK(out != nullptr);
  *out = CostPrediction{};
  const size_t m = cost_.num_predicates();
  if (!config.Validate(m).ok()) return;
  out->sorted_accesses.assign(m, 0.0);
  out->random_accesses.assign(m, 0.0);
  out->cost.assign(m, 0.0);
  for (const Dataset& sample : samples_) {
    SourceSet sources(&sample, cost_);
    SRGPolicy policy(config);
    EngineOptions options;
    options.k = k_prime_;
    TopKResult ignored;
    if (!RunNC(&sources, scoring_, &policy, options, &ignored).ok()) {
      *out = CostPrediction{};
      return;
    }
    const AccessStats& stats = sources.stats();
    const double scale = static_cast<double>(full_n) /
                         static_cast<double>(sample.num_objects());
    for (PredicateId i = 0; i < m; ++i) {
      out->sorted_accesses[i] +=
          static_cast<double>(stats.sorted_count[i]) * scale;
      out->random_accesses[i] +=
          static_cast<double>(stats.random_count[i]) * scale;
      out->cost[i] += (stats.sorted_cost_accrued[i] +
                       stats.random_cost_accrued[i]) *
                      scale;
    }
  }
  const double replicas = static_cast<double>(samples_.size());
  for (PredicateId i = 0; i < m; ++i) {
    out->sorted_accesses[i] /= replicas;
    out->random_accesses[i] /= replicas;
    out->cost[i] /= replicas;
    out->total_cost += out->cost[i];
  }
  out->valid = true;
}

}  // namespace nc
