// Per-object score state gathered during query processing.
//
// A Candidate records which predicates of an object have been determined
// (by a sorted hit or a random probe) and their exact scores. The
// maximal-possible score F-bar (Eq. 3) substitutes every undetermined
// predicate with its ceiling - the last-seen score l_i of the predicate's
// sorted stream (1.0 if the stream was never read).

#ifndef NC_CORE_CANDIDATE_H_
#define NC_CORE_CANDIDATE_H_

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/score.h"
#include "scoring/scoring_function.h"

namespace nc {

// Score state of one seen object. Predicates with an unset bit in
// `evaluated_mask` have undefined entries in `scores`.
struct Candidate {
  ObjectId id = 0;
  uint64_t evaluated_mask = 0;
  std::vector<Score> scores;

  bool IsEvaluated(PredicateId i) const {
    return (evaluated_mask & (uint64_t{1} << i)) != 0;
  }

  void SetScore(PredicateId i, Score s) {
    NC_DCHECK(i < scores.size());
    scores[i] = s;
    evaluated_mask |= uint64_t{1} << i;
  }

  // True once every one of the m predicates is determined.
  bool IsComplete(size_t num_predicates) const {
    const uint64_t full = num_predicates == 64
                              ? ~uint64_t{0}
                              : (uint64_t{1} << num_predicates) - 1;
    return (evaluated_mask & full) == full;
  }

  size_t NumEvaluated() const {
    return static_cast<size_t>(__builtin_popcountll(evaluated_mask));
  }
};

// Owns candidates with stable references; keyed by ObjectId.
class CandidatePool {
 public:
  explicit CandidatePool(size_t num_predicates)
      : num_predicates_(num_predicates) {
    NC_CHECK(num_predicates_ > 0 && num_predicates_ <= 64);
  }

  // Returns the candidate for `u`, creating it (with no evaluated
  // predicates) on first sight. Sets *created accordingly when non-null.
  Candidate& GetOrCreate(ObjectId u, bool* created = nullptr);

  // Returns the candidate for `u`, or nullptr if it was never seen.
  Candidate* Find(ObjectId u);
  const Candidate* Find(ObjectId u) const;

  size_t size() const { return candidates_.size(); }
  size_t num_predicates() const { return num_predicates_; }

  // Iteration in creation order.
  auto begin() { return candidates_.begin(); }
  auto end() { return candidates_.end(); }
  auto begin() const { return candidates_.begin(); }
  auto end() const { return candidates_.end(); }

 private:
  size_t num_predicates_;
  // deque: stable element addresses across growth.
  std::deque<Candidate> candidates_;
  std::unordered_map<ObjectId, size_t> index_;
};

// Evaluates F-bounds for candidates; owns the scratch buffer so hot loops
// do not allocate.
class BoundEvaluator {
 public:
  explicit BoundEvaluator(const ScoringFunction* scoring)
      : scoring_(scoring), scratch_(scoring->arity()) {
    NC_CHECK(scoring_ != nullptr);
  }

  // Maximal-possible score: undetermined predicate i is read as
  // ceilings[i] (Eq. 3). ceilings.size() must equal the arity.
  Score Upper(const Candidate& c, std::span<const Score> ceilings);

  // Minimal-possible score: undetermined predicates read as 0 (used by
  // the NRA-style baselines).
  Score Lower(const Candidate& c);

  // Exact score of a complete candidate.
  Score Exact(const Candidate& c);

  const ScoringFunction& scoring() const { return *scoring_; }

 private:
  const ScoringFunction* scoring_;
  std::vector<Score> scratch_;
};

}  // namespace nc

#endif  // NC_CORE_CANDIDATE_H_
