#include "core/engine.h"

#include <algorithm>

#include "common/check.h"
#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/tracer.h"

namespace nc {

NCEngine::NCEngine(SourceSet* sources, const ScoringFunction* scoring,
                   SelectPolicy* policy, EngineOptions options)
    : sources_(sources),
      scoring_(scoring),
      policy_(policy),
      options_(std::move(options)),
      pool_(sources->num_predicates()),
      bounds_(scoring),
      ceilings_(sources->num_predicates(), kMaxScore) {
  NC_CHECK(sources_ != nullptr);
  NC_CHECK(scoring_ != nullptr);
  NC_CHECK(policy_ != nullptr);
}

std::optional<Score> NCEngine::CurrentBound(ObjectId u) {
  const size_t m = sources_->num_predicates();
  if (u == kUnseenObject) {
    // The sentinel dies once every object has been seen.
    if (pool_.size() >= sources_->num_objects()) return std::nullopt;
    for (PredicateId i = 0; i < m; ++i) ceilings_[i] = sources_->last_seen(i);
    return scoring_->Evaluate(ceilings_);
  }
  const Candidate* c = pool_.Find(u);
  NC_CHECK(c != nullptr);
  if (c->IsComplete(m)) return bounds_.Exact(*c);
  for (PredicateId i = 0; i < m; ++i) ceilings_[i] = sources_->last_seen(i);
  return bounds_.Upper(*c, ceilings_);
}

void NCEngine::BuildAlternatives(ObjectId target) {
  // Quota-spent predicates are withheld (a hard, permanent bar);
  // breaker-open predicates are NOT - their fast-fails are transient,
  // unbilled, and bounded by the consecutive-failure guard.
  alternatives_.clear();
  skipped_quota_ = false;
  const size_t m = sources_->num_predicates();
  if (target == kUnseenObject) {
    // No-wild-guesses: an unseen object admits only sorted accesses.
    for (PredicateId i = 0; i < m; ++i) {
      if (sources_->has_sorted(i) && !sources_->exhausted(i)) {
        if (sources_->quota_exhausted(i)) {
          skipped_quota_ = true;
          continue;
        }
        alternatives_.push_back(Access::Sorted(i));
      }
    }
    return;
  }
  const Candidate* c = pool_.Find(target);
  NC_CHECK(c != nullptr);
  for (PredicateId i = 0; i < m; ++i) {
    if (c->IsEvaluated(i)) continue;
    if (sources_->has_sorted(i) && !sources_->exhausted(i)) {
      if (sources_->quota_exhausted(i)) {
        skipped_quota_ = true;
        continue;
      }
      alternatives_.push_back(Access::Sorted(i));
    }
  }
  for (PredicateId i = 0; i < m; ++i) {
    if (c->IsEvaluated(i)) continue;
    if (sources_->has_random(i)) {
      if (sources_->quota_exhausted(i)) {
        skipped_quota_ = true;
        continue;
      }
      alternatives_.push_back(Access::Random(i, target));
    }
  }
}

Status NCEngine::Perform(const Access& access) {
  if (access.type == AccessType::kSorted) {
    std::optional<SortedHit> hit;
    NC_RETURN_IF_ERROR(sources_->TrySortedAccess(access.predicate, &hit));
    NC_CHECK(hit.has_value());  // Alternatives exclude exhausted streams.
    bool created = false;
    Candidate& c = pool_.GetOrCreate(hit->object, &created);
    const bool was_complete = c.IsComplete(sources_->num_predicates());
    if (!c.IsEvaluated(access.predicate)) {
      c.SetScore(access.predicate, hit->score);
    }
    // Multi-attribute sources deliver the whole row.
    for (const auto& [predicate, score] : hit->bundled) {
      if (!c.IsEvaluated(predicate)) c.SetScore(predicate, score);
    }
    if (complete_topk_.has_value() && !was_complete &&
        c.IsComplete(sources_->num_predicates())) {
      complete_topk_->Offer(c.id, bounds_.Exact(c));
    }
    if (created) {
      const size_t m = sources_->num_predicates();
      for (PredicateId i = 0; i < m; ++i) {
        ceilings_[i] = sources_->last_seen(i);
      }
      heap_.Push(c.id, bounds_.Upper(c, ceilings_));
    }
    return Status::OK();
  }
  Candidate* c = pool_.Find(access.object);
  NC_CHECK(c != nullptr);  // No wild guesses: the target was seen.
  NC_CHECK(!c->IsEvaluated(access.predicate));
  Score score = 0.0;
  NC_RETURN_IF_ERROR(
      sources_->TryRandomAccess(access.predicate, access.object, &score));
  c->SetScore(access.predicate, score);
  if (complete_topk_.has_value() &&
      c->IsComplete(sources_->num_predicates())) {
    complete_topk_->Offer(c->id, bounds_.Exact(*c));
  }
  return Status::OK();
}

void NCEngine::EmitCertified(TerminationReason reason, TopKResult* out) {
  NC_PROFILE_SCOPE(options_.profiler, kCertificateBuild);
  // Certified anytime answer: the current top-k by maximal-possible
  // score, each entry carrying its proven [lower, upper] interval, plus
  // the epsilon those intervals imply against everything excluded.
  // Popping k+1 entries verifies one bound past the answer; since pops
  // come in verified rank order, that extra bound dominates every entry
  // still in the heap, so the excluded ceiling is sound without a
  // global rescan. (The sentinel stands for no concrete object; it is
  // folded into the excluded ceiling, not returned.)
  const auto bound_fn = [this](ObjectId u) { return CurrentBound(u); };
  heap_.PopTopK(options_.k + 1, bound_fn, &topk_scratch_);
  out->entries.clear();
  AnytimeCertificate cert;
  cert.reason = reason;
  Score min_lower = kMaxScore;
  for (const LazyBoundHeap::Entry& e : topk_scratch_) {
    if (e.object == kUnseenObject || out->entries.size() == options_.k) {
      cert.excluded_ceiling = std::max(cert.excluded_ceiling, e.bound);
      continue;
    }
    const Candidate* c = pool_.Find(e.object);
    NC_CHECK(c != nullptr);
    const Score lower = bounds_.Lower(*c);
    out->entries.push_back(TopKEntry{e.object, e.bound});
    cert.intervals.push_back(ScoreInterval{lower, e.bound});
    min_lower = std::min(min_lower, lower);
  }
  heap_.Reinsert(topk_scratch_);
  if (out->entries.empty()) min_lower = kMinScore;
  cert.epsilon = CertifiedEpsilon(min_lower, cert.excluded_ceiling);
  if (obs::ShouldTrace(options_.tracer)) {
    options_.tracer->RecordCertificate(TerminationReasonName(reason),
                                       cert.epsilon, cert.excluded_ceiling,
                                       sources_->accrued_cost());
  }
  out->certificate = std::move(cert);
  last_run_exact_ = false;
  last_run_truncated_ = true;
}

Status NCEngine::Run(TopKResult* out) {
  NC_CHECK(out != nullptr);
  out->entries.clear();
  out->certificate.reset();
  const size_t m = sources_->num_predicates();
  const size_t n = sources_->num_objects();
  NC_RETURN_IF_ERROR(sources_->cost_model().Validate());
  if (scoring_->arity() != m) {
    return Status::InvalidArgument(
        "scoring function arity does not match predicate count");
  }
  if (options_.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (!(options_.approximation_theta >= 1.0)) {
    return Status::InvalidArgument("approximation_theta must be >= 1");
  }
  for (PredicateId i = 0; i < m; ++i) {
    if (sources_->sorted_position(i) != 0) {
      return Status::FailedPrecondition(
          "sources must be rewound (SourceSet::Reset) before Run");
    }
  }

  // Fresh per-run state.
  pool_ = CandidatePool(m);
  heap_ = LazyBoundHeap();
  accesses_ = 0;
  phase_accesses_ = 0;
  consecutive_failures_ = 0;
  choice_width_total_ = 0.0;
  complete_topk_.reset();
  if (options_.approximation_theta > 1.0) {
    complete_topk_.emplace(options_.k);
  }
  policy_->Reset(*sources_);

  // Seed candidates. Without sorted access anywhere, no-wild-guesses is
  // unsatisfiable, so the object universe is taken as known (the
  // probe-only model of MPro).
  universe_seeded_ =
      !options_.no_wild_guesses || !sources_->cost_model().any_sorted();
  const std::vector<Score> all_ones(m, kMaxScore);
  const Score initial_bound = scoring_->Evaluate(all_ones);
  if (universe_seeded_) {
    for (ObjectId u = 0; u < n; ++u) {
      pool_.GetOrCreate(u);
      heap_.Push(u, initial_bound);
    }
  } else if (n > 0) {
    heap_.Push(kUnseenObject, initial_bound);
  }

  has_run_ = true;
  return InstrumentedLoop("probe", out);
}

Status NCEngine::Extend(size_t new_k, TopKResult* out) {
  NC_CHECK(out != nullptr);
  out->entries.clear();
  out->certificate.reset();
  if (!has_run_) {
    return Status::FailedPrecondition("Extend requires a completed Run");
  }
  if (last_run_truncated_) {
    // A truncated answer's score state does not describe a finished
    // top-k; widening it would silently compound the approximation.
    return Status::FailedPrecondition(
        "Extend after a truncated (best-effort) answer; re-Run instead");
  }
  if (new_k < options_.k) {
    return Status::InvalidArgument("Extend cannot shrink k");
  }
  options_.k = new_k;
  // Each progressive phase gets its own access budget.
  phase_accesses_ = 0;
  consecutive_failures_ = 0;
  if (complete_topk_.has_value()) {
    // The theta collector's capacity is k: rebuild it at the new width
    // from the already-complete candidates.
    complete_topk_.emplace(new_k);
    const size_t m = sources_->num_predicates();
    for (Candidate& c : pool_) {
      if (c.IsComplete(m)) complete_topk_->Offer(c.id, bounds_.Exact(c));
    }
  }
  return InstrumentedLoop("extend", out);
}

EngineCheckpoint NCEngine::Checkpoint() const {
  EngineCheckpoint ck;
  ck.version = kEngineCheckpointVersion;
  ck.k = options_.k;
  const size_t m = sources_->num_predicates();
  ck.num_predicates = m;
  ck.num_objects = sources_->num_objects();
  ck.accesses = accesses_;
  ck.phase_accesses = phase_accesses_;
  ck.consecutive_failures = consecutive_failures_;
  ck.choice_width_total = choice_width_total_;
  ck.universe_seeded = universe_seeded_;
  ck.has_complete_topk = complete_topk_.has_value();
  if (complete_topk_.has_value()) {
    ck.complete_topk = complete_topk_->Take().entries;
  }
  ck.pool.reserve(pool_.size());
  for (const Candidate& c : pool_) {
    CandidateCheckpoint cand;
    cand.object = c.id;
    cand.mask = c.evaluated_mask;
    for (PredicateId i = 0; i < m; ++i) {
      if (c.IsEvaluated(i)) cand.scores.push_back(c.scores[i]);
    }
    ck.pool.push_back(std::move(cand));
  }
  ck.heap = heap_.entries();
  ck.policy_state = policy_->SaveState();
  ck.sources = sources_->Checkpoint();
  return ck;
}

Status NCEngine::Resume(const EngineCheckpoint& ck, TopKResult* out) {
  NC_CHECK(out != nullptr);
  out->entries.clear();
  out->certificate.reset();
  const size_t m = sources_->num_predicates();
  const size_t n = sources_->num_objects();
  if (ck.version != kEngineCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (ck.num_predicates != m || ck.num_objects != n) {
    return Status::InvalidArgument(
        "checkpoint shape does not match the sources");
  }
  NC_RETURN_IF_ERROR(sources_->cost_model().Validate());
  if (scoring_->arity() != m) {
    return Status::InvalidArgument(
        "scoring function arity does not match predicate count");
  }
  if (ck.k == 0) {
    return Status::InvalidArgument("checkpoint k must be positive");
  }
  if (!(options_.approximation_theta >= 1.0)) {
    return Status::InvalidArgument("approximation_theta must be >= 1");
  }
  if (ck.has_complete_topk != (options_.approximation_theta > 1.0)) {
    return Status::InvalidArgument(
        "checkpoint theta mode does not match engine options");
  }

  // A failure below leaves the engine unusable for queries until a
  // successful Run or Resume.
  has_run_ = false;
  NC_RETURN_IF_ERROR(sources_->RestoreCheckpoint(ck.sources));
  options_.k = ck.k;

  pool_ = CandidatePool(m);
  for (const CandidateCheckpoint& cand : ck.pool) {
    if (cand.object >= n) {
      return Status::InvalidArgument("checkpoint candidate out of range");
    }
    if (m < 64 && (cand.mask >> m) != 0) {
      return Status::InvalidArgument(
          "checkpoint candidate mask names unknown predicates");
    }
    bool created = false;
    Candidate& c = pool_.GetOrCreate(cand.object, &created);
    if (!created) {
      return Status::InvalidArgument("duplicate checkpoint candidate");
    }
    size_t next_score = 0;
    for (PredicateId i = 0; i < m; ++i) {
      if (((cand.mask >> i) & 1) == 0) continue;
      if (next_score >= cand.scores.size()) {
        return Status::InvalidArgument(
            "checkpoint candidate score count mismatch");
      }
      c.SetScore(i, cand.scores[next_score++]);
    }
    if (next_score != cand.scores.size()) {
      return Status::InvalidArgument(
          "checkpoint candidate score count mismatch");
    }
  }
  // Heap behavior depends only on the multiset of entries, so re-Pushing
  // in checkpoint order replays the original pop sequences exactly.
  heap_ = LazyBoundHeap();
  for (const LazyBoundHeap::Entry& e : ck.heap) {
    if (e.object != kUnseenObject) {
      if (e.object >= n) {
        return Status::InvalidArgument("checkpoint heap entry out of range");
      }
      if (pool_.Find(e.object) == nullptr) {
        return Status::InvalidArgument(
            "checkpoint heap entry names an unseen candidate");
      }
    }
    heap_.Push(e.object, e.bound);
  }
  complete_topk_.reset();
  if (ck.has_complete_topk) {
    complete_topk_.emplace(options_.k);
    for (const TopKEntry& e : ck.complete_topk) {
      complete_topk_->Offer(e.object, e.score);
    }
  }
  policy_->Reset(*sources_);
  NC_RETURN_IF_ERROR(policy_->RestoreState(ck.policy_state));
  accesses_ = ck.accesses;
  phase_accesses_ = ck.phase_accesses;
  consecutive_failures_ = ck.consecutive_failures;
  choice_width_total_ = ck.choice_width_total;
  universe_seeded_ = ck.universe_seeded;
  has_run_ = true;
  return InstrumentedLoop("resume", out);
}

Status NCEngine::InstrumentedLoop(const char* phase, TopKResult* out) {
  const bool tracing = obs::ShouldTrace(options_.tracer);
  if (tracing) options_.tracer->BeginPhase(phase);
  const size_t accesses_before = accesses_;
  const Status status = Loop(out);
  if (tracing) options_.tracer->EndPhase(phase);
  if (options_.metrics != nullptr) {
    const obs::LabelSet algo{{"algorithm", "NC"}};
    options_.metrics
        ->counter("nc_engine_runs_total",
                  {{"algorithm", "NC"}, {"phase", phase}})
        .Increment();
    options_.metrics->counter("nc_engine_accesses_total", algo)
        .Increment(static_cast<double>(accesses_ - accesses_before));
    if (!status.ok()) {
      options_.metrics->counter("nc_engine_errors_total", algo).Increment();
    }
    if (last_run_degraded_) {
      options_.metrics->counter("nc_engine_degraded_runs_total", algo)
          .Increment();
    }
    if (last_run_truncated_) {
      options_.metrics->counter("nc_engine_truncated_runs_total", algo)
          .Increment();
    }
    if (status.ok() && out->certificate.has_value()) {
      options_.metrics
          ->counter(
              "nc_engine_certified_runs_total",
              {{"algorithm", "NC"},
               {"reason", TerminationReasonName(out->certificate->reason)}})
          .Increment();
    }
  }
  return status;
}

Status NCEngine::Loop(TopKResult* out) {
  const size_t m = sources_->num_predicates();
  const size_t n = sources_->num_objects();
  const auto bound_fn = [this](ObjectId u) { return CurrentBound(u); };
  // Every useful execution performs at most n sorted and n random accesses
  // per predicate; anything beyond signals an engine/policy bug.
  const size_t runaway_guard = 2 * n * m + options_.k + 64;
  // Persistent flaking without a death could otherwise loop forever on
  // the same task; after this many unrecovered failures in a row the
  // engine gives up and degrades.
  constexpr size_t kMaxConsecutiveFailures = 32;
  last_run_truncated_ = false;
  last_run_degraded_ = false;
  const bool tracing = obs::ShouldTrace(options_.tracer);
  // Instrument handles are looked up once; recording is then lock-free
  // (counter) or a single mutex (histogram) per event.
  obs::Histogram* width_hist =
      options_.metrics == nullptr
          ? nullptr
          : &options_.metrics->histogram("nc_engine_choice_width",
                                         {1, 2, 4, 8, 16, 32},
                                         {{"algorithm", "NC"}});

  while (true) {
    {
      NC_PROFILE_SCOPE(options_.profiler, kCandidateHeap);
      heap_.PopTopK(options_.k, bound_fn, &topk_scratch_);
    }
    const double kth_bound =
        topk_scratch_.empty() ? 0.0 : topk_scratch_.back().bound;
    // Theorem 1: the first incomplete member of K_P (rank order)
    // designates an unsatisfied task; if none exists, K_P is the answer.
    ObjectId target = kUnseenObject;
    bool found_incomplete = false;
    for (const LazyBoundHeap::Entry& e : topk_scratch_) {
      if (e.object == kUnseenObject) {
        target = e.object;
        found_incomplete = true;
        break;
      }
      const Candidate* c = pool_.Find(e.object);
      NC_CHECK(c != nullptr);
      if (!c->IsComplete(m)) {
        target = e.object;
        found_incomplete = true;
        break;
      }
    }
    if (!found_incomplete) {
      out->entries.reserve(topk_scratch_.size());
      for (const LazyBoundHeap::Entry& e : topk_scratch_) {
        // A complete entry's verified bound is its exact score.
        out->entries.push_back(TopKEntry{e.object, e.bound});
      }
      heap_.Reinsert(topk_scratch_);
      last_run_exact_ = true;
      return Status::OK();
    }

    // Theta-halting: k complete objects whose k-th exact score, inflated
    // by theta, dominates every non-member's maximal-possible score. Any
    // object outside the popped top-k is bounded by a popped non-member's
    // bound (or every popped entry is a complete member, which is the
    // exact-termination case handled above).
    if (complete_topk_.has_value() && complete_topk_->full()) {
      double max_nonmember = -1.0;
      for (const LazyBoundHeap::Entry& e : topk_scratch_) {
        if (e.object == kUnseenObject || !complete_topk_->Contains(e.object)) {
          max_nonmember = std::max(max_nonmember, e.bound);
        }
      }
      if (max_nonmember >= 0.0 &&
          options_.approximation_theta * complete_topk_->kth_score() >=
              max_nonmember) {
        *out = complete_topk_->Take();
        // Theta answers are complete, but still carry their proof: the
        // returned scores are exact (degenerate intervals) and every
        // excluded object is bounded by max_nonmember - a popped
        // non-member's bound dominates all unpopped entries because pops
        // come in rank order. The halting test then caps epsilon at
        // theta - 1.
        AnytimeCertificate cert;
        cert.reason = TerminationReason::kTheta;
        cert.excluded_ceiling = max_nonmember;
        Score min_exact = kMaxScore;
        for (const TopKEntry& e : out->entries) {
          cert.intervals.push_back(ScoreInterval{e.score, e.score});
          min_exact = std::min(min_exact, e.score);
        }
        if (out->entries.empty()) min_exact = kMinScore;
        cert.epsilon = CertifiedEpsilon(min_exact, max_nonmember);
        if (tracing) {
          options_.tracer->RecordCertificate(
              TerminationReasonName(cert.reason), cert.epsilon,
              cert.excluded_ceiling, sources_->accrued_cost());
        }
        out->certificate = std::move(cert);
        heap_.Reinsert(topk_scratch_);
        last_run_exact_ = false;
        return Status::OK();
      }
    }

    // Budget exhaustion certifies the current answer instead of failing.
    // The exact- and theta-termination tests above run first, so a query
    // whose answer is already proven keeps it even at the budget edge.
    if (sources_->budget_exhausted()) {
      heap_.Reinsert(topk_scratch_);
      EmitCertified(sources_->cost_budget_exhausted()
                        ? TerminationReason::kCostBudget
                        : TerminationReason::kDeadline,
                    out);
      return Status::OK();
    }

    BuildAlternatives(target);
    if (alternatives_.empty()) {
      heap_.Reinsert(topk_scratch_);
      if (skipped_quota_) {
        // Every remaining choice for the task needs a quota-spent
        // predicate: the per-predicate budget, not the scenario, is what
        // blocks progress.
        EmitCertified(TerminationReason::kQuota, out);
        return Status::OK();
      }
      if (options_.tolerate_source_failure && sources_->any_source_down()) {
        // A death made the task unsatisfiable mid-run: rather than fail,
        // return what the surviving accesses established.
        EmitCertified(TerminationReason::kSourceFailure, out);
        return Status::OK();
      }
      return Status::FailedPrecondition(
          "scoring task for " +
          (target == kUnseenObject ? std::string("unseen objects")
                                   : "object " + std::to_string(target)) +
          " cannot be completed under the scenario's capabilities");
    }
    EngineView view;
    view.sources = sources_;
    view.scoring = scoring_;
    view.k = options_.k;
    view.target = target;
    view.target_state = target == kUnseenObject ? nullptr : pool_.Find(target);

    const Access access = policy_->Select(alternatives_, view);
    const bool offered =
        std::find(alternatives_.begin(), alternatives_.end(), access) !=
        alternatives_.end();
    NC_CHECK(offered);  // Policies must pick among the necessary choices.

    const Status performed = Perform(access);
    {
      NC_PROFILE_SCOPE(options_.profiler, kCandidateHeap);
      heap_.Reinsert(topk_scratch_);
    }
    if (performed.code() == StatusCode::kResourceExhausted) {
      // The access layer refused to start the access: the budget or a
      // quota ran out under the engine (defensive - the loop-top check
      // and BuildAlternatives normally catch both first). Nothing was
      // billed, so the current answer certifies as-is.
      EmitCertified(sources_->cost_budget_exhausted()
                        ? TerminationReason::kCostBudget
                        : (sources_->deadline_exceeded()
                               ? TerminationReason::kDeadline
                               : TerminationReason::kQuota),
                    out);
      return Status::OK();
    }
    if (!performed.ok()) {
      // Unrecoverable access failure: no candidate state was consumed,
      // so the loop can simply re-derive the necessary choices against
      // whatever capabilities survive.
      NC_CHECK(performed.code() == StatusCode::kUnavailable);
      last_run_degraded_ = true;
      if (!options_.tolerate_source_failure) return performed;
      ++consecutive_failures_;
      if (consecutive_failures_ >= kMaxConsecutiveFailures) {
        EmitCertified(TerminationReason::kSourceFailure, out);
        return Status::OK();
      }
      continue;
    }
    consecutive_failures_ = 0;
    choice_width_total_ += static_cast<double>(alternatives_.size());
    if (width_hist != nullptr) {
      width_hist->Observe(static_cast<double>(alternatives_.size()));
    }
    if (tracing) {
      for (PredicateId i = 0; i < m; ++i) {
        ceilings_[i] = sources_->last_seen(i);
      }
      options_.tracer->RecordIteration(
          target, static_cast<uint32_t>(alternatives_.size()),
          scoring_->Evaluate(ceilings_), kth_bound, heap_.size(),
          sources_->accrued_cost());
    }

    ++accesses_;
    ++phase_accesses_;
    if (options_.access_callback) options_.access_callback(accesses_);
    if (options_.max_accesses != 0 &&
        phase_accesses_ > options_.max_accesses) {
      if (!options_.best_effort) {
        return Status::ResourceExhausted("max_accesses exceeded");
      }
      EmitCertified(TerminationReason::kAccessCap, out);
      return Status::OK();
    }
    if (accesses_ > runaway_guard) {
      return Status::Internal("engine exceeded the runaway-access guard");
    }
  }
}

Status RunNC(SourceSet* sources, const ScoringFunction* scoring,
             SelectPolicy* policy, const EngineOptions& options,
             TopKResult* out) {
  NCEngine engine(sources, scoring, policy, options);
  return engine.Run(out);
}

}  // namespace nc
