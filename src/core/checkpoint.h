// Crash-safe checkpoint/resume of in-flight NC queries.
//
// A production middleware paying real money per source access cannot
// afford to repay those accesses because its own process restarted.
// EngineCheckpoint captures everything an interrupted NCEngine run knows
// - candidate score state, heap entries, counters, policy state, and the
// full SourceSet snapshot (cursors, last-seen bounds, accrued cost,
// probed masks, breaker state, fault-injector state, RNG streams) - so
// NCEngine::Resume continues the run with *zero re-issued accesses* and
// a final answer bit-identical to the uninterrupted run's.
//
// The serialized form is a versioned, line-oriented text format in the
// spirit of access/trace_format.h: a "ncckpt <version>" header followed
// by fixed-order `key value` lines. Doubles are written as C hexfloats
// ("%a"), so every value - including +-inf - round-trips byte-exactly;
// SerializeCheckpoint and ParseCheckpoint invert each other exactly, and
// serializing a parsed checkpoint reproduces the input byte for byte.
//
// What a checkpoint is NOT: configuration. The dataset, scenario,
// scoring function, policy type/config, retry/budget/breaker policies,
// and engine options all live in code; Resume requires the caller to
// have rebuilt them identically and validates the shapes it can check
// (predicate/object counts, capability sets, injector attachment).

#ifndef NC_CORE_CHECKPOINT_H_
#define NC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "access/source.h"
#include "common/score.h"
#include "common/status.h"
#include "core/bound_heap.h"
#include "core/result.h"

namespace nc {

// One candidate's score state: `scores` holds the evaluated entries in
// ascending predicate order (one per set bit of `mask`).
struct CandidateCheckpoint {
  ObjectId object = 0;
  uint64_t mask = 0;
  std::vector<Score> scores;
};

// Full mid-query state of one NCEngine run. Produced by
// NCEngine::Checkpoint(), consumed by NCEngine::Resume().
struct EngineCheckpoint {
  // Format version (kEngineCheckpointVersion when produced by this
  // build). Version 2 added the replica-fleet section.
  uint32_t version = 2;

  // --- Query shape (validated against the resuming engine) -------------
  size_t k = 0;
  size_t num_predicates = 0;
  size_t num_objects = 0;

  // --- Engine counters --------------------------------------------------
  size_t accesses = 0;
  size_t phase_accesses = 0;
  size_t consecutive_failures = 0;
  double choice_width_total = 0.0;
  bool universe_seeded = false;

  // --- Theta collector (engaged only when approximation_theta > 1) -----
  bool has_complete_topk = false;
  // Complete candidates in rank order (exact scores).
  std::vector<TopKEntry> complete_topk;

  // --- Candidate pool in creation order ---------------------------------
  std::vector<CandidateCheckpoint> pool;

  // --- Heap entries (order-insensitive; see LazyBoundHeap::entries) ----
  std::vector<LazyBoundHeap::Entry> heap;

  // --- Opaque per-run policy state (SelectPolicy::SaveState) -----------
  std::string policy_state;

  // --- The access layer -------------------------------------------------
  SourceCheckpoint sources;
};

inline constexpr uint32_t kEngineCheckpointVersion = 2;

// Serializes to the versioned text format described above.
std::string SerializeCheckpoint(const EngineCheckpoint& checkpoint);

// Parses SerializeCheckpoint output. InvalidArgument on a malformed or
// version-incompatible document; *out is only written on success.
Status ParseCheckpoint(const std::string& text, EngineCheckpoint* out);

}  // namespace nc

#endif  // NC_CORE_CHECKPOINT_H_
