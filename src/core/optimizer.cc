#include "core/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "obs/profiler.h"

namespace nc {

namespace {

// Mesh values 0, step, 2*step, ..., 1 (always including both exact
// endpoints - the H_i = 1 boundary means "never read this stream" and must
// not be approximated by 1 - epsilon, which still admits top-scored
// entries).
std::vector<double> MeshAxis(double step) {
  NC_CHECK(step > 0.0 && step <= 1.0);
  std::vector<double> axis;
  for (size_t i = 0; i * step < 1.0 - 1e-9; ++i) {
    axis.push_back(static_cast<double>(i) * step);
  }
  axis.push_back(1.0);
  return axis;
}

// Evaluates `depths` and folds it into the running best.
void Consider(CostEstimator* estimator,
              const std::vector<PredicateId>& schedule,
              const std::vector<double>& depths, OptimizerResult* best) {
  SRGConfig config;
  config.depths = depths;
  config.schedule = schedule;
  const double cost = estimator->EstimateCost(config);
  if (best->config.depths.empty() || cost < best->estimated_cost) {
    best->config = std::move(config);
    best->estimated_cost = cost;
  }
}

Status CheckSchedule(const CostEstimator& estimator,
                     const std::vector<PredicateId>& schedule) {
  SRGConfig probe;
  probe.depths.assign(estimator.num_predicates(), 0.0);
  probe.schedule = schedule;
  return probe.Validate(estimator.num_predicates());
}

}  // namespace

NaiveGridOptimizer::NaiveGridOptimizer(double step, size_t max_points)
    : step_(step), max_points_(max_points) {
  NC_CHECK(step_ > 0.0 && step_ <= 1.0);
  NC_CHECK(max_points_ > 0);
}

Status NaiveGridOptimizer::Optimize(CostEstimator* estimator,
                                    const std::vector<PredicateId>& schedule,
                                    OptimizerResult* out) {
  NC_CHECK(estimator != nullptr);
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(CheckSchedule(*estimator, schedule));
  const size_t m = estimator->num_predicates();

  // Coarsen until the mesh fits the budget.
  double step = step_;
  while (true) {
    const double per_axis = std::floor(1.0 / step) + 2.0;
    if (std::pow(per_axis, static_cast<double>(m)) <=
        static_cast<double>(max_points_)) {
      break;
    }
    step *= 2.0;
    if (step > 1.0) {
      step = 1.0;
      break;
    }
  }
  const std::vector<double> axis = MeshAxis(step);

  const size_t before = estimator->simulations();
  OptimizerResult best;
  // Odometer over the m-dimensional mesh.
  std::vector<size_t> index(m, 0);
  std::vector<double> depths(m, axis[0]);
  while (true) {
    Consider(estimator, schedule, depths, &best);
    size_t axis_id = 0;
    while (axis_id < m) {
      if (++index[axis_id] < axis.size()) {
        depths[axis_id] = axis[index[axis_id]];
        break;
      }
      index[axis_id] = 0;
      depths[axis_id] = axis[0];
      ++axis_id;
    }
    if (axis_id == m) break;
  }
  best.simulations = estimator->simulations() - before;
  *out = std::move(best);
  return Status::OK();
}

StrategiesOptimizer::StrategiesOptimizer(double step) : step_(step) {
  NC_CHECK(step_ > 0.0 && step_ <= 1.0);
}

Status StrategiesOptimizer::Optimize(CostEstimator* estimator,
                                     const std::vector<PredicateId>& schedule,
                                     OptimizerResult* out) {
  NC_CHECK(estimator != nullptr);
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(CheckSchedule(*estimator, schedule));
  const size_t m = estimator->num_predicates();
  const std::vector<double> axis = MeshAxis(step_);

  const size_t before = estimator->simulations();
  OptimizerResult best;
  // Family 1: equal-depth diagonal (parallel sorted access; the shape the
  // paper finds best for avg-like F).
  for (double h : axis) {
    Consider(estimator, schedule, std::vector<double>(m, h), &best);
  }
  // Family 2: focused single-axis plans (deep sorted access on one
  // predicate, none on the others; the min-friendly shape).
  for (PredicateId i = 0; i < m; ++i) {
    std::vector<double> depths(m, 1.0);
    for (double h : axis) {
      depths[i] = h;
      Consider(estimator, schedule, depths, &best);
    }
  }
  best.simulations = estimator->simulations() - before;
  *out = std::move(best);
  return Status::OK();
}

HClimbOptimizer::HClimbOptimizer(size_t restarts, double step, uint64_t seed)
    : restarts_(restarts), step_(step), seed_(seed) {
  NC_CHECK(restarts_ > 0);
  NC_CHECK(step_ > 0.0 && step_ <= 1.0);
}

Status HClimbOptimizer::Optimize(CostEstimator* estimator,
                                 const std::vector<PredicateId>& schedule,
                                 OptimizerResult* out) {
  NC_CHECK(estimator != nullptr);
  NC_CHECK(out != nullptr);
  NC_RETURN_IF_ERROR(CheckSchedule(*estimator, schedule));
  const size_t m = estimator->num_predicates();
  const std::vector<double> axis = MeshAxis(step_);
  Rng rng(seed_);

  const size_t before = estimator->simulations();
  // Climb on lattice indices so every visited depth is an exact mesh value
  // (in particular the 0.0 and 1.0 endpoints).
  const auto evaluate = [&](const std::vector<size_t>& index) {
    SRGConfig config;
    config.depths.resize(m);
    for (size_t i = 0; i < m; ++i) config.depths[i] = axis[index[i]];
    config.schedule = schedule;
    return std::pair(estimator->EstimateCost(config), std::move(config));
  };

  OptimizerResult best;
  for (size_t restart = 0; restart < restarts_; ++restart) {
    // First restart climbs from the cube center, the rest from random
    // mesh points.
    std::vector<size_t> index(m);
    for (size_t i = 0; i < m; ++i) {
      index[i] = restart == 0
                     ? axis.size() / 2
                     : static_cast<size_t>(rng.UniformInt(axis.size()));
    }
    auto [current_cost, current_config] = evaluate(index);

    bool improved = true;
    while (improved) {
      // One sweep over the 2m lattice neighbors; the simulations it
      // triggers nest as kOptimizerSimulate children, so the step's self
      // time is the pure search overhead.
      NC_PROFILE_SCOPE(estimator->profiler(), kHillClimbStep);
      improved = false;
      std::vector<size_t> best_neighbor = index;
      double best_neighbor_cost = current_cost;
      SRGConfig best_neighbor_config = current_config;
      for (size_t i = 0; i < m; ++i) {
        for (const int delta : {-1, 1}) {
          if (delta < 0 && index[i] == 0) continue;
          if (delta > 0 && index[i] + 1 >= axis.size()) continue;
          std::vector<size_t> neighbor = index;
          neighbor[i] += delta;
          auto [cost, config] = evaluate(neighbor);
          if (cost < best_neighbor_cost) {
            best_neighbor = std::move(neighbor);
            best_neighbor_cost = cost;
            best_neighbor_config = std::move(config);
          }
        }
      }
      if (best_neighbor_cost < current_cost) {
        index = std::move(best_neighbor);
        current_cost = best_neighbor_cost;
        current_config = std::move(best_neighbor_config);
        improved = true;
      }
    }
    if (best.config.depths.empty() || current_cost < best.estimated_cost) {
      best.config = std::move(current_config);
      best.estimated_cost = current_cost;
    }
  }
  best.simulations = estimator->simulations() - before;
  *out = std::move(best);
  return Status::OK();
}

}  // namespace nc
