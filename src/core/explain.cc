#include "core/explain.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/numeric.h"
#include "obs/run_report.h"

namespace nc {

namespace {

std::string FormatCost(double cost) {
  if (!std::isfinite(cost)) return "impossible";
  return FormatDouble(cost);  // Locale-safe; %g would honor LC_NUMERIC.
}

std::string PredicateLabel(const SourceSet& sources, PredicateId i) {
  if (sources.has_dataset()) return sources.dataset().predicate_name(i);
  std::string label = "p";
  label += std::to_string(i);
  return label;
}

}  // namespace

std::string ExplainPlan(const SRGConfig& plan, const SourceSet& sources,
                        const ScoringFunction& scoring, size_t k) {
  const size_t m = sources.num_predicates();
  NC_CHECK(plan.Validate(m).ok());
  const CostModel& cost = sources.cost_model();

  std::ostringstream os;
  os << "top-" << k << " by " << scoring.name() << " over " << m
     << " predicates, " << sources.num_objects() << " objects\n";

  std::vector<size_t> rank(m, 0);
  for (size_t r = 0; r < m; ++r) rank[plan.schedule[r]] = r;

  for (PredicateId i = 0; i < m; ++i) {
    os << "  " << PredicateLabel(sources, i) << ": ";
    if (sources.source_down(i)) {
      // Capabilities the source lost when it died; the plan narrative
      // below describes what remains (nothing).
      os << "source DOWN; ";
    }
    if (cost.has_sorted(i)) {
      os << "stream (cs=" << FormatCost(cost.sorted_cost[i]);
      if (cost.page_size(i) > 1) {
        os << ", pages of " << cost.page_size(i);
      }
      os << ") ";
      const double h = plan.depths[i];
      if (h >= 1.0) {
        os << "not read beyond discovery";
      } else if (h <= 0.0) {
        os << "read until the query settles";
      } else {
        os << "read while scores stay above " << h;
      }
    } else {
      os << "no stream";
    }
    os << "; ";
    if (cost.has_random(i)) {
      os << "probes (cr=" << FormatCost(cost.random_cost[i]) << ") "
         << (rank[i] == 0 ? "first" : "at position " +
                                          std::to_string(rank[i] + 1))
         << " in the probe order";
    } else {
      os << "no probes";
    }
    if (!cost.attribute_groups.empty()) {
      os << "; source group " << cost.attribute_groups[i];
    }
    os << "\n";
  }
  return os.str();
}

std::string ExplainPlan(const OptimizerResult& plan,
                        const SourceSet& sources,
                        const ScoringFunction& scoring, size_t k) {
  std::ostringstream os;
  os << ExplainPlan(plan.config, sources, scoring, k);
  os << "  estimated cost " << plan.estimated_cost << " (from "
     << plan.simulations << " plan simulations)\n";
  return os.str();
}

std::string ExplainAccessStats(const SourceSet& sources) {
  // The run report owns this rendering now; Explain keeps the entry point
  // so callers stay agnostic of the obs layer.
  return obs::BuildRunReport(sources).ToText();
}

}  // namespace nc
