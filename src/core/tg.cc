#include "core/tg.h"

#include <algorithm>

#include "common/check.h"

namespace nc {

TGRandomPolicy::TGRandomPolicy(uint64_t seed) : seed_(seed), rng_(seed) {}

void TGRandomPolicy::Reset(const SourceSet& sources) {
  (void)sources;
  rng_ = Rng(seed_);
}

Access TGRandomPolicy::Select(std::span<const Access> pool_accesses,
                              const TGView& view) {
  (void)view;
  NC_CHECK(!pool_accesses.empty());
  return pool_accesses[rng_.UniformInt(pool_accesses.size())];
}

namespace {

// Ranks the current top-k by maximal-possible score (seen objects plus
// the unseen sentinel); returns true when all of them are complete, in
// which case `out` receives the answer.
bool Halted(const SourceSet& sources, CandidatePool& pool,
            BoundEvaluator& bounds, bool universe_seeded, size_t k,
            TopKResult* out) {
  const size_t m = sources.num_predicates();
  std::vector<Score> ceilings(m);
  for (PredicateId i = 0; i < m; ++i) ceilings[i] = sources.last_seen(i);

  struct Ranked {
    ObjectId object;
    Score bound;
    bool complete;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(pool.size() + 1);
  for (Candidate& c : pool) {
    const bool complete = c.IsComplete(m);
    ranked.push_back(Ranked{
        c.id, complete ? bounds.Exact(c) : bounds.Upper(c, ceilings),
        complete});
  }
  if (!universe_seeded && pool.size() < sources.num_objects()) {
    ranked.push_back(Ranked{kUnseenObject,
                            bounds.scoring().Evaluate(ceilings), false});
  }
  const size_t take = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + take, ranked.end(),
                    [](const Ranked& a, const Ranked& b) {
                      if (a.bound != b.bound) return a.bound > b.bound;
                      if (a.object == kUnseenObject) return false;
                      if (b.object == kUnseenObject) return true;
                      return a.object > b.object;
                    });
  for (size_t i = 0; i < take; ++i) {
    if (!ranked[i].complete) return false;
  }
  out->entries.clear();
  for (size_t i = 0; i < take; ++i) {
    out->entries.push_back(TopKEntry{ranked[i].object, ranked[i].bound});
  }
  return true;
}

// Every currently legal access: live sorted streams plus useful probes.
void EnumerateLegalPool(const SourceSet& sources, CandidatePool& pool,
                        std::vector<Access>* out) {
  out->clear();
  const size_t m = sources.num_predicates();
  for (PredicateId i = 0; i < m; ++i) {
    if (sources.has_sorted(i) && !sources.exhausted(i)) {
      out->push_back(Access::Sorted(i));
    }
  }
  for (Candidate& c : pool) {
    for (PredicateId i = 0; i < m; ++i) {
      if (!c.IsEvaluated(i) && sources.has_random(i)) {
        out->push_back(Access::Random(i, c.id));
      }
    }
  }
}

}  // namespace

Status RunTG(SourceSet* sources, const ScoringFunction& scoring,
             TGSelectPolicy* policy, const TGOptions& options,
             TopKResult* out, TGReport* report) {
  NC_CHECK(sources != nullptr);
  NC_CHECK(policy != nullptr);
  NC_CHECK(out != nullptr);
  out->entries.clear();
  const size_t m = sources->num_predicates();
  const size_t n = sources->num_objects();
  NC_RETURN_IF_ERROR(sources->cost_model().Validate());
  if (scoring.arity() != m) {
    return Status::InvalidArgument(
        "scoring function arity does not match predicate count");
  }
  if (options.k == 0) return Status::InvalidArgument("k must be positive");

  CandidatePool pool(m);
  BoundEvaluator bounds(&scoring);
  policy->Reset(*sources);
  const bool universe_seeded =
      !options.no_wild_guesses || !sources->cost_model().any_sorted();
  if (universe_seeded) {
    for (ObjectId u = 0; u < n; ++u) pool.GetOrCreate(u);
  }

  TGView view;
  view.sources = sources;
  view.scoring = &scoring;
  view.k = options.k;
  view.pool = &pool;

  std::vector<Access> legal;
  size_t accesses = 0;
  double width_total = 0.0;
  const size_t runaway_guard = 2 * n * m + options.k + 64;

  while (!Halted(*sources, pool, bounds, universe_seeded, options.k, out)) {
    EnumerateLegalPool(*sources, pool, &legal);
    if (legal.empty()) {
      return Status::FailedPrecondition(
          "query cannot be completed under the scenario's capabilities");
    }
    width_total += static_cast<double>(legal.size());
    const Access access = policy->Select(legal, view);
    const bool offered =
        std::find(legal.begin(), legal.end(), access) != legal.end();
    NC_CHECK(offered);

    if (access.type == AccessType::kSorted) {
      const std::optional<SortedHit> hit =
          sources->SortedAccess(access.predicate);
      NC_CHECK(hit.has_value());
      Candidate& c = pool.GetOrCreate(hit->object);
      if (!c.IsEvaluated(access.predicate)) {
        c.SetScore(access.predicate, hit->score);
      }
      for (const auto& [predicate, score] : hit->bundled) {
        if (!c.IsEvaluated(predicate)) c.SetScore(predicate, score);
      }
    } else {
      Candidate* c = pool.Find(access.object);
      NC_CHECK(c != nullptr);
      c->SetScore(access.predicate,
                  sources->RandomAccess(access.predicate, access.object));
    }
    ++accesses;
    if (accesses > runaway_guard) {
      return Status::Internal("TG exceeded the runaway-access guard");
    }
  }

  if (report != nullptr) {
    report->accesses = accesses;
    report->mean_choice_width =
        accesses == 0 ? 0.0 : width_total / static_cast<double>(accesses);
  }
  return Status::OK();
}

}  // namespace nc
