#include "core/schedule.h"

#include <algorithm>

#include "common/check.h"

namespace nc {

std::vector<double> EstimateExpectedScores(const Dataset& sample) {
  const size_t m = sample.num_predicates();
  const size_t n = sample.num_objects();
  std::vector<double> expected(m, 0.5);
  if (n == 0) return expected;
  for (PredicateId i = 0; i < m; ++i) {
    double total = 0.0;
    for (ObjectId u = 0; u < n; ++u) total += sample.score(u, i);
    expected[i] = total / static_cast<double>(n);
  }
  return expected;
}

std::vector<PredicateId> OptimizeSchedule(const Dataset& sample,
                                          const CostModel& cost) {
  NC_CHECK(sample.num_predicates() == cost.num_predicates());
  const size_t m = cost.num_predicates();
  const std::vector<double> expected = EstimateExpectedScores(sample);

  std::vector<PredicateId> schedule(m);
  for (PredicateId i = 0; i < m; ++i) schedule[i] = i;

  const auto rank = [&](PredicateId i) {
    if (!cost.has_random(i)) return std::numeric_limits<double>::infinity();
    // Probing cost per unit of expected ceiling reduction; the epsilon
    // keeps non-filtering predicates (E[p] ~ 1) finite and last among the
    // probeable ones.
    const double filtering = std::max(1e-6, 1.0 - expected[i]);
    return cost.random_cost[i] / filtering;
  };
  std::stable_sort(schedule.begin(), schedule.end(),
                   [&](PredicateId a, PredicateId b) {
                     const double ra = rank(a);
                     const double rb = rank(b);
                     if (ra != rb) return ra < rb;
                     return a < b;
                   });
  return schedule;
}

}  // namespace nc
