// Human-readable plan explanations - the middleware's EXPLAIN.
//
// Turns an SR/G configuration plus the scenario it will run against into
// a per-predicate narrative: capability, unit costs, how deep the plan
// will read the stream, and where the predicate sits in the probe order.
// Used by the scenario-explorer example and handy in logs.

#ifndef NC_CORE_EXPLAIN_H_
#define NC_CORE_EXPLAIN_H_

#include <string>

#include "access/source.h"
#include "core/optimizer.h"
#include "core/srg_policy.h"
#include "scoring/scoring_function.h"

namespace nc {

// Multi-line description of `plan` against the sources' current scenario.
// Predicate names come from the backing Dataset when available.
std::string ExplainPlan(const SRGConfig& plan, const SourceSet& sources,
                        const ScoringFunction& scoring, size_t k);

// Convenience overload including the optimizer's estimate/overhead.
std::string ExplainPlan(const OptimizerResult& plan,
                        const SourceSet& sources,
                        const ScoringFunction& scoring, size_t k);

// One-line-per-fact account of what the sources' access counters say
// about the last run: accesses, cost, and - when a fault injector was
// active - retries, failures, and deaths. The failure-model companion to
// ExplainPlan.
std::string ExplainAccessStats(const SourceSet& sources);

}  // namespace nc

#endif  // NC_CORE_EXPLAIN_H_
