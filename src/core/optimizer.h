// Depth-space search schemes (Section 7.2 and the paper's Appendix).
//
// With the schedule fixed, the plan space is the m-dimensional cube of
// depth vectors H. Three searchers, trading optimization overhead against
// plan quality:
//   * NaiveGridOptimizer  - exhaustively meshes the cube (the paper's
//                           baseline scheme; exact on the mesh, exploding
//                           with m).
//   * StrategiesOptimizer - query-driven families only: equal-depth
//                           diagonals (the avg-friendly shape), focused
//                           single-axis plans (the min-friendly shape),
//                           and the pure-sorted / pure-random corners.
//   * HClimbOptimizer     - multi-restart hill climbing on the mesh (the
//                           scheme the paper's experiments found most
//                           effective).

#ifndef NC_CORE_OPTIMIZER_H_
#define NC_CORE_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/estimator.h"
#include "core/srg_policy.h"

namespace nc {

struct OptimizerResult {
  SRGConfig config;
  double estimated_cost = 0.0;
  // Plan simulations actually executed during this search.
  size_t simulations = 0;
  // Full-scale per-predicate prediction of the chosen plan (filled by
  // CostBasedPlanner::Plan, not by the depth searchers themselves); the
  // "predicted" side of the post-run CostAudit.
  CostPrediction prediction;
};

class DepthOptimizer {
 public:
  virtual ~DepthOptimizer() = default;

  // Searches depth space using `estimator`; every emitted config carries
  // `schedule`. On OK, *out holds the best configuration found.
  virtual Status Optimize(CostEstimator* estimator,
                          const std::vector<PredicateId>& schedule,
                          OptimizerResult* out) = 0;

  virtual std::string name() const = 0;
};

class NaiveGridOptimizer final : public DepthOptimizer {
 public:
  // `step` meshes [0,1] per dimension. If the full mesh would exceed
  // `max_points`, the step is doubled until it fits (logged in the
  // result's simulations count implicitly).
  explicit NaiveGridOptimizer(double step = 0.1, size_t max_points = 20000);

  Status Optimize(CostEstimator* estimator,
                  const std::vector<PredicateId>& schedule,
                  OptimizerResult* out) override;
  std::string name() const override { return "Naive"; }

 private:
  double step_;
  size_t max_points_;
};

class StrategiesOptimizer final : public DepthOptimizer {
 public:
  explicit StrategiesOptimizer(double step = 0.1);

  Status Optimize(CostEstimator* estimator,
                  const std::vector<PredicateId>& schedule,
                  OptimizerResult* out) override;
  std::string name() const override { return "Strategies"; }

 private:
  double step_;
};

class HClimbOptimizer final : public DepthOptimizer {
 public:
  HClimbOptimizer(size_t restarts = 4, double step = 0.1,
                  uint64_t seed = 1234);

  Status Optimize(CostEstimator* estimator,
                  const std::vector<PredicateId>& schedule,
                  OptimizerResult* out) override;
  std::string name() const override { return "HClimb"; }

 private:
  size_t restarts_;
  double step_;
  uint64_t seed_;
};

}  // namespace nc

#endif  // NC_CORE_OPTIMIZER_H_
