#include "core/srg_policy.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/numeric.h"

namespace nc {

SRGConfig SRGConfig::Default(size_t num_predicates) {
  SRGConfig config;
  config.depths.assign(num_predicates, 0.5);
  config.schedule.resize(num_predicates);
  for (size_t i = 0; i < num_predicates; ++i) {
    config.schedule[i] = static_cast<PredicateId>(i);
  }
  return config;
}

std::string SRGConfig::ToString() const {
  std::ostringstream os;
  os << "H=(";
  for (size_t i = 0; i < depths.size(); ++i) {
    if (i > 0) os << ",";
    os << depths[i];
  }
  os << ") sched=(";
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (i > 0) os << ",";
    os << schedule[i];
  }
  os << ")";
  return os.str();
}

Status SRGConfig::Validate(size_t num_predicates) const {
  if (depths.size() != num_predicates) {
    return Status::InvalidArgument("depth vector size mismatch");
  }
  for (double h : depths) {
    if (!(h >= 0.0 && h <= 1.0)) {
      return Status::InvalidArgument("depth outside [0, 1]");
    }
  }
  if (schedule.size() != num_predicates) {
    return Status::InvalidArgument("schedule size mismatch");
  }
  std::vector<bool> seen(num_predicates, false);
  for (PredicateId i : schedule) {
    if (i >= num_predicates || seen[i]) {
      return Status::InvalidArgument("schedule is not a permutation");
    }
    seen[i] = true;
  }
  return Status::OK();
}

SRGPolicy::SRGPolicy(SRGConfig config) : config_(std::move(config)) {
  RebuildScheduleRank();
}

void SRGPolicy::RebuildScheduleRank() {
  schedule_rank_.assign(config_.schedule.size(), 0);
  for (size_t rank = 0; rank < config_.schedule.size(); ++rank) {
    const PredicateId p = config_.schedule[rank];
    NC_CHECK(p < schedule_rank_.size());
    schedule_rank_[p] = rank;
  }
}

void SRGPolicy::Reset(const SourceSet& sources) {
  NC_CHECK(config_.Validate(sources.num_predicates()).ok());
  rr_cursor_ = 0;
}

std::string SRGPolicy::SaveState() const {
  return std::to_string(rr_cursor_);
}

Status SRGPolicy::RestoreState(const std::string& state) {
  if (state.empty()) {
    rr_cursor_ = 0;
    return Status::OK();
  }
  uint64_t value = 0;
  if (!ParseUInt64(state, &value)) {
    return Status::InvalidArgument("malformed SRG policy state");
  }
  rr_cursor_ = static_cast<size_t>(value);
  return Status::OK();
}

void SRGPolicy::set_config(SRGConfig config) {
  NC_CHECK(config.depths.size() == config_.depths.size());
  config_ = std::move(config);
  RebuildScheduleRank();
  rr_cursor_ = 0;
}

Access SRGPolicy::Select(std::span<const Access> alternatives,
                         const EngineView& view) {
  NC_CHECK(!alternatives.empty());
  const size_t m = view.sources->num_predicates();

  // 1. A qualifying sorted stream: last-seen still above its depth.
  //    Round-robin among qualifiers so equal depths scan in lockstep.
  const Access* best_sorted = nullptr;
  size_t best_sorted_key = m;  // Cyclic distance from the cursor.
  const Access* any_sorted = nullptr;
  size_t any_sorted_key = m;
  for (const Access& a : alternatives) {
    if (a.type != AccessType::kSorted) continue;
    const size_t key = (a.predicate + m - rr_cursor_ % m) % m;
    if (key < any_sorted_key) {
      any_sorted = &a;
      any_sorted_key = key;
    }
    if (view.sources->last_seen(a.predicate) > config_.depths[a.predicate] &&
        key < best_sorted_key) {
      best_sorted = &a;
      best_sorted_key = key;
    }
  }
  if (best_sorted != nullptr) {
    rr_cursor_ = best_sorted->predicate + 1;
    return *best_sorted;
  }

  // 2. Random-probe the target's next unevaluated predicate by the global
  //    schedule.
  const Access* best_random = nullptr;
  for (const Access& a : alternatives) {
    if (a.type != AccessType::kRandom) continue;
    if (best_random == nullptr ||
        schedule_rank_[a.predicate] < schedule_rank_[best_random->predicate]) {
      best_random = &a;
    }
  }
  if (best_random != nullptr) return *best_random;

  // 3. No random access available: keep draining sorted streams past their
  //    depths (the NRA-only corner).
  NC_CHECK(any_sorted != nullptr);
  rr_cursor_ = any_sorted->predicate + 1;
  return *any_sorted;
}

}  // namespace nc
