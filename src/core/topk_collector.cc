#include "core/topk_collector.h"

#include <algorithm>

#include "common/check.h"

namespace nc {

namespace {

// Ascending (weakest-first) order: by score, ties by ObjectId.
bool WeakerEntry(const TopKEntry& a, const TopKEntry& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.object < b.object;
}

}  // namespace

TopKCollector::TopKCollector(size_t k) : k_(k) { NC_CHECK(k_ > 0); }

void TopKCollector::Offer(ObjectId u, Score s) {
  const TopKEntry entry{u, s};
  if (full() && !WeakerEntry(entries_.front(), entry)) return;
  auto pos = std::lower_bound(entries_.begin(), entries_.end(), entry,
                              WeakerEntry);
  entries_.insert(pos, entry);
  if (entries_.size() > k_) entries_.erase(entries_.begin());
}

Score TopKCollector::kth_score() const {
  if (!full()) return kMinScore - 1.0;
  return entries_.front().score;
}

bool TopKCollector::Contains(ObjectId u) const {
  for (const TopKEntry& e : entries_) {
    if (e.object == u) return true;
  }
  return false;
}

TopKResult TopKCollector::Take() const {
  TopKResult result;
  result.entries.assign(entries_.rbegin(), entries_.rend());
  return result;
}

}  // namespace nc
