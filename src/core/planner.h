// The cost-based query optimizer: end-to-end planning and execution.
//
// CostBasedPlanner ties Section 7 together: it acquires samples (real or
// dummy-uniform), derives the global random-access schedule, searches
// depth space with the configured scheme, and hands back the SR/G plan
// NC should run. RunOptimizedNC additionally executes the plan.

#ifndef NC_CORE_PLANNER_H_
#define NC_CORE_PLANNER_H_

#include <cstdint>

#include "access/source.h"
#include "common/status.h"
#include "core/optimizer.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

enum class SampleMode {
  // Draw the sample from the queried database (offline samples / a-priori
  // knowledge, Section 7.3).
  kFromData,
  // Generate dummy uniform samples - the paper's worst-case validation
  // mode when real samples are unavailable or too costly.
  kDummyUniform,
};

enum class SearchScheme {
  kNaive,
  kStrategies,
  kHClimb,
};

const char* SearchSchemeName(SearchScheme scheme);

struct PlannerOptions {
  size_t sample_size = 100;
  // Independent sample draws averaged per cost estimate; more replicas
  // cut estimation variance (k' is usually tiny) at proportional
  // optimization overhead.
  size_t sample_replicas = 3;
  SampleMode sample_mode = SampleMode::kFromData;
  SearchScheme scheme = SearchScheme::kHClimb;
  double grid_step = 0.1;
  size_t hclimb_restarts = 4;
  uint64_t seed = 7;

  // Section 7.2 approximates the joint (H, schedule) optimization in two
  // steps: fix the schedule by sampled benefit/cost ranking, then search
  // depths. Setting this flag searches depths under *every* schedule
  // permutation instead (m! times the overhead; rejected for m > 6) -
  // useful for validating the two-step approximation.
  bool joint_schedule_search = false;
};

class CostBasedPlanner {
 public:
  // `scoring` must outlive the planner.
  CostBasedPlanner(const ScoringFunction* scoring, PlannerOptions options);

  // Plans a top-k query over `sources` at its current cost model. On OK,
  // *out carries the chosen SR/G configuration, its estimated cost, and
  // the optimization overhead in simulations.
  Status Plan(const SourceSet& sources, size_t k, OptimizerResult* out);

 private:
  const ScoringFunction* scoring_;
  PlannerOptions options_;
};

// Plans and executes in one step: the convenience entry point examples
// use. `plan_out` (optional) receives the chosen plan.
Status RunOptimizedNC(SourceSet* sources, const ScoringFunction& scoring,
                      size_t k, const PlannerOptions& options,
                      TopKResult* out, OptimizerResult* plan_out = nullptr);

}  // namespace nc

#endif  // NC_CORE_PLANNER_H_
