// Framework TG (Section 4): the trivially-general sequential framework
// the paper refines into NC.
//
// TG iterates "select some supported access; perform it" until the
// gathered information suffices (the same Theorem-1 stopping test NC
// uses, which is exact for top-k semantics). Its Select ranges over the
// *entire* pool of legal accesses - every live sorted stream and every
// useful probe on every seen object - rather than one unsatisfied task's
// necessary choices. That makes TG complete but hopeless to optimize:
// the choice set is O(n*m) wide versus NC's <= 2m (the specificity
// contrast both engines instrument; see choice_set_width()).
//
// TG exists in the library for exactly what the paper uses it for:
// grounding the generality argument (any sequential algorithm fits TG;
// tests drive TG with arbitrary policies and verify NC never needs more
// than comparable TG runs) and quantifying why restricting to necessary
// choices is what makes cost-based search feasible.

#ifndef NC_CORE_TG_H_
#define NC_CORE_TG_H_

#include <span>
#include <vector>

#include "access/access.h"
#include "access/source.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/candidate.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

// Context for a TG access selection.
struct TGView {
  const SourceSet* sources = nullptr;
  const ScoringFunction* scoring = nullptr;
  size_t k = 0;
  // Score state of every seen object.
  const CandidatePool* pool = nullptr;
};

// Selects from the full legal pool. "Legal" excludes only provably
// useless accesses (exhausted streams, re-probes of known scores, probes
// of unseen objects under no-wild-guesses); anything else goes.
class TGSelectPolicy {
 public:
  virtual ~TGSelectPolicy() = default;
  virtual void Reset(const SourceSet& sources) { (void)sources; }
  // `pool_accesses` enumerates the current legal accesses.
  virtual Access Select(std::span<const Access> pool_accesses,
                        const TGView& view) = 0;
};

// Picks uniformly at random from the legal pool: the paper's point that
// TG admits any sequence of supported accesses, exercised as a fuzzer.
class TGRandomPolicy final : public TGSelectPolicy {
 public:
  explicit TGRandomPolicy(uint64_t seed);
  void Reset(const SourceSet& sources) override;
  Access Select(std::span<const Access> pool_accesses,
                const TGView& view) override;

 private:
  uint64_t seed_;
  Rng rng_;
};

struct TGOptions {
  size_t k = 1;
  bool no_wild_guesses = true;
};

struct TGReport {
  size_t accesses = 0;
  // Mean size of the legal choice pool per iteration - the specificity
  // metric contrasted against NCEngine's necessary-choice width.
  double mean_choice_width = 0.0;
};

// Runs a TG algorithm to completion. On OK, *out holds the exact top-k.
Status RunTG(SourceSet* sources, const ScoringFunction& scoring,
             TGSelectPolicy* policy, const TGOptions& options,
             TopKResult* out, TGReport* report = nullptr);

}  // namespace nc

#endif  // NC_CORE_TG_H_
