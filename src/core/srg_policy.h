// The SR/G heuristics (Section 7.1): the searchable sub-space of NC plans.
//
// A plan is identified by the pair (H, schedule):
//   * depths H = (H_1..H_m): per-predicate sorted-access depth expressed
//     as a score threshold. Sorted access on p_i stays attractive while
//     the stream's last-seen score l_i is still above H_i ("SR-subset":
//     sorted accesses run ahead of random ones).
//   * schedule: a global permutation of predicates fixing the order in
//     which an object's remaining predicates are random-probed (adopted
//     from MPro's global scheduling).
//
// Select (Figure 9): if any offered sorted access sa_i still has
// l_i > H_i, perform one (round-robin among the qualifying streams, which
// reproduces TA's equal-depth behavior when all H_i agree); otherwise
// random-probe the target's first unevaluated predicate in schedule
// order; if the scenario offers no random access, fall back to the
// available sorted streams so progress is always made.
//
// Notable corners of the space:
//   H = (1,..,1): no sorted access beyond what candidate discovery needs -
//                 probe-dominated plans (MPro-like).
//   H = (0,..,0): sorted access until streams answer everything -
//                 NRA-like plans.

#ifndef NC_CORE_SRG_POLICY_H_
#define NC_CORE_SRG_POLICY_H_

#include <string>
#include <vector>

#include "core/engine.h"

namespace nc {

struct SRGConfig {
  // H_i in [0, 1] per predicate.
  std::vector<double> depths;
  // Permutation of [0, m) giving the global random-access order.
  std::vector<PredicateId> schedule;

  // Equal depth 0.5, identity schedule.
  static SRGConfig Default(size_t num_predicates);

  // "H=(0.85,0.83) sched=(1,0)".
  std::string ToString() const;

  // OK iff depths are in range and schedule is a permutation of [0, m).
  Status Validate(size_t num_predicates) const;
};

class SRGPolicy final : public SelectPolicy {
 public:
  explicit SRGPolicy(SRGConfig config);

  void Reset(const SourceSet& sources) override;
  Access Select(std::span<const Access> alternatives,
                const EngineView& view) override;

  // The round-robin cursor is the only per-run state.
  std::string SaveState() const override;
  Status RestoreState(const std::string& state) override;

  const SRGConfig& config() const { return config_; }

  // Swaps the plan parameters mid-run (adaptive re-optimization). The new
  // config must cover the same predicate count.
  void set_config(SRGConfig config);

 private:
  SRGConfig config_;
  // Rank of each predicate in the schedule (lower probes first).
  std::vector<size_t> schedule_rank_;
  // Round-robin cursor over predicates for qualifying sorted accesses.
  size_t rr_cursor_ = 0;

  void RebuildScheduleRank();
};

}  // namespace nc

#endif  // NC_CORE_SRG_POLICY_H_
