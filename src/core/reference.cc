#include "core/reference.h"

#include <algorithm>

#include "common/check.h"
#include "core/rank_order.h"

namespace nc {

TopKResult BruteForceTopK(const Dataset& data, const ScoringFunction& scoring,
                          size_t k) {
  NC_CHECK(scoring.arity() == data.num_predicates());
  const size_t n = data.num_objects();
  const size_t m = data.num_predicates();
  std::vector<TopKEntry> all(n);
  std::vector<Score> row(m);
  for (ObjectId u = 0; u < n; ++u) {
    for (PredicateId i = 0; i < m; ++i) row[i] = data.score(u, i);
    all[u] = TopKEntry{u, scoring.Evaluate(row)};
  }
  const size_t take = std::min(k, n);
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const TopKEntry& a, const TopKEntry& b) {
                      return RanksAbove(a.score, a.object, b.score, b.object);
                    });
  TopKResult result;
  result.entries.assign(all.begin(), all.begin() + take);
  return result;
}

}  // namespace nc
