#include "core/candidate.h"

namespace nc {

Candidate& CandidatePool::GetOrCreate(ObjectId u, bool* created) {
  auto [it, inserted] = index_.try_emplace(u, candidates_.size());
  if (inserted) {
    candidates_.emplace_back();
    Candidate& c = candidates_.back();
    c.id = u;
    c.scores.resize(num_predicates_, 0.0);
  }
  if (created != nullptr) *created = inserted;
  return candidates_[it->second];
}

Candidate* CandidatePool::Find(ObjectId u) {
  auto it = index_.find(u);
  if (it == index_.end()) return nullptr;
  return &candidates_[it->second];
}

const Candidate* CandidatePool::Find(ObjectId u) const {
  auto it = index_.find(u);
  if (it == index_.end()) return nullptr;
  return &candidates_[it->second];
}

Score BoundEvaluator::Upper(const Candidate& c,
                            std::span<const Score> ceilings) {
  NC_DCHECK(ceilings.size() == scratch_.size());
  NC_DCHECK(c.scores.size() == scratch_.size());
  for (size_t i = 0; i < scratch_.size(); ++i) {
    scratch_[i] = c.IsEvaluated(static_cast<PredicateId>(i)) ? c.scores[i]
                                                             : ceilings[i];
  }
  return scoring_->Evaluate(scratch_);
}

Score BoundEvaluator::Lower(const Candidate& c) {
  NC_DCHECK(c.scores.size() == scratch_.size());
  for (size_t i = 0; i < scratch_.size(); ++i) {
    scratch_[i] =
        c.IsEvaluated(static_cast<PredicateId>(i)) ? c.scores[i] : kMinScore;
  }
  return scoring_->Evaluate(scratch_);
}

Score BoundEvaluator::Exact(const Candidate& c) {
  NC_DCHECK(c.IsComplete(scratch_.size()));
  return scoring_->Evaluate(c.scores);
}

}  // namespace nc
