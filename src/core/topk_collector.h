// Keeps the best k (score, object) pairs seen so far, ordered by
// descending score with ties broken by descending ObjectId. Used by the
// baselines for their output buffers and by the NC engine's
// theta-approximation halting test.

#ifndef NC_CORE_TOPK_COLLECTOR_H_
#define NC_CORE_TOPK_COLLECTOR_H_

#include <vector>

#include "common/score.h"
#include "core/result.h"

namespace nc {

// Offering the same object twice is the caller's bug (users guard with
// their own completion bookkeeping).
class TopKCollector {
 public:
  explicit TopKCollector(size_t k);

  void Offer(ObjectId u, Score s);

  // True once k entries are held.
  bool full() const { return entries_.size() >= k_; }
  size_t size() const { return entries_.size(); }

  // Score of the weakest held entry; kMinScore - 1 while not full, so the
  // usual "kth >= threshold" halting tests stay false until k entries
  // exist.
  Score kth_score() const;

  // True when `u` is currently held.
  bool Contains(ObjectId u) const;

  // The collected entries in final rank order.
  TopKResult Take() const;

 private:
  size_t k_;
  // Kept sorted ascending by (score, object) so the weakest is front.
  std::vector<TopKEntry> entries_;
};

}  // namespace nc

#endif  // NC_CORE_TOPK_COLLECTOR_H_
