// Top-k query output shared by the NC engine and all baseline algorithms,
// plus the certificate attached to early-terminated (anytime) answers.

#ifndef NC_CORE_RESULT_H_
#define NC_CORE_RESULT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/score.h"
#include "common/status.h"

namespace nc {

struct TopKEntry {
  ObjectId object = 0;
  Score score = 0.0;

  friend bool operator==(const TopKEntry& a, const TopKEntry& b) {
    return a.object == b.object && a.score == b.score;
  }
};

// Why a run stopped before reaching an exact answer.
enum class TerminationReason {
  kCostBudget,     // QueryBudget::max_cost reached.
  kDeadline,       // QueryBudget::deadline reached.
  kQuota,          // Every remaining choice needs a quota-spent predicate.
  kSourceFailure,  // Unrecoverable source death / persistent failures.
  kAccessCap,      // EngineOptions::max_accesses in best-effort mode.
  kTheta,          // theta-approximate halting (an intentional early stop).
};

// "CostBudget", "Deadline", ... for logs and trace events.
const char* TerminationReasonName(TerminationReason reason);

// Proven score interval for one returned entry: the object's aggregate
// score lies in [lower, upper]. For fully probed objects lower == upper.
struct ScoreInterval {
  Score lower = kMinScore;
  Score upper = kMaxScore;
};

// Precision guarantee attached to an early-terminated answer, in the
// theta-approximation sense of Fagin, Lotem & Naor: for every returned
// object y and every excluded object z,
//     (1 + epsilon) * score(y) >= score(z).
// epsilon is proven from the engine's own bounds - the smallest returned
// lower bound vs. the largest excluded upper bound - so it upper-bounds
// the true error without knowing the true scores. epsilon == 0 means the
// answer is provably a correct top-k (only the exact scores may be
// unresolved); epsilon == infinity means no multiplicative guarantee
// exists (the smallest returned lower bound is 0).
struct AnytimeCertificate {
  TerminationReason reason = TerminationReason::kSourceFailure;
  double epsilon = 0.0;
  // Largest possible score of any object *not* returned (including the
  // unseen remainder of the sorted streams).
  Score excluded_ceiling = kMinScore;
  // One interval per result entry, parallel to TopKResult::entries.
  std::vector<ScoreInterval> intervals;

  std::string ToString() const;
};

// The proven epsilon for a returned set whose smallest lower bound is
// `min_lower` against excluded objects bounded by `excluded_ceiling`.
double CertifiedEpsilon(Score min_lower, Score excluded_ceiling);

// The answer to a top-k query: entries ranked by descending score, ties by
// descending ObjectId (the deterministic tie-breaker of Section 3.1).
// Contains min(k, n) entries. Early-terminated runs carry a certificate;
// exact runs leave it empty.
struct TopKResult {
  std::vector<TopKEntry> entries;
  std::optional<AnytimeCertificate> certificate;

  // "u12:0.91 u3:0.87 ..." for logs and examples.
  std::string ToString() const;

  // Equality is over the ranked entries only: two runs that reach the
  // same answer compare equal even if one terminated early.
  friend bool operator==(const TopKResult& a, const TopKResult& b) {
    return a.entries == b.entries;
  }
};

// One candidate row for assembling a certified answer outside the NC
// engine (the baselines): the object's proven score interval at the
// moment the run stopped.
struct CertifiedRow {
  ObjectId object = 0;
  Score lower = kMinScore;
  Score upper = kMaxScore;
};

// Assembles a certified anytime TopKResult from candidate rows: ranks all
// rows by upper bound (the maximal-possible order the engines use), keeps
// the top k as entries scored by their upper bound, and folds the rest -
// plus `unseen_ceiling`, the largest possible score of any never-seen
// object - into the certificate's excluded ceiling and epsilon.
void BuildCertifiedResult(const std::vector<CertifiedRow>& rows,
                          Score unseen_ceiling, size_t k,
                          TerminationReason reason, TopKResult* out);

}  // namespace nc

#endif  // NC_CORE_RESULT_H_
