// Top-k query output shared by the NC engine and all baseline algorithms.

#ifndef NC_CORE_RESULT_H_
#define NC_CORE_RESULT_H_

#include <string>
#include <vector>

#include "common/score.h"

namespace nc {

struct TopKEntry {
  ObjectId object = 0;
  Score score = 0.0;

  friend bool operator==(const TopKEntry& a, const TopKEntry& b) {
    return a.object == b.object && a.score == b.score;
  }
};

// The answer to a top-k query: entries ranked by descending score, ties by
// descending ObjectId (the deterministic tie-breaker of Section 3.1).
// Contains min(k, n) entries.
struct TopKResult {
  std::vector<TopKEntry> entries;

  // "u12:0.91 u3:0.87 ..." for logs and examples.
  std::string ToString() const;

  friend bool operator==(const TopKResult& a, const TopKResult& b) {
    return a.entries == b.entries;
  }
};

}  // namespace nc

#endif  // NC_CORE_RESULT_H_
