// Brute-force top-k over the raw dataset: the test oracle every algorithm
// is checked against. Bypasses the access layer deliberately (it is not a
// middleware algorithm and has no cost).

#ifndef NC_CORE_REFERENCE_H_
#define NC_CORE_REFERENCE_H_

#include "core/result.h"
#include "data/dataset.h"
#include "scoring/scoring_function.h"

namespace nc {

// Scores every object and returns the top min(k, n), ranked by descending
// score with ties broken by descending ObjectId (matching the middleware
// algorithms' deterministic semantics).
TopKResult BruteForceTopK(const Dataset& data, const ScoringFunction& scoring,
                          size_t k);

}  // namespace nc

#endif  // NC_CORE_REFERENCE_H_
