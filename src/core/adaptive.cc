#include "core/adaptive.h"

#include "common/check.h"
#include "core/engine.h"
#include "core/srg_policy.h"

namespace nc {

Status RunAdaptiveNC(SourceSet* sources, const ScoringFunction& scoring,
                     const AdaptiveOptions& options, TopKResult* out,
                     AdaptiveReport* report) {
  NC_CHECK(sources != nullptr);
  NC_CHECK(out != nullptr);

  CostBasedPlanner planner(&scoring, options.planner);
  OptimizerResult plan;
  NC_RETURN_IF_ERROR(planner.Plan(*sources, options.k, &plan));

  SRGPolicy policy(plan.config);
  size_t replans = 0;
  Status replan_status;  // First re-planning failure, surfaced at the end.

  EngineOptions engine_options;
  engine_options.k = options.k;
  engine_options.access_callback = [&](size_t access_index) {
    if (options.drift) options.drift(*sources, access_index);
    if (options.reoptimize_every != 0 &&
        access_index % options.reoptimize_every == 0) {
      OptimizerResult refreshed;
      const Status status = planner.Plan(*sources, options.k, &refreshed);
      if (!status.ok()) {
        if (replan_status.ok()) replan_status = status;
        return;  // Keep the current plan.
      }
      policy.set_config(refreshed.config);
      plan = std::move(refreshed);
      ++replans;
    }
  };

  NC_RETURN_IF_ERROR(RunNC(sources, &scoring, &policy, engine_options, out));
  NC_RETURN_IF_ERROR(replan_status);
  if (report != nullptr) {
    report->replans = replans;
    report->final_plan = plan;
  }
  return Status::OK();
}

}  // namespace nc
