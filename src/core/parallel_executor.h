// Bounded-concurrency execution (Section 9.1.1).
//
// Web sources serve concurrent requests, so elapsed time can drop below
// total cost - but unrestrained concurrency wastes resources. The paper's
// position: parallelize the cost-minimal *sequential* plan within a
// concurrency limit. This executor does exactly that with a discrete-event
// simulation: up to `concurrency` accesses are in flight at once, each
// completing after its simulated latency; scheduling decisions use only
// information whose access has completed, while the plan policy (the same
// SelectPolicy as the sequential engine) still drives which access is
// issued for which unsatisfied task. Accesses still in flight when the
// answer settles are counted as wasted (they were paid for).

#ifndef NC_CORE_PARALLEL_EXECUTOR_H_
#define NC_CORE_PARALLEL_EXECUTOR_H_

#include "access/source.h"
#include "common/status.h"
#include "core/engine.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

struct ParallelOptions {
  size_t k = 1;
  // Maximum accesses in flight; 1 degenerates to the sequential engine's
  // behavior (elapsed == total cost when latency == unit cost).
  size_t concurrency = 4;
  bool no_wild_guesses = true;
  // Extra *speculative* sorted accesses allowed per scheduling epoch (the
  // span between two completions), beyond the one access each unsatisfied
  // task may issue. Speculation reads streams ahead of proven need: it
  // can deepen pipelining (more elapsed-time speedup) but pays for reads
  // the sequential plan might never perform - the paper's "unrestrained
  // concurrency abuses resources" trade-off, exposed as a dial.
  size_t max_speculation = 0;
  // Graceful degradation under source failure, mirroring
  // EngineOptions::tolerate_source_failure: unrecoverable accesses are
  // skipped and the run completes on the surviving capabilities, falling
  // back to a certified anytime answer (ParallelResult::exact false) when
  // a death leaves the query unsatisfiable. Off, the first unrecovered
  // failure surfaces as a kUnavailable error.
  bool tolerate_source_failure = true;

  // Budgets (QueryBudget) attach to the SourceSet (set_budget), not here:
  // the access layer refuses accesses past the cap and the executor
  // settles with a certified answer. The wall deadline is enforced both
  // against the sources' cost clock and against the simulated makespan -
  // whichever trips first ends the run (conservative under concurrency,
  // where makespan runs behind total cost).

  // --- Observability (see docs/OBSERVABILITY.md) -----------------------
  // Optional tracer (must outlive the run): the whole execution is
  // bracketed in a "parallel" phase span and each scheduling epoch emits
  // one kIteration event against the *visible* ceiling, so convergence
  // under concurrency plots on the same axes as the sequential engine.
  // Attach the same tracer to the SourceSet for per-access events.
  obs::QueryTracer* tracer = nullptr;
  // Optional metrics registry (must outlive the run): issue/waste/failure
  // totals and the elapsed-makespan histogram, labeled
  // {algorithm="NC-parallel"}.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ParallelResult {
  TopKResult topk;
  // Simulated makespan.
  double elapsed_time = 0.0;
  // Total access cost (Eq. 1), including wasted in-flight accesses.
  double total_cost = 0.0;
  size_t accesses_issued = 0;
  // Accesses still in flight when the top-k settled.
  size_t wasted_accesses = 0;
  // Issue attempts that failed unrecoverably (retries exhausted or the
  // source died) and were skipped under tolerate_source_failure.
  size_t failed_accesses = 0;
  // False when the answer is an anytime one (budget exhaustion or source
  // failure forced an early settle); reported scores are then upper
  // bounds and `topk.certificate` carries the proven intervals and
  // epsilon.
  bool exact = true;
};

// Runs the query with bounded concurrency. `policy` drives access
// selection exactly as in the sequential engine.
Status RunParallelNC(SourceSet* sources, const ScoringFunction& scoring,
                     SelectPolicy* policy, const ParallelOptions& options,
                     ParallelResult* out);

}  // namespace nc

#endif  // NC_CORE_PARALLEL_EXECUTOR_H_
