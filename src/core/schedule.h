// Global random-access schedule optimization (the "G" of SR/G,
// Section 7.2), adopted from MPro's sampling-based global scheduling.
//
// When several random probes compete, the plan follows one global
// predicate order. A good order probes cheap, highly-filtering predicates
// first: the benefit of probing p_i is the expected drop of the object's
// ceiling, approximated by 1 - E[p_i] with E[p_i] measured on the sample;
// the cost is cr_i. Predicates are ranked by ascending cr_i / (1 - E[p_i])
// (probes per unit of pruning). Predicates without random access sort
// last - the schedule never reaches them.

#ifndef NC_CORE_SCHEDULE_H_
#define NC_CORE_SCHEDULE_H_

#include <vector>

#include "access/cost_model.h"
#include "data/dataset.h"

namespace nc {

// Mean score per predicate over the sample.
std::vector<double> EstimateExpectedScores(const Dataset& sample);

// The benefit/cost-ranked global schedule described above. Deterministic:
// ties break by ascending predicate id.
std::vector<PredicateId> OptimizeSchedule(const Dataset& sample,
                                          const CostModel& cost);

}  // namespace nc

#endif  // NC_CORE_SCHEDULE_H_
