// Mid-query re-optimization for dynamic cost scenarios.
//
// The Web's costs drift with load and availability - the core motivation
// for cost-*based* (rather than scenario-hardwired) optimization. This
// executor re-plans periodically during execution: every
// `reoptimize_every` accesses it re-runs the planner against the sources'
// *current* cost model and swaps the SR/G parameters in place. Because
// depths are score thresholds (not positions), a new depth vector applies
// cleanly to a half-executed query: streams already past their new
// threshold simply stop being attractive, streams short of it resume.

#ifndef NC_CORE_ADAPTIVE_H_
#define NC_CORE_ADAPTIVE_H_

#include <functional>

#include "access/source.h"
#include "common/status.h"
#include "core/planner.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

struct AdaptiveOptions {
  size_t k = 1;
  // Accesses between re-plans; 0 disables re-planning (plan once).
  size_t reoptimize_every = 500;
  PlannerOptions planner;
  // Scenario hook invoked after every access; benchmarks use it to drift
  // the sources' unit costs mid-run.
  std::function<void(SourceSet&, size_t)> drift;
};

struct AdaptiveReport {
  size_t replans = 0;
  // The plan in force when the query finished.
  OptimizerResult final_plan;
};

// Plans, executes, and re-plans per `options`. `report` is optional.
Status RunAdaptiveNC(SourceSet* sources, const ScoringFunction& scoring,
                     const AdaptiveOptions& options, TopKResult* out,
                     AdaptiveReport* report = nullptr);

}  // namespace nc

#endif  // NC_CORE_ADAPTIVE_H_
