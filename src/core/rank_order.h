// The library-wide rank order for (bound, object) pairs.
//
// Every component that ranks objects by maximal-possible score - the
// sequential engine's lazy bound heap, the parallel executor's visible
// top-k, and the brute-force oracle - must break ties identically, or
// the engines drift apart on tie-heavy data (Section 3.1 assumes ties
// away; we make them deterministic instead). The rule:
//   1. higher bound ranks first;
//   2. at equal bounds, any seen object ranks above the virtual unseen
//      sentinel (the paper's Figure 10: a hit object immediately
//      surfaces above `unseen`);
//   3. among seen objects, higher ObjectId ranks first.

#ifndef NC_CORE_RANK_ORDER_H_
#define NC_CORE_RANK_ORDER_H_

#include "common/score.h"

namespace nc {

// True when (bound_a, a) ranks strictly above (bound_b, b).
inline bool RanksAbove(Score bound_a, ObjectId a, Score bound_b, ObjectId b) {
  if (bound_a != bound_b) return bound_a > bound_b;
  if (a == kUnseenObject) return false;
  if (b == kUnseenObject) return true;
  return a > b;
}

}  // namespace nc

#endif  // NC_CORE_RANK_ORDER_H_
