#include "core/planner.h"

#include <algorithm>
#include <memory>

#include "common/check.h"
#include "core/engine.h"
#include "core/schedule.h"
#include "data/sampling.h"

namespace nc {

const char* SearchSchemeName(SearchScheme scheme) {
  switch (scheme) {
    case SearchScheme::kNaive:
      return "Naive";
    case SearchScheme::kStrategies:
      return "Strategies";
    case SearchScheme::kHClimb:
      return "HClimb";
  }
  return "unknown";
}

CostBasedPlanner::CostBasedPlanner(const ScoringFunction* scoring,
                                   PlannerOptions options)
    : scoring_(scoring), options_(options) {
  NC_CHECK(scoring_ != nullptr);
  NC_CHECK(options_.sample_size > 0);
}

Status CostBasedPlanner::Plan(const SourceSet& sources, size_t k,
                              OptimizerResult* out) {
  NC_CHECK(out != nullptr);
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (scoring_->arity() != sources.num_predicates()) {
    return Status::InvalidArgument(
        "scoring function arity does not match predicate count");
  }

  // Provider-backed sources have no in-memory Dataset to draw from: fall
  // back to the paper's dummy-uniform estimation mode.
  const bool from_data =
      options_.sample_mode == SampleMode::kFromData && sources.has_dataset();
  const size_t replicas = std::max<size_t>(1, options_.sample_replicas);
  std::vector<Dataset> samples;
  samples.reserve(replicas);
  for (size_t r = 0; r < replicas; ++r) {
    const uint64_t seed = options_.seed + r;
    samples.push_back(
        from_data
            ? SampleDataset(sources.dataset(), options_.sample_size, seed)
            : DummyUniformSample(sources.num_predicates(),
                                 options_.sample_size, seed));
  }
  const size_t k_prime =
      ScaledSampleK(k, sources.num_objects(), samples[0].num_objects());

  // G-optimization first (a schedule for the H-search to assume), then
  // H-optimization (Section 7.2's two-step approximation).
  const std::vector<PredicateId> schedule =
      OptimizeSchedule(samples[0], sources.cost_model());

  SimulationCostEstimator estimator(std::move(samples), sources.cost_model(),
                                    scoring_, k_prime);
  // Planning work (simulations, hill-climb sweeps) bills to the query's
  // profiler when one is attached to the sources.
  estimator.set_profiler(sources.profiler());

  std::unique_ptr<DepthOptimizer> optimizer;
  switch (options_.scheme) {
    case SearchScheme::kNaive:
      optimizer = std::make_unique<NaiveGridOptimizer>(options_.grid_step);
      break;
    case SearchScheme::kStrategies:
      optimizer = std::make_unique<StrategiesOptimizer>(options_.grid_step);
      break;
    case SearchScheme::kHClimb:
      optimizer = std::make_unique<HClimbOptimizer>(
          options_.hclimb_restarts, options_.grid_step, options_.seed);
      break;
  }
  // Depth search for one fixed schedule. After HClimb we always sweep the
  // cheap query-driven Strategies families too (equal-depth diagonal and
  // focused axes): a handful of extra simulations that cover the
  // plateau-guarded corners where hill climbing sees no gradient (e.g.
  // highly correlated data, where the optimum hides in the last mesh cell
  // before depth 1). Naive's grid is already a superset.
  const auto optimize_depths =
      [&](const std::vector<PredicateId>& probe_order,
          OptimizerResult* result) -> Status {
    NC_RETURN_IF_ERROR(optimizer->Optimize(&estimator, probe_order, result));
    if (options_.scheme == SearchScheme::kHClimb) {
      StrategiesOptimizer families(options_.grid_step);
      OptimizerResult family_best;
      NC_RETURN_IF_ERROR(
          families.Optimize(&estimator, probe_order, &family_best));
      const size_t combined =
          result->simulations + family_best.simulations;
      if (family_best.estimated_cost < result->estimated_cost) {
        *result = std::move(family_best);
      }
      result->simulations = combined;
    }
    return Status::OK();
  };

  if (options_.joint_schedule_search) {
    const size_t m = sources.num_predicates();
    if (m > 6) {
      return Status::InvalidArgument(
          "joint schedule search is limited to m <= 6 (m! permutations)");
    }
    std::vector<PredicateId> permutation(m);
    for (size_t i = 0; i < m; ++i) {
      permutation[i] = static_cast<PredicateId>(i);
    }
    OptimizerResult best;
    size_t simulations = 0;
    do {
      OptimizerResult candidate;
      NC_RETURN_IF_ERROR(optimize_depths(permutation, &candidate));
      simulations += candidate.simulations;
      if (best.config.depths.empty() ||
          candidate.estimated_cost < best.estimated_cost) {
        best = std::move(candidate);
      }
    } while (std::next_permutation(permutation.begin(), permutation.end()));
    best.simulations = simulations;
    *out = std::move(best);
  } else {
    NC_RETURN_IF_ERROR(optimize_depths(schedule, out));
  }

  // Full-scale prediction of the chosen plan: the same sample simulation
  // that scored it, re-run once to capture the per-predicate footprint
  // the post-run CostAudit diffs against metered actuals.
  estimator.Predict(out->config, sources.num_objects(), &out->prediction);
  return Status::OK();
}

Status RunOptimizedNC(SourceSet* sources, const ScoringFunction& scoring,
                      size_t k, const PlannerOptions& options,
                      TopKResult* out, OptimizerResult* plan_out) {
  NC_CHECK(sources != nullptr);
  NC_CHECK(out != nullptr);
  CostBasedPlanner planner(&scoring, options);
  OptimizerResult plan;
  NC_RETURN_IF_ERROR(planner.Plan(*sources, k, &plan));
  if (plan_out != nullptr) *plan_out = plan;

  SRGPolicy policy(plan.config);
  EngineOptions engine_options;
  engine_options.k = k;
  engine_options.profiler = sources->profiler();
  return RunNC(sources, &scoring, &policy, engine_options, out);
}

}  // namespace nc
