#include "core/session.h"

#include "common/check.h"
#include "core/engine.h"
#include "core/srg_policy.h"

namespace nc {

QuerySession::QuerySession(const ScoringFunction* scoring,
                           PlannerOptions options)
    : scoring_(scoring), options_(options) {
  NC_CHECK(scoring_ != nullptr);
}

std::string QuerySession::PlanKey(const CostModel& model, size_t k) {
  std::string key = "k=" + std::to_string(k) + "|" + model.ToString();
  key += "|pages=";
  for (size_t b : model.sorted_page_size) {
    key += std::to_string(b);
    key += ",";
  }
  key += "|groups=";
  for (int g : model.attribute_groups) {
    key += std::to_string(g);
    key += ",";
  }
  return key;
}

Status QuerySession::Query(SourceSet* sources, size_t k, TopKResult* out) {
  NC_CHECK(sources != nullptr);
  NC_CHECK(out != nullptr);
  const std::string key = PlanKey(sources->cost_model(), k);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    CostBasedPlanner planner(scoring_, options_);
    OptimizerResult plan;
    NC_RETURN_IF_ERROR(planner.Plan(*sources, k, &plan));
    ++plans_computed_;
    it = cache_.emplace(key, std::move(plan)).first;
  } else {
    ++cache_hits_;
  }
  last_plan_ = it->second;

  SRGPolicy policy(it->second.config);
  EngineOptions engine_options;
  engine_options.k = k;
  NCEngine engine(sources, scoring_, &policy, engine_options);
  const Status status = engine.Run(out);
  last_query_exact_ = status.ok() && engine.last_run_exact();
  if (status.ok()) {
    const AccessStats& stats = sources->stats();
    retried_attempts_ += stats.TotalRetried();
    failed_accesses_ += stats.transient_failures + stats.timeout_failures +
                        stats.abandoned_accesses;
    source_deaths_ += stats.source_deaths;
  }
  return status;
}

}  // namespace nc
