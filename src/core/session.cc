#include "core/session.h"

#include "common/check.h"
#include "core/engine.h"
#include "core/srg_policy.h"

namespace nc {

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kNone:
      return "none";
    case QueryOutcome::kExact:
      return "exact";
    case QueryOutcome::kApproximate:
      return "approximate";
    case QueryOutcome::kDegraded:
      return "degraded";
    case QueryOutcome::kBudgetExhausted:
      return "budget_exhausted";
    case QueryOutcome::kError:
      return "error";
  }
  return "unknown";
}

QuerySession::QuerySession(const ScoringFunction* scoring,
                           PlannerOptions options,
                           obs::TelemetryHub* shared_hub)
    : scoring_(scoring),
      options_(options),
      active_hub_(shared_hub != nullptr ? shared_hub : &hub_) {
  NC_CHECK(scoring_ != nullptr);
}

std::string QuerySession::PlanKey(const CostModel& model, size_t k) {
  std::string key = "k=" + std::to_string(k) + "|" + model.ToString();
  key += "|pages=";
  for (size_t b : model.sorted_page_size) {
    key += std::to_string(b);
    key += ",";
  }
  key += "|groups=";
  for (int g : model.attribute_groups) {
    key += std::to_string(g);
    key += ",";
  }
  return key;
}

Status QuerySession::Query(SourceSet* sources, size_t k, TopKResult* out) {
  return Query(sources, k, QueryHooks{}, out);
}

Status QuerySession::Query(SourceSet* sources, size_t k,
                           const QueryHooks& hooks, TopKResult* out) {
  NC_CHECK(sources != nullptr);
  NC_CHECK(out != nullptr);
  // The session's hub outlives every per-query SourceSet rewind: attach
  // it before planning so a replica fleet starts warm (breakers, deaths,
  // and EWMAs from earlier queries re-applied) and this query's accesses
  // feed the cross-query sketches.
  sources->set_telemetry_hub(active_hub_);
  // A session-attached tracer covers the whole stack: the sources emit
  // access/attempt/replica events, the engine its iteration and phase
  // spans. Detached (nullptr), the caller's own sources tracer (if any)
  // is left in place.
  if (tracer_ != nullptr) sources->set_tracer(tracer_);
  // Same contract for a session-attached profiler: attached before
  // planning so optimizer simulations bill to the query it plans for.
  if (profiler_ != nullptr) sources->set_profiler(profiler_);
  const std::string key = PlanKey(sources->cost_model(), k);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    CostBasedPlanner planner(scoring_, options_);
    OptimizerResult plan;
    NC_RETURN_IF_ERROR(planner.Plan(*sources, k, &plan));
    ++plans_computed_;
    it = cache_.emplace(key, std::move(plan)).first;
  } else {
    ++cache_hits_;
  }
  last_plan_ = it->second;

  SRGPolicy policy(it->second.config);
  EngineOptions engine_options;
  engine_options.k = k;
  if (tracer_ != nullptr) engine_options.tracer = tracer_;
  if (profiler_ != nullptr) engine_options.profiler = profiler_;
  // The hook closes over a pointer filled right after construction: the
  // engine cannot invoke the callback before Run().
  NCEngine* engine_ptr = nullptr;
  if (hooks.on_access) {
    engine_options.access_callback = [&hooks, &engine_ptr](size_t accesses) {
      hooks.on_access(*engine_ptr, accesses);
    };
  }
  NCEngine engine(sources, scoring_, &policy, engine_options);
  engine_ptr = &engine;
  const Status status = engine.Run(out);
  last_query_exact_ = status.ok() && engine.last_run_exact();

  // Accesses were spent (and may have failed) even when the query errors
  // out, so the recovery telemetry is credited unconditionally.
  const AccessStats& stats = sources->stats();
  retried_attempts_ += stats.TotalRetried();
  failed_accesses_ += stats.transient_failures + stats.timeout_failures +
                      stats.abandoned_accesses;
  source_deaths_ += stats.source_deaths;

  // The cost audit: the plan's full-scale Eq. 1 prediction against the
  // metered actuals of the run just finished (before any caller Reset).
  last_cost_audit_ = obs::BuildCostAudit(it->second.prediction, *sources);
  if (last_cost_audit_.valid && obs::ShouldSample(active_hub_)) {
    for (PredicateId i = 0; i < last_cost_audit_.predicates.size(); ++i) {
      const obs::PredicateAudit& row = last_cost_audit_.predicates[i];
      active_hub_->ObservePredictionError(i, row.cost_relative_error);
    }
  }
  if (obs::ShouldTrace(sources->tracer())) {
    obs::QueryTracer* tracer = sources->tracer();
    if (last_cost_audit_.valid) {
      for (PredicateId i = 0; i < last_cost_audit_.predicates.size(); ++i) {
        const obs::PredicateAudit& row = last_cost_audit_.predicates[i];
        tracer->RecordTelemetry("cost_audit", i, row.predicted_cost,
                                row.actual_cost, sources->accrued_cost());
      }
      tracer->RecordTelemetry("cost_audit_total", 0,
                              last_cost_audit_.predicted_total,
                              last_cost_audit_.actual_total,
                              sources->accrued_cost());
    }
  }
  active_hub_->NoteQuery();

  if (!status.ok()) {
    last_query_outcome_ = QueryOutcome::kError;
  } else if (out->certificate.has_value()) {
    switch (out->certificate->reason) {
      case TerminationReason::kCostBudget:
      case TerminationReason::kDeadline:
      case TerminationReason::kQuota:
        last_query_outcome_ = QueryOutcome::kBudgetExhausted;
        ++budget_exhausted_queries_;
        break;
      case TerminationReason::kTheta:
        last_query_outcome_ = QueryOutcome::kApproximate;
        break;
      case TerminationReason::kSourceFailure:
      case TerminationReason::kAccessCap:
        last_query_outcome_ = QueryOutcome::kDegraded;
        break;
    }
  } else if (engine.last_run_degraded()) {
    last_query_outcome_ = QueryOutcome::kDegraded;
  } else if (engine.last_run_exact()) {
    last_query_outcome_ = QueryOutcome::kExact;
  } else {
    last_query_outcome_ = QueryOutcome::kApproximate;
  }
  return status;
}

}  // namespace nc
