// Simulation-based cost estimation (Section 7.3).
//
// Boolean optimizers estimate costs analytically from selectivities; for
// an arbitrary monotone F no closed form exists, so the paper estimates a
// plan's cost by *simulating* it: run the plan over a small sample as a
// top-k' query (k' = k * s / n) under the real cost model and read off the
// accrued cost. Estimates are comparable across plans, which is all the
// argmin search needs.

#ifndef NC_CORE_ESTIMATOR_H_
#define NC_CORE_ESTIMATOR_H_

#include <string>
#include <unordered_map>

#include "access/cost_model.h"
#include "common/status.h"
#include "data/dataset.h"
#include "core/srg_policy.h"
#include "scoring/scoring_function.h"

namespace nc::obs {
class Profiler;
}  // namespace nc::obs

namespace nc {

// Full-scale prediction of one plan's access footprint: what the
// estimator expects the chosen SR/G configuration to do on the real
// database, derived from the same sample simulations that scored it and
// scaled by n / s. This is the "predicted" side of the CostAudit
// (obs/run_report.h): after the real run, the metered AccessStats are
// diffed against it, closing the loop on Section 7.3's estimation.
struct CostPrediction {
  bool valid = false;
  // Expected per-predicate access counts and Eq. 1 cost shares at full
  // scale. Fractional: they are sample means scaled by n / s, not
  // integers. Page-charge quantization scales only approximately (the
  // sample's ceil(ns / b) is what gets scaled), which is part of the
  // estimation error the audit measures.
  std::vector<double> sorted_accesses;
  std::vector<double> random_accesses;
  std::vector<double> cost;
  double total_cost = 0.0;
};

// Interface so tests can substitute analytic landscapes.
class CostEstimator {
 public:
  virtual ~CostEstimator() = default;

  // Estimated total access cost of the SR/G plan `config`; lower is
  // better. Must be deterministic for a given config.
  virtual double EstimateCost(const SRGConfig& config) = 0;

  virtual size_t num_predicates() const = 0;

  // Number of plan evaluations that actually ran (optimization overhead;
  // memoized repeats excluded).
  virtual size_t simulations() const = 0;

  // Optional profiler (obs/profiler.h; must outlive the estimator).
  // Implementations bill non-memoized plan simulations to
  // kOptimizerSimulate; the optimizer bills each hill-climbing sweep to
  // kHillClimbStep through the same handle.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }
  obs::Profiler* profiler() const { return profiler_; }

 protected:
  obs::Profiler* profiler_ = nullptr;
};

// Estimates by executing NC+SR/G over one or more sample datasets.
//
// The scaled retrieval size k' = k * s / n is often tiny (1 for typical
// k/n ratios), which makes a single-sample estimate noisy; averaging the
// simulated cost over several independent sample draws ("replicas")
// reduces that variance at proportional extra optimization overhead.
class SimulationCostEstimator final : public CostEstimator {
 public:
  // Single-sample form. `sample` is the estimation workload (real draw or
  // dummy uniform); `cost` the real scenario's unit costs; `k_prime` the
  // scaled retrieval size (data/sampling.h::ScaledSampleK).
  SimulationCostEstimator(Dataset sample, CostModel cost,
                          const ScoringFunction* scoring, size_t k_prime);

  // Multi-replica form: the estimate is the mean simulated cost across
  // `samples` (all queried as top-k').
  SimulationCostEstimator(std::vector<Dataset> samples, CostModel cost,
                          const ScoringFunction* scoring, size_t k_prime);

  double EstimateCost(const SRGConfig& config) override;
  size_t num_predicates() const override { return cost_.num_predicates(); }
  size_t simulations() const override { return simulations_; }

  // Re-simulates `config` over the samples capturing the per-predicate
  // access tallies, and scales them to a database of `full_n` objects.
  // *out is invalid (valid == false) when the config does not validate
  // or a simulation fails. Does not count toward simulations() - it is
  // audit bookkeeping for an already-chosen plan, not search work.
  void Predict(const SRGConfig& config, size_t full_n, CostPrediction* out);

 private:
  std::vector<Dataset> samples_;
  CostModel cost_;
  const ScoringFunction* scoring_;
  size_t k_prime_;
  size_t simulations_ = 0;
  // Memo keyed by the config's canonical string; hill climbing revisits
  // neighbors constantly.
  std::unordered_map<std::string, double> memo_;
};

}  // namespace nc

#endif  // NC_CORE_ESTIMATOR_H_
