#include "core/parallel_executor.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "common/check.h"
#include "core/candidate.h"
#include "core/rank_order.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace nc {

namespace {

// An access that was issued (and paid for) but whose result is not yet
// visible to the scheduler.
struct InFlight {
  double completion_time = 0.0;
  uint64_t sequence = 0;  // FIFO tie-break.
  Access access;
  // For sorted accesses: the stream position this read consumed. Results
  // can complete out of order; the ceiling may only advance over the
  // contiguous prefix of applied positions (see ApplyNext).
  size_t rank = 0;
  // Result captured at issue time (the simulated source decides its answer
  // immediately; the network delays its visibility).
  ObjectId object = 0;
  Score score = 0.0;
  // Whole-row scores from a multi-attribute source.
  std::vector<std::pair<PredicateId, Score>> bundled;

  friend bool operator>(const InFlight& a, const InFlight& b) {
    if (a.completion_time != b.completion_time) {
      return a.completion_time > b.completion_time;
    }
    return a.sequence > b.sequence;
  }
};

struct RankedEntry {
  ObjectId object = 0;
  Score bound = 0.0;
  bool complete = false;
};

class ParallelRun {
 public:
  ParallelRun(SourceSet* sources, const ScoringFunction& scoring,
              SelectPolicy* policy, const ParallelOptions& options)
      : sources_(sources),
        scoring_(scoring),
        policy_(policy),
        options_(options),
        pool_(sources->num_predicates()),
        bounds_(&scoring_),
        visible_ceiling_(sources->num_predicates(), kMaxScore),
        applied_frontier_(sources->num_predicates(), 0),
        ooo_scores_(sources->num_predicates()) {}

  Status Execute(ParallelResult* out);

 private:
  // Top-(k + extra) of the *visible* state (applied results only), rank
  // order. With extra > 0 the surplus entries rank-dominate everything
  // not returned, which is what certifies the excluded ceiling.
  void VisibleTopK(std::vector<RankedEntry>* out, size_t extra = 0);

  // Necessary choices of `target` against the visible state, minus
  // accesses already in flight and physically impossible ones.
  // Quota-spent predicates are withheld; epoch_skipped_quota_ records
  // that some choice was barred by quota this epoch.
  void BuildAlternatives(ObjectId target, std::vector<Access>* out);

  // Performs the access against the sources now (accounting happens at
  // issue) and schedules its visibility. False when the access failed
  // unrecoverably and nothing was scheduled; `status` (optional) receives
  // the failure.
  bool Issue(const Access& access, Status* status);

  // Makes the earliest pending result visible; advances the clock.
  void ApplyNext();

  // Settles on the current visible top-k (scores are upper bounds) with
  // an AnytimeCertificate and marks the result inexact.
  void EmitCertified(TerminationReason reason, ParallelResult* out);

  // Fills the accounting fields of *out from the run's state.
  void FillAccounting(ParallelResult* out) const;

  SourceSet* sources_;
  const ScoringFunction& scoring_;
  SelectPolicy* policy_;
  ParallelOptions options_;

  CandidatePool pool_;
  BoundEvaluator bounds_;
  std::vector<Score> visible_ceiling_;
  // Length of the contiguous prefix of applied sorted results, per
  // predicate, plus the buffer of results that landed beyond it.
  std::vector<size_t> applied_frontier_;
  std::vector<std::map<size_t, Score>> ooo_scores_;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>>
      pending_;
  std::set<std::pair<PredicateId, ObjectId>> random_in_flight_;
  // Tasks already served this epoch (cleared whenever a completion lands).
  std::set<ObjectId> issued_this_epoch_;
  double now_ = 0.0;
  uint64_t sequence_ = 0;
  size_t issued_ = 0;
  size_t failed_ = 0;
  // Consecutive issue attempts that failed unrecoverably; bounds the
  // degraded-retry loop the same way the sequential engine does.
  size_t consecutive_failures_ = 0;
  // Set when an issue was refused with kResourceExhausted: the budget or
  // a quota ran out mid-epoch (nothing was billed for the refusal).
  bool budget_stopped_ = false;
  // Some necessary choice was withheld this epoch because its
  // predicate's quota is spent; a stall then certifies as kQuota.
  bool epoch_skipped_quota_ = false;
  bool universe_seeded_ = false;
};

void ParallelRun::VisibleTopK(std::vector<RankedEntry>* out, size_t extra) {
  const size_t m = sources_->num_predicates();
  out->clear();
  out->reserve(pool_.size() + 1);
  for (Candidate& c : pool_) {
    const bool complete = c.IsComplete(m);
    const Score bound =
        complete ? bounds_.Exact(c) : bounds_.Upper(c, visible_ceiling_);
    out->push_back(RankedEntry{c.id, bound, complete});
  }
  if (!universe_seeded_ && pool_.size() < sources_->num_objects()) {
    out->push_back(RankedEntry{
        kUnseenObject, scoring_.Evaluate(visible_ceiling_), false});
  }
  const size_t take = std::min(options_.k + extra, out->size());
  std::partial_sort(out->begin(), out->begin() + take, out->end(),
                    [](const RankedEntry& a, const RankedEntry& b) {
                      return RanksAbove(a.bound, a.object, b.bound, b.object);
                    });
  out->resize(take);
}

void ParallelRun::BuildAlternatives(ObjectId target,
                                    std::vector<Access>* out) {
  out->clear();
  const size_t m = sources_->num_predicates();
  if (target == kUnseenObject) {
    for (PredicateId i = 0; i < m; ++i) {
      if (sources_->has_sorted(i) && !sources_->exhausted(i)) {
        if (sources_->quota_exhausted(i)) {
          epoch_skipped_quota_ = true;
          continue;
        }
        out->push_back(Access::Sorted(i));
      }
    }
    return;
  }
  const Candidate* c = pool_.Find(target);
  NC_CHECK(c != nullptr);
  for (PredicateId i = 0; i < m; ++i) {
    if (c->IsEvaluated(i)) continue;
    if (sources_->has_sorted(i) && !sources_->exhausted(i)) {
      if (sources_->quota_exhausted(i)) {
        epoch_skipped_quota_ = true;
        continue;
      }
      out->push_back(Access::Sorted(i));
    }
  }
  for (PredicateId i = 0; i < m; ++i) {
    if (c->IsEvaluated(i)) continue;
    if (sources_->has_random(i) &&
        random_in_flight_.find({i, target}) == random_in_flight_.end()) {
      if (sources_->quota_exhausted(i)) {
        epoch_skipped_quota_ = true;
        continue;
      }
      out->push_back(Access::Random(i, target));
    }
  }
}

bool ParallelRun::Issue(const Access& access, Status* status) {
  InFlight flight;
  flight.access = access;
  flight.sequence = sequence_++;
  if (access.type == AccessType::kSorted) {
    flight.rank = sources_->sorted_position(access.predicate);
    std::optional<SortedHit> hit;
    const Status s = sources_->TrySortedAccess(access.predicate, &hit);
    if (!s.ok()) {
      // A budget refusal is not a source failure; only count the latter.
      if (s.code() != StatusCode::kResourceExhausted) ++failed_;
      if (status != nullptr) *status = s;
      return false;
    }
    NC_CHECK(hit.has_value());
    flight.object = hit->object;
    flight.score = hit->score;
    flight.bundled = hit->bundled;
  } else {
    flight.object = access.object;
    const Status s =
        sources_->TryRandomAccess(access.predicate, access.object,
                                  &flight.score);
    if (!s.ok()) {
      if (s.code() != StatusCode::kResourceExhausted) ++failed_;
      if (status != nullptr) *status = s;
      return false;
    }
    random_in_flight_.insert({access.predicate, access.object});
  }
  // Retries and timeouts held the line before the request that finally
  // succeeded went out; its latency starts after that penalty.
  flight.completion_time =
      now_ + sources_->last_access_penalty() +
      sources_->DrawLatency(access.type, access.predicate);
  pending_.push(flight);
  ++issued_;
  return true;
}

void ParallelRun::ApplyNext() {
  NC_CHECK(!pending_.empty());
  const InFlight flight = pending_.top();
  pending_.pop();
  now_ = std::max(now_, flight.completion_time);
  issued_this_epoch_.clear();
  const PredicateId i = flight.access.predicate;
  if (flight.access.type == AccessType::kSorted) {
    Candidate& c = pool_.GetOrCreate(flight.object);
    if (!c.IsEvaluated(i)) c.SetScore(i, flight.score);
    for (const auto& [predicate, score] : flight.bundled) {
      if (!c.IsEvaluated(predicate)) c.SetScore(predicate, score);
    }
    // Sorted results complete out of order under latency jitter, and a
    // deep entry's score is NOT a sound bound while shallower reads are
    // still in flight: an unseen object could land at one of those
    // shallower positions with a higher score. The ceiling therefore
    // tracks only the contiguous prefix of applied positions.
    auto& buffered = ooo_scores_[i];
    buffered.emplace(flight.rank, flight.score);
    bool advanced = false;
    Score frontier_score = kMaxScore;
    while (!buffered.empty() &&
           buffered.begin()->first == applied_frontier_[i]) {
      frontier_score = buffered.begin()->second;
      buffered.erase(buffered.begin());
      ++applied_frontier_[i];
      advanced = true;
    }
    if (advanced) {
      // Every object of an exhausted list is visible: no unseen object
      // remains on it.
      visible_ceiling_[i] = applied_frontier_[i] >= sources_->num_objects()
                                ? kMinScore
                                : frontier_score;
    }
  } else {
    random_in_flight_.erase({i, flight.object});
    Candidate* c = pool_.Find(flight.object);
    NC_CHECK(c != nullptr);
    if (!c->IsEvaluated(i)) c->SetScore(i, flight.score);
  }
}

void ParallelRun::FillAccounting(ParallelResult* out) const {
  out->elapsed_time = now_;
  out->total_cost = sources_->accrued_cost();
  out->accesses_issued = issued_;
  out->wasted_accesses = pending_.size();
  out->failed_accesses = failed_;
}

void ParallelRun::EmitCertified(TerminationReason reason,
                                ParallelResult* out) {
  // Ranking k + 1 entries verifies one bound past the answer, which
  // dominates every visible object not returned; the sentinel (no
  // concrete object) folds into the excluded ceiling, covering the
  // unseen remainder. Results still in flight were paid for but are not
  // visible, so they contribute nothing the intervals must explain.
  std::vector<RankedEntry> ranked;
  VisibleTopK(&ranked, /*extra=*/1);
  out->topk.entries.clear();
  AnytimeCertificate cert;
  cert.reason = reason;
  Score min_lower = kMaxScore;
  for (const RankedEntry& e : ranked) {
    if (e.object == kUnseenObject ||
        out->topk.entries.size() == options_.k) {
      cert.excluded_ceiling = std::max(cert.excluded_ceiling, e.bound);
      continue;
    }
    Candidate* c = pool_.Find(e.object);
    NC_CHECK(c != nullptr);
    const Score lower = e.complete ? e.bound : bounds_.Lower(*c);
    out->topk.entries.push_back(TopKEntry{e.object, e.bound});
    cert.intervals.push_back(ScoreInterval{lower, e.bound});
    min_lower = std::min(min_lower, lower);
  }
  if (out->topk.entries.empty()) min_lower = kMinScore;
  cert.epsilon = CertifiedEpsilon(min_lower, cert.excluded_ceiling);
  if (obs::ShouldTrace(options_.tracer)) {
    options_.tracer->RecordCertificate(TerminationReasonName(reason),
                                       cert.epsilon, cert.excluded_ceiling,
                                       sources_->accrued_cost());
  }
  out->topk.certificate = std::move(cert);
  out->exact = false;
  FillAccounting(out);
}

Status ParallelRun::Execute(ParallelResult* out) {
  NC_CHECK(out != nullptr);
  out->topk.entries.clear();
  out->topk.certificate.reset();
  const size_t m = sources_->num_predicates();
  const size_t n = sources_->num_objects();
  NC_RETURN_IF_ERROR(sources_->cost_model().Validate());
  if (scoring_.arity() != m) {
    return Status::InvalidArgument(
        "scoring function arity does not match predicate count");
  }
  if (options_.k == 0 || options_.concurrency == 0) {
    return Status::InvalidArgument("k and concurrency must be positive");
  }

  policy_->Reset(*sources_);
  universe_seeded_ =
      !options_.no_wild_guesses || !sources_->cost_model().any_sorted();
  if (universe_seeded_) {
    for (ObjectId u = 0; u < n; ++u) pool_.GetOrCreate(u);
  }

  const size_t runaway_guard = 2 * n * m + options_.k + 64;
  // Matches the sequential engine's guard against persistent flaking.
  constexpr size_t kMaxConsecutiveFailures = 32;
  const bool tracing = obs::ShouldTrace(options_.tracer);
  std::vector<RankedEntry> ranked;
  std::vector<Access> alternatives;
  while (true) {
    VisibleTopK(&ranked);
    if (tracing) {
      // One iteration event per scheduling epoch: the leading unsatisfied
      // task and the visible ceiling (the concurrent analogue of theta).
      ObjectId epoch_target = kUnseenObject;
      for (const RankedEntry& e : ranked) {
        if (!e.complete) {
          epoch_target = e.object;
          break;
        }
      }
      options_.tracer->RecordIteration(
          epoch_target, 0, scoring_.Evaluate(visible_ceiling_),
          ranked.empty() ? 0.0 : ranked.back().bound, pool_.size(),
          sources_->accrued_cost());
    }
    const bool all_complete =
        std::all_of(ranked.begin(), ranked.end(),
                    [](const RankedEntry& e) { return e.complete; });
    if (all_complete) {
      out->topk.entries.clear();
      for (const RankedEntry& e : ranked) {
        out->topk.entries.push_back(TopKEntry{e.object, e.bound});
      }
      out->exact = true;
      FillAccounting(out);
      return Status::OK();
    }

    // Budget exhaustion settles with a certified answer (the exact
    // check above runs first). The deadline trips on whichever clock
    // crosses first: the sources' cost clock or the simulated makespan.
    {
      const QueryBudget& budget = sources_->budget();
      const bool cost_stop = sources_->cost_budget_exhausted();
      const bool deadline_stop =
          sources_->deadline_exceeded() ||
          (budget.deadline > 0.0 && now_ >= budget.deadline);
      if (cost_stop || deadline_stop) {
        EmitCertified(cost_stop ? TerminationReason::kCostBudget
                                : TerminationReason::kDeadline,
                      out);
        return Status::OK();
      }
    }
    epoch_skipped_quota_ = false;

    // Issue phase: one access per unsatisfied task per epoch, rank order,
    // while slots remain.
    bool issued_any = false;
    bool failed_this_round = false;
    const auto select_and_issue = [&](const RankedEntry& e) -> Status {
      EngineView view;
      view.sources = sources_;
      view.scoring = &scoring_;
      view.k = options_.k;
      view.target = e.object;
      view.target_state =
          e.object == kUnseenObject ? nullptr : pool_.Find(e.object);
      const Access access = policy_->Select(alternatives, view);
      const bool offered =
          std::find(alternatives.begin(), alternatives.end(), access) !=
          alternatives.end();
      NC_CHECK(offered);
      Status status = Status::OK();
      if (Issue(access, &status)) {
        issued_any = true;
        consecutive_failures_ = 0;
        // One access per task per epoch; a failed issue stays eligible
        // for retry against the re-derived capabilities.
        issued_this_epoch_.insert(e.object);
        return Status::OK();
      }
      if (status.code() == StatusCode::kResourceExhausted) {
        // The budget crossed mid-epoch (an earlier issue's cost or retry
        // penalty pushed it over); nothing was billed for the refusal.
        budget_stopped_ = true;
        return Status::OK();
      }
      NC_CHECK(status.code() == StatusCode::kUnavailable);
      failed_this_round = true;
      ++consecutive_failures_;
      return status;
    };

    // Discovery (the unseen sentinel's sorted reads) is the speculative
    // part of a plan: a candidate's probe stays useful however the ranks
    // shift, but a discovery read is only needed if the sentinel is still
    // in the way once everything in flight lands. Serve it when it leads
    // the rank order, or as a stall-breaker when no concrete task could
    // issue this epoch.
    bool first_incomplete = true;
    bool issued_concrete = false;
    const RankedEntry* deferred_sentinel = nullptr;
    for (const RankedEntry& e : ranked) {
      if (pending_.size() >= options_.concurrency || budget_stopped_) break;
      if (e.complete) continue;
      const bool is_first = first_incomplete;
      first_incomplete = false;
      if (e.object == kUnseenObject && !is_first) {
        deferred_sentinel = &e;
        continue;
      }
      if (issued_this_epoch_.count(e.object) != 0) continue;
      BuildAlternatives(e.object, &alternatives);
      if (alternatives.empty()) continue;  // Waiting on in-flight results.
      const Status status = select_and_issue(e);
      if (!status.ok() && !options_.tolerate_source_failure) return status;
      if (status.ok() && e.object != kUnseenObject) issued_concrete = true;
    }
    if (deferred_sentinel != nullptr && !issued_concrete &&
        !budget_stopped_ && pending_.size() < options_.concurrency &&
        issued_this_epoch_.count(kUnseenObject) == 0) {
      BuildAlternatives(kUnseenObject, &alternatives);
      if (!alternatives.empty()) {
        const Status status = select_and_issue(*deferred_sentinel);
        if (!status.ok() && !options_.tolerate_source_failure) return status;
      }
    }

    // Optional speculation: read streams ahead for the highest-ranked task
    // that still has a sorted alternative.
    for (size_t spec = 0; spec < options_.max_speculation; ++spec) {
      if (pending_.size() >= options_.concurrency || budget_stopped_) break;
      bool launched = false;
      for (const RankedEntry& e : ranked) {
        if (e.complete) continue;
        BuildAlternatives(e.object, &alternatives);
        // Speculate on sorted accesses only: a duplicate random probe is
        // pure waste, but a deeper read is at worst early.
        std::erase_if(alternatives, [](const Access& a) {
          return a.type != AccessType::kSorted;
        });
        if (alternatives.empty()) continue;
        const Status status = select_and_issue(e);
        if (!status.ok()) {
          if (!options_.tolerate_source_failure) return status;
          continue;
        }
        launched = true;
        break;
      }
      if (!launched) break;
    }

    if (budget_stopped_) {
      // Mid-epoch refusal: settle now with whatever is visible (results
      // still in flight were paid for and count as wasted).
      EmitCertified(sources_->cost_budget_exhausted()
                        ? TerminationReason::kCostBudget
                        : (sources_->deadline_exceeded()
                               ? TerminationReason::kDeadline
                               : TerminationReason::kQuota),
                    out);
      return Status::OK();
    }
    if (consecutive_failures_ >= kMaxConsecutiveFailures) {
      // Sources keep failing without anything completing in between:
      // settle for what is visible rather than spin.
      EmitCertified(TerminationReason::kSourceFailure, out);
      return Status::OK();
    }
    if (issued_ > runaway_guard) {
      return Status::Internal("parallel executor exceeded the runaway guard");
    }
    if (!pending_.empty()) {
      ApplyNext();
    } else if (!issued_any) {
      if (failed_this_round) continue;  // Retry against what survives.
      if (epoch_skipped_quota_) {
        // Every remaining choice needs a quota-spent predicate.
        EmitCertified(TerminationReason::kQuota, out);
        return Status::OK();
      }
      if (options_.tolerate_source_failure && sources_->any_source_down()) {
        // A death left the remaining tasks unsatisfiable; degrade.
        EmitCertified(TerminationReason::kSourceFailure, out);
        return Status::OK();
      }
      return Status::FailedPrecondition(
          "query cannot be completed under the scenario's capabilities");
    }
  }
}

}  // namespace

Status RunParallelNC(SourceSet* sources, const ScoringFunction& scoring,
                     SelectPolicy* policy, const ParallelOptions& options,
                     ParallelResult* out) {
  NC_CHECK(sources != nullptr);
  NC_CHECK(policy != nullptr);
  ParallelRun run(sources, scoring, policy, options);
  const bool tracing = obs::ShouldTrace(options.tracer);
  if (tracing) options.tracer->BeginPhase("parallel");
  const Status status = run.Execute(out);
  if (tracing) options.tracer->EndPhase("parallel");
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options.metrics;
    const obs::LabelSet algo{{"algorithm", "NC-parallel"}};
    reg.counter("nc_parallel_runs_total", algo).Increment();
    if (!status.ok()) {
      reg.counter("nc_parallel_errors_total", algo).Increment();
    } else {
      reg.counter("nc_parallel_accesses_issued_total", algo)
          .Increment(static_cast<double>(out->accesses_issued));
      reg.counter("nc_parallel_wasted_accesses_total", algo)
          .Increment(static_cast<double>(out->wasted_accesses));
      reg.counter("nc_parallel_failed_accesses_total", algo)
          .Increment(static_cast<double>(out->failed_accesses));
      reg.histogram("nc_parallel_elapsed_time",
                    {1.0, 10.0, 100.0, 1000.0, 10000.0}, algo)
          .Observe(out->elapsed_time);
      if (out->topk.certificate.has_value()) {
        reg.counter("nc_parallel_certified_runs_total",
                    {{"algorithm", "NC-parallel"},
                     {"reason", TerminationReasonName(
                                    out->topk.certificate->reason)}})
            .Increment();
      }
    }
  }
  return status;
}

}  // namespace nc
