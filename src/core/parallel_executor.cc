#include "core/parallel_executor.h"

#include <algorithm>
#include <queue>
#include <set>
#include <vector>

#include "common/check.h"
#include "core/candidate.h"

namespace nc {

namespace {

// An access that was issued (and paid for) but whose result is not yet
// visible to the scheduler.
struct InFlight {
  double completion_time = 0.0;
  uint64_t sequence = 0;  // FIFO tie-break.
  Access access;
  // Result captured at issue time (the simulated source decides its answer
  // immediately; the network delays its visibility).
  ObjectId object = 0;
  Score score = 0.0;
  // Whole-row scores from a multi-attribute source.
  std::vector<std::pair<PredicateId, Score>> bundled;

  friend bool operator>(const InFlight& a, const InFlight& b) {
    if (a.completion_time != b.completion_time) {
      return a.completion_time > b.completion_time;
    }
    return a.sequence > b.sequence;
  }
};

struct RankedEntry {
  ObjectId object = 0;
  Score bound = 0.0;
  bool complete = false;
};

class ParallelRun {
 public:
  ParallelRun(SourceSet* sources, const ScoringFunction& scoring,
              SelectPolicy* policy, const ParallelOptions& options)
      : sources_(sources),
        scoring_(scoring),
        policy_(policy),
        options_(options),
        pool_(sources->num_predicates()),
        bounds_(&scoring_),
        visible_ceiling_(sources->num_predicates(), kMaxScore),
        applied_sorted_(sources->num_predicates(), 0) {}

  Status Execute(ParallelResult* out);

 private:
  // Top-k of the *visible* state (applied results only), rank order.
  void VisibleTopK(std::vector<RankedEntry>* out);

  // Necessary choices of `target` against the visible state, minus
  // accesses already in flight and physically impossible ones.
  void BuildAlternatives(ObjectId target, std::vector<Access>* out) const;

  // Performs the access against the sources now (accounting happens at
  // issue) and schedules its visibility.
  void Issue(const Access& access);

  // Makes the earliest pending result visible; advances the clock.
  void ApplyNext();

  SourceSet* sources_;
  const ScoringFunction& scoring_;
  SelectPolicy* policy_;
  ParallelOptions options_;

  CandidatePool pool_;
  BoundEvaluator bounds_;
  std::vector<Score> visible_ceiling_;
  std::vector<size_t> applied_sorted_;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>>
      pending_;
  std::set<std::pair<PredicateId, ObjectId>> random_in_flight_;
  // Tasks already served this epoch (cleared whenever a completion lands).
  std::set<ObjectId> issued_this_epoch_;
  double now_ = 0.0;
  uint64_t sequence_ = 0;
  size_t issued_ = 0;
  bool universe_seeded_ = false;
};

void ParallelRun::VisibleTopK(std::vector<RankedEntry>* out) {
  const size_t m = sources_->num_predicates();
  out->clear();
  out->reserve(pool_.size() + 1);
  for (Candidate& c : pool_) {
    const bool complete = c.IsComplete(m);
    const Score bound =
        complete ? bounds_.Exact(c) : bounds_.Upper(c, visible_ceiling_);
    out->push_back(RankedEntry{c.id, bound, complete});
  }
  if (!universe_seeded_ && pool_.size() < sources_->num_objects()) {
    out->push_back(RankedEntry{
        kUnseenObject, scoring_.Evaluate(visible_ceiling_), false});
  }
  const size_t take = std::min(options_.k, out->size());
  std::partial_sort(out->begin(), out->begin() + take, out->end(),
                    [](const RankedEntry& a, const RankedEntry& b) {
                      if (a.bound != b.bound) return a.bound > b.bound;
                      // Seen objects outrank the unseen sentinel on ties,
                      // matching the sequential engine's heap order.
                      if (a.object == kUnseenObject) return false;
                      if (b.object == kUnseenObject) return true;
                      return a.object > b.object;
                    });
  out->resize(take);
}

void ParallelRun::BuildAlternatives(ObjectId target,
                                    std::vector<Access>* out) const {
  out->clear();
  const size_t m = sources_->num_predicates();
  if (target == kUnseenObject) {
    for (PredicateId i = 0; i < m; ++i) {
      if (sources_->has_sorted(i) && !sources_->exhausted(i)) {
        out->push_back(Access::Sorted(i));
      }
    }
    return;
  }
  const Candidate* c = pool_.Find(target);
  NC_CHECK(c != nullptr);
  for (PredicateId i = 0; i < m; ++i) {
    if (c->IsEvaluated(i)) continue;
    if (sources_->has_sorted(i) && !sources_->exhausted(i)) {
      out->push_back(Access::Sorted(i));
    }
  }
  for (PredicateId i = 0; i < m; ++i) {
    if (c->IsEvaluated(i)) continue;
    if (sources_->has_random(i) &&
        random_in_flight_.find({i, target}) == random_in_flight_.end()) {
      out->push_back(Access::Random(i, target));
    }
  }
}

void ParallelRun::Issue(const Access& access) {
  InFlight flight;
  flight.access = access;
  flight.sequence = sequence_++;
  flight.completion_time =
      now_ + sources_->DrawLatency(access.type, access.predicate);
  if (access.type == AccessType::kSorted) {
    const std::optional<SortedHit> hit =
        sources_->SortedAccess(access.predicate);
    NC_CHECK(hit.has_value());
    flight.object = hit->object;
    flight.score = hit->score;
    flight.bundled = hit->bundled;
  } else {
    flight.object = access.object;
    flight.score = sources_->RandomAccess(access.predicate, access.object);
    random_in_flight_.insert({access.predicate, access.object});
  }
  pending_.push(flight);
  ++issued_;
}

void ParallelRun::ApplyNext() {
  NC_CHECK(!pending_.empty());
  const InFlight flight = pending_.top();
  pending_.pop();
  now_ = std::max(now_, flight.completion_time);
  issued_this_epoch_.clear();
  const PredicateId i = flight.access.predicate;
  if (flight.access.type == AccessType::kSorted) {
    Candidate& c = pool_.GetOrCreate(flight.object);
    if (!c.IsEvaluated(i)) c.SetScore(i, flight.score);
    for (const auto& [predicate, score] : flight.bundled) {
      if (!c.IsEvaluated(predicate)) c.SetScore(predicate, score);
    }
    ++applied_sorted_[i];
    if (applied_sorted_[i] >= sources_->num_objects()) {
      // Every object of this list is visible: no unseen object remains.
      visible_ceiling_[i] = kMinScore;
    } else {
      visible_ceiling_[i] = std::min(visible_ceiling_[i], flight.score);
    }
  } else {
    random_in_flight_.erase({i, flight.object});
    Candidate* c = pool_.Find(flight.object);
    NC_CHECK(c != nullptr);
    if (!c->IsEvaluated(i)) c->SetScore(i, flight.score);
  }
}

Status ParallelRun::Execute(ParallelResult* out) {
  NC_CHECK(out != nullptr);
  const size_t m = sources_->num_predicates();
  const size_t n = sources_->num_objects();
  NC_RETURN_IF_ERROR(sources_->cost_model().Validate());
  if (scoring_.arity() != m) {
    return Status::InvalidArgument(
        "scoring function arity does not match predicate count");
  }
  if (options_.k == 0 || options_.concurrency == 0) {
    return Status::InvalidArgument("k and concurrency must be positive");
  }

  policy_->Reset(*sources_);
  universe_seeded_ =
      !options_.no_wild_guesses || !sources_->cost_model().any_sorted();
  if (universe_seeded_) {
    for (ObjectId u = 0; u < n; ++u) pool_.GetOrCreate(u);
  }

  const size_t runaway_guard = 2 * n * m + options_.k + 64;
  std::vector<RankedEntry> ranked;
  std::vector<Access> alternatives;
  while (true) {
    VisibleTopK(&ranked);
    const bool all_complete =
        std::all_of(ranked.begin(), ranked.end(),
                    [](const RankedEntry& e) { return e.complete; });
    if (all_complete) {
      out->topk.entries.clear();
      for (const RankedEntry& e : ranked) {
        out->topk.entries.push_back(TopKEntry{e.object, e.bound});
      }
      out->elapsed_time = now_;
      out->total_cost = sources_->accrued_cost();
      out->accesses_issued = issued_;
      out->wasted_accesses = pending_.size();
      return Status::OK();
    }

    // Issue phase: one access per unsatisfied task per epoch, rank order,
    // while slots remain.
    bool issued_any = false;
    const auto select_and_issue = [&](const RankedEntry& e) {
      EngineView view;
      view.sources = sources_;
      view.scoring = &scoring_;
      view.k = options_.k;
      view.target = e.object;
      view.target_state =
          e.object == kUnseenObject ? nullptr : pool_.Find(e.object);
      const Access access = policy_->Select(alternatives, view);
      const bool offered =
          std::find(alternatives.begin(), alternatives.end(), access) !=
          alternatives.end();
      NC_CHECK(offered);
      Issue(access);
      issued_any = true;
    };

    // Discovery (the unseen sentinel's sorted reads) is the speculative
    // part of a plan: a candidate's probe stays useful however the ranks
    // shift, but a discovery read is only needed if the sentinel is still
    // in the way once everything in flight lands. Serve it when it leads
    // the rank order, or as a stall-breaker when no concrete task could
    // issue this epoch.
    bool first_incomplete = true;
    bool issued_concrete = false;
    const RankedEntry* deferred_sentinel = nullptr;
    for (const RankedEntry& e : ranked) {
      if (pending_.size() >= options_.concurrency) break;
      if (e.complete) continue;
      const bool is_first = first_incomplete;
      first_incomplete = false;
      if (e.object == kUnseenObject && !is_first) {
        deferred_sentinel = &e;
        continue;
      }
      if (issued_this_epoch_.count(e.object) != 0) continue;
      BuildAlternatives(e.object, &alternatives);
      if (alternatives.empty()) continue;  // Waiting on in-flight results.
      issued_this_epoch_.insert(e.object);
      select_and_issue(e);
      if (e.object != kUnseenObject) issued_concrete = true;
    }
    if (deferred_sentinel != nullptr && !issued_concrete &&
        pending_.size() < options_.concurrency &&
        issued_this_epoch_.count(kUnseenObject) == 0) {
      BuildAlternatives(kUnseenObject, &alternatives);
      if (!alternatives.empty()) {
        issued_this_epoch_.insert(kUnseenObject);
        select_and_issue(*deferred_sentinel);
      }
    }

    // Optional speculation: read streams ahead for the highest-ranked task
    // that still has a sorted alternative.
    for (size_t spec = 0; spec < options_.max_speculation; ++spec) {
      if (pending_.size() >= options_.concurrency) break;
      bool launched = false;
      for (const RankedEntry& e : ranked) {
        if (e.complete) continue;
        BuildAlternatives(e.object, &alternatives);
        // Speculate on sorted accesses only: a duplicate random probe is
        // pure waste, but a deeper read is at worst early.
        std::erase_if(alternatives, [](const Access& a) {
          return a.type != AccessType::kSorted;
        });
        if (alternatives.empty()) continue;
        select_and_issue(e);
        launched = true;
        break;
      }
      if (!launched) break;
    }

    if (issued_ > runaway_guard) {
      return Status::Internal("parallel executor exceeded the runaway guard");
    }
    if (!pending_.empty()) {
      ApplyNext();
    } else if (!issued_any) {
      return Status::FailedPrecondition(
          "query cannot be completed under the scenario's capabilities");
    }
  }
}

}  // namespace

Status RunParallelNC(SourceSet* sources, const ScoringFunction& scoring,
                     SelectPolicy* policy, const ParallelOptions& options,
                     ParallelResult* out) {
  NC_CHECK(sources != nullptr);
  NC_CHECK(policy != nullptr);
  ParallelRun run(sources, scoring, policy, options);
  return run.Execute(out);
}

}  // namespace nc
