// Plan caching across the queries of a middleware session.
//
// Optimization overhead is tiny per query (a few dozen sample
// simulations) but a busy middleware answers the same query shape
// thousands of times. QuerySession memoizes the planner's output keyed by
// (k, cost-model signature): repeated queries reuse the cached SR/G plan;
// a drifted cost model (the signature includes unit costs, page sizes,
// and attribute groups) or a new k re-plans automatically.

#ifndef NC_CORE_SESSION_H_
#define NC_CORE_SESSION_H_

#include <string>
#include <unordered_map>

#include "access/source.h"
#include "common/status.h"
#include "core/planner.h"
#include "core/result.h"
#include "scoring/scoring_function.h"

namespace nc {

class QuerySession {
 public:
  // `scoring` must outlive the session.
  QuerySession(const ScoringFunction* scoring, PlannerOptions options);

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  // Answers a top-k query over `sources` (rewound by the caller), planning
  // only when no cached plan matches the sources' current cost model.
  Status Query(SourceSet* sources, size_t k, TopKResult* out);

  // Number of planner invocations and of queries served from the cache.
  size_t plans_computed() const { return plans_computed_; }
  size_t cache_hits() const { return cache_hits_; }

  // The plan used by the most recent Query.
  const OptimizerResult& last_plan() const { return last_plan_; }

  // Fault-recovery telemetry accumulated across completed queries (the
  // caller rewinds the sources between queries, so each query's access
  // stats are credited once). Retries are attempts repeated after a
  // transient failure or timeout; failed_accesses counts those failures;
  // source_deaths counts permanent losses.
  size_t retried_attempts() const { return retried_attempts_; }
  size_t failed_accesses() const { return failed_accesses_; }
  size_t source_deaths() const { return source_deaths_; }

  // False when the most recent Query returned a degraded (best-effort)
  // answer because sources failed mid-run.
  bool last_query_exact() const { return last_query_exact_; }

 private:
  static std::string PlanKey(const CostModel& model, size_t k);

  const ScoringFunction* scoring_;
  PlannerOptions options_;
  std::unordered_map<std::string, OptimizerResult> cache_;
  OptimizerResult last_plan_;
  size_t plans_computed_ = 0;
  size_t cache_hits_ = 0;
  size_t retried_attempts_ = 0;
  size_t failed_accesses_ = 0;
  size_t source_deaths_ = 0;
  bool last_query_exact_ = true;
};

}  // namespace nc

#endif  // NC_CORE_SESSION_H_
