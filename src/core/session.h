// Plan caching and cross-query telemetry for a middleware session.
//
// Optimization overhead is tiny per query (a few dozen sample
// simulations) but a busy middleware answers the same query shape
// thousands of times. QuerySession memoizes the planner's output keyed by
// (k, cost-model signature): repeated queries reuse the cached SR/G plan;
// a drifted cost model (the signature includes unit costs, page sizes,
// and attribute groups) or a new k re-plans automatically.
//
// The session also owns the TelemetryHub: each Query attaches it to the
// sources (and warms any replica fleet from the health snapshot captured
// at the previous query's Reset), so breaker states, EWMA latencies, and
// latency sketches outlive the per-query SourceSet rewind. After every
// run, the session diffs the plan's CostPrediction against the metered
// actuals into a CostAudit (last_cost_audit()), and mirrors the audit
// rows as kTelemetry trace events when a tracer is attached.

#ifndef NC_CORE_SESSION_H_
#define NC_CORE_SESSION_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "access/source.h"
#include "common/status.h"
#include "core/planner.h"
#include "core/result.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "scoring/scoring_function.h"

namespace nc {

class NCEngine;

// Disposition of the most recent QuerySession::Query, finer-grained than
// the exact/inexact split: a budget-barred certified answer is a very
// different operational signal than one degraded by source failures.
enum class QueryOutcome {
  kNone,             // no query answered yet
  kExact,            // completed with the exact top-k
  kApproximate,      // completed under theta-approximation
  kDegraded,         // truncated by source failure or the access cap
  kBudgetExhausted,  // truncated by a cost/deadline/quota bar
  kError,            // Query returned a non-OK status
};

const char* QueryOutcomeName(QueryOutcome outcome);

// Embedder hooks into one QuerySession::Query execution. The query
// server uses them to interleave wall-clock pacing and graceful-drain
// interception with the engine's iteration without owning the engine.
struct QueryHooks {
  // Invoked after every performed access, on the querying thread, with
  // the live engine (it is legal to Checkpoint() here - the engine is
  // between iterations) and the running access count. The hook may
  // mutate the SourceSet's budget (same thread, between accesses) to
  // force certified early termination - the drain mechanism.
  std::function<void(NCEngine& engine, size_t accesses)> on_access;
};

class QuerySession {
 public:
  // `scoring` must outlive the session. With `shared_hub` set, the
  // session feeds and warms that hub instead of its own - the query
  // server hands every worker's session one server-wide hub so breaker
  // state, deaths, and latency sketches are shared across workers (the
  // hub is internally synchronized; see obs/telemetry.h). The shared hub
  // must outlive the session.
  QuerySession(const ScoringFunction* scoring, PlannerOptions options,
               obs::TelemetryHub* shared_hub = nullptr);

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  // Answers a top-k query over `sources` (rewound by the caller), planning
  // only when no cached plan matches the sources' current cost model.
  Status Query(SourceSet* sources, size_t k, TopKResult* out);

  // As above, with per-access hooks (see QueryHooks).
  Status Query(SourceSet* sources, size_t k, const QueryHooks& hooks,
               TopKResult* out);

  // Number of planner invocations and of queries served from the cache.
  size_t plans_computed() const { return plans_computed_; }
  size_t cache_hits() const { return cache_hits_; }

  // The plan used by the most recent Query.
  const OptimizerResult& last_plan() const { return last_plan_; }

  // The session's cross-query telemetry hub (the shared one when the
  // session was constructed with it). Attached to the sources on every
  // Query; disable it (hub().Disable()) to opt out of sampling — query
  // answers are bit-identical either way on fault-free runs.
  obs::TelemetryHub& hub() { return *active_hub_; }
  const obs::TelemetryHub& hub() const { return *active_hub_; }

  // Attaches a tracer that every subsequent Query hands to both the
  // sources (access/attempt/replica events) and the engine (iteration
  // and phase events), completing the per-request timeline without the
  // embedder reaching into the SourceSet. nullptr detaches: the session
  // then leaves whatever tracer the caller set on the sources alone.
  // The tracer must outlive the session (or be detached first) and is
  // used from the querying thread only.
  void set_tracer(obs::QueryTracer* tracer) { tracer_ = tracer; }
  obs::QueryTracer* tracer() const { return tracer_; }

  // Attaches a profiler (obs/profiler.h) that every subsequent Query
  // hands to the sources and the engine, exactly as set_tracer does for
  // tracers. The session only *attaches* it: the owner decides when to
  // Clear(), add external cost centers (e.g. queue wait), and build the
  // per-query ProfileReport — the session never resets or reads it.
  // Must outlive the session (or be detached with nullptr first); used
  // from the querying thread only.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }
  obs::Profiler* profiler() const { return profiler_; }

  // Predicted-vs-actual Eq. 1 audit of the most recent Query (invalid
  // before the first one or when the run errored out pre-execution).
  const obs::CostAudit& last_cost_audit() const { return last_cost_audit_; }

  // Fault-recovery telemetry accumulated across completed queries (the
  // caller rewinds the sources between queries, so each query's access
  // stats are credited once). Retries are attempts repeated after a
  // transient failure or timeout; failed_accesses counts those failures;
  // source_deaths counts permanent losses.
  size_t retried_attempts() const { return retried_attempts_; }
  size_t failed_accesses() const { return failed_accesses_; }
  size_t source_deaths() const { return source_deaths_; }

  // False when the most recent Query returned a degraded (best-effort)
  // answer because sources failed mid-run.
  bool last_query_exact() const { return last_query_exact_; }

  // Disposition of the most recent Query; kNone before the first one.
  QueryOutcome last_query_outcome() const { return last_query_outcome_; }

  // Queries that ended early because a budget, deadline, or per-predicate
  // quota barred further accesses (answered with a certificate).
  size_t budget_exhausted_queries() const {
    return budget_exhausted_queries_;
  }

 private:
  static std::string PlanKey(const CostModel& model, size_t k);

  const ScoringFunction* scoring_;
  PlannerOptions options_;
  std::unordered_map<std::string, OptimizerResult> cache_;
  OptimizerResult last_plan_;
  obs::TelemetryHub hub_;
  // Either &hub_ (the default) or the shared hub the session was
  // constructed with.
  obs::TelemetryHub* active_hub_ = nullptr;
  obs::QueryTracer* tracer_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::CostAudit last_cost_audit_;
  size_t plans_computed_ = 0;
  size_t cache_hits_ = 0;
  size_t retried_attempts_ = 0;
  size_t failed_accesses_ = 0;
  size_t source_deaths_ = 0;
  size_t budget_exhausted_queries_ = 0;
  bool last_query_exact_ = true;
  QueryOutcome last_query_outcome_ = QueryOutcome::kNone;
};

}  // namespace nc

#endif  // NC_CORE_SESSION_H_
