#include "cache/cache.h"

#include <chrono>
#include <cmath>
#include <string_view>

#include "common/check.h"
#include "common/numeric.h"
#include "obs/metrics.h"

namespace nc::cache {

namespace {

// Default TTL clock: monotonic seconds since the first call.
double MonotonicSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration<double>(Clock::now() - origin).count();
}

}  // namespace

Status CacheConfig::Validate() const {
  if (!std::isfinite(hit_cost) || hit_cost < 0.0) {
    return Status::InvalidArgument("cache hit_cost must be >= 0, finite");
  }
  if (random_capacity == 0) {
    return Status::InvalidArgument("cache random_capacity must be >= 1");
  }
  if (!std::isfinite(random_ttl) || random_ttl < 0.0) {
    return Status::InvalidArgument("cache random_ttl must be >= 0, finite");
  }
  return Status::OK();
}

std::string CacheConfig::Serialize() const {
  // Hexfloat doubles for byte-exact round trips; everything funnels
  // through common/numeric.h so a comma-decimal global locale cannot
  // corrupt the format.
  std::string out = "nccache 1\n";
  out += "hit_cost " + FormatHexDouble(hit_cost) + "\n";
  out += "capacity " + std::to_string(random_capacity) + "\n";
  out += "ttl " + FormatHexDouble(random_ttl) + "\n";
  out += "end\n";
  return out;
}

Status ParseCacheConfig(const std::string& text, CacheConfig* out) {
  NC_CHECK(out != nullptr);
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < text.size()) {
    const size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(std::string_view(text).substr(start, nl - start));
    start = nl + 1;
  }
  auto fail = [](size_t line, const std::string& what) {
    return Status::InvalidArgument("nccache line " +
                                   std::to_string(line + 1) + ": " + what);
  };
  if (lines.empty() || lines[0] != "nccache 1") {
    return fail(0, "expected header 'nccache 1'");
  }
  CacheConfig parsed;
  // Fixed record order, mirroring Serialize, so the round trip is
  // byte-exact and a truncated document is rejected by line number.
  struct Field {
    std::string_view name;
    bool is_count;
  };
  const Field fields[] = {
      {"hit_cost", false}, {"capacity", true}, {"ttl", false}};
  size_t line = 1;
  for (const Field& field : fields) {
    if (line >= lines.size()) return fail(line, "truncated document");
    const std::string_view text_line = lines[line];
    const size_t space = text_line.find(' ');
    if (space == std::string_view::npos ||
        text_line.substr(0, space) != field.name) {
      return fail(line, "expected record '" + std::string(field.name) + "'");
    }
    const std::string_view token = text_line.substr(space + 1);
    if (field.is_count) {
      uint64_t value = 0;
      if (!ParseUInt64(token, &value)) {
        return fail(line, "bad count '" + std::string(token) + "'");
      }
      parsed.random_capacity = static_cast<size_t>(value);
    } else {
      double value = 0.0;
      if (!ParseDouble(token, &value)) {
        return fail(line, "bad number '" + std::string(token) + "'");
      }
      if (field.name == "hit_cost") {
        parsed.hit_cost = value;
      } else {
        parsed.random_ttl = value;
      }
    }
    ++line;
  }
  if (line >= lines.size() || lines[line] != "end") {
    return fail(line, "expected 'end'");
  }
  NC_RETURN_IF_ERROR(parsed.Validate());
  *out = parsed;
  return Status::OK();
}

double CacheStatsSnapshot::hit_rate() const {
  const size_t lookups = hits() + misses();
  if (lookups == 0) return 0.0;
  return static_cast<double>(hits()) / static_cast<double>(lookups);
}

AccessCache::AccessCache(CacheConfig config)
    : config_(config), clock_(MonotonicSeconds) {
  NC_CHECK(config_.Validate().ok());
}

void AccessCache::set_clock(std::function<double()> clock) {
  NC_CHECK(clock != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

void AccessCache::AttachMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    m_sorted_hits_ = m_sorted_misses_ = nullptr;
    m_random_hits_ = m_random_misses_ = nullptr;
    m_merges_ = m_evictions_ = nullptr;
    return;
  }
  m_sorted_hits_ = &metrics->counter("nc_cache_hits_total",
                                     {{"type", "sorted"}});
  m_random_hits_ = &metrics->counter("nc_cache_hits_total",
                                     {{"type", "random"}});
  m_sorted_misses_ = &metrics->counter("nc_cache_misses_total",
                                       {{"type", "sorted"}});
  m_random_misses_ = &metrics->counter("nc_cache_misses_total",
                                       {{"type", "random"}});
  m_merges_ = &metrics->counter("nc_cache_inflight_merges_total");
  m_evictions_ = &metrics->counter("nc_cache_evictions_total");
}

void AccessCache::BindOrInvalidate(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bound_ && fingerprint_ == fingerprint) return;
  if (bound_) {
    // A different dataset behind the same cache: everything cached is
    // stale by definition.
    DropEverythingLocked();
    ++tallies_.invalidations;
  }
  bound_ = true;
  fingerprint_ = fingerprint;
  cv_.notify_all();
}

uint64_t AccessCache::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

SortedLookup AccessCache::AcquireSorted(PredicateId predicate,
                                        uint64_t topology, size_t pos,
                                        CachedSortedEntry* out, bool* merged,
                                        uint64_t* ticket) {
  NC_CHECK(out != nullptr);
  NC_CHECK(ticket != nullptr);
  if (merged != nullptr) *merged = false;
  *ticket = 0;
  std::unique_lock<std::mutex> lock(mu_);
  const StreamKey key{predicate, topology};
  bool waited = false;
  for (;;) {
    Stream& stream = streams_[key];
    if (pos < stream.entries.size()) {
      *out = stream.entries[pos];
      ++tallies_.sorted_hits;
      if (m_sorted_hits_ != nullptr) m_sorted_hits_->Increment();
      if (waited) {
        ++tallies_.inflight_merges;
        if (m_merges_ != nullptr) m_merges_->Increment();
        if (merged != nullptr) *merged = true;
      }
      return SortedLookup::kHit;
    }
    if (pos > stream.entries.size()) {
      // A cursor past the materialized prefix (checkpoint-restored or
      // post-invalidation): serving is impossible and publishing would
      // leave holes, so the caller takes the real path unobserved.
      return SortedLookup::kBypass;
    }
    if (stream.filling_ticket == 0) {
      stream.filling_ticket = next_ticket_++;
      *ticket = stream.filling_ticket;
      ++tallies_.sorted_misses;
      if (m_sorted_misses_ != nullptr) m_sorted_misses_->Increment();
      return SortedLookup::kOwner;
    }
    waited = true;
    cv_.wait(lock);
    // The map may have been wiped while waiting; the loop re-fetches.
  }
}

void AccessCache::PublishSorted(PredicateId predicate, uint64_t topology,
                                size_t pos, uint64_t ticket,
                                CachedSortedEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(StreamKey{predicate, topology});
  if (it != streams_.end() && it->second.filling_ticket == ticket &&
      pos == it->second.entries.size()) {
    it->second.entries.push_back(std::move(entry));
    it->second.filling_ticket = 0;
  }
  // A stale ticket (the stream was invalidated mid-access) publishes
  // nothing; waiters wake and re-resolve against the current stream.
  cv_.notify_all();
}

void AccessCache::AbortSorted(PredicateId predicate, uint64_t topology,
                              size_t pos, uint64_t ticket) {
  (void)pos;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(StreamKey{predicate, topology});
  if (it != streams_.end() && it->second.filling_ticket == ticket) {
    it->second.filling_ticket = 0;
  }
  cv_.notify_all();
}

RandomLookup AccessCache::AcquireRandom(PredicateId predicate,
                                        ObjectId object, Score* out,
                                        bool* merged, uint64_t* ticket) {
  NC_CHECK(out != nullptr);
  NC_CHECK(ticket != nullptr);
  if (merged != nullptr) *merged = false;
  *ticket = 0;
  std::unique_lock<std::mutex> lock(mu_);
  const RandomKey key{predicate, object};
  bool waited = false;
  for (;;) {
    auto it = random_.find(key);
    if (it != random_.end()) {
      const double now = clock_();
      if (config_.random_ttl > 0.0 &&
          now - it->second.stored_at >= config_.random_ttl) {
        lru_.erase(it->second.lru_pos);
        random_.erase(it);
        ++tallies_.expirations;
      } else {
        TouchLocked(&it->second, key);
        *out = it->second.score;
        ++tallies_.random_hits;
        if (m_random_hits_ != nullptr) m_random_hits_->Increment();
        if (waited) {
          ++tallies_.inflight_merges;
          if (m_merges_ != nullptr) m_merges_->Increment();
          if (merged != nullptr) *merged = true;
        }
        return RandomLookup::kHit;
      }
    }
    auto inflight = random_inflight_.find(key);
    if (inflight == random_inflight_.end()) {
      *ticket = next_ticket_++;
      random_inflight_[key] = *ticket;
      ++tallies_.random_misses;
      if (m_random_misses_ != nullptr) m_random_misses_->Increment();
      return RandomLookup::kOwner;
    }
    waited = true;
    cv_.wait(lock);
  }
}

void AccessCache::PublishRandom(PredicateId predicate, ObjectId object,
                                Score score, uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  const RandomKey key{predicate, object};
  auto inflight = random_inflight_.find(key);
  if (inflight != random_inflight_.end() && inflight->second == ticket) {
    random_inflight_.erase(inflight);
    auto it = random_.find(key);
    if (it == random_.end()) {
      lru_.push_front(key);
      RandomEntry entry;
      entry.score = score;
      entry.stored_at = clock_();
      entry.lru_pos = lru_.begin();
      random_.emplace(key, entry);
      EvictIfOverCapacityLocked();
    } else {
      it->second.score = score;
      it->second.stored_at = clock_();
      TouchLocked(&it->second, key);
    }
  }
  cv_.notify_all();
}

void AccessCache::AbortRandom(PredicateId predicate, ObjectId object,
                              uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  auto inflight = random_inflight_.find(RandomKey{predicate, object});
  if (inflight != random_inflight_.end() && inflight->second == ticket) {
    random_inflight_.erase(inflight);
  }
  cv_.notify_all();
}

void AccessCache::InvalidateRandom(PredicateId predicate, ObjectId object) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = random_.find(RandomKey{predicate, object});
  if (it != random_.end()) {
    lru_.erase(it->second.lru_pos);
    random_.erase(it);
    ++tallies_.invalidations;
  }
}

void AccessCache::InvalidatePredicate(PredicateId predicate) {
  std::lock_guard<std::mutex> lock(mu_);
  bool dropped = false;
  for (auto it = streams_.begin(); it != streams_.end();) {
    if (it->first.first == predicate) {
      dropped = true;
      it = streams_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = random_.begin(); it != random_.end();) {
    if (it->first.first == predicate) {
      dropped = true;
      lru_.erase(it->second.lru_pos);
      it = random_.erase(it);
    } else {
      ++it;
    }
  }
  if (dropped) ++tallies_.invalidations;
  // In-flight owners keep their claims: the value they publish comes
  // from the live source after the invalidation, so it is fresh - except
  // sorted owners, whose stream object was just destroyed; their stale
  // tickets make the publish a no-op.
  cv_.notify_all();
}

void AccessCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  DropEverythingLocked();
  ++tallies_.invalidations;
  cv_.notify_all();
}

size_t AccessCache::StreamDepth(PredicateId predicate,
                                uint64_t topology) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(StreamKey{predicate, topology});
  return it == streams_.end() ? 0 : it->second.entries.size();
}

CacheStatsSnapshot AccessCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStatsSnapshot snap = tallies_;
  snap.random_entries = random_.size();
  snap.stream_entries = 0;
  snap.bytes = 0;
  snap.stream_depths.clear();
  for (const auto& [key, stream] : streams_) {
    snap.stream_entries += stream.entries.size();
    snap.stream_depths.emplace_back(key.first, stream.entries.size());
    snap.bytes += stream.entries.size() * sizeof(CachedSortedEntry);
    for (const CachedSortedEntry& entry : stream.entries) {
      snap.bytes +=
          entry.bundled.size() * sizeof(std::pair<PredicateId, Score>);
    }
  }
  snap.bytes += random_.size() * (sizeof(RandomKey) + sizeof(RandomEntry));
  return snap;
}

void AccessCache::DropEverythingLocked() {
  streams_.clear();
  random_.clear();
  lru_.clear();
  // Dropping in-flight claims makes pending publishes stale (their
  // tickets no longer match anything) and lets waiters re-resolve.
  random_inflight_.clear();
  ++generation_;
}

void AccessCache::TouchLocked(RandomEntry* entry, const RandomKey& key) {
  if (entry->lru_pos != lru_.begin()) {
    lru_.erase(entry->lru_pos);
    lru_.push_front(key);
    entry->lru_pos = lru_.begin();
  }
}

void AccessCache::EvictIfOverCapacityLocked() {
  while (random_.size() > config_.random_capacity) {
    const RandomKey victim = lru_.back();
    lru_.pop_back();
    random_.erase(victim);
    ++tallies_.evictions;
    if (m_evictions_ != nullptr) m_evictions_->Increment();
  }
}

}  // namespace nc::cache
