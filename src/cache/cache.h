// Cross-query access sharing and result caching.
//
// The concurrent QueryServer runs many queries over the *same* simulated
// web sources, and without sharing every worker re-bills accesses some
// other query already paid for. This subsystem sits behind the SourceSet
// access seam (access/source.h attaches one with set_access_cache) and
// is shared across workers. Three mechanisms:
//
//   * Shared sorted streams. One internally-synchronized descending
//     prefix per (predicate, replica-topology), consumed by position.
//     Sorted access is progressive and deterministic: position p of
//     predicate i names the same (object, score) for every query over
//     the same dataset, so a prefix materialized by query A serves
//     query B verbatim. The bound side-effect stays sound: serving the
//     cached entry at position p lowers B's last-seen bound l_i exactly
//     as the real access would have.
//   * A random-access / result cache. Scored (predicate, object) pairs
//     with a TTL, explicit invalidation, and an LRU capacity bound, so
//     hot objects are fetched from the source once.
//   * Single-flight dedup. When two workers want the same entry at the
//     same instant, one performs the underlying access (the owner) and
//     the rest wait for its published result (an "in-flight merge")
//     instead of issuing duplicates.
//
// Billing stays honest: the underlying source is billed once, by the
// owner, through the normal SourceSet path; a cache-served access is
// charged CacheConfig::hit_cost (default 0) into the same Eq. 1
// accounting cells, so the billing-conservation invariant (stats cost
// cells sum to accrued_cost) holds with the cache enabled.
//
// Staleness: the cache binds to a dataset fingerprint
// (BindOrInvalidate); re-binding against different data drops every
// entry, so a reused stack never serves scores from a previous dataset.
// Source deaths invalidate the affected predicates conservatively.
//
// Thread safety: every public method is safe for concurrent use (one
// mutex + condition variable; entries are copied out under the lock).
// See docs/CACHE.md for the full soundness argument.

#ifndef NC_CACHE_CACHE_H_
#define NC_CACHE_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/score.h"
#include "common/status.h"

namespace nc::obs {
class Counter;
class MetricsRegistry;
}  // namespace nc::obs

namespace nc::cache {

// Tunables for one shared AccessCache.
struct CacheConfig {
  // Eq. 1 charge for a cache-served access (flat, no page model: the
  // page request was already paid by whichever query materialized the
  // entry). 0 models a free local hit.
  double hit_cost = 0.0;
  // LRU capacity bound on random/result entries (shared streams are
  // bounded by the dataset itself and are not evicted).
  size_t random_capacity = 4096;
  // Seconds (on the cache clock) before a random entry goes stale and
  // is refetched; 0 = entries never expire.
  double random_ttl = 0.0;

  Status Validate() const;

  // Versioned locale-independent text form ("nccache 1"); byte-exact
  // round trip through ParseCacheConfig under any global locale.
  std::string Serialize() const;
};

// Parses CacheConfig::Serialize() output. On failure *out is untouched
// and the message names the offending line.
Status ParseCacheConfig(const std::string& text, CacheConfig* out);

// One materialized sorted-stream entry: exactly what the real access
// returned, bundled attribute-group scores included.
struct CachedSortedEntry {
  ObjectId object = 0;
  Score score = 0.0;
  std::vector<std::pair<PredicateId, Score>> bundled;
};

// Point-in-time counters and occupancy, for /varz and RunReport.
struct CacheStatsSnapshot {
  size_t sorted_hits = 0;
  size_t sorted_misses = 0;
  size_t random_hits = 0;
  size_t random_misses = 0;
  size_t inflight_merges = 0;
  size_t evictions = 0;
  size_t expirations = 0;
  size_t invalidations = 0;
  size_t random_entries = 0;
  size_t stream_entries = 0;
  // Approximate resident payload bytes (entries, not container overhead).
  size_t bytes = 0;
  // Materialized depth per shared stream, (predicate, depth), sorted by
  // predicate then topology order.
  std::vector<std::pair<PredicateId, size_t>> stream_depths;

  size_t hits() const { return sorted_hits + random_hits; }
  size_t misses() const { return sorted_misses + random_misses; }
  // Hits / lookups; 0 before the first lookup.
  double hit_rate() const;
};

// What AcquireSorted decided for one lookup.
enum class SortedLookup {
  kHit,     // *out is the cached entry; serve it without a real access.
  kOwner,   // Caller must perform the real access, then Publish or Abort.
  kBypass,  // Position is beyond the materialized prefix + 1 (e.g. a
            // checkpoint-restored cursor): perform the real access but
            // do NOT publish - the prefix may not grow holes.
};

// What AcquireRandom decided for one lookup.
enum class RandomLookup {
  kHit,    // *out is the cached score.
  kOwner,  // Caller must perform the real access, then Publish or Abort.
};

// The shared cache. One instance serves every worker of a QueryServer
// (or any set of SourceSets over the same dataset); all methods are
// thread-safe. Owners MUST pair every kOwner acquire with exactly one
// Publish* or Abort* call, or waiters block forever.
class AccessCache {
 public:
  explicit AccessCache(CacheConfig config = CacheConfig{});
  AccessCache(const AccessCache&) = delete;
  AccessCache& operator=(const AccessCache&) = delete;

  const CacheConfig& config() const { return config_; }

  // Clock used for TTL stamping; default is a process-wide monotonic
  // second counter. Test hook - install before first use.
  void set_clock(std::function<double()> clock);

  // Attaches a metrics registry (nullptr detaches; must outlive the
  // cache). Bumps nc_cache_{hits,misses,inflight_merges,evictions}_total.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  // Binds the cache to a dataset fingerprint. Binding the fingerprint
  // already bound is a no-op (per-query Reset() re-binds harmlessly);
  // a different fingerprint drops every entry and bumps generation().
  void BindOrInvalidate(uint64_t fingerprint);
  // How many times the cache has been wiped (rebinds + Clear calls).
  uint64_t generation() const;

  // --- Shared sorted streams -------------------------------------------
  // Looks up position `pos` of stream (predicate, topology). kHit fills
  // *out (and sets *merged when the entry was awaited from an in-flight
  // owner). kOwner claims the single-flight slot at the stream head and
  // fills *ticket; the ticket must be passed back to Publish/Abort so a
  // publish that straddles an invalidation is dropped instead of
  // poisoning the rebuilt stream.
  SortedLookup AcquireSorted(PredicateId predicate, uint64_t topology,
                             size_t pos, CachedSortedEntry* out,
                             bool* merged, uint64_t* ticket);
  // Owner success: appends the entry at `pos` (must still be the claimed
  // head under `ticket`; stale publishes are dropped) and wakes waiters.
  void PublishSorted(PredicateId predicate, uint64_t topology, size_t pos,
                     uint64_t ticket, CachedSortedEntry entry);
  // Owner failure: releases the claim; a waiter retries as the new owner.
  void AbortSorted(PredicateId predicate, uint64_t topology, size_t pos,
                   uint64_t ticket);

  // --- Random / result cache -------------------------------------------
  RandomLookup AcquireRandom(PredicateId predicate, ObjectId object,
                             Score* out, bool* merged, uint64_t* ticket);
  void PublishRandom(PredicateId predicate, ObjectId object, Score score,
                     uint64_t ticket);
  void AbortRandom(PredicateId predicate, ObjectId object, uint64_t ticket);

  // --- Invalidation ----------------------------------------------------
  // Drops one random entry, if present.
  void InvalidateRandom(PredicateId predicate, ObjectId object);
  // Drops every entry touching `predicate` (its shared streams and its
  // random entries) - the conservative response to a source death.
  void InvalidatePredicate(PredicateId predicate);
  // Drops everything and bumps generation().
  void Clear();

  // --- Introspection ---------------------------------------------------
  // Materialized depth of one shared stream (0 when absent).
  size_t StreamDepth(PredicateId predicate, uint64_t topology) const;
  CacheStatsSnapshot Snapshot() const;

 private:
  using StreamKey = std::pair<PredicateId, uint64_t>;
  using RandomKey = std::pair<PredicateId, ObjectId>;

  struct Stream {
    std::vector<CachedSortedEntry> entries;
    // Nonzero while an owner materializes entries[entries.size()]; the
    // value is that owner's single-flight ticket.
    uint64_t filling_ticket = 0;
  };

  struct RandomEntry {
    Score score = 0.0;
    double stored_at = 0.0;
    // Position in lru_ (front = most recently used).
    std::list<RandomKey>::iterator lru_pos;
  };

  // All mu_-guarded; callers hold the lock.
  void DropEverythingLocked();
  void TouchLocked(RandomEntry* entry, const RandomKey& key);
  void EvictIfOverCapacityLocked();

  const CacheConfig config_;
  std::function<double()> clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t fingerprint_ = 0;
  bool bound_ = false;
  uint64_t generation_ = 0;
  std::map<StreamKey, Stream> streams_;
  std::map<RandomKey, RandomEntry> random_;
  // LRU order over random_, front = most recently used.
  std::list<RandomKey> lru_;
  // Random keys currently being fetched by an owner, with that owner's
  // single-flight ticket.
  std::map<RandomKey, uint64_t> random_inflight_;
  uint64_t next_ticket_ = 1;

  // Counters (mu_-guarded; snapshot under the same lock).
  CacheStatsSnapshot tallies_;

  // Metrics mirrors (registry is internally synchronized; Increment is
  // a lock-free atomic add, safe to call while holding mu_).
  obs::Counter* m_sorted_hits_ = nullptr;
  obs::Counter* m_sorted_misses_ = nullptr;
  obs::Counter* m_random_hits_ = nullptr;
  obs::Counter* m_random_misses_ = nullptr;
  obs::Counter* m_merges_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
};

}  // namespace nc::cache

#endif  // NC_CACHE_CACHE_H_
