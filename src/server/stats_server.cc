#include "server/stats_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace nc::server {

namespace {

// A request head larger than this is not something /metrics needs to
// understand.
constexpr size_t kMaxRequestBytes = 4096;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
  }
  return "OK";
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return;  // Peer gone; a scrape retry is the recovery.
    sent += static_cast<size_t>(n);
  }
}

void SendResponse(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  SendAll(fd, out);
}

}  // namespace

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Handle(std::string path, HttpHandler handler) {
  const std::lock_guard<std::mutex> lock(mu_);
  NC_CHECK(!running_);  // The handler table is read lock-free while running.
  NC_CHECK(handler != nullptr);
  handlers_[std::move(path)] = std::move(handler);
}

Status StatsServer::Start(uint16_t port) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("stats server is already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // Operator-only endpoint.
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("bind(127.0.0.1:" + std::to_string(port) +
                               "): " + why);
  }
  if (::listen(fd, 16) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("listen(): " + why);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("getsockname(): " + why);
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  running_ = true;
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void StatsServer::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_.store(true, std::memory_order_release);
  }
  thread_.join();
  const std::lock_guard<std::mutex> lock(mu_);
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

bool StatsServer::running() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

uint16_t StatsServer::port() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return port_;
}

void StatsServer::AcceptLoop() {
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    // A short poll timeout bounds how long a Stop() waits; the socket is
    // only closed after the join, so accept never races a close.
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    ServeConnection(conn);
    ::close(conn);
  }
}

void StatsServer::ServeConnection(int fd) {
  // Read until the end of the request head (or the size cap). The
  // request line is all we use.
  std::string request;
  char buffer[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<size_t>(n));
  }
  const size_t line_end = request.find('\n');
  if (line_end == std::string::npos) return;  // No request line at all.

  HttpResponse response;
  const size_t method_end = request.find(' ');
  if (method_end == std::string::npos || method_end >= line_end) {
    response.status = 400;
    response.body = "malformed request line\n";
    SendResponse(fd, response);
    return;
  }
  const std::string method = request.substr(0, method_end);
  const size_t path_end = request.find(' ', method_end + 1);
  std::string path =
      request.substr(method_end + 1,
                     (path_end == std::string::npos || path_end > line_end
                          ? line_end
                          : path_end) -
                         method_end - 1);
  // Strip any query string and a trailing CR: exact-path matching only.
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  while (!path.empty() && (path.back() == '\r' || path.back() == '\n')) {
    path.pop_back();
  }

  if (method != "GET") {
    response.status = 405;
    response.body = "only GET is supported\n";
    SendResponse(fd, response);
    return;
  }
  const auto it = handlers_.find(path);
  if (it == handlers_.end()) {
    response.status = 404;
    response.body = "no handler for " + path + "\n";
    SendResponse(fd, response);
    return;
  }
  SendResponse(fd, it->second());
}

}  // namespace nc::server
