// A minimal embedded HTTP/1.0 introspection endpoint.
//
// The QueryServer's live state - Prometheus metrics, health/readiness,
// the /varz JSON snapshot - has to be reachable while the server is
// under load, without adding a web framework to a middleware library.
// StatsServer is the smallest thing that works: one blocking socket
// thread on 127.0.0.1, GET-only HTTP/1.0 with Connection: close, exact
// path match against a handler table registered before Start. No
// keep-alive, no TLS, no request bodies; a scrape is one connect, one
// GET line, one response.
//
// Handlers run on the accept thread, so they must be fast and
// thread-safe against the state they read (the QueryServer's handlers
// read atomics, mutex-guarded snapshots, and the internally-synchronized
// MetricsRegistry/TelemetryHub). Binding is loopback-only by design:
// this is an operator endpoint, not a public API.
//
// The accept loop polls with a short timeout and re-checks a stop flag,
// so Stop() joins promptly without racing a close() under accept().

#ifndef NC_SERVER_STATS_SERVER_H_
#define NC_SERVER_STATS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace nc::server {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Invoked per matching GET, on the accept thread.
using HttpHandler = std::function<HttpResponse()>;

class StatsServer {
 public:
  StatsServer() = default;
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // Registers `handler` for exact-match GETs of `path` (e.g. "/metrics").
  // Must be called before Start.
  void Handle(std::string path, HttpHandler handler);

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port - read it back
  // with port()) and spawns the accept thread. FailedPrecondition when
  // already running, Unavailable when the bind fails.
  Status Start(uint16_t port);

  // Stops the accept thread and closes the socket; idempotent.
  void Stop();

  bool running() const;

  // The bound port; 0 before a successful Start.
  uint16_t port() const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::map<std::string, HttpHandler> handlers_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  mutable std::mutex mu_;
  bool running_ = false;
};

}  // namespace nc::server

#endif  // NC_SERVER_STATS_SERVER_H_
