#include "server/server.h"

#include <chrono>
#include <limits>
#include <utility>

#include "common/check.h"
#include "core/checkpoint.h"
#include "core/engine.h"

namespace nc::server {

namespace {

// The drain clamp: a budget that refuses the next access the moment any
// cost at all has accrued. denorm_min (not 0, which means "unlimited")
// keeps the clamp active while never refusing a query that has not yet
// been billed anything.
QueryBudget DrainClamp(QueryBudget original) {
  original.max_cost = std::numeric_limits<double>::denorm_min();
  original.deadline = std::numeric_limits<double>::denorm_min();
  return original;
}

}  // namespace

Status ServerConfig::Validate() const {
  if (num_workers == 0) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  return Status::OK();
}

const char* ServeOutcomeName(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kCompleted:
      return "completed";
    case ServeOutcome::kDrained:
      return "drained";
    case ServeOutcome::kRejected:
      return "rejected";
    case ServeOutcome::kError:
      return "error";
  }
  return "unknown";
}

QueryServer::QueryServer(const ScoringFunction* scoring, ServerConfig config,
                         WorkerStackFactory factory)
    : scoring_(scoring),
      config_(std::move(config)),
      factory_(std::move(factory)) {
  NC_CHECK(scoring_ != nullptr);
  NC_CHECK(factory_ != nullptr);
}

QueryServer::~QueryServer() { Shutdown(/*finish_queued=*/false); }

Status QueryServer::Start() {
  NC_RETURN_IF_ERROR(config_.Validate());
  const std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return Status::FailedPrecondition("server is already running");
    }
    running_ = true;
    accepting_ = true;
    stopping_ = false;
    finish_queued_ = true;
  }
  draining_.store(false, std::memory_order_release);
  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
  return Status::OK();
}

Status QueryServer::Submit(QueryRequest request,
                           std::future<QueryResponse>* response) {
  NC_CHECK(response != nullptr);
  if (request.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_ || !accepting_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("server is not accepting queries");
    }
    if (queue_.size() >= config_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission queue is full (capacity " +
          std::to_string(config_.queue_capacity) + ")");
    }
    queue_.push_back(Pending{std::move(request), std::move(promise)});
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (queue_.size() > peak_queue_depth_) peak_queue_depth_ = queue_.size();
  }
  cv_.notify_one();
  *response = std::move(future);
  return Status::OK();
}

void QueryServer::Shutdown(bool finish_queued) {
  const std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    accepting_ = false;
    stopping_ = true;
    finish_queued_ = finish_queued;
  }
  if (!finish_queued) {
    // Reaches workers that are mid-query (their next access hook
    // checkpoints and clamps); the cv below reaches the idle ones.
    draining_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  std::deque<Pending> leftovers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
    running_ = false;
    stopping_ = false;
  }
  draining_.store(false, std::memory_order_release);
  // Fulfilled outside the lock: promise continuations must not run
  // under mu_.
  for (Pending& pending : leftovers) {
    flushed_.fetch_add(1, std::memory_order_relaxed);
    pending.promise.set_value(Rejected(
        Status::Unavailable("server shut down before the query started")));
  }
}

bool QueryServer::running() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

ServerStats QueryServer::stats() const {
  ServerStats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.drained = drained_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.flushed = flushed_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.peak_queue_depth = peak_queue_depth_;
  }
  return out;
}

QueryResponse QueryServer::Rejected(Status status) {
  QueryResponse response;
  response.status = std::move(status);
  response.outcome = ServeOutcome::kRejected;
  return response;
}

void QueryServer::WorkerMain(size_t index) {
  // Built on this thread, used only by this thread, destroyed on this
  // thread: the whole mutable access stack is confined here. Only the
  // shared hub (handed to the session) crosses threads.
  std::unique_ptr<WorkerStack> stack = factory_(index);
  NC_CHECK(stack != nullptr);
  QuerySession session(scoring_, config_.planner, &hub_);
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // A fast drain leaves queued entries for Shutdown's flush; a
      // finish-queued stop keeps serving until the backlog is empty.
      if (stopping_ && (!finish_queued_ || queue_.empty())) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Serve(index, session, stack->sources(), std::move(pending));
  }
}

void QueryServer::Serve(size_t index, QuerySession& session,
                        SourceSet& sources, Pending pending) {
  QueryResponse response;
  response.worker = index;

  // Fresh per-query state; the session re-warms fleet health from the
  // shared hub inside Query, so the rewind loses no cross-query signal.
  sources.Reset();
  const Status budget_status = sources.set_budget(pending.request.budget);
  if (!budget_status.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    response.status = budget_status;
    response.outcome = ServeOutcome::kRejected;
    pending.promise.set_value(std::move(response));
    return;
  }

  bool drained = false;
  size_t accesses_seen = 0;
  const std::chrono::microseconds stall(config_.simulated_access_stall_us);
  QueryHooks hooks;
  hooks.on_access = [this, &drained, &accesses_seen, &response, &sources,
                     &pending, stall](NCEngine& engine, size_t accesses) {
    accesses_seen = accesses;
    if (stall.count() > 0) std::this_thread::sleep_for(stall);
    if (!drained && draining_.load(std::memory_order_acquire)) {
      // Checkpoint BEFORE clamping: the snapshot must describe the run
      // under its original budget, so resuming it on an identically
      // configured stack replays the uninterrupted query bit-for-bit.
      response.drain_checkpoint = SerializeCheckpoint(engine.Checkpoint());
      // Same thread as the engine loop, between accesses - the one
      // place mutating the budget mid-run is legal. The engine answers
      // the refused next access with a certified anytime answer.
      NC_CHECK(sources.set_budget(DrainClamp(pending.request.budget)).ok());
      drained = true;
    }
  };

  const auto start = std::chrono::steady_clock::now();
  response.status = session.Query(&sources, pending.request.k, hooks,
                                  &response.result);
  response.wall_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  response.accesses = accesses_seen;
  response.accrued_cost = sources.accrued_cost();
  response.query_outcome = session.last_query_outcome();
  if (drained) {
    response.outcome = ServeOutcome::kDrained;
    drained_.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status.ok()) {
    response.outcome = ServeOutcome::kCompleted;
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    response.outcome = ServeOutcome::kError;
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  pending.promise.set_value(std::move(response));
}

}  // namespace nc::server
