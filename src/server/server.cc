#include "server/server.h"

#include <chrono>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/build_info.h"
#include "common/check.h"
#include "core/checkpoint.h"
#include "core/engine.h"
#include "obs/json.h"

namespace nc::server {

namespace {

// The build section shared by /healthz and /varz: which binary is this,
// and since when has it been up.
void WriteBuildSection(obs::JsonWriter* w, uint64_t start_unix_us) {
  w->Key("build").BeginObject();
  w->Key("version").String(BuildVersion());
  w->Key("flavor").String(BuildFlavor());
  w->Key("sanitized").Bool(BuildSanitized());
  if (start_unix_us > 0) {
    w->Key("start_unix_s").UInt(start_unix_us / 1000000);
    const uint64_t now = obs::UnixTimeUs();
    w->Key("uptime_s")
        .UInt(now > start_unix_us ? (now - start_unix_us) / 1000000 : 0);
  }
  w->EndObject();
}

// The drain clamp: a budget that refuses the next access the moment any
// cost at all has accrued. denorm_min (not 0, which means "unlimited")
// keeps the clamp active while never refusing a query that has not yet
// been billed anything.
QueryBudget DrainClamp(QueryBudget original) {
  original.max_cost = std::numeric_limits<double>::denorm_min();
  original.deadline = std::numeric_limits<double>::denorm_min();
  return original;
}

// SplitMix64: mints well-mixed trace ids from (nonce ^ request id).
uint64_t MixTraceId(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x = x ^ (x >> 31);
  return x != 0 ? x : 1;  // 0 means "no context" on the wire.
}

// Shared latency bucket ladder (microseconds) for the queue-wait and
// service histograms.
const std::vector<double>& LatencyBucketsUs() {
  static const std::vector<double> kBuckets = {
      100.0, 500.0, 1000.0, 5000.0, 10000.0, 50000.0, 100000.0, 500000.0,
      1e6,   5e6};
  return kBuckets;
}

}  // namespace

Status ServerConfig::Validate() const {
  if (num_workers == 0) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (stats_port > 65535) {
    return Status::InvalidArgument("stats_port must be <= 65535");
  }
  if (watchdog) {
    NC_RETURN_IF_ERROR(watchdog_options.Validate());
  }
  if (enable_cache) {
    NC_RETURN_IF_ERROR(cache.Validate());
  }
  return Status::OK();
}

const char* ServeOutcomeName(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kCompleted:
      return "completed";
    case ServeOutcome::kDrained:
      return "drained";
    case ServeOutcome::kRejected:
      return "rejected";
    case ServeOutcome::kError:
      return "error";
  }
  return "unknown";
}

QueryServer::QueryServer(const ScoringFunction* scoring, ServerConfig config,
                         WorkerStackFactory factory)
    : scoring_(scoring),
      config_(std::move(config)),
      factory_(std::move(factory)) {
  NC_CHECK(scoring_ != nullptr);
  NC_CHECK(factory_ != nullptr);
}

QueryServer::~QueryServer() { Shutdown(/*finish_queued=*/false); }

Status QueryServer::Start() {
  NC_RETURN_IF_ERROR(config_.Validate());
  const std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return Status::FailedPrecondition("server is already running");
    }
  }

  // Warm start: load what the previous process learned about the fleet.
  // A missing file is an ordinary cold start; a corrupt one fails Start
  // loudly - silently discarding the operational history the snapshot
  // exists to preserve would mask exactly the regressions the watchdog
  // is meant to catch.
  bool warm = false;
  if (!config_.hub_snapshot_path.empty()) {
    const std::ifstream probe(config_.hub_snapshot_path);
    if (probe.good()) {
      NC_RETURN_IF_ERROR(hub_.LoadFromFile(config_.hub_snapshot_path));
      // The baseline keeps the loaded snapshot verbatim (the round-trip
      // is byte-exact); hub_ itself keeps learning and would drift.
      NC_RETURN_IF_ERROR(baseline_hub_.Deserialize(hub_.Serialize()));
      warm = true;
    }
  }
  std::unique_ptr<obs::AnomalyWatchdog> watchdog;
  if (config_.watchdog && warm) {
    watchdog = std::make_unique<obs::AnomalyWatchdog>(
        &hub_, &baseline_hub_, config_.watchdog_options, &metrics_,
        config_.trace_sink);
  }

  epoch_ns_.store(obs::MonotonicTimeNs(), std::memory_order_release);
  start_unix_us_.store(obs::UnixTimeUs(), std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    running_ = true;
    accepting_ = true;
    stopping_ = false;
    finish_queued_ = true;
    warm_started_ = warm;
    trace_nonce_ = MixTraceId(obs::UnixTimeUs());
    meters_.clear();
    for (size_t i = 0; i < config_.num_workers; ++i) {
      meters_.push_back(std::make_unique<WorkerMeter>());
    }
    watchdog_ = std::move(watchdog);
  }
  draining_.store(false, std::memory_order_release);

  // The shared cross-query cache is created once, before the stats
  // endpoint can serve /varz, and kept across Start/Shutdown cycles so a
  // restarted server keeps its warm streams.
  if (config_.enable_cache && cache_ == nullptr) {
    cache_ = std::make_unique<cache::AccessCache>(config_.cache);
    cache_->AttachMetrics(&metrics_);
  }

  // The introspection endpoint comes up before the workers so a
  // supervisor can probe /readyz from the first instant.
  if (config_.stats_port >= 0) {
    stats_server_.Handle("/metrics", [this] {
      HttpResponse response;
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      std::ostringstream text;
      metrics_.WritePrometheusText(&text);
      response.body = text.str();
      return response;
    });
    stats_server_.Handle("/healthz", [this] {
      HttpResponse response;
      response.content_type = "application/json";
      const bool up = running();
      if (!up) response.status = 503;
      std::ostringstream out;
      obs::JsonWriter w(&out);
      w.BeginObject();
      w.Key("status").String(up ? "ok" : "stopped");
      WriteBuildSection(&w,
                        start_unix_us_.load(std::memory_order_acquire));
      w.EndObject();
      response.body = out.str();
      response.body += "\n";
      return response;
    });
    stats_server_.Handle("/readyz", [this] {
      HttpResponse response;
      const std::lock_guard<std::mutex> lock(mu_);
      if (running_ && accepting_) {
        response.body = "ready\n";
      } else {
        response.status = 503;
        response.body = stopping_ ? "draining\n" : "not accepting\n";
      }
      return response;
    });
    stats_server_.Handle("/varz", [this] {
      HttpResponse response;
      response.content_type = "application/json";
      response.body = VarzJson();
      return response;
    });
    stats_server_.Handle("/profilez", [this] {
      HttpResponse response;
      response.content_type = "application/json";
      response.body = ProfilezJson();
      return response;
    });
    const Status status =
        stats_server_.Start(static_cast<uint16_t>(config_.stats_port));
    if (!status.ok()) {
      const std::lock_guard<std::mutex> lock(mu_);
      running_ = false;
      accepting_ = false;
      return status;
    }
  }
  if (watchdog_ != nullptr) {
    const Status status = watchdog_->Start();
    if (!status.ok()) {
      stats_server_.Stop();
      const std::lock_guard<std::mutex> lock(mu_);
      running_ = false;
      accepting_ = false;
      return status;
    }
  }

  workers_.reserve(config_.num_workers);
  for (size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
  return Status::OK();
}

Status QueryServer::Submit(QueryRequest request,
                           std::future<QueryResponse>* response) {
  NC_CHECK(response != nullptr);
  if (request.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_ || !accepting_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("server is not accepting queries");
    }
    if (queue_.size() >= config_.queue_capacity) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission queue is full (capacity " +
          std::to_string(config_.queue_capacity) + ")");
    }
    Pending pending;
    pending.request = std::move(request);
    pending.promise = std::move(promise);
    // Trace identity minted at admission: the request id is the
    // admission sequence number, the trace id mixes in the per-Start
    // nonce so ids from different server runs do not collide.
    pending.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    pending.trace_id = MixTraceId(trace_nonce_ ^ pending.request_id);
    pending.admit_us = EpochNowUs();
    queue_.push_back(std::move(pending));
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (queue_.size() > peak_queue_depth_) peak_queue_depth_ = queue_.size();
  }
  cv_.notify_one();
  *response = std::move(future);
  return Status::OK();
}

void QueryServer::Shutdown(bool finish_queued) {
  const std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    accepting_ = false;
    stopping_ = true;
    finish_queued_ = finish_queued;
  }
  if (!finish_queued) {
    // Reaches workers that are mid-query (their next access hook
    // checkpoints and clamps); the cv below reaches the idle ones.
    draining_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  std::deque<Pending> leftovers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
    running_ = false;
    stopping_ = false;
  }
  draining_.store(false, std::memory_order_release);
  // Fulfilled outside the lock: promise continuations must not run
  // under mu_.
  for (Pending& pending : leftovers) {
    flushed_.fetch_add(1, std::memory_order_relaxed);
    pending.promise.set_value(Rejected(
        Status::Unavailable("server shut down before the query started")));
  }
  // The watchdog stops before the final snapshot so no check races the
  // save; the stats server stops last so /metrics stays scrapeable
  // through the drain itself.
  if (watchdog_ != nullptr) watchdog_->Stop();
  SyncTracerDropMetric();
  if (!config_.hub_snapshot_path.empty()) {
    const Status saved = hub_.SaveToFile(config_.hub_snapshot_path);
    if (!saved.ok()) {
      metrics_.counter("nc_server_hub_snapshot_errors_total").Increment();
    }
  }
  stats_server_.Stop();
}

bool QueryServer::running() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

ServerStats QueryServer::stats() const {
  ServerStats out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.completed = completed_.load(std::memory_order_relaxed);
  out.drained = drained_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.flushed = flushed_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.peak_queue_depth = peak_queue_depth_;
  }
  return out;
}

QueryResponse QueryServer::Rejected(Status status) {
  QueryResponse response;
  response.status = std::move(status);
  response.outcome = ServeOutcome::kRejected;
  return response;
}

void QueryServer::WorkerMain(size_t index) {
  // Built on this thread, used only by this thread, destroyed on this
  // thread: the whole mutable access stack is confined here. Only the
  // shared hub (handed to the session) crosses threads.
  std::unique_ptr<WorkerStack> stack = factory_(index);
  NC_CHECK(stack != nullptr);
  // The ONE exception to confinement on the access path: the shared
  // cache (internally synchronized; see cache/cache.h for why sharing
  // is sound and how cache-served accesses are billed).
  if (cache_ != nullptr) {
    stack->sources().set_access_cache(cache_.get());
  }
  // The worker's confined tracer shares the server's monotonic epoch (so
  // wall_us from different workers is directly comparable) and streams
  // through the shared synchronized sink; without a sink it is disabled
  // and the stack runs untraced, paying only the ShouldTrace test.
  obs::QueryTracer tracer;
  tracer.set_epoch_ns(epoch_ns_.load(std::memory_order_acquire));
  QuerySession session(scoring_, config_.planner, &hub_);
  if (config_.trace_sink != nullptr) {
    tracer.set_streaming_sink(config_.trace_sink);
    session.set_tracer(&tracer);
  } else {
    tracer.Disable();
  }
  // The worker's confined profiler, attached exactly like the tracer.
  // Serve owns its per-request lifecycle (Clear, externals, report).
  obs::Profiler profiler;
  if (config_.enable_profiler) {
    if (config_.trace_sink != nullptr) profiler.set_tracer(&tracer);
    session.set_profiler(&profiler);
  } else {
    profiler.Disable();
  }
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // A fast drain leaves queued entries for Shutdown's flush; a
      // finish-queued stop keeps serving until the backlog is empty.
      if (stopping_ && (!finish_queued_ || queue_.empty())) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    Serve(index, session, stack->sources(), tracer,
          config_.enable_profiler ? &profiler : nullptr,
          std::move(pending));
  }
}

void QueryServer::Serve(size_t index, QuerySession& session,
                        SourceSet& sources, obs::QueryTracer& tracer,
                        obs::Profiler* profiler, Pending pending) {
  const uint64_t start_us = EpochNowUs();
  const bool tracing = obs::ShouldTrace(&tracer);
  if (tracing) {
    obs::TraceContext ctx;
    ctx.trace_id = pending.trace_id;
    ctx.request_id = pending.request_id;
    ctx.worker = static_cast<uint32_t>(index);
    tracer.set_context(ctx);
    // The queue wait was measured by the admission thread; the span is
    // emitted whole by the serving worker, already under the request's
    // context.
    tracer.RecordSpan("queue_wait", pending.admit_us, start_us);
  }

  QueryResponse response;
  response.worker = index;

  // Fresh per-query state; the session re-warms fleet health from the
  // shared hub inside Query, so the rewind loses no cross-query signal.
  sources.Reset();
  const Status budget_status = sources.set_budget(pending.request.budget);
  if (!budget_status.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    metrics_.counter("nc_server_queries_total", {{"outcome", "rejected"}})
        .Increment();
    response.status = budget_status;
    response.outcome = ServeOutcome::kRejected;
    if (tracing) {
      tracer.RecordSpan("serve", start_us, EpochNowUs());
      tracer.clear_context();
      tracer.Clear();
    }
    pending.promise.set_value(std::move(response));
    return;
  }

  bool drained = false;
  size_t accesses_seen = 0;
  const std::chrono::microseconds stall(config_.simulated_access_stall_us);
  QueryHooks hooks;
  hooks.on_access = [this, &drained, &accesses_seen, &response, &sources,
                     &pending, profiler, stall](NCEngine& engine,
                                                size_t accesses) {
    accesses_seen = accesses;
    if (stall.count() > 0) std::this_thread::sleep_for(stall);
    if (!drained && draining_.load(std::memory_order_acquire)) {
      NC_PROFILE_SCOPE(profiler, kServerDrain);
      {
        NC_PROFILE_SCOPE(profiler, kCheckpointSerialize);
        // Checkpoint BEFORE clamping: the snapshot must describe the run
        // under its original budget, so resuming it on an identically
        // configured stack replays the uninterrupted query bit-for-bit.
        response.drain_checkpoint =
            SerializeCheckpoint(engine.Checkpoint());
      }
      // Same thread as the engine loop, between accesses - the one
      // place mutating the budget mid-run is legal. The engine answers
      // the refused next access with a certified anytime answer.
      NC_CHECK(sources.set_budget(DrainClamp(pending.request.budget)).ok());
      drained = true;
    }
  };

  // The profiler's lifecycle is per request: the session only attaches
  // it, the server resets it here and reads it back after the run.
  if (profiler != nullptr) profiler->Clear();

  const auto start = std::chrono::steady_clock::now();
  response.status = session.Query(&sources, pending.request.k, hooks,
                                  &response.result);
  response.wall_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  response.accesses = accesses_seen;
  response.accrued_cost = sources.accrued_cost();
  response.query_outcome = session.last_query_outcome();
  if (drained) {
    response.outcome = ServeOutcome::kDrained;
    drained_.fetch_add(1, std::memory_order_relaxed);
  } else if (response.status.ok()) {
    response.outcome = ServeOutcome::kCompleted;
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    response.outcome = ServeOutcome::kError;
    errors_.fetch_add(1, std::memory_order_relaxed);
  }

  const uint64_t end_us = EpochNowUs();
  if (tracing) {
    tracer.RecordSpan("serve", start_us, end_us);
    tracer.clear_context();
    // Every event already streamed through the sink; dropping the
    // buffered copies bounds the long-lived worker tracer's memory.
    tracer.Clear();
  }

  // The /metrics mirror of this query: outcome, latency split into queue
  // wait and service, the per-predicate access series, and (when the run
  // produced one) the Eq. 1 cost audit.
  metrics_
      .counter("nc_server_queries_total",
               {{"outcome", ServeOutcomeName(response.outcome)}})
      .Increment();
  metrics_.histogram("nc_server_queue_wait_us", LatencyBucketsUs())
      .Observe(static_cast<double>(start_us - pending.admit_us));
  metrics_.histogram("nc_server_service_us", LatencyBucketsUs())
      .Observe(response.wall_micros);
  obs::RecordSourceMetrics(&metrics_, "server", sources);
  const obs::CostAudit& audit = session.last_cost_audit();
  if (audit.valid) {
    obs::RecordCostAuditMetrics(&metrics_, "server", audit);
    const std::lock_guard<std::mutex> lock(audit_mu_);
    last_audit_ = audit;
    last_audit_request_ = pending.request_id;
  }
  if (profiler != nullptr) {
    // Queue wait is off-thread time the scoped timers never saw: fold it
    // in as an external center so the report covers admission to answer.
    profiler->AddExternal(obs::CostCenter::kServerQueue,
                          (start_us - pending.admit_us) * 1000);
    const obs::ProfileReport report = profiler->Report();
    obs::RecordProfileMetrics(report, &metrics_);
    hub_.ObserveProfile(report);
    const std::lock_guard<std::mutex> lock(profile_mu_);
    last_profile_ = report;
    last_profile_request_ = pending.request_id;
  }
  SyncTracerDropMetric();
  WorkerMeter& meter = *meters_[index];
  meter.busy_us.fetch_add(end_us - start_us, std::memory_order_relaxed);
  meter.queries.fetch_add(1, std::memory_order_relaxed);

  pending.promise.set_value(std::move(response));
}

void QueryServer::SyncTracerDropMetric() {
  if (config_.trace_sink == nullptr) return;
  // The sink's drop count is cumulative; counters are monotonic, so fold
  // in only the delta since the last sync. Racing syncs may both read
  // the same count, but the exchange ensures each drop is billed once.
  const uint64_t now =
      static_cast<uint64_t>(config_.trace_sink->lines_dropped());
  const uint64_t prev =
      tracer_drops_synced_.exchange(now, std::memory_order_acq_rel);
  if (now > prev) {
    metrics_.counter("nc_tracer_dropped_lines")
        .Increment(static_cast<double>(now - prev));
  }
}

uint64_t QueryServer::EpochNowUs() const {
  const uint64_t epoch = epoch_ns_.load(std::memory_order_acquire);
  const uint64_t now = obs::MonotonicTimeNs();
  return now > epoch ? (now - epoch) / 1000 : 0;
}

uint16_t QueryServer::stats_port() const {
  return stats_server_.running() ? stats_server_.port() : 0;
}

bool QueryServer::warm_started() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return warm_started_;
}

std::string QueryServer::VarzJson() const {
  const ServerStats totals = stats();
  std::ostringstream out;
  obs::JsonWriter w(&out);
  w.BeginObject();
  WriteBuildSection(&w, start_unix_us_.load(std::memory_order_acquire));
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const uint64_t uptime_us = running_ ? EpochNowUs() : 0;
    w.Key("server").BeginObject();
    w.Key("running").Bool(running_);
    w.Key("accepting").Bool(accepting_);
    w.Key("draining").Bool(draining_.load(std::memory_order_acquire));
    w.Key("warm_started").Bool(warm_started_);
    w.Key("num_workers").UInt(config_.num_workers);
    w.Key("queue_depth").UInt(queue_.size());
    w.Key("queue_capacity").UInt(config_.queue_capacity);
    w.Key("peak_queue_depth").UInt(totals.peak_queue_depth);
    w.Key("uptime_us").UInt(uptime_us);
    w.EndObject();

    w.Key("stats").BeginObject();
    w.Key("submitted").UInt(totals.submitted);
    w.Key("rejected").UInt(totals.rejected);
    w.Key("completed").UInt(totals.completed);
    w.Key("drained").UInt(totals.drained);
    w.Key("errors").UInt(totals.errors);
    w.Key("flushed").UInt(totals.flushed);
    w.EndObject();

    w.Key("workers").BeginArray();
    for (size_t i = 0; i < meters_.size(); ++i) {
      const WorkerMeter& meter = *meters_[i];
      const uint64_t busy = meter.busy_us.load(std::memory_order_relaxed);
      w.BeginObject();
      w.Key("worker").UInt(i);
      w.Key("queries").UInt(meter.queries.load(std::memory_order_relaxed));
      w.Key("busy_us").UInt(busy);
      w.Key("utilization")
          .Number(uptime_us > 0
                      ? static_cast<double>(busy) /
                            static_cast<double>(uptime_us)
                      : 0.0);
      w.EndObject();
    }
    w.EndArray();

    w.Key("watchdog").BeginObject();
    w.Key("enabled").Bool(watchdog_ != nullptr);
    if (watchdog_ != nullptr) {
      w.Key("checks_run").UInt(watchdog_->checks_run());
      w.Key("anomalies").BeginArray();
      for (const obs::Anomaly& a : watchdog_->last_anomalies()) {
        w.BeginObject();
        w.Key("kind").String(a.kind);
        w.Key("predicate").UInt(a.predicate);
        w.Key("replica").UInt(a.replica);
        w.Key("type").String(a.type == AccessType::kRandom ? "random"
                                                           : "sorted");
        w.Key("baseline").Number(a.baseline);
        w.Key("live").Number(a.live);
        w.Key("ratio").Number(a.ratio);
        w.EndObject();
      }
      w.EndArray();
    }
    w.EndObject();
  }

  const obs::HubSnapshot snap = hub_.Snapshot();
  w.Key("hub").BeginObject();
  w.Key("queries_observed").UInt(snap.queries_observed);
  const auto quantile_rows = [&w](const char* key,
                                  const std::vector<obs::SlotQuantiles>& rows,
                                  bool with_replica) {
    w.Key(key).BeginArray();
    for (const obs::SlotQuantiles& row : rows) {
      w.BeginObject();
      w.Key("predicate").UInt(row.predicate);
      if (with_replica) w.Key("replica").UInt(row.replica);
      w.Key("count").UInt(row.count);
      w.Key("p50").Number(row.p50);
      w.Key("p90").Number(row.p90);
      w.Key("p95").Number(row.p95);
      w.Key("p99").Number(row.p99);
      w.EndObject();
    }
    w.EndArray();
  };
  quantile_rows("service", snap.service, /*with_replica=*/true);
  quantile_rows("completion", snap.completion, /*with_replica=*/false);
  quantile_rows("prediction_error", snap.prediction_error,
                /*with_replica=*/false);
  w.Key("cost").BeginArray();
  for (const obs::CostCell& cell : snap.cost) {
    w.BeginObject();
    w.Key("predicate").UInt(cell.predicate);
    w.Key("type").String(cell.type == AccessType::kRandom ? "random"
                                                          : "sorted");
    w.Key("ewma").Number(cell.ewma);
    w.EndObject();
  }
  w.EndArray();
  w.Key("fleet_health").BeginArray();
  for (const obs::ReplicaHealth& slot : snap.health) {
    w.BeginObject();
    w.Key("predicate").UInt(slot.predicate);
    w.Key("replica").UInt(slot.replica);
    w.Key("dead").Bool(slot.dead);
    w.Key("breaker_open").Bool(slot.breaker_open);
    w.Key("cooldown_remaining").Number(slot.cooldown_remaining);
    w.Key("breaker_consecutive").UInt(slot.breaker_consecutive);
    if (slot.has_ewma) w.Key("ewma_latency").Number(slot.ewma_latency);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  w.Key("cache").BeginObject();
  w.Key("enabled").Bool(cache_ != nullptr);
  if (cache_ != nullptr) {
    const cache::CacheStatsSnapshot cs = cache_->Snapshot();
    w.Key("generation").UInt(cache_->generation());
    w.Key("entries").UInt(cs.random_entries + cs.stream_entries);
    w.Key("random_entries").UInt(cs.random_entries);
    w.Key("stream_entries").UInt(cs.stream_entries);
    w.Key("bytes").UInt(cs.bytes);
    w.Key("hits").UInt(cs.hits());
    w.Key("misses").UInt(cs.misses());
    w.Key("hit_rate").Number(cs.hit_rate());
    w.Key("inflight_merges").UInt(cs.inflight_merges);
    w.Key("evictions").UInt(cs.evictions);
    w.Key("expirations").UInt(cs.expirations);
    w.Key("invalidations").UInt(cs.invalidations);
    w.Key("streams").BeginArray();
    for (const auto& depth : cs.stream_depths) {
      w.BeginObject();
      w.Key("predicate").UInt(depth.first);
      w.Key("depth").UInt(depth.second);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();

  {
    const std::lock_guard<std::mutex> lock(audit_mu_);
    w.Key("cost_audit").BeginObject();
    w.Key("valid").Bool(last_audit_.valid);
    if (last_audit_.valid) {
      w.Key("request").UInt(last_audit_request_);
      w.Key("predicted_total").Number(last_audit_.predicted_total);
      w.Key("actual_total").Number(last_audit_.actual_total);
      w.Key("total_error").Number(last_audit_.total_error);
      w.Key("total_relative_error").Number(last_audit_.total_relative_error);
    }
    w.EndObject();
  }

  w.Key("tracer").BeginObject();
  w.Key("enabled").Bool(config_.trace_sink != nullptr);
  if (config_.trace_sink != nullptr) {
    w.Key("lines_written").UInt(config_.trace_sink->lines_written());
    w.Key("lines_dropped").UInt(config_.trace_sink->lines_dropped());
  }
  w.EndObject();
  w.EndObject();
  return out.str();
}

std::string QueryServer::ProfilezJson() const {
  std::ostringstream out;
  obs::JsonWriter w(&out);
  w.BeginObject();
  w.Key("enabled").Bool(config_.enable_profiler);
  w.Key("alloc_accounting").Bool(obs::AllocAccountingActive());
  {
    const std::lock_guard<std::mutex> lock(profile_mu_);
    w.Key("last").BeginObject();
    w.Key("valid").Bool(!last_profile_.empty());
    if (!last_profile_.empty()) {
      w.Key("request").UInt(last_profile_request_);
      w.Key("report").Raw(last_profile_.ToJson());
    }
    w.EndObject();
  }
  // Cross-query per-center self-time quantiles (microseconds), from the
  // hub's P2 sketches.
  const obs::HubSnapshot snap = hub_.Snapshot();
  w.Key("cross_query").BeginArray();
  for (const obs::ProfileQuantiles& row : snap.profile) {
    w.BeginObject();
    w.Key("center").String(obs::CostCenterName(row.center));
    w.Key("count").UInt(row.count);
    w.Key("p50_us").Number(row.p50);
    w.Key("p90_us").Number(row.p90);
    w.Key("p95_us").Number(row.p95);
    w.Key("p99_us").Number(row.p99);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return out.str();
}

}  // namespace nc::server
