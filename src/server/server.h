// A concurrent top-k query server: many queries, one fleet.
//
// Everything below the engine was built for one query at a time: the
// SourceSet's cursors, the replica fleet's breakers and routing EWMAs,
// and the fault/jitter RNG streams are all mutable per-run state.
// QueryServer turns that single-query stack into a multi-query service
// without adding a single lock to the access hot path, by *confinement*
// rather than synchronization:
//
//   * Each worker thread builds its own private stack (SourceSet +
//     ReplicaFleet + FaultInjector + RNG streams) through the
//     WorkerStackFactory, on the worker's own thread, and never shares
//     it. The access path stays exactly as fast as the single-query
//     library.
//   * The ONE shared object is the server-wide TelemetryHub, which is
//     internally synchronized (obs/telemetry.h): cross-query latency
//     sketches, cost EWMAs, and fleet health (deaths, breakers, routing
//     EWMAs) flow between workers through the hub's capture/warm cycle,
//     so worker 3 routes around the replica worker 1 found dead.
//   * Per-query isolation is the QueryBudget: each request carries its
//     own caps, applied to the worker's sources for exactly that query.
//
// Lifecycle: Start() spawns the workers; Submit() enqueues a request
// into a bounded admission queue (kResourceExhausted when full - the
// backpressure signal) and returns a future; Shutdown(bool) stops the
// server. Shutdown(true) finishes every accepted query normally.
// Shutdown(false) is the graceful fast drain: queries already executing
// are intercepted at their next access - the engine state is
// checkpointed (core/checkpoint.h) into the response and the budget is
// clamped so the engine emits a *certified anytime answer* - and queries
// still queued are flushed with kUnavailable. Nothing is abandoned
// without either an answer or a resumable checkpoint.
//
// Determinism: a fault-free query's answer depends only on (k, budget,
// stack configuration), never on which worker served it or what ran
// concurrently - the differential test in tests/server_test.cc asserts
// concurrent answers are bit-identical to a serial run's.
//
// See docs/SERVER.md for the full threading model.

#ifndef NC_SERVER_SERVER_H_
#define NC_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "access/budget.h"
#include "access/source.h"
#include "cache/cache.h"
#include "common/status.h"
#include "core/planner.h"
#include "core/result.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "obs/watchdog.h"
#include "scoring/scoring_function.h"
#include "server/stats_server.h"

namespace nc::server {

// One worker's thread-confined source stack: the SourceSet plus whatever
// backs it (dataset, replica fleet, fault injector - and thus every
// latency/retry/fault RNG stream). Subclass to own the backing objects;
// the server only ever calls sources(), from the owning worker's thread.
// Constructed and destroyed on that thread.
class WorkerStack {
 public:
  virtual ~WorkerStack() = default;

  // The worker's private access gateway. Must stay valid (and keep
  // pointing at the same object) for the stack's lifetime.
  virtual SourceSet& sources() = 0;
};

// Builds worker `index`'s stack. Invoked on that worker's own thread, so
// even construction is confined. Must return non-null, and every
// worker's stack must be configured identically (same dataset, scenario,
// policies, seeds): the server treats workers as interchangeable, and
// the drain checkpoint's resume contract assumes any equally-configured
// stack can finish the query.
using WorkerStackFactory =
    std::function<std::unique_ptr<WorkerStack>(size_t index)>;

struct ServerConfig {
  // Worker threads, each serving one query at a time. >= 1.
  size_t num_workers = 1;

  // Admission-queue capacity: queries waiting for a worker. Submit
  // refuses with kResourceExhausted when the backlog is full. >= 1.
  size_t queue_capacity = 64;

  // Planner options for every worker's QuerySession. Plan caches are
  // per-worker (cache hits need no locking); only the telemetry hub is
  // server-wide.
  PlannerOptions planner;

  // Simulated network stall per performed access, in wall-clock
  // microseconds. A real web source spends its latency off-CPU while the
  // simulation substrate spends none, so on a small machine a CPU-bound
  // run would show no concurrency win; the stall restores the off-CPU
  // waiting so throughput scales with workers the way it does against
  // real sources. 0 (the default) disables it. Answers are identical
  // either way - the stall never touches the cost clock.
  size_t simulated_access_stall_us = 0;

  // --- Observability plane ---------------------------------------------

  // Live introspection endpoint (server/stats_server.h): /metrics
  // (Prometheus text), /healthz, /readyz, /varz (JSON). -1 (the default)
  // disables it; 0 binds an ephemeral loopback port (read it back with
  // stats_port()); anything else binds that port.
  int stats_port = -1;

  // Persistent warm-start telemetry. When set, Start() loads a
  // TelemetryHub snapshot ("nchub 1", obs/telemetry.h) from this path if
  // the file exists - so the restarted server routes, hedges, and
  // breaker-guards from everything the previous process learned, from
  // its very first access - and Shutdown() (both drain modes) writes the
  // hub back. A missing file is a cold start, not an error; a corrupt
  // one fails Start() loudly.
  std::string hub_snapshot_path;

  // Hierarchical per-query profiling (obs/profiler.h): each worker owns
  // a confined Profiler attached to its session; every served query's
  // per-cost-center breakdown feeds nc_profile_* metrics, the hub's
  // cross-query sketches, and the /profilez endpoint (which also
  // reports queue wait as the kServerQueue external center and drain
  // interceptions as kServerDrain / kCheckpointSerialize). Off by
  // default: the access path then pays one ShouldProfile branch per
  // scope and answers stay bit-identical either way.
  bool enable_profiler = false;

  // Request-scoped tracing: with a sink attached, every worker streams
  // its trace events - each stamped with the request's TraceContext
  // (trace/request/worker ids) plus explicit queue-wait and serve spans
  // - as JSONL lines through this synchronized sink. The sink must
  // outlive the server. nullptr disables tracing.
  obs::JsonlSink* trace_sink = nullptr;

  // Anomaly watchdog: with watchdog = true AND a baseline loaded from
  // hub_snapshot_path, a background thread periodically diffs the live
  // hub against the loaded baseline (obs/watchdog.h) and surfaces
  // regressions as nc_anomaly_* metrics, tracer events, and /varz rows.
  bool watchdog = false;
  obs::WatchdogOptions watchdog_options;

  // Cross-query access cache (cache/cache.h): ONE internally-synchronized
  // AccessCache shared by every worker's SourceSet, so worker 3 reuses
  // the sorted prefix and random scores worker 1 already paid for.
  // Billing stays honest: the source is billed once (by the worker that
  // performed the access); cache-served accesses charge cache.hit_cost
  // (default 0) to the served query. Disabled by default - the confined
  // stack then runs with no shared state on the access path at all.
  bool enable_cache = false;
  cache::CacheConfig cache;

  Status Validate() const;
};

// How the server disposed of one submitted query.
enum class ServeOutcome {
  // Ran to its natural end: exact, theta-approximate, degraded, or
  // budget-certified per its own request budget.
  kCompleted,
  // Intercepted by a fast drain: the response carries a certified
  // anytime answer and a resumable checkpoint. (When the query finished
  // naturally in the same breath as the interception, the answer may
  // even be exact; the checkpoint is present regardless.)
  kDrained,
  // Never executed: request validation failed at the worker, or the
  // query was still queued when the server shut down.
  kRejected,
  // Executed but the engine returned a non-OK status.
  kError,
};

// "completed", "drained", ... for logs and bench output.
const char* ServeOutcomeName(ServeOutcome outcome);

struct QueryRequest {
  size_t k = 1;

  // The per-query isolation primitive: caps on what this query may spend
  // (cost, deadline, per-predicate quotas - access/budget.h), enforced on
  // the serving worker's sources for exactly this query. Exhaustion
  // yields a certified anytime answer, not an error. Default: unlimited.
  QueryBudget budget;
};

struct QueryResponse {
  // The engine's status for executed queries; the refusal for rejected
  // ones.
  Status status;
  TopKResult result;
  ServeOutcome outcome = ServeOutcome::kRejected;
  // QuerySession's finer-grained disposition (kNone when never executed).
  QueryOutcome query_outcome = QueryOutcome::kNone;
  // Eq. 1 cost this query accrued on its worker's sources.
  double accrued_cost = 0.0;
  // Accesses the engine performed.
  size_t accesses = 0;
  // Index of the worker that served it.
  size_t worker = 0;
  // Wall-clock service time (queue wait excluded), microseconds.
  double wall_micros = 0.0;
  // kDrained only: the serialized engine checkpoint ("ncckpt" text,
  // core/checkpoint.h) captured at the interception point, under the
  // query's ORIGINAL budget. ParseCheckpoint + NCEngine::Resume on an
  // identically configured stack finishes the query bit-identically to
  // an uninterrupted run.
  std::string drain_checkpoint;
};

// Monotonic counters over the server's lifetime. submitted = completed +
// drained + errors + flushed + still-in-flight; rejected counts Submit
// refusals (never enqueued) plus worker-side validation failures.
struct ServerStats {
  size_t submitted = 0;
  size_t rejected = 0;
  size_t completed = 0;
  size_t drained = 0;
  size_t errors = 0;
  size_t flushed = 0;
  size_t peak_queue_depth = 0;
};

class QueryServer {
 public:
  // `scoring` must outlive the server. The factory is retained and
  // invoked once per worker from Start().
  QueryServer(const ScoringFunction* scoring, ServerConfig config,
              WorkerStackFactory factory);

  // A still-running server fast-drains (Shutdown(false)) on destruction.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Validates the config and spawns the workers. FailedPrecondition when
  // already running. A shut-down server may be Start()ed again.
  Status Start();

  // Enqueues a query. On OK, *response is fulfilled exactly once - with
  // an answer, a certified drain, or a flush rejection - never leaked.
  // kResourceExhausted when the queue is full (backpressure; retry
  // later), kUnavailable when the server is not accepting,
  // InvalidArgument for a malformed request (k == 0).
  Status Submit(QueryRequest request, std::future<QueryResponse>* response);

  // Stops accepting, stops the workers, joins them. finish_queued=true
  // serves every already-accepted query to its natural end first.
  // finish_queued=false is the graceful fast drain: in-flight queries
  // are checkpointed + budget-clamped into certified anytime answers at
  // their next access; queued queries are flushed with kUnavailable.
  // Idempotent; safe to call concurrently with Submit.
  void Shutdown(bool finish_queued);

  bool running() const;

  // The server-wide telemetry hub (internally synchronized). Shared by
  // every worker's session; readable at any time, including mid-load.
  obs::TelemetryHub& hub() { return hub_; }
  const obs::TelemetryHub& hub() const { return hub_; }

  // The server-wide metrics registry (internally synchronized): per-query
  // outcome counters, queue-wait/service histograms, per-predicate access
  // and cost-audit series, and the watchdog's nc_anomaly_* counters.
  // /metrics exposes it; it accumulates across Start/Shutdown cycles.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Port of the live introspection endpoint; 0 when disabled or not
  // running. With config.stats_port == 0 this is the ephemeral port the
  // OS picked.
  uint16_t stats_port() const;

  // The /varz document: a JSON snapshot of queue depth, per-worker
  // utilization, server stats, hub quantiles/cost/fleet health, the
  // latest cost audit, build provenance, tracer sink health, and
  // watchdog findings. Callable any time.
  std::string VarzJson() const;

  // The /profilez document: whether profiling is on, the most recent
  // query's full ProfileReport, and the hub's cross-query per-center
  // self-time quantiles. Callable any time.
  std::string ProfilezJson() const;

  // The anomaly watchdog; nullptr unless config.watchdog was set and a
  // baseline snapshot was loaded at Start.
  obs::AnomalyWatchdog* watchdog() { return watchdog_.get(); }

  // The shared cross-query access cache; nullptr unless
  // config.enable_cache. Created at the first Start() and kept across
  // Start/Shutdown cycles so a restarted server keeps its warm streams.
  cache::AccessCache* access_cache() { return cache_.get(); }
  const cache::AccessCache* access_cache() const { return cache_.get(); }

  // True when Start() warm-loaded a hub snapshot from
  // config.hub_snapshot_path.
  bool warm_started() const;

  ServerStats stats() const;

  size_t num_workers() const { return config_.num_workers; }

 private:
  struct Pending {
    QueryRequest request;
    std::promise<QueryResponse> promise;
    // Trace identity minted at admission.
    uint64_t request_id = 0;
    uint64_t trace_id = 0;
    // Admission instant on the server's shared monotonic epoch, for the
    // queue-wait span.
    uint64_t admit_us = 0;
  };

  // Per-worker utilization meter, read lock-free by /varz.
  struct WorkerMeter {
    std::atomic<uint64_t> busy_us{0};
    std::atomic<uint64_t> queries{0};
  };

  void WorkerMain(size_t index);

  // Serves one accepted query on this worker's session + sources,
  // fulfilling its promise exactly once. `tracer` is the worker's
  // confined tracer (context installed per request); `profiler` the
  // worker's confined profiler, nullptr when profiling is off.
  void Serve(size_t index, QuerySession& session, SourceSet& sources,
             obs::QueryTracer& tracer, obs::Profiler* profiler,
             Pending pending);

  // Folds the trace sink's cumulative drop count into the
  // nc_tracer_dropped_lines counter (monotonic delta sync).
  void SyncTracerDropMetric();

  // Microseconds since the server's shared monotonic epoch.
  uint64_t EpochNowUs() const;

  static QueryResponse Rejected(Status status);

  const ScoringFunction* scoring_;
  ServerConfig config_;
  WorkerStackFactory factory_;
  // Declared before any worker can exist; outlives them all.
  obs::TelemetryHub hub_;
  // The loaded "nchub 1" snapshot, kept verbatim as the watchdog's
  // baseline (hub_ itself keeps learning and would drift).
  obs::TelemetryHub baseline_hub_;
  obs::MetricsRegistry metrics_;
  StatsServer stats_server_;
  // Assigned under mu_ by Start (replacing any stopped predecessor) so
  // /varz can read the pointer under mu_ concurrently.
  std::unique_ptr<obs::AnomalyWatchdog> watchdog_;
  // The shared cross-query cache (internally synchronized). Created once
  // at the first Start() - before the stats endpoint comes up, so /varz
  // never races the assignment - and never replaced thereafter.
  std::unique_ptr<cache::AccessCache> cache_;
  bool warm_started_ = false;  // Guarded by mu_.

  // Shared monotonic anchor handed to every worker's tracer, so wall_us
  // from different workers is directly comparable. Set at Start.
  std::atomic<uint64_t> epoch_ns_{0};
  // Mixes into minted trace ids so two server runs do not collide.
  uint64_t trace_nonce_ = 0;  // Guarded by mu_.
  std::atomic<uint64_t> next_request_id_{0};
  // One meter per worker; rebuilt by Start (workers hold raw pointers).
  std::vector<std::unique_ptr<WorkerMeter>> meters_;

  // The most recent query's cost audit, mirrored for /varz.
  mutable std::mutex audit_mu_;
  obs::CostAudit last_audit_;
  uint64_t last_audit_request_ = 0;

  // The most recent query's profile, mirrored for /profilez.
  mutable std::mutex profile_mu_;
  obs::ProfileReport last_profile_;
  uint64_t last_profile_request_ = 0;

  // Last sink drop count already folded into nc_tracer_dropped_lines.
  std::atomic<uint64_t> tracer_drops_synced_{0};

  // Wall-clock instant of the last successful Start, for /healthz and
  // /varz build sections.
  std::atomic<uint64_t> start_unix_us_{0};

  // Serializes Start/Shutdown against each other (worker threads joined
  // outside mu_ so workers can finish queries that need it).
  std::mutex lifecycle_mu_;
  std::vector<std::thread> workers_;  // Guarded by lifecycle_mu_.

  mutable std::mutex mu_;  // Guards the queue and the flags below.
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool running_ = false;    // Start succeeded, Shutdown not yet finished.
  bool accepting_ = false;  // Submit admits new queries.
  bool stopping_ = false;   // Workers should exit when out of work.
  bool finish_queued_ = true;
  size_t peak_queue_depth_ = 0;

  // Read by workers' per-access hooks without mu_ - the drain signal
  // must reach a worker that is mid-query (and thus not looking at the
  // queue) cheaply.
  std::atomic<bool> draining_{false};

  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> rejected_{0};
  std::atomic<size_t> completed_{0};
  std::atomic<size_t> drained_{0};
  std::atomic<size_t> errors_{0};
  std::atomic<size_t> flushed_{0};
};

}  // namespace nc::server

#endif  // NC_SERVER_SERVER_H_
