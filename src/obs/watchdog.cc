#include "obs/watchdog.h"

#include <chrono>
#include <cmath>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace nc::obs {

namespace {

// Both sides must be positive finite for a ratio to mean anything: a
// zero or NaN baseline (empty sketch, unseeded EWMA) can never be
// "regressed from".
bool RatioExceeds(double live, double baseline, double bar, double* ratio) {
  if (!std::isfinite(live) || !std::isfinite(baseline)) return false;
  if (baseline <= 0.0 || live <= 0.0) return false;
  *ratio = live / baseline;
  return *ratio > bar;
}

std::string PredicateLabel(PredicateId i) { return std::to_string(i); }

}  // namespace

Status WatchdogOptions::Validate() const {
  if (!(interval_ms > 0.0)) {
    return Status::InvalidArgument("watchdog interval_ms must be > 0");
  }
  if (!(latency_ratio > 1.0)) {
    return Status::InvalidArgument("watchdog latency_ratio must be > 1");
  }
  if (!(cost_ratio > 1.0)) {
    return Status::InvalidArgument("watchdog cost_ratio must be > 1");
  }
  return Status::OK();
}

AnomalyWatchdog::AnomalyWatchdog(const TelemetryHub* live,
                                 const TelemetryHub* baseline,
                                 WatchdogOptions options,
                                 MetricsRegistry* metrics,
                                 JsonlSink* trace_sink)
    : live_(live),
      baseline_(baseline),
      options_(options),
      metrics_(metrics) {
  NC_CHECK(live_ != nullptr);
  NC_CHECK(baseline_ != nullptr);
  if (trace_sink != nullptr) {
    tracer_.set_streaming_sink(trace_sink);
  } else {
    tracer_.Disable();
  }
}

AnomalyWatchdog::~AnomalyWatchdog() { Stop(); }

std::vector<Anomaly> AnomalyWatchdog::CheckNow() {
  const HubSnapshot live = live_->Snapshot();
  const HubSnapshot base = baseline_->Snapshot();
  std::vector<Anomaly> found;

  // Per-(predicate, replica) service latency p90 vs baseline. Slots the
  // baseline never saw (new replicas) have nothing to regress from and
  // are skipped, as are slots either side has too few samples for.
  for (const SlotQuantiles& b : base.service) {
    if (b.count < options_.min_samples) continue;
    for (const SlotQuantiles& l : live.service) {
      if (l.predicate != b.predicate || l.replica != b.replica) continue;
      if (l.count < options_.min_samples) break;
      double ratio = 0.0;
      if (RatioExceeds(l.p90, b.p90, options_.latency_ratio, &ratio)) {
        Anomaly a;
        a.kind = "service_latency";
        a.predicate = b.predicate;
        a.replica = b.replica;
        a.baseline = b.p90;
        a.live = l.p90;
        a.ratio = ratio;
        found.push_back(a);
      }
      break;
    }
  }

  // Per-predicate completion latency p90.
  for (const SlotQuantiles& b : base.completion) {
    if (b.count < options_.min_samples) continue;
    for (const SlotQuantiles& l : live.completion) {
      if (l.predicate != b.predicate) continue;
      if (l.count < options_.min_samples) break;
      double ratio = 0.0;
      if (RatioExceeds(l.p90, b.p90, options_.latency_ratio, &ratio)) {
        Anomaly a;
        a.kind = "completion_latency";
        a.predicate = b.predicate;
        a.baseline = b.p90;
        a.live = l.p90;
        a.ratio = ratio;
        found.push_back(a);
      }
      break;
    }
  }

  // Per-(predicate, access type) cost EWMA drift: the paper's Eq. 1
  // plans on cs_i / cr_i, so a drifted charge means the optimizer's
  // plan no longer matches what the source actually bills.
  for (const CostCell& b : base.cost) {
    for (const CostCell& l : live.cost) {
      if (l.predicate != b.predicate || l.type != b.type) continue;
      double ratio = 0.0;
      if (RatioExceeds(l.ewma, b.ewma, options_.cost_ratio, &ratio)) {
        Anomaly a;
        a.kind = "access_cost";
        a.predicate = b.predicate;
        a.type = b.type;
        a.baseline = b.ewma;
        a.live = l.ewma;
        a.ratio = ratio;
        found.push_back(a);
      }
      break;
    }
  }

  if (metrics_ != nullptr) {
    metrics_->counter("nc_anomaly_checks_total").Increment();
    for (const Anomaly& a : found) {
      if (a.kind == std::string_view("service_latency")) {
        metrics_
            ->counter("nc_anomaly_service_latency_total",
                      {{"predicate", PredicateLabel(a.predicate)},
                       {"replica", std::to_string(a.replica)}})
            .Increment();
      } else if (a.kind == std::string_view("completion_latency")) {
        metrics_
            ->counter("nc_anomaly_completion_latency_total",
                      {{"predicate", PredicateLabel(a.predicate)}})
            .Increment();
      } else {
        metrics_
            ->counter("nc_anomaly_access_cost_total",
                      {{"predicate", PredicateLabel(a.predicate)},
                       {"type", a.type == AccessType::kRandom ? "random"
                                                              : "sorted"}})
            .Increment();
      }
    }
  }
  if (ShouldTrace(&tracer_)) {
    for (const Anomaly& a : found) {
      // The finding as a telemetry event: predicted = baseline,
      // actual = live, the ratio in cost_clock's slot.
      const char* what = "anomaly";
      if (a.kind == std::string_view("service_latency")) {
        what = "anomaly_service_latency";
      } else if (a.kind == std::string_view("completion_latency")) {
        what = "anomaly_completion_latency";
      } else if (a.kind == std::string_view("access_cost")) {
        what = "anomaly_access_cost";
      }
      tracer_.RecordTelemetry(what, a.predicate, a.baseline, a.live, a.ratio);
    }
  }

  {
    const std::lock_guard<std::mutex> lock(mu_);
    last_ = found;
    ++checks_;
  }
  return found;
}

Status AnomalyWatchdog::Start() {
  NC_RETURN_IF_ERROR(options_.Validate());
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      return Status::FailedPrecondition("watchdog is already running");
    }
    running_ = true;
    stop_ = false;
  }
  thread_ = std::thread([this] { ThreadMain(); });
  return Status::OK();
}

void AnomalyWatchdog::Stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  const std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool AnomalyWatchdog::running() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

std::vector<Anomaly> AnomalyWatchdog::last_anomalies() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

size_t AnomalyWatchdog::checks_run() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return checks_;
}

void AnomalyWatchdog::ThreadMain() {
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, interval, [this] { return stop_; })) return;
    }
    CheckNow();
  }
}

}  // namespace nc::obs
