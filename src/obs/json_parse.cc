#include "obs/json_parse.h"

#include <cstdint>

#include "common/numeric.h"

namespace nc::obs {

namespace {

// Deep enough for every artifact the repo writes, shallow enough that a
// hostile "[[[[..." document cannot blow the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    SkipWhitespace();
    NC_RETURN_IF_ERROR(ParseValue(out, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the document");
    }
    return Status::OK();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (AtEnd() || Peek() != expected) return false;
    ++pos_;
    return true;
  }

  Status ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("expected '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        NC_RETURN_IF_ERROR(ConsumeLiteral("true"));
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Status::OK();
      case 'f':
        NC_RETURN_IF_ERROR(ConsumeLiteral("false"));
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Status::OK();
      case 'n':
        NC_RETURN_IF_ERROR(ConsumeLiteral("null"));
        out->kind = JsonValue::Kind::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected a member key");
      std::string key;
      NC_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after a member key");
      SkipWhitespace();
      JsonValue value;
      NC_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      // Last occurrence wins: overwrite an earlier duplicate in place so
      // Find (first match) honors RFC 8259's common behavior.
      bool replaced = false;
      for (auto& member : out->object) {
        if (member.first == key) {
          member.second = std::move(value);
          replaced = true;
          break;
        }
      }
      if (!replaced) out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in an object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWhitespace();
      JsonValue value;
      NC_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in an array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in a string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code = 0;
          NC_RETURN_IF_ERROR(ParseHex4(&code));
          // Surrogate pair: a high surrogate must be followed by an
          // escaped low surrogate; unpaired surrogates are rejected.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!Consume('\\') || !Consume('u')) {
              return Error("unpaired high surrogate");
            }
            uint32_t low = 0;
            NC_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    while (!AtEnd()) {
      const char c = Peek();
      const bool numeric = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                           c == 'E' || c == '+' || c == '-';
      if (!numeric) break;
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) return Error("expected a value");
    // RFC 8259 grammar check beyond what ParseDouble accepts: no leading
    // '+', no bare '-', no leading zeros like "01", no "1." / ".5", and
    // none of the non-finite spellings ParseDouble tolerates.
    double value = 0.0;
    if (!ValidJsonNumber(token) || !ParseDouble(token, &value)) {
      pos_ = start;
      return Error("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::OK();
  }

  static bool ValidJsonNumber(std::string_view token) {
    size_t i = 0;
    if (i < token.size() && token[i] == '-') ++i;
    // Integer part: "0" or [1-9][0-9]*.
    if (i >= token.size() || token[i] < '0' || token[i] > '9') return false;
    if (token[i] == '0') {
      ++i;
    } else {
      while (i < token.size() && token[i] >= '0' && token[i] <= '9') ++i;
    }
    if (i < token.size() && token[i] == '.') {
      ++i;
      if (i >= token.size() || token[i] < '0' || token[i] > '9') return false;
      while (i < token.size() && token[i] >= '0' && token[i] <= '9') ++i;
    }
    if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
      ++i;
      if (i < token.size() && (token[i] == '+' || token[i] == '-')) ++i;
      if (i >= token.size() || token[i] < '0' || token[i] > '9') return false;
      while (i < token.size() && token[i] >= '0' && token[i] <= '9') ++i;
    }
    return i == token.size();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& member : object) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

bool JsonValue::GetNumber(std::string_view key, double* out) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->number;
  return true;
}

bool JsonValue::GetString(std::string_view key, std::string* out) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) return false;
  *out = v->string;
  return true;
}

bool JsonValue::GetBool(std::string_view key, bool* out) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_bool()) return false;
  *out = v->boolean;
  return true;
}

Status ParseJson(std::string_view text, JsonValue* out) {
  Parser parser(text);
  JsonValue value;
  NC_RETURN_IF_ERROR(parser.Parse(&value));
  *out = std::move(value);
  return Status::OK();
}

}  // namespace nc::obs
