// Cross-query telemetry: the session-scoped half of the observability
// stack.
//
// QueryTracer, MetricsRegistry, and RunReport all see ONE query at a
// time: SourceSet::Reset() rewinds every per-query counter so reruns are
// reproducible. The TelemetryHub is the state that deliberately
// *survives* that rewind. Owned by QuerySession (or any long-lived
// embedder) and attached with SourceSet::set_telemetry_hub, it
// accumulates, across queries:
//
//   * streaming latency quantiles (P2 sketches: p50/p90/p95/p99) of the
//     observed *service* latency per (predicate, replica) and of the
//     *completion* latency per predicate,
//   * an EWMA of the per-access charge per (predicate, access type),
//   * the fleet's health - dead replicas, open breakers with their
//     remaining cooldown, breaker failure streaks, and routing EWMAs -
//     captured right before ResetRuntime() wipes it and re-applied
//     ("warmed") right after, so query N+1 starts warm (routing around a
//     replica query N found dead instead of rediscovering it).
//
// The hub also powers adaptive hedging: with HedgePolicy::adaptive set,
// SourceSet reads AdaptiveHedgeDelay(i, r) instead of the hand-set
// HedgePolicy::delay, so the hedge fires on the stragglers the fleet
// actually produces. The trigger is the EXACT p90 over a small sliding
// window of the replica's recent service latencies, not a P2 marker,
// and p90 rather than p95, both deliberately: with a straggler fraction
// of ~5%, the 0.95 quantile of the service distribution is ambiguous
// across the entire gap between the latency bulk and the tail, and the
// P2 markers near that gap are dragged into it by the parabolic update
// at small sample counts (hedging far too late). The windowed exact p90
// sits firmly inside the bulk - just above normal service time - and
// tracks drift. The P2 sketches remain the *reported* quantiles: O(1)
// memory over unbounded streams is right for observability, where a few
// percentile points of rank error are harmless.
//
// --- Thread safety -----------------------------------------------------
// The hub is the ONE piece of the SourceSet stack that is shared across
// concurrent queries (the query server attaches a single hub to every
// worker's otherwise thread-confined source stack; see docs/SERVER.md).
// All feeds, reads, and the capture/warm pair are therefore internally
// synchronized by a mutex. The cost discipline survives: a detached
// (nullptr) or disabled hub is one pointer/atomic-bool test per feed
// (guard with ShouldSample) - the lock is only taken when a feed or read
// actually proceeds. Because concurrent workers each capture their own
// fleet view, CaptureFleetHealth MERGES by (predicate, replica) slot
// instead of replacing the capture wholesale: deaths are sticky across
// captures (a worker whose fleet instance never saw a death cannot
// resurrect the replica), while breaker/EWMA state takes the latest
// capture. The hub never changes WHAT an access returns - only hedge
// timing (cost), never results - so top-k answers are bit-identical with
// the hub enabled or disabled on fault-free runs (differential_test.cc,
// server_test.cc).
//
// Checkpoints deliberately EXCLUDE hub state: a resumed query re-warms
// from the live session's hub instead of a stale snapshot (see
// docs/OBSERVABILITY.md, "Checkpoint interaction").

#ifndef NC_OBS_TELEMETRY_H_
#define NC_OBS_TELEMETRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "access/access.h"
#include "common/check.h"
#include "common/score.h"
#include "common/stats.h"
#include "common/status.h"
#include "obs/profiler.h"
#include "replica/replica.h"

namespace nc::obs {

// Observations a (predicate, replica) slot needs before its quantile
// sketch may drive decisions (adaptive hedge delay). Below this the
// estimate is noise and callers fall back to the configured constant.
inline constexpr size_t kTelemetryMinSamples = 16;

// Sliding-window size backing the adaptive hedge trigger's exact p90.
inline constexpr size_t kTelemetryHedgeWindow = 64;

// EWMA smoothing for the per-access charge series.
inline constexpr double kTelemetryCostEwmaAlpha = 0.2;

// One (predicate, replica) slot's captured health, the unit of
// cross-query fleet state. Cooldowns are stored as *remaining* time:
// every query starts its elapsed-time clock at zero, so an absolute
// open_until from the last query would be meaningless.
struct ReplicaHealth {
  PredicateId predicate = 0;
  size_t replica = 0;
  bool dead = false;
  bool breaker_open = false;
  double cooldown_remaining = 0.0;
  size_t breaker_consecutive = 0;
  bool has_ewma = false;
  double ewma_latency = 0.0;
};

// One sketch's reported quantiles, the unit of HubSnapshot. `replica` is
// 0 for the per-predicate series (completion, prediction error).
struct SlotQuantiles {
  PredicateId predicate = 0;
  size_t replica = 0;
  size_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// One cost-EWMA cell.
struct CostCell {
  PredicateId predicate = 0;
  AccessType type = AccessType::kSorted;
  double ewma = 0.0;
};

// One cost center's cross-query profile rollup: quantiles (microseconds)
// of the per-query SELF time spent in that center.
struct ProfileQuantiles {
  CostCenter center = CostCenter::kSortedAccess;
  size_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// A point-in-time, lock-free-to-consume copy of everything the hub has
// learned, sorted by (predicate, replica) throughout: what /varz renders
// and what the anomaly watchdog diffs against a baseline.
struct HubSnapshot {
  size_t queries_observed = 0;
  std::vector<SlotQuantiles> service;           // per (predicate, replica)
  std::vector<SlotQuantiles> completion;        // per predicate
  std::vector<SlotQuantiles> prediction_error;  // per predicate
  std::vector<CostCell> cost;                   // per (predicate, type)
  std::vector<ReplicaHealth> health;            // per (predicate, replica)
  std::vector<ProfileQuantiles> profile;        // per cost center
};

class TelemetryHub {
 public:
  // Constructed enabled, like QueryTracer: attaching one expresses
  // intent. Disable()/Enable() toggle sampling without dropping state.
  TelemetryHub();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  // Drops ALL cross-query state (sketches, EWMAs, captured health).
  void Clear();

  // --- Feeds (no-ops when disabled) ------------------------------------
  // One observed service latency of replica r answering predicate i.
  void ObserveReplicaService(PredicateId i, size_t r, double latency);
  // One access's completion latency on predicate i (hedges resolved).
  void ObserveCompletion(PredicateId i, double latency);
  // One performed access's charge (0 for mid-page sorted entries).
  void ObserveAccessCost(PredicateId i, AccessType type, double charged);
  // One query's cost-audit relative error on predicate i (in [0, 1]);
  // QuerySession feeds this once per predicate per query, so the sketch
  // tracks how the optimizer's Eq. 1 prediction quality drifts.
  void ObservePredictionError(PredicateId i, double relative_error);
  // One query's finished profile (obs/profiler.h): each flat row's self
  // time feeds that cost center's cross-query P2 sketch, in
  // microseconds. Fed by the query server per served request (or any
  // embedder that owns a Profiler's lifecycle).
  void ObserveProfile(const ProfileReport& report);
  // One finished query (QuerySession calls this once per Query).
  void NoteQuery() {
    if (enabled()) queries_observed_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Introspection ----------------------------------------------------
  size_t queries_observed() const {
    return queries_observed_.load(std::memory_order_relaxed);
  }
  size_t replica_service_count(PredicateId i, size_t r) const;

  // Streaming quantile of replica r's service latency on predicate i;
  // q must be one of the tracked 0.5 / 0.9 / 0.95 / 0.99. NaN with no
  // samples.
  double ReplicaServiceQuantile(PredicateId i, size_t r, double q) const;
  // Per-predicate completion-latency quantile (same tracked q values).
  double CompletionQuantile(PredicateId i, double q) const;
  // EWMA of the per-access charge; NaN before the first observation.
  double AccessCostEwma(PredicateId i, AccessType type) const;
  // Quantile of the per-query prediction relative error on predicate i
  // (same tracked q values). NaN with no audited queries.
  double PredictionErrorQuantile(PredicateId i, double q) const;
  size_t prediction_error_count(PredicateId i) const;
  // Quantile (microseconds) of the per-query self time in one cost
  // center (same tracked q values). NaN with no observed profiles.
  double ProfileQuantile(CostCenter center, double q) const;
  size_t profile_sample_count(CostCenter center) const;

  // The adaptive hedge signal: the exact p90 of replica r's last
  // kTelemetryHedgeWindow service latencies (see the header comment for
  // why not a P2 marker and not p95), once the slot has
  // kTelemetryMinSamples observations; NaN while colder (callers fall
  // back to the configured HedgePolicy::delay).
  double AdaptiveHedgeDelay(PredicateId i, size_t r) const;

  // --- Cross-query fleet health -----------------------------------------
  // Captures every configured slot's health at elapsed-time `now`
  // (breaker cooldowns become remaining durations), MERGING into any
  // prior capture slot-by-slot: deaths are sticky (a fleet instance that
  // never observed a death cannot resurrect the slot - the lost-death
  // race when concurrent workers capture their per-worker fleets),
  // breaker and EWMA state take this capture's values. Slots this fleet
  // does not configure keep their previous capture.
  // SourceSet::Reset() calls this right before ResetRuntime().
  void CaptureFleetHealth(const ReplicaFleet& fleet, double now);

  // Re-applies the captured health onto a freshly reset fleet: deaths
  // are sticky, open breakers resume their remaining cooldown on the new
  // query's clock, routing EWMAs carry over. Slots still cold after that
  // seed their kLeastLatency EWMA from the cross-query service sketch's
  // median once it has kTelemetryMinSamples (hub-informed routing; the
  // answer is provably unaffected - routing changes where an access is
  // served, never what it returns). Slots the fleet no longer has are
  // skipped. Idempotent on an untouched fleet.
  void WarmFleet(ReplicaFleet* fleet) const;

  bool has_fleet_health() const;
  // Snapshot of the captured health, sorted by (predicate, replica).
  std::vector<ReplicaHealth> fleet_health() const;

  // Everything at once (one lock hold), for /varz and the watchdog.
  HubSnapshot Snapshot() const;

  // --- Persistence ("nchub 2") ------------------------------------------
  // The hub is what a server *learns* about its sources - routing EWMAs,
  // deaths, latency sketches, cost EWMAs - and relearning it from zero on
  // every restart costs real queries. Serialize captures the complete
  // hub state as a versioned, line-based, locale-safe text document
  // ("nchub 2"; version-1 documents without profile records still load):
  // every double rides as a C-hexfloat (common/numeric.h),
  // so Deserialize(Serialize()) reconstructs the state bit-for-bit and
  // Serialize is deterministic (keys sorted) - the round-trip is
  // byte-exact, which the property test in telemetry_test.cc pins.
  //
  // Serialized state includes the full P2 marker vectors (not just the
  // current estimates) and the hedge windows' ring contents, so a
  // restored hub continues *estimating* exactly where the saved one
  // stopped, not merely reporting its last values.
  std::string Serialize() const;
  // Replaces ALL hub state with the document's (the enabled flag is
  // untouched). On any parse error the hub is left unchanged and an
  // InvalidArgument status names the offending line.
  Status Deserialize(const std::string& text);
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

 private:
  struct ServiceSketch {
    P2Quantile p50{0.5};
    P2Quantile p90{0.9};
    P2Quantile p95{0.95};
    P2Quantile p99{0.99};
    size_t count = 0;

    void Add(double v) {
      p50.Add(v);
      p90.Add(v);
      p95.Add(v);
      p99.Add(v);
      ++count;
    }
    double At(double q) const;
  };
  struct CostEwma {
    bool seeded = false;
    double value = 0.0;
  };

  // Ring of the most recent service latencies of one slot, backing the
  // exact windowed quantile the hedge trigger reads.
  struct HedgeWindow {
    std::vector<double> samples;  // Ring storage, <= kTelemetryHedgeWindow.
    size_t next = 0;              // Ring cursor.
    size_t count = 0;             // Total observations ever.

    void Add(double v);
    double ExactQuantile(double q) const;
  };

  // Packs a (predicate, replica) slot into one map key: predicate in the
  // high 32 bits, replica in the low 32. PredicateId is a dense unsigned
  // 32-bit id (common/score.h), so it can neither be negative nor
  // overflow its half; the replica index is a size_t and is CHECKed
  // against 2^32 so an oversized index can never silently alias another
  // slot's key (replica fleets are a handful of endpoints in practice,
  // so the guard is free insurance, not a real limit).
  static uint64_t SlotKey(PredicateId i, size_t r) {
    static_assert(sizeof(PredicateId) == sizeof(uint32_t) &&
                      std::is_unsigned_v<PredicateId>,
                  "SlotKey packs PredicateId into 32 bits");
    NC_CHECK(r < (uint64_t{1} << 32));
    return (static_cast<uint64_t>(i) << 32) | static_cast<uint64_t>(r);
  }

  std::atomic<bool> enabled_{true};
  std::atomic<size_t> queries_observed_{0};
  // Guards every container below. Feeds and reads are short (a P2 update
  // is a few dozen flops); contention is only possible with the server's
  // shared hub, where queries are orders of magnitude longer than the
  // critical sections.
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, ServiceSketch> service_;     // (i, r)
  std::unordered_map<uint64_t, HedgeWindow> hedge_window_;  // (i, r)
  std::unordered_map<uint32_t, ServiceSketch> completion_;  // i
  std::unordered_map<uint64_t, CostEwma> cost_;  // (i, 0=sorted / 1=random)
  std::unordered_map<uint32_t, ServiceSketch> prediction_error_;  // i
  std::unordered_map<uint64_t, ReplicaHealth> health_;            // (i, r)
  std::unordered_map<uint32_t, ServiceSketch> profile_;  // cost center
};

// The hot-path guard every feeding layer uses (mirrors ShouldTrace).
inline bool ShouldSample(const TelemetryHub* hub) {
  return hub != nullptr && hub->enabled();
}

}  // namespace nc::obs

#endif  // NC_OBS_TELEMETRY_H_
