#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/numeric.h"

namespace nc::obs {

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  // Shortest form that round-trips exactly. Locale-safe: snprintf("%g")
  // would emit "0,5" under a comma-decimal locale - invalid JSON - and
  // the old strtod round-trip check would truncate at the comma.
  return FormatDouble(value);
}

void JsonWriter::PrepareValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!scope_has_value_.empty()) {
    if (scope_has_value_.back()) (*out_) << ',';
    scope_has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  PrepareValue();
  scope_has_value_.push_back(false);
  (*out_) << '{';
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  NC_CHECK(!scope_has_value_.empty());
  scope_has_value_.pop_back();
  (*out_) << '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  PrepareValue();
  scope_has_value_.push_back(false);
  (*out_) << '[';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  NC_CHECK(!scope_has_value_.empty());
  scope_has_value_.pop_back();
  (*out_) << ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  NC_CHECK(!pending_key_);
  if (!scope_has_value_.empty()) {
    if (scope_has_value_.back()) (*out_) << ',';
    scope_has_value_.back() = true;
  }
  (*out_) << JsonQuote(name) << ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  PrepareValue();
  (*out_) << JsonQuote(value);
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  PrepareValue();
  (*out_) << JsonNumber(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  PrepareValue();
  (*out_) << value;
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  PrepareValue();
  (*out_) << value;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  PrepareValue();
  (*out_) << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  PrepareValue();
  (*out_) << "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  PrepareValue();
  (*out_) << json;
  return *this;
}

}  // namespace nc::obs
