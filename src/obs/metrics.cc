#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/json.h"

namespace nc::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  NC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  sum_ += value;
  stat_.Add(value);
}

size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stat_.count();
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

RunningStat Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stat_;
}

LabelSet MetricsRegistry::Canonical(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const LabelSet& labels) {
  const LabelSet canonical = Canonical(labels);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Series>& all = series_[name];
  for (Series& s : all) {
    if (s.labels == canonical) {
      NC_CHECK(s.counter != nullptr);  // Name already used as a histogram.
      return *s.counter;
    }
  }
  Series s;
  s.labels = canonical;
  s.counter = std::make_unique<Counter>();
  all.push_back(std::move(s));
  return *all.back().counter;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& upper_bounds,
                                      const LabelSet& labels) {
  const LabelSet canonical = Canonical(labels);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Series>& all = series_[name];
  for (Series& s : all) {
    if (s.labels == canonical) {
      NC_CHECK(s.histogram != nullptr);  // Name already used as a counter.
      return *s.histogram;
    }
  }
  Series s;
  s.labels = canonical;
  s.histogram = std::make_unique<Histogram>(upper_bounds);
  all.push_back(std::move(s));
  return *all.back().histogram;
}

double MetricsRegistry::CounterValue(const std::string& name,
                                     const LabelSet& labels) const {
  const LabelSet canonical = Canonical(labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  if (it == series_.end()) return 0.0;
  for (const Series& s : it->second) {
    if (s.labels == canonical && s.counter != nullptr) {
      return s.counter->value();
    }
  }
  return 0.0;
}

double MetricsRegistry::CounterSum(const std::string& name,
                                   const LabelSet& labels) const {
  const LabelSet canonical = Canonical(labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  if (it == series_.end()) return 0.0;
  double total = 0.0;
  for (const Series& s : it->second) {
    if (s.counter == nullptr) continue;
    const bool matches = std::all_of(
        canonical.begin(), canonical.end(), [&s](const auto& want) {
          return std::find(s.labels.begin(), s.labels.end(), want) !=
                 s.labels.end();
        });
    if (matches) total += s.counter->value();
  }
  return total;
}

std::string PrometheusQuote(std::string_view value) {
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        // Everything else - including other control bytes and non-ASCII
        // UTF-8 sequences - is passed through verbatim; the exposition
        // grammar has no \uXXXX form.
        out += c;
        break;
    }
  }
  out += '"';
  return out;
}

std::string FormatLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key;
    out += "=";
    out += PrometheusQuote(value);
  }
  out += "}";
  return out;
}

void MetricsRegistry::WritePrometheusText(std::ostream* out) const {
  NC_CHECK(out != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, all] : series_) {
    // Stable output: series sorted by label set within each name.
    std::vector<const Series*> ordered;
    ordered.reserve(all.size());
    for (const Series& s : all) ordered.push_back(&s);
    std::sort(ordered.begin(), ordered.end(),
              [](const Series* a, const Series* b) {
                return a->labels < b->labels;
              });
    const bool is_counter = !all.empty() && all.front().counter != nullptr;
    (*out) << "# TYPE " << name << (is_counter ? " counter" : " histogram")
           << "\n";
    for (const Series* s : ordered) {
      if (s->counter != nullptr) {
        (*out) << name << FormatLabels(s->labels) << " "
               << JsonNumber(s->counter->value()) << "\n";
        continue;
      }
      // Histogram exposition: cumulative _bucket series, then _sum/_count.
      const std::vector<uint64_t> counts = s->histogram->bucket_counts();
      const std::vector<double>& bounds = s->histogram->upper_bounds();
      uint64_t cumulative = 0;
      for (size_t i = 0; i < bounds.size(); ++i) {
        cumulative += counts[i];
        LabelSet with_le = s->labels;
        with_le.emplace_back("le", JsonNumber(bounds[i]));
        (*out) << name << "_bucket" << FormatLabels(with_le) << " "
               << cumulative << "\n";
      }
      cumulative += counts.back();
      LabelSet with_le = s->labels;
      with_le.emplace_back("le", "+Inf");
      (*out) << name << "_bucket" << FormatLabels(with_le) << " " << cumulative
             << "\n";
      (*out) << name << "_sum" << FormatLabels(s->labels) << " "
             << JsonNumber(s->histogram->sum()) << "\n";
      (*out) << name << "_count" << FormatLabels(s->labels) << " "
             << s->histogram->count() << "\n";
    }
  }
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
}

}  // namespace nc::obs
