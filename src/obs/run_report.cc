#include "obs/run_report.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/numeric.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace nc::obs {

namespace {

std::string FormatCost(double cost) {
  if (!std::isfinite(cost)) return "impossible";
  return FormatDouble(cost);  // Locale-safe; %g would honor LC_NUMERIC.
}

std::string PredicateLabel(const SourceSet& sources, PredicateId i) {
  if (sources.has_dataset()) return sources.dataset().predicate_name(i);
  std::string label = "p";
  label += std::to_string(i);
  return label;
}

// |a - p| / max(a, p): symmetric, finite, in [0, 1].
double SymmetricRelativeError(double predicted, double actual) {
  const double denom = std::max(std::abs(predicted), std::abs(actual));
  if (denom == 0.0) return 0.0;
  return std::abs(actual - predicted) / denom;
}

}  // namespace

CostAudit BuildCostAudit(const CostPrediction& prediction,
                         const SourceSet& sources) {
  CostAudit audit;
  const size_t m = sources.num_predicates();
  if (!prediction.valid || prediction.cost.size() != m) return audit;
  const AccessStats& stats = sources.stats();
  audit.valid = true;
  audit.predicates.reserve(m);
  for (PredicateId i = 0; i < m; ++i) {
    PredicateAudit row;
    row.name = PredicateLabel(sources, i);
    row.predicted_sorted = prediction.sorted_accesses[i];
    row.actual_sorted = static_cast<double>(stats.sorted_count[i]);
    row.predicted_random = prediction.random_accesses[i];
    row.actual_random = static_cast<double>(stats.random_count[i]);
    row.predicted_cost = prediction.cost[i];
    row.actual_cost =
        stats.sorted_cost_accrued[i] + stats.random_cost_accrued[i];
    row.cost_error = row.actual_cost - row.predicted_cost;
    row.cost_relative_error =
        SymmetricRelativeError(row.predicted_cost, row.actual_cost);
    audit.predicates.push_back(std::move(row));
  }
  audit.predicted_total = prediction.total_cost;
  audit.actual_total = sources.accrued_cost();
  audit.total_error = audit.actual_total - audit.predicted_total;
  audit.total_relative_error =
      SymmetricRelativeError(audit.predicted_total, audit.actual_total);
  return audit;
}

RunReport BuildRunReport(const SourceSet& sources, const QueryTracer* tracer,
                         std::string algorithm, size_t k,
                         const CostPrediction* prediction,
                         const Profiler* profiler) {
  RunReport report;
  report.algorithm = std::move(algorithm);
  report.k = k;

  const AccessStats& stats = sources.stats();
  const size_t m = sources.num_predicates();
  report.total_cost = sources.accrued_cost();
  report.total_sorted = stats.TotalSorted();
  report.total_random = stats.TotalRandom();
  report.duplicate_random = stats.duplicate_random_count;
  report.retried_attempts = stats.TotalRetried();
  report.transient_failures = stats.transient_failures;
  report.timeout_failures = stats.timeout_failures;
  report.abandoned_accesses = stats.abandoned_accesses;
  report.source_deaths = stats.source_deaths;
  report.breaker_trips = stats.TotalBreakerTrips();
  report.breaker_fast_failures = stats.breaker_fast_failures;
  report.budget_refusals = stats.budget_refusals;
  const SourceSet::QueryCacheHits& cache = sources.cache_hits();
  report.cache_sorted_hits = cache.sorted_hits;
  report.cache_random_hits = cache.random_hits;
  report.cache_inflight_merges = cache.inflight_merges;
  report.cache_hit_cost = cache.hit_cost_accrued;

  report.predicates.reserve(m);
  for (PredicateId i = 0; i < m; ++i) {
    PredicateCost row;
    row.name = PredicateLabel(sources, i);
    row.sorted_accesses = stats.sorted_count[i];
    row.random_accesses = stats.random_count[i];
    row.sorted_cost = stats.sorted_cost_accrued[i];
    row.random_cost = stats.random_cost_accrued[i];
    row.retried_attempts = stats.retried_attempts[i];
    row.source_down = sources.source_down(i);
    report.predicates.push_back(std::move(row));
  }

  report.replica_failovers = stats.replica_failovers;
  report.hedges_issued = stats.hedges_issued;
  report.hedge_wins = stats.hedge_wins;
  if (sources.has_fleet()) {
    const ReplicaFleet& fleet = sources.fleet();
    for (PredicateId i = 0; i < m; ++i) {
      if (!fleet.configured(i)) continue;
      for (size_t r = 0; r < fleet.num_replicas(i); ++r) {
        const ReplicaRuntime& rt = fleet.runtime(i, r);
        ReplicaCost row;
        row.predicate = PredicateLabel(sources, i);
        row.replica = fleet.replica_name(i, r);
        row.served = rt.served;
        row.failovers = rt.failovers;
        row.breaker_trips = rt.breaker_trips;
        row.hedges_issued = rt.hedges_issued;
        row.hedge_wins = rt.hedge_wins;
        row.cost = rt.cost_accrued;
        row.mean_latency = rt.mean_latency();
        row.max_latency = rt.latency_max;
        row.dead = rt.dead;
        report.replicas.push_back(std::move(row));
      }
    }
  }

  if (prediction != nullptr) {
    report.cost_audit = BuildCostAudit(*prediction, sources);
  }

  if (profiler != nullptr) {
    report.profile = profiler->Report();
  }

  if (tracer != nullptr) {
    for (const TraceEvent& e : tracer->events()) {
      if (e.kind == TraceEventKind::kCertificate) {
        report.certified = true;
        report.termination_reason = e.phase != nullptr ? e.phase : "";
        report.certified_epsilon = e.epsilon;
        continue;
      }
      if (e.kind != TraceEventKind::kIteration) continue;
      report.convergence.push_back(
          ConvergencePoint{e.cost_clock, e.threshold, e.kth_bound});
    }
    // Wall time: span of the trace buffer (phase events included).
    if (!tracer->events().empty()) {
      const uint64_t first = tracer->events().front().wall_us;
      const uint64_t last = tracer->events().back().wall_us;
      report.wall_ms = static_cast<double>(last - first) / 1000.0;
    }
  }
  return report;
}

void RecordSourceMetrics(MetricsRegistry* registry,
                         const std::string& algorithm,
                         const SourceSet& sources) {
  NC_CHECK(registry != nullptr);
  const AccessStats& stats = sources.stats();
  const size_t m = sources.num_predicates();
  for (PredicateId i = 0; i < m; ++i) {
    const std::string predicate = PredicateLabel(sources, i);
    const LabelSet sorted_labels{{"algorithm", algorithm},
                                 {"predicate", predicate},
                                 {"type", "sorted"}};
    const LabelSet random_labels{{"algorithm", algorithm},
                                 {"predicate", predicate},
                                 {"type", "random"}};
    if (stats.sorted_count[i] != 0) {
      registry->counter("nc_accesses_total", sorted_labels)
          .Increment(static_cast<double>(stats.sorted_count[i]));
    }
    if (stats.random_count[i] != 0) {
      registry->counter("nc_accesses_total", random_labels)
          .Increment(static_cast<double>(stats.random_count[i]));
    }
    if (stats.sorted_cost_accrued[i] != 0.0) {
      registry->counter("nc_access_cost_total", sorted_labels)
          .Increment(stats.sorted_cost_accrued[i]);
    }
    if (stats.random_cost_accrued[i] != 0.0) {
      registry->counter("nc_access_cost_total", random_labels)
          .Increment(stats.random_cost_accrued[i]);
    }
    if (stats.retried_attempts[i] != 0) {
      registry
          ->counter("nc_access_retries_total",
                    {{"algorithm", algorithm}, {"predicate", predicate}})
          .Increment(static_cast<double>(stats.retried_attempts[i]));
    }
  }
  const auto fault_counter = [&](const char* kind, size_t count) {
    if (count == 0) return;
    registry
        ->counter("nc_access_faults_total",
                  {{"algorithm", algorithm}, {"kind", kind}})
        .Increment(static_cast<double>(count));
  };
  fault_counter("transient", stats.transient_failures);
  fault_counter("timeout", stats.timeout_failures);
  fault_counter("abandoned", stats.abandoned_accesses);
  fault_counter("source_down", stats.source_deaths);
  if (stats.duplicate_random_count != 0) {
    registry
        ->counter("nc_duplicate_random_total", {{"algorithm", algorithm}})
        .Increment(static_cast<double>(stats.duplicate_random_count));
  }
  const auto resilience_counter = [&](const char* name, size_t count) {
    if (count == 0) return;
    registry->counter(name, {{"algorithm", algorithm}})
        .Increment(static_cast<double>(count));
  };
  resilience_counter("nc_breaker_trips_total", stats.TotalBreakerTrips());
  resilience_counter("nc_breaker_fast_failures_total",
                     stats.breaker_fast_failures);
  resilience_counter("nc_budget_refusals_total", stats.budget_refusals);
  if (sources.has_fleet()) {
    const ReplicaFleet& fleet = sources.fleet();
    for (PredicateId i = 0; i < m; ++i) {
      if (!fleet.configured(i)) continue;
      const std::string predicate = PredicateLabel(sources, i);
      size_t predicate_hedges = 0;
      size_t predicate_hedge_wins = 0;
      for (size_t r = 0; r < fleet.num_replicas(i); ++r) {
        const ReplicaRuntime& rt = fleet.runtime(i, r);
        const LabelSet labels{{"algorithm", algorithm},
                              {"predicate", predicate},
                              {"replica", fleet.replica_name(i, r)}};
        if (rt.served != 0) {
          registry->counter("nc_replica_accesses_total", labels)
              .Increment(static_cast<double>(rt.served));
        }
        if (rt.cost_accrued != 0.0) {
          registry->counter("nc_replica_cost_total", labels)
              .Increment(rt.cost_accrued);
        }
        if (rt.failovers != 0) {
          registry->counter("nc_replica_failovers_total", labels)
              .Increment(static_cast<double>(rt.failovers));
        }
        predicate_hedges += rt.hedges_issued;
        predicate_hedge_wins += rt.hedge_wins;
      }
      if (predicate_hedges != 0) {
        // One win-rate observation per predicate per run: the histogram
        // accumulates the distribution across runs/predicates.
        registry
            ->histogram("nc_hedge_win_rate",
                        {0.1, 0.25, 0.5, 0.75, 0.9, 1.0},
                        {{"algorithm", algorithm}})
            .Observe(static_cast<double>(predicate_hedge_wins) /
                     static_cast<double>(predicate_hedges));
      }
      for (double sample : fleet.latency_samples(i)) {
        registry
            ->histogram("nc_replica_completion_latency",
                        {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0},
                        {{"algorithm", algorithm}})
            .Observe(sample);
      }
    }
    resilience_counter("nc_hedges_issued_total", stats.hedges_issued);
    resilience_counter("nc_hedge_wins_total", stats.hedge_wins);
  }
}

void RecordCostAuditMetrics(MetricsRegistry* registry,
                            const std::string& algorithm,
                            const CostAudit& audit) {
  NC_CHECK(registry != nullptr);
  if (!audit.valid) return;
  const std::vector<double> error_bounds{0.05, 0.1, 0.25, 0.5, 1.0};
  for (const PredicateAudit& row : audit.predicates) {
    const LabelSet labels{{"algorithm", algorithm}, {"predicate", row.name}};
    registry->counter("nc_cost_predicted_total", labels)
        .Increment(row.predicted_cost);
    registry->counter("nc_cost_actual_total", labels)
        .Increment(row.actual_cost);
    registry
        ->histogram("nc_cost_audit_relative_error", error_bounds,
                    {{"algorithm", algorithm}})
        .Observe(row.cost_relative_error);
  }
  registry
      ->histogram("nc_cost_audit_relative_error", error_bounds,
                  {{"algorithm", algorithm}})
      .Observe(audit.total_relative_error);
}

std::string RunReport::ToText() const {
  std::ostringstream os;
  if (!algorithm.empty()) {
    os << algorithm;
    if (k > 0) os << " top-" << k;
    os << ": ";
  }
  os << "accesses: " << total_sorted << " sorted, " << total_random
     << " random, cost " << FormatCost(total_cost) << "\n";
  for (const PredicateCost& row : predicates) {
    os << "  " << row.name << ": sa " << row.sorted_accesses << " (cost "
       << FormatCost(row.sorted_cost) << "), ra " << row.random_accesses
       << " (cost " << FormatCost(row.random_cost) << ")";
    if (row.retried_attempts != 0) {
      os << ", " << row.retried_attempts << " retried";
    }
    if (row.source_down) os << ", source DOWN";
    os << "\n";
  }
  if (duplicate_random != 0) {
    os << "  duplicate random probes: " << duplicate_random << "\n";
  }
  const size_t failures = transient_failures + timeout_failures;
  if (failures != 0 || retried_attempts != 0 || abandoned_accesses != 0 ||
      source_deaths != 0) {
    os << "faults: " << transient_failures << " transient, "
       << timeout_failures << " timeouts; " << retried_attempts
       << " retried, " << abandoned_accesses << " abandoned\n";
  }
  if (breaker_trips != 0 || breaker_fast_failures != 0 ||
      budget_refusals != 0) {
    os << "resilience: " << breaker_trips << " breaker trips, "
       << breaker_fast_failures << " fast-failed, " << budget_refusals
       << " budget-refused\n";
  }
  if (cache_sorted_hits != 0 || cache_random_hits != 0) {
    os << "cache: " << cache_sorted_hits << " sorted + " << cache_random_hits
       << " random hits (" << cache_inflight_merges
       << " in-flight merges), hit cost " << FormatCost(cache_hit_cost)
       << "\n";
  }
  if (!replicas.empty()) {
    os << "replicas: " << replica_failovers << " failovers, "
       << hedges_issued << " hedges (" << hedge_wins << " won)\n";
    for (const ReplicaCost& row : replicas) {
      os << "  " << row.predicate << "/" << row.replica << ": served "
         << row.served << ", cost " << FormatCost(row.cost);
      if (row.served != 0) {
        os << ", latency mean " << FormatCost(row.mean_latency) << " max "
           << FormatCost(row.max_latency);
      }
      if (row.failovers != 0) os << ", " << row.failovers << " failovers";
      if (row.breaker_trips != 0) {
        os << ", " << row.breaker_trips << " trips";
      }
      if (row.hedges_issued != 0) {
        os << ", hedged " << row.hedges_issued << " (" << row.hedge_wins
           << " won)";
      }
      if (row.dead) os << ", DEAD";
      os << "\n";
    }
  }
  if (certified) {
    os << "certified: " << termination_reason << ", epsilon ";
    if (std::isfinite(certified_epsilon)) {
      os << FormatCost(certified_epsilon);
    } else {
      os << "unbounded";
    }
    os << "\n";
  }
  if (source_deaths != 0) {
    os << "deaths:";
    for (const PredicateCost& row : predicates) {
      if (row.source_down) os << " " << row.name;
    }
    os << " (down for the rest of the run)\n";
  }
  if (cost_audit.valid) {
    os << "cost audit: predicted " << FormatCost(cost_audit.predicted_total)
       << " vs actual " << FormatCost(cost_audit.actual_total) << " (err "
       << FormatCost(cost_audit.total_error) << ", "
       << FormatCost(cost_audit.total_relative_error * 100.0) << "%)\n";
    for (const PredicateAudit& row : cost_audit.predicates) {
      os << "  " << row.name << ": sa " << FormatCost(row.predicted_sorted)
         << "/" << FormatCost(row.actual_sorted) << ", ra "
         << FormatCost(row.predicted_random) << "/"
         << FormatCost(row.actual_random) << ", cost "
         << FormatCost(row.predicted_cost) << "/"
         << FormatCost(row.actual_cost) << " ("
         << FormatCost(row.cost_relative_error * 100.0) << "%)\n";
    }
  }
  if (!convergence.empty()) {
    const ConvergencePoint& last = convergence.back();
    os << "convergence: " << convergence.size()
       << " iterations; final threshold " << FormatCost(last.threshold)
       << ", k-th bound " << FormatCost(last.kth_bound) << " at cost "
       << FormatCost(last.cost) << "\n";
  }
  if (!profile.empty()) {
    os << "profile:\n" << profile.ToText();
  }
  if (wall_ms > 0.0) {
    os << "wall: " << FormatCost(wall_ms) << " ms\n";
  }
  return os.str();
}

std::string RunReport::ToJson() const {
  std::ostringstream os;
  JsonWriter w(&os);
  w.BeginObject();
  if (!algorithm.empty()) w.Key("algorithm").String(algorithm);
  if (k > 0) w.Key("k").UInt(k);
  w.Key("total_cost").Number(total_cost);
  w.Key("total_sorted").UInt(total_sorted);
  w.Key("total_random").UInt(total_random);
  if (duplicate_random != 0) {
    w.Key("duplicate_random").UInt(duplicate_random);
  }
  w.Key("predicates").BeginArray();
  for (const PredicateCost& row : predicates) {
    w.BeginObject();
    w.Key("name").String(row.name);
    w.Key("sorted_accesses").UInt(row.sorted_accesses);
    w.Key("random_accesses").UInt(row.random_accesses);
    w.Key("sorted_cost").Number(row.sorted_cost);
    w.Key("random_cost").Number(row.random_cost);
    if (row.retried_attempts != 0) {
      w.Key("retried_attempts").UInt(row.retried_attempts);
    }
    if (row.source_down) w.Key("source_down").Bool(true);
    w.EndObject();
  }
  w.EndArray();
  w.Key("faults").BeginObject();
  w.Key("retried_attempts").UInt(retried_attempts);
  w.Key("transient").UInt(transient_failures);
  w.Key("timeouts").UInt(timeout_failures);
  w.Key("abandoned").UInt(abandoned_accesses);
  w.Key("source_deaths").UInt(source_deaths);
  w.EndObject();
  if (breaker_trips != 0 || breaker_fast_failures != 0 ||
      budget_refusals != 0) {
    w.Key("resilience").BeginObject();
    w.Key("breaker_trips").UInt(breaker_trips);
    w.Key("breaker_fast_failures").UInt(breaker_fast_failures);
    w.Key("budget_refusals").UInt(budget_refusals);
    w.EndObject();
  }
  if (cache_sorted_hits != 0 || cache_random_hits != 0) {
    w.Key("cache").BeginObject();
    w.Key("sorted_hits").UInt(cache_sorted_hits);
    w.Key("random_hits").UInt(cache_random_hits);
    w.Key("inflight_merges").UInt(cache_inflight_merges);
    w.Key("hit_cost").Number(cache_hit_cost);
    w.EndObject();
  }
  if (!replicas.empty()) {
    w.Key("replica_fleet").BeginObject();
    w.Key("failovers").UInt(replica_failovers);
    w.Key("hedges_issued").UInt(hedges_issued);
    w.Key("hedge_wins").UInt(hedge_wins);
    w.Key("replicas").BeginArray();
    for (const ReplicaCost& row : replicas) {
      w.BeginObject();
      w.Key("predicate").String(row.predicate);
      w.Key("replica").String(row.replica);
      w.Key("served").UInt(row.served);
      w.Key("cost").Number(row.cost);
      if (row.served != 0) {
        w.Key("mean_latency").Number(row.mean_latency);
        w.Key("max_latency").Number(row.max_latency);
      }
      if (row.failovers != 0) w.Key("failovers").UInt(row.failovers);
      if (row.breaker_trips != 0) {
        w.Key("breaker_trips").UInt(row.breaker_trips);
      }
      if (row.hedges_issued != 0) {
        w.Key("hedges_issued").UInt(row.hedges_issued);
        w.Key("hedge_wins").UInt(row.hedge_wins);
      }
      if (row.dead) w.Key("dead").Bool(true);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  if (certified) {
    w.Key("certificate").BeginObject();
    w.Key("reason").String(termination_reason);
    // JsonWriter renders non-finite numbers as null.
    w.Key("epsilon").Number(certified_epsilon);
    w.EndObject();
  }
  if (cost_audit.valid) {
    w.Key("cost_audit").BeginObject();
    w.Key("predicted_total").Number(cost_audit.predicted_total);
    w.Key("actual_total").Number(cost_audit.actual_total);
    w.Key("total_error").Number(cost_audit.total_error);
    w.Key("total_relative_error").Number(cost_audit.total_relative_error);
    w.Key("predicates").BeginArray();
    for (const PredicateAudit& row : cost_audit.predicates) {
      w.BeginObject();
      w.Key("name").String(row.name);
      w.Key("predicted_sorted").Number(row.predicted_sorted);
      w.Key("actual_sorted").Number(row.actual_sorted);
      w.Key("predicted_random").Number(row.predicted_random);
      w.Key("actual_random").Number(row.actual_random);
      w.Key("predicted_cost").Number(row.predicted_cost);
      w.Key("actual_cost").Number(row.actual_cost);
      w.Key("cost_error").Number(row.cost_error);
      w.Key("cost_relative_error").Number(row.cost_relative_error);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  if (!convergence.empty()) {
    w.Key("convergence").BeginArray();
    for (const ConvergencePoint& p : convergence) {
      w.BeginObject();
      w.Key("cost").Number(p.cost);
      w.Key("threshold").Number(p.threshold);
      w.Key("kth_bound").Number(p.kth_bound);
      w.EndObject();
    }
    w.EndArray();
  }
  if (!profile.empty()) {
    // The profile section is itself a JSON object; splice it in raw.
    w.Key("profile").Raw(profile.ToJson());
  }
  if (wall_ms > 0.0) w.Key("wall_ms").Number(wall_ms);
  w.EndObject();
  return os.str();
}

}  // namespace nc::obs
