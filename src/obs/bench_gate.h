// The bench regression gate: machine checks over BENCH_*.json envelopes.
//
// Every bench binary emits a BENCH_<NAME>.json document through
// bench/bench_util.h's envelope (bench, schema_version, timestamp,
// build_type, payload). Those artifacts are committed, which makes the
// repo's own history the performance baseline - but until now nothing
// could *compare* two of them mechanically. This header is the library
// behind tools/bench_diff: envelope contract checks (does the artifact
// still honor the schema) and a numeric diff with regression envelopes
// (did a timing leaf move beyond tolerance against the committed
// baseline). CI runs both; a regression fails the build with the exact
// JSON path that moved.
//
// Gating rule: a numeric leaf is *gated* when its own key or any
// ancestor key ends in "_ns" or "_us" (real_ns, cpu_ns, min_ns.*,
// varz_scrape_p50_us, ...). Gated leaves flag only regressions -
// current > baseline * (1 + tolerance) - so improvements always pass.
// Leaves below the noise floor and everything else (counts, flags,
// timestamps, build metadata) are informational, never gated.

#ifndef NC_OBS_BENCH_GATE_H_
#define NC_OBS_BENCH_GATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json_parse.h"

namespace nc::obs {

struct BenchGateOptions {
  // Relative regression envelope for gated leaves: current beyond
  // baseline * (1 + tolerance) is a violation. Micro-bench noise across
  // machines is real; the default catches step changes, not jitter.
  double tolerance = 0.25;

  // Noise floor in the leaf's own unit (ns for *_ns, us for *_us):
  // baselines at or below it are too small to gate meaningfully and are
  // skipped. Measured against the *baseline* value.
  double noise_floor = 100.0;

  Status Validate() const;
};

// One violation, addressed by file and JSON path ("rows[BM_X/8].cpu_ns").
struct BenchIssue {
  std::string file;
  std::string path;
  std::string what;
};

struct BenchGateResult {
  std::vector<BenchIssue> issues;
  size_t files_checked = 0;
  size_t values_compared = 0;

  bool ok() const { return issues.empty(); }
  // One line per issue plus a summary line; locale-safe.
  std::string ToText() const;
};

// Reads and parses one artifact. IO and parse failures surface as the
// returned status, not as issues.
Status ReadBenchFile(const std::string& path, JsonValue* out);

// Envelope contract for one parsed artifact: bench / schema_version /
// timestamp / build_type present, schema_version == 2, "rows" (when
// present) non-empty. Violations append to *out.
void CheckBenchDoc(const std::string& file, const JsonValue& doc,
                   BenchGateResult* out);

// Numeric diff: walks baseline and current in parallel and holds every
// gated leaf to the envelope. Arrays of objects are matched by their
// "name" member when both sides carry one (order-insensitive; a baseline
// row missing from current is a violation, extra current rows pass);
// other arrays are matched by index. Non-numeric leaves are ignored.
void DiffBenchDocs(const std::string& file, const JsonValue& baseline,
                   const JsonValue& current, const BenchGateOptions& options,
                   BenchGateResult* out);

}  // namespace nc::obs

#endif  // NC_OBS_BENCH_GATE_H_
