// Metrics registry: named counters and fixed-bucket histograms with a
// Prometheus-style text exporter.
//
// Every layer of the stack (SourceSet, NCEngine, the parallel executor,
// and the baseline runners) records into one registry so NC vs TA/NRA/CA
// runs are comparable field-by-field: the same metric names, labeled by
// algorithm and predicate. Conventions follow Prometheus: snake_case
// names under the nc_ prefix, _total suffix on counters, labels for
// dimensions ({algorithm="TA",predicate="0",type="sorted"}).
//
// Thread safety: the registry and both instrument types are safe for
// concurrent use (lookup takes a registry mutex; Counter::Increment is a
// lock-free atomic add; Histogram::Observe takes a per-histogram mutex
// because it layers on RunningStat for mean/min/max). Instrument
// references stay valid for the registry's lifetime - look up once, then
// record lock-free on the hot path.

#ifndef NC_OBS_METRICS_H_
#define NC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace nc::obs {

// Label dimensions of one time series, canonically sorted by key.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

// A monotonically increasing value.
class Counter {
 public:
  void Increment(double delta = 1.0) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Cumulative fixed-bucket histogram. Buckets are inclusive upper bounds;
// an implicit +Inf bucket catches the rest. A RunningStat rides along for
// mean/min/max, which Prometheus histograms cannot answer.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  size_t count() const;
  double sum() const;
  // Observations with value <= upper_bounds()[i] (non-cumulative).
  std::vector<uint64_t> bucket_counts() const;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  RunningStat snapshot() const;

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;  // One per bound, plus the +Inf overflow.
  // Exact running sum (RunningStat's mean*count would round).
  double sum_ = 0.0;
  RunningStat stat_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the series. The returned reference stays valid for
  // the registry's lifetime. A name must be used consistently as one
  // instrument type (checked).
  Counter& counter(const std::string& name, const LabelSet& labels = {});
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds,
                       const LabelSet& labels = {});

  // Current value of a counter; 0.0 when the series does not exist (a
  // query convenience for tests and report builders).
  double CounterValue(const std::string& name,
                      const LabelSet& labels = {}) const;

  // Sum of every counter series with this name, optionally restricted to
  // series carrying all of `labels`.
  double CounterSum(const std::string& name,
                    const LabelSet& labels = {}) const;

  // Prometheus text exposition format, series sorted by name then labels.
  void WritePrometheusText(std::ostream* out) const;

  // Drops every series.
  void Clear();

 private:
  struct Series {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Histogram> histogram;
  };

  static LabelSet Canonical(LabelSet labels);

  mutable std::mutex mu_;
  // name -> series for each label set, kept sorted for stable export.
  std::map<std::string, std::vector<Series>> series_;
};

// Renders {a="x",b="y"}; empty string for no labels.
std::string FormatLabels(const LabelSet& labels);

// Quotes one label value per the Prometheus text exposition format,
// which allows exactly three escapes inside a quoted value - \\ , \" and
// \n - and passes every other byte through raw (label values are UTF-8).
// Deliberately NOT JsonQuote: JSON's \uXXXX escapes for control or
// non-ASCII bytes are invalid exposition syntax.
std::string PrometheusQuote(std::string_view value);

}  // namespace nc::obs

#endif  // NC_OBS_METRICS_H_
