// Query-level tracing: a typed event log of everything a run did.
//
// The paper's cost argument (Eq. 1) is about *where access cost goes*;
// QueryTracer makes that visible per run. Three event families cover the
// engine stack:
//
//   * kAccess / kAccessAttempt - one record per performed access and per
//     failed attempt (transient error, timeout, abandonment, source
//     death), carrying the predicate, access type, the cost charged, and
//     the accrued-cost clock. Emitted by SourceSet.
//   * kIteration - one record per engine loop iteration: the chosen
//     target, the width of its necessary-choice set, the current ceiling
//     threshold theta = F(last-seen bounds), the k-th heap bound, and the
//     heap size. Emitted by NCEngine (and, per completion epoch, by the
//     parallel executor).
//   * kPhaseBegin / kPhaseEnd - spans bracketing plan, probe (run),
//     extend, and baseline executions.
//
// Cost model of the tracer itself: a detached (nullptr) or disabled
// tracer is one pointer/bool test on the hot path - no event is
// constructed, nothing allocates. Instrumented layers must guard with
// ShouldTrace(tracer) so a production run pays nothing.
//
// Two exporters serialize the buffer: ExportJsonl (one JSON object per
// line, full fidelity, trivially greppable) and ExportChromeTrace (the
// Chrome trace_event array format: phase spans become duration events,
// accesses become instants, and theta / k-th bound / heap size become
// counter tracks, so a run opens directly in chrome://tracing or
// Perfetto).
//
// Timestamps: wall-clock microseconds from a monotonic clock anchored at
// construction. Tests (and any embedder that wants deterministic output)
// may install a manual clock with set_clock_for_testing.

#ifndef NC_OBS_TRACER_H_
#define NC_OBS_TRACER_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "access/access.h"
#include "common/score.h"

namespace nc::obs {

enum class TraceEventKind {
  kAccess,         // A performed (successful) access.
  kAccessAttempt,  // A failed attempt: retried, abandoned, or fatal.
  kIteration,      // One engine scheduling iteration.
  kPhaseBegin,
  kPhaseEnd,
  kCertificate,    // An early-terminated run emitted a certified answer.
  kReplica,        // A replica-fleet event: failover, hedge, death, ...
  kTelemetry,      // A cross-query telemetry datum: cost-audit rows, ...
};

const char* TraceEventKindName(TraceEventKind kind);

// Resolution of one access attempt, mirroring access/fault.h outcomes.
enum class AccessOutcome {
  kOk,         // The attempt succeeded (kAccess events only).
  kTransient,  // Failed fast; a retry followed or attempts ran out.
  kTimeout,    // Failed after a full timeout.
  kAbandoned,  // RetryPolicy::max_attempts exhausted; access given up.
  kSourceDown  // The source died permanently on this attempt.
};

const char* AccessOutcomeName(AccessOutcome outcome);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kAccess;
  // Microseconds since the tracer's epoch.
  uint64_t wall_us = 0;
  // The emitting SourceSet's accrued cost after the event (the paper's
  // cost clock); iterations snapshot it too, so convergence can be
  // plotted against cost rather than wall time.
  double cost_clock = 0.0;

  // kAccess / kAccessAttempt fields.
  AccessType access_type = AccessType::kSorted;
  PredicateId predicate = 0;
  ObjectId object = 0;  // Random-access target; 0 for sorted.
  AccessOutcome outcome = AccessOutcome::kOk;
  // Cost charged by this event alone (unit cost, page charge, or the
  // retry fraction of a failed attempt).
  double charged = 0.0;

  // kIteration fields.
  ObjectId target = 0;  // kUnseenObject for the virtual sentinel.
  uint32_t choice_width = 0;
  // Ceiling threshold theta = F(last-seen): the maximal-possible score
  // of anything unseen. Monotonically non-increasing over a run.
  double threshold = 0.0;
  // Bound of the k-th entry of the current top-k (upper bound).
  double kth_bound = 0.0;
  uint64_t heap_size = 0;

  // kPhaseBegin / kPhaseEnd: a static string ("plan", "probe", ...).
  // kCertificate reuses it for the termination reason ("CostBudget", ...).
  const char* phase = nullptr;

  // kCertificate: the proven precision bound (may be +inf) and, in
  // `threshold`, the excluded ceiling it was derived from.
  double epsilon = 0.0;

  // kReplica: the replica the event is about and, for failovers and
  // hedges, the replica traffic moved to / was hedged on. The event name
  // ("replica_failover", "hedge_issued", "hedge_won", "hedge_lost",
  // "replica_down", "replica_restored") rides in `phase`.
  uint32_t replica = 0;
  uint32_t replica_to = 0;

  // kTelemetry: a predicted-vs-actual pair (the cost audit's rows); the
  // datum name ("cost_audit" per predicate, "cost_audit_total") rides in
  // `phase`, the subject predicate in `predicate`.
  double predicted = 0.0;
  double actual = 0.0;
};

class QueryTracer {
 public:
  // Constructed enabled: attaching a tracer expresses intent to trace.
  // Disable()/Enable() toggle recording without dropping the buffer.
  QueryTracer();

  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }

  // Drops all recorded events (the epoch is unchanged).
  void Clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  // --- Recording (no-ops when disabled) --------------------------------
  void RecordAccess(AccessType type, PredicateId predicate, ObjectId object,
                    double charged, double cost_clock);
  void RecordAttempt(AccessType type, PredicateId predicate, ObjectId object,
                     AccessOutcome outcome, double charged,
                     double cost_clock);
  void RecordIteration(ObjectId target, uint32_t choice_width,
                       double threshold, double kth_bound, uint64_t heap_size,
                       double cost_clock);
  // `phase` must be a literal or otherwise outlive the tracer.
  void BeginPhase(const char* phase);
  void EndPhase(const char* phase);
  // An early-terminated run certified its answer: `reason` is a static
  // TerminationReasonName string, `epsilon` the proven bound (may be
  // +inf), `excluded_ceiling` the largest possible excluded score.
  void RecordCertificate(const char* reason, double epsilon,
                         double excluded_ceiling, double cost_clock);
  // A replica-fleet event on `predicate`; `what` must be a literal (see
  // TraceEvent::replica for the names). `from` == `to` for events about
  // a single replica (deaths, restores).
  void RecordReplicaEvent(const char* what, PredicateId predicate,
                          uint32_t from, uint32_t to, double cost_clock);
  // A cross-query telemetry datum: `what` must be a literal (e.g.
  // "cost_audit"); predicted/actual are the audited pair.
  void RecordTelemetry(const char* what, PredicateId predicate,
                       double predicted, double actual, double cost_clock);

  // --- Streaming sink --------------------------------------------------
  // Mirrors every subsequently recorded event to *out immediately as one
  // JSONL line, flushed per event, so abnormal termination (a kill or
  // crash mid-query, an unwound exception) still leaves every event up
  // to the failure point readable on disk. nullptr detaches; the
  // buffering exporters below are unaffected. The stream must outlive
  // the tracer (or be detached first).
  void set_streaming_jsonl(std::ostream* out) { stream_ = out; }

  // --- Exporters -------------------------------------------------------
  // One JSON object per event per line.
  void ExportJsonl(std::ostream* out) const;
  // Chrome trace_event JSON ({"traceEvents": [...]}); opens in
  // chrome://tracing and Perfetto.
  void ExportChromeTrace(std::ostream* out) const;

  // Replaces the wall clock (microseconds) for deterministic output.
  void set_clock_for_testing(std::function<uint64_t()> clock);

 private:
  uint64_t Now() const;
  // Buffers the event and, with a streaming sink attached, writes and
  // flushes its JSONL line immediately.
  void Emit(const TraceEvent& e);
  // Serializes one event as a single JSONL object (no newline).
  void WriteJsonlEvent(const TraceEvent& e, std::ostream* out) const;

  bool enabled_ = true;
  std::vector<TraceEvent> events_;
  std::function<uint64_t()> clock_;
  std::ostream* stream_ = nullptr;
  // Monotonic anchor for the default clock.
  uint64_t epoch_ns_ = 0;
};

// The hot-path guard every instrumented layer uses.
inline bool ShouldTrace(const QueryTracer* tracer) {
  return tracer != nullptr && tracer->enabled();
}

}  // namespace nc::obs

#endif  // NC_OBS_TRACER_H_
