// Query-level tracing: a typed event log of everything a run did.
//
// The paper's cost argument (Eq. 1) is about *where access cost goes*;
// QueryTracer makes that visible per run. Three event families cover the
// engine stack:
//
//   * kAccess / kAccessAttempt - one record per performed access and per
//     failed attempt (transient error, timeout, abandonment, source
//     death), carrying the predicate, access type, the cost charged, and
//     the accrued-cost clock. Emitted by SourceSet.
//   * kIteration - one record per engine loop iteration: the chosen
//     target, the width of its necessary-choice set, the current ceiling
//     threshold theta = F(last-seen bounds), the k-th heap bound, and the
//     heap size. Emitted by NCEngine (and, per completion epoch, by the
//     parallel executor).
//   * kPhaseBegin / kPhaseEnd - spans bracketing plan, probe (run),
//     extend, and baseline executions.
//
// Cost model of the tracer itself: a detached (nullptr) or disabled
// tracer is one pointer/bool test on the hot path - no event is
// constructed, nothing allocates. Instrumented layers must guard with
// ShouldTrace(tracer) so a production run pays nothing.
//
// Two exporters serialize the buffer: ExportJsonl (one JSON object per
// line, full fidelity, trivially greppable) and ExportChromeTrace (the
// Chrome trace_event array format: phase spans become duration events,
// accesses become instants, and theta / k-th bound / heap size become
// counter tracks, so a run opens directly in chrome://tracing or
// Perfetto).
//
// Timestamps: wall_us is microseconds from a monotonic clock anchored at
// construction (set_epoch_ns lets an embedder share one anchor across
// many tracers, so multi-worker timelines are comparable); unix_us is the
// system_clock epoch time of the same instant, for aligning traces across
// processes and restarts. Tests (and any embedder that wants
// deterministic output) may install a manual clock with
// set_clock_for_testing, which zeroes unix_us for reproducibility.
//
// Request-scoped tracing: a server mints a TraceContext per admitted
// request and installs it with set_context; every event recorded until
// clear_context carries the trace/request/worker ids, so JSONL lines from
// many workers stitch back into per-request timelines. RecordSpan emits
// explicit duration spans (queue-wait, serve) that Chrome trace renders
// as complete ("X") slices on the worker's track.

#ifndef NC_OBS_TRACER_H_
#define NC_OBS_TRACER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "access/access.h"
#include "common/score.h"

namespace nc::obs {

// Monotonic (steady_clock) nanoseconds; the tracers' shared timebase.
uint64_t MonotonicTimeNs();

// system_clock microseconds since the unix epoch.
uint64_t UnixTimeUs();

// Identity of one server request, stamped onto every event recorded
// while it is installed. trace_id == 0 means "no context" (events from
// plain single-query embedders stay exactly as before).
struct TraceContext {
  uint64_t trace_id = 0;    // Random 64-bit id; 0 = unset.
  uint64_t request_id = 0;  // Admission sequence number.
  uint32_t worker = 0;      // Serving worker index.
};

// A synchronized line sink for streaming JSONL from many tracers into
// one stream: each WriteLine appends exactly one complete line and
// flushes under a mutex, so concurrent workers never interleave or tear
// lines. The stream must outlive the sink.
class JsonlSink {
 public:
  explicit JsonlSink(std::ostream* out);
  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  // `line` must be one complete JSON object without the trailing '\n'.
  void WriteLine(const std::string& line);

  size_t lines_written() const;

  // Lines whose write or flush left the stream in a failed state (disk
  // full, closed pipe, ...). A streaming trace is best-effort by design;
  // this makes the loss visible (nc_tracer_dropped_lines, /varz) instead
  // of silent. The stream's error state is cleared after counting so one
  // bad write does not condemn every later line.
  size_t lines_dropped() const;

 private:
  std::ostream* out_;
  mutable std::mutex mu_;
  size_t lines_ = 0;
  size_t dropped_ = 0;
};

enum class TraceEventKind {
  kAccess,         // A performed (successful) access.
  kAccessAttempt,  // A failed attempt: retried, abandoned, or fatal.
  kIteration,      // One engine scheduling iteration.
  kPhaseBegin,
  kPhaseEnd,
  kCertificate,    // An early-terminated run emitted a certified answer.
  kReplica,        // A replica-fleet event: failover, hedge, death, ...
  kTelemetry,      // A cross-query telemetry datum: cost-audit rows, ...
  kSpan,           // An explicit duration span (queue-wait, serve, ...).
  kCache,          // A cross-query cache event: hit, merge, ...
  kProfile,        // A closed profiler scope (obs/profiler.h).
};

const char* TraceEventKindName(TraceEventKind kind);

// Resolution of one access attempt, mirroring access/fault.h outcomes.
enum class AccessOutcome {
  kOk,         // The attempt succeeded (kAccess events only).
  kTransient,  // Failed fast; a retry followed or attempts ran out.
  kTimeout,    // Failed after a full timeout.
  kAbandoned,  // RetryPolicy::max_attempts exhausted; access given up.
  kSourceDown  // The source died permanently on this attempt.
};

const char* AccessOutcomeName(AccessOutcome outcome);

struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kAccess;
  // Microseconds since the tracer's (monotonic) epoch.
  uint64_t wall_us = 0;
  // system_clock microseconds since the unix epoch at the same instant;
  // 0 under a test clock (and omitted from JSONL then), so deterministic
  // goldens stay deterministic while real runs can be aligned across
  // processes and restarts.
  uint64_t unix_us = 0;
  // The request identity stamped by set_context; ctx.trace_id == 0 for
  // events recorded outside any request scope.
  TraceContext ctx;
  // The emitting SourceSet's accrued cost after the event (the paper's
  // cost clock); iterations snapshot it too, so convergence can be
  // plotted against cost rather than wall time.
  double cost_clock = 0.0;

  // kAccess / kAccessAttempt fields.
  AccessType access_type = AccessType::kSorted;
  PredicateId predicate = 0;
  ObjectId object = 0;  // Random-access target; 0 for sorted.
  AccessOutcome outcome = AccessOutcome::kOk;
  // Cost charged by this event alone (unit cost, page charge, or the
  // retry fraction of a failed attempt).
  double charged = 0.0;

  // kIteration fields.
  ObjectId target = 0;  // kUnseenObject for the virtual sentinel.
  uint32_t choice_width = 0;
  // Ceiling threshold theta = F(last-seen): the maximal-possible score
  // of anything unseen. Monotonically non-increasing over a run.
  double threshold = 0.0;
  // Bound of the k-th entry of the current top-k (upper bound).
  double kth_bound = 0.0;
  uint64_t heap_size = 0;

  // kPhaseBegin / kPhaseEnd: a static string ("plan", "probe", ...).
  // kCertificate reuses it for the termination reason ("CostBudget", ...).
  const char* phase = nullptr;

  // kCertificate: the proven precision bound (may be +inf) and, in
  // `threshold`, the excluded ceiling it was derived from.
  double epsilon = 0.0;

  // kReplica: the replica the event is about and, for failovers and
  // hedges, the replica traffic moved to / was hedged on. The event name
  // ("replica_failover", "hedge_issued", "hedge_won", "hedge_lost",
  // "replica_down", "replica_restored") rides in `phase`.
  uint32_t replica = 0;
  uint32_t replica_to = 0;

  // kTelemetry: a predicted-vs-actual pair (the cost audit's rows); the
  // datum name ("cost_audit" per predicate, "cost_audit_total") rides in
  // `phase`, the subject predicate in `predicate`.
  double predicted = 0.0;
  double actual = 0.0;

  // kSpan: the span's length; its name rides in `phase` and its start in
  // `wall_us`.
  uint64_t duration_us = 0;
};

class QueryTracer {
 public:
  // Constructed enabled: attaching a tracer expresses intent to trace.
  // Disable()/Enable() toggle recording without dropping the buffer.
  QueryTracer();

  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }

  // Drops all recorded events (the epoch is unchanged).
  void Clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  // --- Recording (no-ops when disabled) --------------------------------
  void RecordAccess(AccessType type, PredicateId predicate, ObjectId object,
                    double charged, double cost_clock);
  void RecordAttempt(AccessType type, PredicateId predicate, ObjectId object,
                     AccessOutcome outcome, double charged,
                     double cost_clock);
  void RecordIteration(ObjectId target, uint32_t choice_width,
                       double threshold, double kth_bound, uint64_t heap_size,
                       double cost_clock);
  // `phase` must be a literal or otherwise outlive the tracer.
  void BeginPhase(const char* phase);
  void EndPhase(const char* phase);
  // An early-terminated run certified its answer: `reason` is a static
  // TerminationReasonName string, `epsilon` the proven bound (may be
  // +inf), `excluded_ceiling` the largest possible excluded score.
  void RecordCertificate(const char* reason, double epsilon,
                         double excluded_ceiling, double cost_clock);
  // A replica-fleet event on `predicate`; `what` must be a literal (see
  // TraceEvent::replica for the names). `from` == `to` for events about
  // a single replica (deaths, restores).
  void RecordReplicaEvent(const char* what, PredicateId predicate,
                          uint32_t from, uint32_t to, double cost_clock);
  // A cross-query cache event: `what` must be a literal ("sorted_hit",
  // "sorted_merge", "random_hit", "random_merge"); `charged` is the
  // cache-hit cost billed for the served access.
  void RecordCacheEvent(const char* what, PredicateId predicate,
                        ObjectId object, double charged, double cost_clock);
  // A cross-query telemetry datum: `what` must be a literal (e.g.
  // "cost_audit"); predicted/actual are the audited pair.
  void RecordTelemetry(const char* what, PredicateId predicate,
                       double predicted, double actual, double cost_clock);
  // An explicit duration span: `name` must be a literal; begin_us/end_us
  // are wall_us instants on this tracer's clock (begin_us <= end_us).
  // Unlike phase pairs, a span is one event, so a queue-wait measured by
  // the admission thread can be emitted whole by the serving worker.
  void RecordSpan(const char* name, uint64_t begin_us, uint64_t end_us);
  // A closed profiler scope: `center` must be a literal (a
  // CostCenterName string); begin_us/end_us as in RecordSpan. Scopes
  // nest by construction, so the Chrome exporter's slices stack.
  void RecordProfile(const char* center, uint64_t begin_us, uint64_t end_us);

  // --- Request scoping -------------------------------------------------
  // Stamps `ctx` onto every subsequently recorded event until
  // clear_context(). ctx.trace_id must be nonzero.
  void set_context(const TraceContext& ctx);
  void clear_context() { ctx_ = TraceContext{}; }
  const TraceContext& context() const { return ctx_; }

  // Replaces the monotonic anchor (MonotonicTimeNs() units). A server
  // hands every worker's tracer the same epoch so wall_us timestamps
  // from different workers are directly comparable.
  void set_epoch_ns(uint64_t epoch_ns) { epoch_ns_ = epoch_ns; }
  uint64_t epoch_ns() const { return epoch_ns_; }

  // wall_us "now" on this tracer's clock (test clock honored).
  uint64_t now_us() const { return Now(); }

  // --- Streaming sink --------------------------------------------------
  // Mirrors every subsequently recorded event to *out immediately as one
  // JSONL line, flushed per event, so abnormal termination (a kill or
  // crash mid-query, an unwound exception) still leaves every event up
  // to the failure point readable on disk. nullptr detaches; the
  // buffering exporters below are unaffected. The stream must outlive
  // the tracer (or be detached first).
  void set_streaming_jsonl(std::ostream* out) { stream_ = out; }

  // As set_streaming_jsonl, but through a synchronized JsonlSink shared
  // by many tracers (the server's per-worker tracers all streaming into
  // one file): each event becomes one atomic WriteLine, so concurrent
  // workers cannot interleave characters. nullptr detaches. Both sinks
  // may be attached; each event then goes to both.
  void set_streaming_sink(JsonlSink* sink) { sink_ = sink; }

  // --- Exporters -------------------------------------------------------
  // One JSON object per event per line.
  void ExportJsonl(std::ostream* out) const;
  // Chrome trace_event JSON ({"traceEvents": [...]}); opens in
  // chrome://tracing and Perfetto.
  void ExportChromeTrace(std::ostream* out) const;

  // Replaces the wall clock (microseconds) for deterministic output.
  void set_clock_for_testing(std::function<uint64_t()> clock);

 private:
  uint64_t Now() const;
  // unix_us for the event being recorded: 0 under a test clock.
  uint64_t NowUnix() const;
  // Stamps the clocks and context shared by every event kind.
  void Stamp(TraceEvent* e) const;
  // Buffers the event and, with a streaming sink attached, writes and
  // flushes its JSONL line immediately.
  void Emit(const TraceEvent& e);
  // Serializes one event as a single JSONL object (no newline).
  void WriteJsonlEvent(const TraceEvent& e, std::ostream* out) const;

  bool enabled_ = true;
  std::vector<TraceEvent> events_;
  std::function<uint64_t()> clock_;
  std::ostream* stream_ = nullptr;
  JsonlSink* sink_ = nullptr;
  TraceContext ctx_;
  // Monotonic anchor for the default clock.
  uint64_t epoch_ns_ = 0;
};

// The hot-path guard every instrumented layer uses.
inline bool ShouldTrace(const QueryTracer* tracer) {
  return tracer != nullptr && tracer->enabled();
}

}  // namespace nc::obs

#endif  // NC_OBS_TRACER_H_
