#include "obs/bench_gate.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/numeric.h"

namespace nc::obs {

namespace {

// Matches bench/bench_util.h's kBenchJsonSchemaVersion.
constexpr double kExpectedSchemaVersion = 2.0;

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

// Gated when the key itself carries a time unit.
bool TimingKey(std::string_view key) {
  return EndsWith(key, "_ns") || EndsWith(key, "_us");
}

void AddIssue(const std::string& file, const std::string& path,
              std::string what, BenchGateResult* out) {
  out->issues.push_back(BenchIssue{file, path, std::move(what)});
}

struct DiffWalker {
  const std::string& file;
  const BenchGateOptions& options;
  BenchGateResult* out;

  // `gated` is inherited: once any ancestor key carried a time unit,
  // every numeric leaf below it is held to the envelope.
  void Walk(const std::string& path, const JsonValue& baseline,
            const JsonValue& current, bool gated) {
    if (baseline.is_number() && current.is_number()) {
      CompareLeaf(path, baseline.number, current.number, gated);
      return;
    }
    if (baseline.is_object() && current.is_object()) {
      for (const auto& member : baseline.object) {
        const JsonValue* other = current.Find(member.first);
        if (other == nullptr) continue;  // Envelope checks own presence.
        Walk(path.empty() ? member.first : path + "." + member.first,
             member.second, *other, gated || TimingKey(member.first));
      }
      return;
    }
    if (baseline.is_array() && current.is_array()) {
      WalkArray(path, baseline, current, gated);
      return;
    }
    // Kind changed (e.g. a number became a string): only worth flagging
    // on a gated path - elsewhere the schema is allowed to evolve.
    if (gated && baseline.kind != current.kind) {
      AddIssue(file, path, "value kind changed against the baseline", out);
    }
  }

  void WalkArray(const std::string& path, const JsonValue& baseline,
                 const JsonValue& current, bool gated) {
    // Arrays of named objects (bench rows) match by name so reordering
    // or appending rows never misaligns the diff.
    std::string name;
    const bool named = !baseline.array.empty() &&
                       baseline.array.front().GetString("name", &name);
    if (named) {
      for (const JsonValue& row : baseline.array) {
        if (!row.GetString("name", &name)) continue;
        const JsonValue* match = nullptr;
        for (const JsonValue& candidate : current.array) {
          std::string other;
          if (candidate.GetString("name", &other) && other == name) {
            match = &candidate;
            break;
          }
        }
        const std::string row_path = path + "[" + name + "]";
        if (match == nullptr) {
          AddIssue(file, row_path, "row missing from the current artifact",
                   out);
          continue;
        }
        Walk(row_path, row, *match, gated);
      }
      return;
    }
    const size_t n = std::min(baseline.array.size(), current.array.size());
    for (size_t i = 0; i < n; ++i) {
      Walk(path + "[" + std::to_string(i) + "]", baseline.array[i],
           current.array[i], gated);
    }
  }

  void CompareLeaf(const std::string& path, double baseline, double current,
                   bool gated) {
    if (!gated) return;
    ++out->values_compared;
    if (!std::isfinite(baseline) || !std::isfinite(current)) return;
    if (baseline <= options.noise_floor) return;
    const double limit = baseline * (1.0 + options.tolerance);
    if (current > limit) {
      AddIssue(file, path,
               "regressed: baseline " + FormatDouble(baseline) +
                   " -> current " + FormatDouble(current) + " (limit " +
                   FormatDouble(limit) + ")",
               out);
    }
  }
};

}  // namespace

Status BenchGateOptions::Validate() const {
  if (!(tolerance >= 0.0) || !std::isfinite(tolerance)) {
    return Status::InvalidArgument("tolerance must be finite and >= 0");
  }
  if (!(noise_floor >= 0.0) || !std::isfinite(noise_floor)) {
    return Status::InvalidArgument("noise_floor must be finite and >= 0");
  }
  return Status::OK();
}

std::string BenchGateResult::ToText() const {
  std::ostringstream os;
  for (const BenchIssue& issue : issues) {
    os << issue.file;
    if (!issue.path.empty()) os << ": " << issue.path;
    os << ": " << issue.what << "\n";
  }
  os << (ok() ? "OK" : "FAIL") << ": " << files_checked << " file(s), "
     << values_compared << " gated value(s), " << issues.size()
     << " issue(s)\n";
  return os.str();
}

Status ReadBenchFile(const std::string& path, JsonValue* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::Unavailable("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("read failed for " + path);
  }
  const Status parsed = ParseJson(buffer.str(), out);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.message());
  }
  return Status::OK();
}

void CheckBenchDoc(const std::string& file, const JsonValue& doc,
                   BenchGateResult* out) {
  ++out->files_checked;
  if (!doc.is_object()) {
    AddIssue(file, "", "document is not a JSON object", out);
    return;
  }
  for (const char* key : {"bench", "timestamp", "build_type"}) {
    const JsonValue* v = doc.Find(key);
    if (v == nullptr || !v->is_string() || v->string.empty()) {
      AddIssue(file, key, "missing or empty envelope key", out);
    }
  }
  double version = 0.0;
  if (!doc.GetNumber("schema_version", &version)) {
    AddIssue(file, "schema_version", "missing envelope key", out);
  } else if (version != kExpectedSchemaVersion) {
    AddIssue(file, "schema_version",
             "expected " + FormatDouble(kExpectedSchemaVersion) + ", got " +
                 FormatDouble(version),
             out);
  }
  const JsonValue* rows = doc.Find("rows");
  if (rows != nullptr && rows->is_array() && rows->array.empty()) {
    AddIssue(file, "rows", "no rows", out);
  }
}

void DiffBenchDocs(const std::string& file, const JsonValue& baseline,
                   const JsonValue& current, const BenchGateOptions& options,
                   BenchGateResult* out) {
  ++out->files_checked;
  std::string old_bench;
  std::string new_bench;
  if (baseline.GetString("bench", &old_bench) &&
      current.GetString("bench", &new_bench) && old_bench != new_bench) {
    AddIssue(file, "bench",
             "artifacts disagree: '" + old_bench + "' vs '" + new_bench + "'",
             out);
    return;
  }
  DiffWalker walker{file, options, out};
  walker.Walk("", baseline, current, /*gated=*/false);
}

}  // namespace nc::obs
