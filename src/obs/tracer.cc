#include "obs/tracer.h"

#include <chrono>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"

namespace nc::obs {

namespace {

// 16-digit lowercase hex, the conventional wire form of a trace id.
std::string TraceIdHex(uint64_t id) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (size_t i = 0; i < 16; ++i) {
    out[15 - i] = kDigits[(id >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace

uint64_t MonotonicTimeNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t UnixTimeUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

JsonlSink::JsonlSink(std::ostream* out) : out_(out) {
  NC_CHECK(out_ != nullptr);
}

void JsonlSink::WriteLine(const std::string& line) {
  const std::lock_guard<std::mutex> lock(mu_);
  (*out_) << line << '\n';
  out_->flush();
  if (out_->good()) {
    ++lines_;
  } else {
    // The line may be partially on disk; count it lost either way and
    // clear the stream so the next line gets a fresh attempt.
    ++dropped_;
    out_->clear();
  }
}

size_t JsonlSink::lines_written() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

size_t JsonlSink::lines_dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAccess:
      return "access";
    case TraceEventKind::kAccessAttempt:
      return "attempt";
    case TraceEventKind::kIteration:
      return "iteration";
    case TraceEventKind::kPhaseBegin:
      return "phase_begin";
    case TraceEventKind::kPhaseEnd:
      return "phase_end";
    case TraceEventKind::kCertificate:
      return "certificate";
    case TraceEventKind::kReplica:
      return "replica";
    case TraceEventKind::kTelemetry:
      return "telemetry";
    case TraceEventKind::kSpan:
      return "span";
    case TraceEventKind::kCache:
      return "cache";
    case TraceEventKind::kProfile:
      return "profile";
  }
  return "unknown";
}

const char* AccessOutcomeName(AccessOutcome outcome) {
  switch (outcome) {
    case AccessOutcome::kOk:
      return "ok";
    case AccessOutcome::kTransient:
      return "transient";
    case AccessOutcome::kTimeout:
      return "timeout";
    case AccessOutcome::kAbandoned:
      return "abandoned";
    case AccessOutcome::kSourceDown:
      return "source_down";
  }
  return "unknown";
}

QueryTracer::QueryTracer() : epoch_ns_(MonotonicTimeNs()) {}

uint64_t QueryTracer::Now() const {
  if (clock_) return clock_();
  return (MonotonicTimeNs() - epoch_ns_) / 1000;
}

uint64_t QueryTracer::NowUnix() const {
  // Deterministic goldens stay deterministic: a test clock zeroes the
  // system-clock timestamp (and JSONL omits the zero).
  if (clock_) return 0;
  return UnixTimeUs();
}

void QueryTracer::Stamp(TraceEvent* e) const {
  e->wall_us = Now();
  e->unix_us = NowUnix();
  e->ctx = ctx_;
}

void QueryTracer::set_context(const TraceContext& ctx) {
  NC_CHECK(ctx.trace_id != 0);
  ctx_ = ctx;
}

void QueryTracer::set_clock_for_testing(std::function<uint64_t()> clock) {
  clock_ = std::move(clock);
}

void QueryTracer::RecordAccess(AccessType type, PredicateId predicate,
                               ObjectId object, double charged,
                               double cost_clock) {
  if (!enabled_) return;
  TraceEvent e;
  e.kind = TraceEventKind::kAccess;
  Stamp(&e);
  e.cost_clock = cost_clock;
  e.access_type = type;
  e.predicate = predicate;
  e.object = object;
  e.outcome = AccessOutcome::kOk;
  e.charged = charged;
  Emit(e);
}

void QueryTracer::RecordAttempt(AccessType type, PredicateId predicate,
                                ObjectId object, AccessOutcome outcome,
                                double charged, double cost_clock) {
  if (!enabled_) return;
  NC_CHECK(outcome != AccessOutcome::kOk);
  TraceEvent e;
  e.kind = TraceEventKind::kAccessAttempt;
  Stamp(&e);
  e.cost_clock = cost_clock;
  e.access_type = type;
  e.predicate = predicate;
  e.object = object;
  e.outcome = outcome;
  e.charged = charged;
  Emit(e);
}

void QueryTracer::RecordIteration(ObjectId target, uint32_t choice_width,
                                  double threshold, double kth_bound,
                                  uint64_t heap_size, double cost_clock) {
  if (!enabled_) return;
  TraceEvent e;
  e.kind = TraceEventKind::kIteration;
  Stamp(&e);
  e.cost_clock = cost_clock;
  e.target = target;
  e.choice_width = choice_width;
  e.threshold = threshold;
  e.kth_bound = kth_bound;
  e.heap_size = heap_size;
  Emit(e);
}

void QueryTracer::BeginPhase(const char* phase) {
  if (!enabled_) return;
  NC_CHECK(phase != nullptr);
  TraceEvent e;
  e.kind = TraceEventKind::kPhaseBegin;
  Stamp(&e);
  e.phase = phase;
  Emit(e);
}

void QueryTracer::EndPhase(const char* phase) {
  if (!enabled_) return;
  NC_CHECK(phase != nullptr);
  TraceEvent e;
  e.kind = TraceEventKind::kPhaseEnd;
  Stamp(&e);
  e.phase = phase;
  Emit(e);
}

void QueryTracer::RecordCertificate(const char* reason, double epsilon,
                                    double excluded_ceiling,
                                    double cost_clock) {
  if (!enabled_) return;
  NC_CHECK(reason != nullptr);
  TraceEvent e;
  e.kind = TraceEventKind::kCertificate;
  Stamp(&e);
  e.cost_clock = cost_clock;
  e.phase = reason;
  e.epsilon = epsilon;
  e.threshold = excluded_ceiling;
  Emit(e);
}

void QueryTracer::RecordReplicaEvent(const char* what, PredicateId predicate,
                                     uint32_t from, uint32_t to,
                                     double cost_clock) {
  if (!enabled_) return;
  NC_CHECK(what != nullptr);
  TraceEvent e;
  e.kind = TraceEventKind::kReplica;
  Stamp(&e);
  e.cost_clock = cost_clock;
  e.predicate = predicate;
  e.phase = what;
  e.replica = from;
  e.replica_to = to;
  Emit(e);
}

void QueryTracer::RecordCacheEvent(const char* what, PredicateId predicate,
                                   ObjectId object, double charged,
                                   double cost_clock) {
  if (!enabled_) return;
  NC_CHECK(what != nullptr);
  TraceEvent e;
  e.kind = TraceEventKind::kCache;
  Stamp(&e);
  e.cost_clock = cost_clock;
  e.predicate = predicate;
  e.object = object;
  e.charged = charged;
  e.phase = what;
  Emit(e);
}

void QueryTracer::RecordTelemetry(const char* what, PredicateId predicate,
                                  double predicted, double actual,
                                  double cost_clock) {
  if (!enabled_) return;
  NC_CHECK(what != nullptr);
  TraceEvent e;
  e.kind = TraceEventKind::kTelemetry;
  Stamp(&e);
  e.cost_clock = cost_clock;
  e.predicate = predicate;
  e.phase = what;
  e.predicted = predicted;
  e.actual = actual;
  Emit(e);
}

void QueryTracer::RecordSpan(const char* name, uint64_t begin_us,
                             uint64_t end_us) {
  if (!enabled_) return;
  NC_CHECK(name != nullptr);
  NC_CHECK(begin_us <= end_us);
  TraceEvent e;
  e.kind = TraceEventKind::kSpan;
  Stamp(&e);
  e.wall_us = begin_us;
  e.phase = name;
  e.duration_us = end_us - begin_us;
  Emit(e);
}

void QueryTracer::RecordProfile(const char* center, uint64_t begin_us,
                                uint64_t end_us) {
  if (!enabled_) return;
  NC_CHECK(center != nullptr);
  NC_CHECK(begin_us <= end_us);
  TraceEvent e;
  e.kind = TraceEventKind::kProfile;
  Stamp(&e);
  e.wall_us = begin_us;
  e.phase = center;
  e.duration_us = end_us - begin_us;
  Emit(e);
}

void QueryTracer::Emit(const TraceEvent& e) {
  events_.push_back(e);
  if (stream_ != nullptr) {
    // One complete line per event, flushed: a kill mid-query truncates
    // at a line boundary at worst.
    WriteJsonlEvent(e, stream_);
    (*stream_) << '\n';
    stream_->flush();
  }
  if (sink_ != nullptr) {
    // The whole line is built locally, then handed to the synchronized
    // sink as one atomic write: concurrent tracers sharing the sink can
    // neither interleave nor tear lines.
    std::ostringstream line;
    WriteJsonlEvent(e, &line);
    sink_->WriteLine(line.str());
  }
}

void QueryTracer::ExportJsonl(std::ostream* out) const {
  NC_CHECK(out != nullptr);
  for (const TraceEvent& e : events_) {
    WriteJsonlEvent(e, out);
    (*out) << '\n';
  }
}

void QueryTracer::WriteJsonlEvent(const TraceEvent& e,
                                  std::ostream* out) const {
  {
    JsonWriter w(out);
    w.BeginObject();
    w.Key("kind").String(TraceEventKindName(e.kind));
    w.Key("wall_us").UInt(e.wall_us);
    // Emitted only when present, so pre-existing readers (and the golden
    // tests pinning the deterministic test-clock output) see the exact
    // same lines as before.
    if (e.unix_us != 0) w.Key("unix_us").UInt(e.unix_us);
    if (e.ctx.trace_id != 0) {
      w.Key("trace").String(TraceIdHex(e.ctx.trace_id));
      w.Key("request").UInt(e.ctx.request_id);
      w.Key("worker").UInt(e.ctx.worker);
    }
    switch (e.kind) {
      case TraceEventKind::kAccess:
      case TraceEventKind::kAccessAttempt:
        w.Key("cost_clock").Number(e.cost_clock);
        w.Key("type").String(e.access_type == AccessType::kSorted ? "sorted"
                                                                  : "random");
        w.Key("predicate").UInt(e.predicate);
        if (e.access_type == AccessType::kRandom) {
          w.Key("object").UInt(e.object);
        }
        w.Key("outcome").String(AccessOutcomeName(e.outcome));
        w.Key("charged").Number(e.charged);
        break;
      case TraceEventKind::kIteration:
        w.Key("cost_clock").Number(e.cost_clock);
        if (e.target == kUnseenObject) {
          w.Key("target").String("unseen");
        } else {
          w.Key("target").UInt(e.target);
        }
        w.Key("choice_width").UInt(e.choice_width);
        w.Key("threshold").Number(e.threshold);
        w.Key("kth_bound").Number(e.kth_bound);
        w.Key("heap_size").UInt(e.heap_size);
        break;
      case TraceEventKind::kPhaseBegin:
      case TraceEventKind::kPhaseEnd:
        w.Key("phase").String(e.phase);
        break;
      case TraceEventKind::kCertificate:
        w.Key("cost_clock").Number(e.cost_clock);
        w.Key("reason").String(e.phase);
        // +inf serializes as null (JsonNumber); readers treat a null
        // epsilon as "no multiplicative guarantee".
        w.Key("epsilon").Number(e.epsilon);
        w.Key("excluded_ceiling").Number(e.threshold);
        break;
      case TraceEventKind::kReplica:
        w.Key("cost_clock").Number(e.cost_clock);
        w.Key("event").String(e.phase);
        w.Key("predicate").UInt(e.predicate);
        w.Key("replica").UInt(e.replica);
        w.Key("replica_to").UInt(e.replica_to);
        break;
      case TraceEventKind::kTelemetry:
        w.Key("cost_clock").Number(e.cost_clock);
        w.Key("what").String(e.phase);
        w.Key("predicate").UInt(e.predicate);
        w.Key("predicted").Number(e.predicted);
        w.Key("actual").Number(e.actual);
        break;
      case TraceEventKind::kSpan:
        w.Key("name").String(e.phase);
        w.Key("duration_us").UInt(e.duration_us);
        break;
      case TraceEventKind::kProfile:
        w.Key("center").String(e.phase);
        w.Key("duration_us").UInt(e.duration_us);
        break;
      case TraceEventKind::kCache:
        w.Key("cost_clock").Number(e.cost_clock);
        w.Key("event").String(e.phase);
        w.Key("predicate").UInt(e.predicate);
        w.Key("object").UInt(e.object);
        w.Key("charged").Number(e.charged);
        break;
    }
    w.EndObject();
  }
}

void QueryTracer::ExportChromeTrace(std::ostream* out) const {
  NC_CHECK(out != nullptr);
  JsonWriter w(out);
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  const auto common = [&w](const TraceEvent& e, const char* name,
                           const char* ph) {
    w.BeginObject();
    w.Key("name").String(name);
    w.Key("ph").String(ph);
    w.Key("ts").UInt(e.wall_us);
    w.Key("pid").Int(1);
    // Request-scoped events land on their serving worker's track, so a
    // multi-worker server renders as parallel per-worker timelines.
    w.Key("tid").Int(e.ctx.trace_id != 0
                         ? static_cast<int64_t>(e.ctx.worker) + 1
                         : 1);
  };
  // args entries shared by every context-stamped event.
  const auto context_args = [&w](const TraceEvent& e) {
    if (e.ctx.trace_id == 0) return;
    w.Key("trace").String(TraceIdHex(e.ctx.trace_id));
    w.Key("request").UInt(e.ctx.request_id);
  };
  for (const TraceEvent& e : events_) {
    switch (e.kind) {
      case TraceEventKind::kAccess:
      case TraceEventKind::kAccessAttempt: {
        const std::string name =
            std::string(e.access_type == AccessType::kSorted ? "sa_" : "ra_") +
            std::to_string(e.predicate);
        common(e, name.c_str(), "i");
        w.Key("s").String("t");
        w.Key("args").BeginObject();
        w.Key("outcome").String(AccessOutcomeName(e.outcome));
        w.Key("charged").Number(e.charged);
        w.Key("cost_clock").Number(e.cost_clock);
        if (e.access_type == AccessType::kRandom) {
          w.Key("object").UInt(e.object);
        }
        context_args(e);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventKind::kIteration: {
        // Counter tracks: Perfetto plots each args key as a series.
        common(e, "theta", "C");
        w.Key("args").BeginObject();
        w.Key("threshold").Number(e.threshold);
        w.Key("kth_bound").Number(e.kth_bound);
        w.EndObject();
        w.EndObject();
        common(e, "heap_size", "C");
        w.Key("args").BeginObject();
        w.Key("size").UInt(e.heap_size);
        w.EndObject();
        w.EndObject();
        break;
      }
      case TraceEventKind::kPhaseBegin:
        common(e, e.phase, "B");
        w.EndObject();
        break;
      case TraceEventKind::kPhaseEnd:
        common(e, e.phase, "E");
        w.EndObject();
        break;
      case TraceEventKind::kCertificate:
        common(e, "certificate", "i");
        w.Key("s").String("t");
        w.Key("args").BeginObject();
        w.Key("reason").String(e.phase);
        w.Key("epsilon").Number(e.epsilon);
        w.Key("excluded_ceiling").Number(e.threshold);
        w.Key("cost_clock").Number(e.cost_clock);
        context_args(e);
        w.EndObject();
        w.EndObject();
        break;
      case TraceEventKind::kReplica:
        common(e, e.phase, "i");
        w.Key("s").String("t");
        w.Key("args").BeginObject();
        w.Key("predicate").UInt(e.predicate);
        w.Key("replica").UInt(e.replica);
        w.Key("replica_to").UInt(e.replica_to);
        w.Key("cost_clock").Number(e.cost_clock);
        context_args(e);
        w.EndObject();
        w.EndObject();
        break;
      case TraceEventKind::kTelemetry:
        common(e, e.phase, "i");
        w.Key("s").String("t");
        w.Key("args").BeginObject();
        w.Key("predicate").UInt(e.predicate);
        w.Key("predicted").Number(e.predicted);
        w.Key("actual").Number(e.actual);
        w.Key("cost_clock").Number(e.cost_clock);
        context_args(e);
        w.EndObject();
        w.EndObject();
        break;
      case TraceEventKind::kSpan:
        // A complete ("X") slice: begin + duration in one event.
        common(e, e.phase, "X");
        w.Key("dur").UInt(e.duration_us);
        w.Key("args").BeginObject();
        context_args(e);
        w.EndObject();
        w.EndObject();
        break;
      case TraceEventKind::kProfile:
        // Profiler scopes nest by stack discipline, so their "X" slices
        // render as a flame graph under the serve span.
        common(e, e.phase, "X");
        w.Key("dur").UInt(e.duration_us);
        w.Key("args").BeginObject();
        context_args(e);
        w.EndObject();
        w.EndObject();
        break;
      case TraceEventKind::kCache:
        common(e, e.phase, "i");
        w.Key("s").String("t");
        w.Key("args").BeginObject();
        w.Key("predicate").UInt(e.predicate);
        w.Key("object").UInt(e.object);
        w.Key("charged").Number(e.charged);
        w.Key("cost_clock").Number(e.cost_clock);
        context_args(e);
        w.EndObject();
        w.EndObject();
        break;
    }
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace nc::obs
