// Anomaly watchdog: live telemetry diffed against a persisted baseline.
//
// A server that persists its TelemetryHub ("nchub 1", obs/telemetry.h)
// owns something more useful than warm-start state: a baseline of what
// its sources *normally* cost and how fast they normally answer. The
// AnomalyWatchdog periodically compares the live hub against such a
// baseline and surfaces regressions - a replica whose windowed latency
// quantile blew past its historical p90, a predicate whose per-access
// cost EWMA drifted far above what the optimizer's Eq. 1 plan assumed -
// through three channels at once:
//
//   * metrics: nc_anomaly_checks_total plus one
//     nc_anomaly_<kind>_total{predicate,...} increment per finding,
//   * tracer events: one kTelemetry record per finding (what =
//     "anomaly_<kind>", predicted = baseline, actual = live) streamed to
//     the shared JsonlSink, so anomalies land in the same per-request
//     JSONL timeline operators already tail,
//   * last_anomalies(): the most recent check's findings, rendered by
//     the server's /varz endpoint.
//
// Both hubs are internally synchronized, so checks run concurrently with
// serving. The background thread is optional: embedders may call
// CheckNow() themselves (tests do), but must not do so while the thread
// is running - the tracer and finding buffer are confined to whichever
// thread drives the checks.

#ifndef NC_OBS_WATCHDOG_H_
#define NC_OBS_WATCHDOG_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "access/access.h"
#include "common/score.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace nc::obs {

struct WatchdogOptions {
  // Background check period, milliseconds. > 0.
  double interval_ms = 200.0;
  // A live service/completion p90 above ratio x baseline is an anomaly.
  // > 1 (a ratio of 1 would flag ordinary jitter).
  double latency_ratio = 2.0;
  // A live cost EWMA above ratio x baseline is an anomaly. > 1.
  double cost_ratio = 2.0;
  // Both sides of a latency comparison need this many observations
  // before the quantiles are trusted (mirrors kTelemetryMinSamples).
  size_t min_samples = kTelemetryMinSamples;

  Status Validate() const;
};

// One finding: the live value, the baseline it violated, and their
// ratio. `kind` is a static string ("service_latency",
// "completion_latency", "access_cost"); replica/type are meaningful for
// the kinds that have them.
struct Anomaly {
  const char* kind = "";
  PredicateId predicate = 0;
  size_t replica = 0;
  AccessType type = AccessType::kSorted;
  double baseline = 0.0;
  double live = 0.0;
  double ratio = 0.0;
};

class AnomalyWatchdog {
 public:
  // `live` and `baseline` must outlive the watchdog; `metrics` and
  // `trace_sink` are optional channels (nullptr disables each).
  AnomalyWatchdog(const TelemetryHub* live, const TelemetryHub* baseline,
                  WatchdogOptions options, MetricsRegistry* metrics,
                  JsonlSink* trace_sink);

  // Stops the background thread if running.
  ~AnomalyWatchdog();

  AnomalyWatchdog(const AnomalyWatchdog&) = delete;
  AnomalyWatchdog& operator=(const AnomalyWatchdog&) = delete;

  // Runs one comparison pass, publishes the findings to every attached
  // channel, and returns them. Called by the background thread; callers
  // may invoke it directly only while the thread is not running.
  std::vector<Anomaly> CheckNow();

  // Spawns the periodic background thread. FailedPrecondition when
  // already running; validates the options.
  Status Start();
  // Stops and joins the thread; idempotent.
  void Stop();
  bool running() const;

  // Findings of the most recent check (thread-safe copy) and the number
  // of checks run so far.
  std::vector<Anomaly> last_anomalies() const;
  size_t checks_run() const;

 private:
  void ThreadMain();

  const TelemetryHub* live_;
  const TelemetryHub* baseline_;
  const WatchdogOptions options_;
  MetricsRegistry* metrics_;
  // Confined to the checking thread; streams findings into the shared
  // sink (the sink itself is synchronized).
  QueryTracer tracer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::vector<Anomaly> last_;
  size_t checks_ = 0;
  std::thread thread_;
};

}  // namespace nc::obs

#endif  // NC_OBS_WATCHDOG_H_
