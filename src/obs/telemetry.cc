#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>

#include "common/check.h"
#include "common/numeric.h"

namespace nc::obs {

namespace {

double QuietNaN() { return std::numeric_limits<double>::quiet_NaN(); }

uint64_t CostKey(PredicateId i, AccessType type) {
  return (static_cast<uint64_t>(i) << 1) |
         (type == AccessType::kRandom ? 1u : 0u);
}

template <typename Map>
std::vector<typename Map::key_type> SortedKeys(const Map& map) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(map.size());
  for (const auto& [key, value] : map) {
    (void)value;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --- "nchub 1" token helpers -------------------------------------------
// Every double is a C-hexfloat (FormatHexDouble): byte-exact round-trips
// and locale independence by construction; integers are plain decimal.

void AppendUInt(std::string* out, uint64_t v) {
  *out += ' ';
  *out += std::to_string(v);
}

void AppendHex(std::string* out, double v) {
  *out += ' ';
  *out += FormatHexDouble(v);
}

// One P2 sketch: count, then the 5 heights / positions / desired marker
// vectors. q is NOT serialized - it is fixed by the field's position in
// the sketch line (0.5 / 0.9 / 0.95 / 0.99) - and the increments vector
// is a pure function of q, rebuilt by the P2Quantile constructor.
void AppendP2(std::string* out, const P2Quantile& p) {
  const P2QuantileState st = p.state();
  AppendUInt(out, st.count);
  for (const double h : st.heights) AppendHex(out, h);
  for (const double n : st.positions) AppendHex(out, n);
  for (const double d : st.desired) AppendHex(out, d);
}

// A token cursor over one line; every Take* fails softly so the caller
// can surface the line number.
struct TokenCursor {
  const std::vector<std::string_view>* tokens;
  size_t next = 0;

  bool TakeUInt(uint64_t* out) {
    if (next >= tokens->size()) return false;
    return ParseUInt64((*tokens)[next++], out);
  }
  bool TakeDouble(double* out) {
    if (next >= tokens->size()) return false;
    return ParseDouble((*tokens)[next++], out);
  }
  bool TakeBool(bool* out) {
    uint64_t v = 0;
    if (!TakeUInt(&v) || v > 1) return false;
    *out = v == 1;
    return true;
  }
  bool Done() const { return next == tokens->size(); }
};

bool ParseP2(TokenCursor* cursor, double q, P2Quantile* out) {
  P2QuantileState st;
  st.q = q;
  uint64_t count = 0;
  if (!cursor->TakeUInt(&count)) return false;
  st.count = static_cast<size_t>(count);
  for (double& h : st.heights) {
    if (!cursor->TakeDouble(&h)) return false;
  }
  for (double& n : st.positions) {
    if (!cursor->TakeDouble(&n)) return false;
  }
  for (double& d : st.desired) {
    if (!cursor->TakeDouble(&d)) return false;
  }
  *out = P2Quantile::FromState(st);
  return true;
}

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    const size_t space = line.find(' ', pos);
    const size_t end = space == std::string_view::npos ? line.size() : space;
    if (end > pos) tokens.push_back(line.substr(pos, end - pos));
    pos = end + 1;
  }
  return tokens;
}

}  // namespace

double TelemetryHub::ServiceSketch::At(double q) const {
  if (q == 0.5) return p50.value();
  if (q == 0.9) return p90.value();
  if (q == 0.95) return p95.value();
  if (q == 0.99) return p99.value();
  NC_CHECK(false);  // Only the tracked quantiles are streamed.
  return QuietNaN();
}

void TelemetryHub::HedgeWindow::Add(double v) {
  if (samples.size() < kTelemetryHedgeWindow) {
    samples.push_back(v);
  } else {
    samples[next] = v;
  }
  next = (next + 1) % kTelemetryHedgeWindow;
  ++count;
}

double TelemetryHub::HedgeWindow::ExactQuantile(double q) const {
  return Percentile(samples, q);
}

TelemetryHub::TelemetryHub() = default;

void TelemetryHub::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  queries_observed_.store(0, std::memory_order_relaxed);
  service_.clear();
  hedge_window_.clear();
  completion_.clear();
  cost_.clear();
  prediction_error_.clear();
  health_.clear();
  profile_.clear();
}

void TelemetryHub::ObserveReplicaService(PredicateId i, size_t r,
                                         double latency) {
  if (!enabled()) return;
  const uint64_t key = SlotKey(i, r);
  const std::lock_guard<std::mutex> lock(mu_);
  service_[key].Add(latency);
  hedge_window_[key].Add(latency);
}

void TelemetryHub::ObserveCompletion(PredicateId i, double latency) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  completion_[i].Add(latency);
}

void TelemetryHub::ObserveAccessCost(PredicateId i, AccessType type,
                                     double charged) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  CostEwma& cell = cost_[CostKey(i, type)];
  if (!cell.seeded) {
    cell.seeded = true;
    cell.value = charged;
  } else {
    cell.value += kTelemetryCostEwmaAlpha * (charged - cell.value);
  }
}

void TelemetryHub::ObservePredictionError(PredicateId i,
                                          double relative_error) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  prediction_error_[i].Add(relative_error);
}

void TelemetryHub::ObserveProfile(const ProfileReport& report) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const ProfileReport::FlatRow& row : report.flat) {
    // Self time in microseconds: the same unit as the latency sketches,
    // and small enough that P2's double arithmetic stays well-scaled.
    profile_[static_cast<uint32_t>(row.center)].Add(
        static_cast<double>(row.self_ns) / 1000.0);
  }
}

size_t TelemetryHub::replica_service_count(PredicateId i, size_t r) const {
  const uint64_t key = SlotKey(i, r);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = service_.find(key);
  return it == service_.end() ? 0 : it->second.count;
}

double TelemetryHub::ReplicaServiceQuantile(PredicateId i, size_t r,
                                            double q) const {
  const uint64_t key = SlotKey(i, r);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = service_.find(key);
  if (it == service_.end()) return QuietNaN();
  return it->second.At(q);
}

double TelemetryHub::CompletionQuantile(PredicateId i, double q) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = completion_.find(i);
  if (it == completion_.end()) return QuietNaN();
  return it->second.At(q);
}

double TelemetryHub::AccessCostEwma(PredicateId i, AccessType type) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = cost_.find(CostKey(i, type));
  if (it == cost_.end() || !it->second.seeded) return QuietNaN();
  return it->second.value;
}

double TelemetryHub::PredictionErrorQuantile(PredicateId i, double q) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = prediction_error_.find(i);
  if (it == prediction_error_.end()) return QuietNaN();
  return it->second.At(q);
}

size_t TelemetryHub::prediction_error_count(PredicateId i) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = prediction_error_.find(i);
  return it == prediction_error_.end() ? 0 : it->second.count;
}

double TelemetryHub::ProfileQuantile(CostCenter center, double q) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = profile_.find(static_cast<uint32_t>(center));
  if (it == profile_.end()) return QuietNaN();
  return it->second.At(q);
}

size_t TelemetryHub::profile_sample_count(CostCenter center) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = profile_.find(static_cast<uint32_t>(center));
  return it == profile_.end() ? 0 : it->second.count;
}

double TelemetryHub::AdaptiveHedgeDelay(PredicateId i, size_t r) const {
  const uint64_t key = SlotKey(i, r);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = hedge_window_.find(key);
  if (it == hedge_window_.end() || it->second.count < kTelemetryMinSamples) {
    return QuietNaN();
  }
  // Exact windowed p90, not a P2 marker and not p95: see the header
  // comment - at a ~5% straggler fraction the 0.95 quantile is ambiguous
  // across the bulk/tail gap and P2 markers drift into it, hedging far
  // too late.
  return it->second.ExactQuantile(0.9);
}

void TelemetryHub::CaptureFleetHealth(const ReplicaFleet& fleet, double now) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const size_t bound = fleet.max_configured_predicates();
  for (PredicateId i = 0; i < bound; ++i) {
    if (!fleet.configured(i)) continue;
    for (size_t r = 0; r < fleet.num_replicas(i); ++r) {
      const ReplicaRuntime& rt = fleet.runtime(i, r);
      ReplicaHealth h;
      h.predicate = i;
      h.replica = r;
      h.dead = rt.dead;
      // An already-elapsed cooldown is not worth carrying: the breaker
      // would admit a probe immediately anyway.
      h.breaker_open = rt.breaker_open && rt.breaker_open_until > now;
      h.cooldown_remaining = h.breaker_open ? rt.breaker_open_until - now : 0.0;
      h.breaker_consecutive = rt.breaker_consecutive;
      h.has_ewma = rt.has_ewma;
      h.ewma_latency = rt.ewma_latency;
      // Merge by slot: deaths are sticky across captures (another
      // worker's fleet view that never saw the death must not resurrect
      // the replica); everything else takes the fresh capture.
      auto [it, inserted] = health_.try_emplace(SlotKey(i, r), h);
      if (!inserted) {
        h.dead = h.dead || it->second.dead;
        it->second = h;
      }
    }
  }
}

void TelemetryHub::WarmFleet(ReplicaFleet* fleet) const {
  if (!enabled() || fleet == nullptr) return;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, h] : health_) {
    (void)key;
    if (!fleet->configured(h.predicate)) continue;
    if (h.replica >= fleet->num_replicas(h.predicate)) continue;
    ReplicaRuntime& rt = fleet->runtime(h.predicate, h.replica);
    // Deaths are sticky: a replica the session saw die stays routed
    // around until the embedder clears the hub (or reconfigures).
    rt.dead = rt.dead || h.dead;
    if (h.breaker_open) {
      rt.breaker_open = true;
      // The new query's elapsed-time clock starts at zero.
      rt.breaker_open_until = h.cooldown_remaining;
    }
    rt.breaker_consecutive = h.breaker_consecutive;
    if (h.has_ewma) {
      rt.has_ewma = true;
      rt.ewma_latency = h.ewma_latency;
    }
  }
  // Hub-informed routing: slots the captured health left cold (no
  // routing EWMA yet - e.g. a fresh stack warming from a persisted or
  // server-shared hub) seed their kLeastLatency estimate from the
  // cross-query service sketch's median, once it has enough samples to
  // beat noise. Health-carried EWMAs above stay authoritative; this only
  // fills gaps, so re-warming is idempotent and fault-free answers are
  // untouched (routing changes WHERE an access is served, never what it
  // returns - pinned by the differential test in telemetry_test.cc).
  for (const auto& [key, sketch] : service_) {
    if (sketch.count < kTelemetryMinSamples) continue;
    const auto predicate = static_cast<PredicateId>(key >> 32);
    const auto replica = static_cast<size_t>(key & 0xFFFFFFFFu);
    if (!fleet->configured(predicate)) continue;
    if (replica >= fleet->num_replicas(predicate)) continue;
    ReplicaRuntime& rt = fleet->runtime(predicate, replica);
    if (rt.has_ewma) continue;
    rt.has_ewma = true;
    rt.ewma_latency = sketch.At(0.5);
  }
}

bool TelemetryHub::has_fleet_health() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return !health_.empty();
}

HubSnapshot TelemetryHub::Snapshot() const {
  HubSnapshot snap;
  snap.queries_observed = queries_observed_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, sketch] : service_) {
      SlotQuantiles s;
      s.predicate = static_cast<PredicateId>(key >> 32);
      s.replica = static_cast<size_t>(key & 0xFFFFFFFFu);
      s.count = sketch.count;
      s.p50 = sketch.At(0.5);
      s.p90 = sketch.At(0.9);
      s.p95 = sketch.At(0.95);
      s.p99 = sketch.At(0.99);
      snap.service.push_back(s);
    }
    const auto per_predicate = [](PredicateId i, const ServiceSketch& sketch) {
      SlotQuantiles s;
      s.predicate = i;
      s.count = sketch.count;
      s.p50 = sketch.At(0.5);
      s.p90 = sketch.At(0.9);
      s.p95 = sketch.At(0.95);
      s.p99 = sketch.At(0.99);
      return s;
    };
    for (const auto& [i, sketch] : completion_) {
      snap.completion.push_back(per_predicate(i, sketch));
    }
    for (const auto& [i, sketch] : prediction_error_) {
      snap.prediction_error.push_back(per_predicate(i, sketch));
    }
    for (const auto& [key, cell] : cost_) {
      if (!cell.seeded) continue;
      CostCell c;
      c.predicate = static_cast<PredicateId>(key >> 1);
      c.type = (key & 1u) != 0 ? AccessType::kRandom : AccessType::kSorted;
      c.ewma = cell.value;
      snap.cost.push_back(c);
    }
    for (const auto& [key, h] : health_) {
      (void)key;
      snap.health.push_back(h);
    }
    for (const auto& [center, sketch] : profile_) {
      ProfileQuantiles p;
      p.center = static_cast<CostCenter>(center);
      p.count = sketch.count;
      p.p50 = sketch.At(0.5);
      p.p90 = sketch.At(0.9);
      p.p95 = sketch.At(0.95);
      p.p99 = sketch.At(0.99);
      snap.profile.push_back(p);
    }
  }
  const auto by_slot = [](const SlotQuantiles& a, const SlotQuantiles& b) {
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    return a.replica < b.replica;
  };
  std::sort(snap.service.begin(), snap.service.end(), by_slot);
  std::sort(snap.completion.begin(), snap.completion.end(), by_slot);
  std::sort(snap.prediction_error.begin(), snap.prediction_error.end(),
            by_slot);
  std::sort(snap.cost.begin(), snap.cost.end(),
            [](const CostCell& a, const CostCell& b) {
              if (a.predicate != b.predicate) return a.predicate < b.predicate;
              return a.type < b.type;
            });
  std::sort(snap.health.begin(), snap.health.end(),
            [](const ReplicaHealth& a, const ReplicaHealth& b) {
              if (a.predicate != b.predicate) return a.predicate < b.predicate;
              return a.replica < b.replica;
            });
  std::sort(snap.profile.begin(), snap.profile.end(),
            [](const ProfileQuantiles& a, const ProfileQuantiles& b) {
              return a.center < b.center;
            });
  return snap;
}

std::string TelemetryHub::Serialize() const {
  const std::lock_guard<std::mutex> lock(mu_);
  // Version 2 added the "profile" record; readers accept 1 and 2.
  std::string out = "nchub 2\n";
  out += "queries";
  AppendUInt(&out, queries_observed_.load(std::memory_order_relaxed));
  out += '\n';
  for (const uint64_t key : SortedKeys(service_)) {
    const ServiceSketch& s = service_.at(key);
    out += "service";
    AppendUInt(&out, key >> 32);
    AppendUInt(&out, key & 0xFFFFFFFFu);
    AppendUInt(&out, s.count);
    AppendP2(&out, s.p50);
    AppendP2(&out, s.p90);
    AppendP2(&out, s.p95);
    AppendP2(&out, s.p99);
    out += '\n';
  }
  for (const uint64_t key : SortedKeys(hedge_window_)) {
    const HedgeWindow& w = hedge_window_.at(key);
    out += "hedge";
    AppendUInt(&out, key >> 32);
    AppendUInt(&out, key & 0xFFFFFFFFu);
    AppendUInt(&out, w.next);
    AppendUInt(&out, w.count);
    AppendUInt(&out, w.samples.size());
    // Ring storage order, not logical order: the restored ring is
    // byte-identical, cursor included.
    for (const double v : w.samples) AppendHex(&out, v);
    out += '\n';
  }
  for (const uint32_t key : SortedKeys(completion_)) {
    const ServiceSketch& s = completion_.at(key);
    out += "completion";
    AppendUInt(&out, key);
    AppendUInt(&out, s.count);
    AppendP2(&out, s.p50);
    AppendP2(&out, s.p90);
    AppendP2(&out, s.p95);
    AppendP2(&out, s.p99);
    out += '\n';
  }
  for (const uint32_t key : SortedKeys(prediction_error_)) {
    const ServiceSketch& s = prediction_error_.at(key);
    out += "prederr";
    AppendUInt(&out, key);
    AppendUInt(&out, s.count);
    AppendP2(&out, s.p50);
    AppendP2(&out, s.p90);
    AppendP2(&out, s.p95);
    AppendP2(&out, s.p99);
    out += '\n';
  }
  for (const uint64_t key : SortedKeys(cost_)) {
    const CostEwma& cell = cost_.at(key);
    if (!cell.seeded) continue;
    out += "cost";
    AppendUInt(&out, key >> 1);
    AppendUInt(&out, key & 1u);
    AppendHex(&out, cell.value);
    out += '\n';
  }
  for (const uint32_t key : SortedKeys(profile_)) {
    const ServiceSketch& s = profile_.at(key);
    out += "profile";
    AppendUInt(&out, key);
    AppendUInt(&out, s.count);
    AppendP2(&out, s.p50);
    AppendP2(&out, s.p90);
    AppendP2(&out, s.p95);
    AppendP2(&out, s.p99);
    out += '\n';
  }
  for (const uint64_t key : SortedKeys(health_)) {
    const ReplicaHealth& h = health_.at(key);
    out += "health";
    AppendUInt(&out, h.predicate);
    AppendUInt(&out, h.replica);
    AppendUInt(&out, h.dead ? 1 : 0);
    AppendUInt(&out, h.breaker_open ? 1 : 0);
    AppendHex(&out, h.cooldown_remaining);
    AppendUInt(&out, h.breaker_consecutive);
    AppendUInt(&out, h.has_ewma ? 1 : 0);
    AppendHex(&out, h.ewma_latency);
    out += '\n';
  }
  out += "end\n";
  return out;
}

Status TelemetryHub::Deserialize(const std::string& text) {
  // Parsed into fresh containers first: on any error the live hub is
  // untouched.
  size_t queries = 0;
  std::unordered_map<uint64_t, ServiceSketch> service;
  std::unordered_map<uint64_t, HedgeWindow> hedge_window;
  std::unordered_map<uint32_t, ServiceSketch> completion;
  std::unordered_map<uint64_t, CostEwma> cost;
  std::unordered_map<uint32_t, ServiceSketch> prediction_error;
  std::unordered_map<uint64_t, ReplicaHealth> health;
  std::unordered_map<uint32_t, ServiceSketch> profile;

  const auto fail = [](size_t line_no, const std::string& why) {
    return Status::InvalidArgument("nchub line " + std::to_string(line_no) +
                                   ": " + why);
  };

  // A sketch body: count then four P2 blocks at the fixed quantiles.
  const auto parse_sketch = [](TokenCursor* cursor, ServiceSketch* out) {
    uint64_t count = 0;
    if (!cursor->TakeUInt(&count)) return false;
    out->count = static_cast<size_t>(count);
    return ParseP2(cursor, 0.5, &out->p50) &&
           ParseP2(cursor, 0.9, &out->p90) &&
           ParseP2(cursor, 0.95, &out->p95) &&
           ParseP2(cursor, 0.99, &out->p99);
  };

  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool saw_header = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string_view> tokens = SplitTokens(line);
    if (tokens.empty()) continue;
    if (!saw_header) {
      // Version 1 documents simply have no "profile" records; every
      // record they do have parses identically, so both versions load.
      if (tokens.size() != 2 || tokens[0] != "nchub" ||
          (tokens[1] != "1" && tokens[1] != "2")) {
        return fail(line_no, "expected header \"nchub 1\" or \"nchub 2\"");
      }
      saw_header = true;
      continue;
    }
    if (saw_end) return fail(line_no, "content after \"end\"");
    const std::string_view kind = tokens[0];
    TokenCursor cursor{&tokens, 1};
    if (kind == "end") {
      if (tokens.size() != 1) return fail(line_no, "malformed \"end\"");
      saw_end = true;
    } else if (kind == "queries") {
      uint64_t v = 0;
      if (!cursor.TakeUInt(&v) || !cursor.Done()) {
        return fail(line_no, "malformed \"queries\"");
      }
      queries = static_cast<size_t>(v);
    } else if (kind == "service" || kind == "completion" ||
               kind == "prederr") {
      uint64_t predicate = 0;
      uint64_t replica = 0;
      if (!cursor.TakeUInt(&predicate)) {
        return fail(line_no, "malformed sketch key");
      }
      if (kind == "service" && !cursor.TakeUInt(&replica)) {
        return fail(line_no, "malformed sketch key");
      }
      ServiceSketch sketch;
      if (!parse_sketch(&cursor, &sketch) || !cursor.Done()) {
        return fail(line_no, "malformed sketch body");
      }
      if (kind == "service") {
        service.emplace(SlotKey(static_cast<PredicateId>(predicate),
                                static_cast<size_t>(replica)),
                        sketch);
      } else if (kind == "completion") {
        completion.emplace(static_cast<uint32_t>(predicate), sketch);
      } else {
        prediction_error.emplace(static_cast<uint32_t>(predicate), sketch);
      }
    } else if (kind == "profile") {
      uint64_t center = 0;
      if (!cursor.TakeUInt(&center) || center >= kNumCostCenters) {
        return fail(line_no, "malformed \"profile\" key");
      }
      ServiceSketch sketch;
      if (!parse_sketch(&cursor, &sketch) || !cursor.Done()) {
        return fail(line_no, "malformed \"profile\" body");
      }
      profile.emplace(static_cast<uint32_t>(center), sketch);
    } else if (kind == "hedge") {
      uint64_t predicate = 0;
      uint64_t replica = 0;
      uint64_t next = 0;
      uint64_t count = 0;
      uint64_t n = 0;
      if (!cursor.TakeUInt(&predicate) || !cursor.TakeUInt(&replica) ||
          !cursor.TakeUInt(&next) || !cursor.TakeUInt(&count) ||
          !cursor.TakeUInt(&n) || n > kTelemetryHedgeWindow) {
        return fail(line_no, "malformed \"hedge\"");
      }
      HedgeWindow window;
      window.next = static_cast<size_t>(next);
      window.count = static_cast<size_t>(count);
      window.samples.resize(static_cast<size_t>(n));
      for (double& v : window.samples) {
        if (!cursor.TakeDouble(&v)) return fail(line_no, "malformed sample");
      }
      if (!cursor.Done()) return fail(line_no, "trailing tokens");
      hedge_window.emplace(SlotKey(static_cast<PredicateId>(predicate),
                                   static_cast<size_t>(replica)),
                           std::move(window));
    } else if (kind == "cost") {
      uint64_t predicate = 0;
      uint64_t is_random = 0;
      CostEwma cell;
      cell.seeded = true;
      if (!cursor.TakeUInt(&predicate) || !cursor.TakeUInt(&is_random) ||
          is_random > 1 || !cursor.TakeDouble(&cell.value) ||
          !cursor.Done()) {
        return fail(line_no, "malformed \"cost\"");
      }
      cost.emplace(CostKey(static_cast<PredicateId>(predicate),
                           is_random != 0 ? AccessType::kRandom
                                          : AccessType::kSorted),
                   cell);
    } else if (kind == "health") {
      uint64_t predicate = 0;
      uint64_t replica = 0;
      uint64_t consecutive = 0;
      ReplicaHealth h;
      if (!cursor.TakeUInt(&predicate) || !cursor.TakeUInt(&replica) ||
          !cursor.TakeBool(&h.dead) || !cursor.TakeBool(&h.breaker_open) ||
          !cursor.TakeDouble(&h.cooldown_remaining) ||
          !cursor.TakeUInt(&consecutive) || !cursor.TakeBool(&h.has_ewma) ||
          !cursor.TakeDouble(&h.ewma_latency) || !cursor.Done()) {
        return fail(line_no, "malformed \"health\"");
      }
      h.predicate = static_cast<PredicateId>(predicate);
      h.replica = static_cast<size_t>(replica);
      h.breaker_consecutive = static_cast<size_t>(consecutive);
      health.emplace(SlotKey(h.predicate, h.replica), h);
    } else {
      return fail(line_no, "unknown record \"" + std::string(kind) + "\"");
    }
  }
  if (!saw_header) return Status::InvalidArgument("nchub: empty document");
  if (!saw_end) return Status::InvalidArgument("nchub: missing \"end\"");

  const std::lock_guard<std::mutex> lock(mu_);
  queries_observed_.store(queries, std::memory_order_relaxed);
  service_ = std::move(service);
  hedge_window_ = std::move(hedge_window);
  completion_ = std::move(completion);
  cost_ = std::move(cost);
  prediction_error_ = std::move(prediction_error);
  health_ = std::move(health);
  profile_ = std::move(profile);
  return Status::OK();
}

Status TelemetryHub::SaveToFile(const std::string& path) const {
  // Serialize before opening: a hub error never truncates the file.
  const std::string text = Serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open \"" + path + "\" for writing");
  }
  out << text;
  out.flush();
  if (!out) return Status::Unavailable("short write to \"" + path + "\"");
  return Status::OK();
}

Status TelemetryHub::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Unavailable("cannot open \"" + path + "\"");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Deserialize(buffer.str());
}

std::vector<ReplicaHealth> TelemetryHub::fleet_health() const {
  std::vector<ReplicaHealth> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.reserve(health_.size());
    for (const auto& [key, h] : health_) {
      (void)key;
      out.push_back(h);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ReplicaHealth& a, const ReplicaHealth& b) {
              if (a.predicate != b.predicate) return a.predicate < b.predicate;
              return a.replica < b.replica;
            });
  return out;
}

}  // namespace nc::obs
