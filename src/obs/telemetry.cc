#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace nc::obs {

namespace {

double QuietNaN() { return std::numeric_limits<double>::quiet_NaN(); }

uint64_t CostKey(PredicateId i, AccessType type) {
  return (static_cast<uint64_t>(i) << 1) |
         (type == AccessType::kRandom ? 1u : 0u);
}

}  // namespace

double TelemetryHub::ServiceSketch::At(double q) const {
  if (q == 0.5) return p50.value();
  if (q == 0.9) return p90.value();
  if (q == 0.95) return p95.value();
  if (q == 0.99) return p99.value();
  NC_CHECK(false);  // Only the tracked quantiles are streamed.
  return QuietNaN();
}

void TelemetryHub::HedgeWindow::Add(double v) {
  if (samples.size() < kTelemetryHedgeWindow) {
    samples.push_back(v);
  } else {
    samples[next] = v;
  }
  next = (next + 1) % kTelemetryHedgeWindow;
  ++count;
}

double TelemetryHub::HedgeWindow::ExactQuantile(double q) const {
  return Percentile(samples, q);
}

TelemetryHub::TelemetryHub() = default;

void TelemetryHub::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  queries_observed_.store(0, std::memory_order_relaxed);
  service_.clear();
  hedge_window_.clear();
  completion_.clear();
  cost_.clear();
  prediction_error_.clear();
  health_.clear();
}

void TelemetryHub::ObserveReplicaService(PredicateId i, size_t r,
                                         double latency) {
  if (!enabled()) return;
  const uint64_t key = SlotKey(i, r);
  const std::lock_guard<std::mutex> lock(mu_);
  service_[key].Add(latency);
  hedge_window_[key].Add(latency);
}

void TelemetryHub::ObserveCompletion(PredicateId i, double latency) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  completion_[i].Add(latency);
}

void TelemetryHub::ObserveAccessCost(PredicateId i, AccessType type,
                                     double charged) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  CostEwma& cell = cost_[CostKey(i, type)];
  if (!cell.seeded) {
    cell.seeded = true;
    cell.value = charged;
  } else {
    cell.value += kTelemetryCostEwmaAlpha * (charged - cell.value);
  }
}

void TelemetryHub::ObservePredictionError(PredicateId i,
                                          double relative_error) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  prediction_error_[i].Add(relative_error);
}

size_t TelemetryHub::replica_service_count(PredicateId i, size_t r) const {
  const uint64_t key = SlotKey(i, r);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = service_.find(key);
  return it == service_.end() ? 0 : it->second.count;
}

double TelemetryHub::ReplicaServiceQuantile(PredicateId i, size_t r,
                                            double q) const {
  const uint64_t key = SlotKey(i, r);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = service_.find(key);
  if (it == service_.end()) return QuietNaN();
  return it->second.At(q);
}

double TelemetryHub::CompletionQuantile(PredicateId i, double q) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = completion_.find(i);
  if (it == completion_.end()) return QuietNaN();
  return it->second.At(q);
}

double TelemetryHub::AccessCostEwma(PredicateId i, AccessType type) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = cost_.find(CostKey(i, type));
  if (it == cost_.end() || !it->second.seeded) return QuietNaN();
  return it->second.value;
}

double TelemetryHub::PredictionErrorQuantile(PredicateId i, double q) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = prediction_error_.find(i);
  if (it == prediction_error_.end()) return QuietNaN();
  return it->second.At(q);
}

size_t TelemetryHub::prediction_error_count(PredicateId i) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = prediction_error_.find(i);
  return it == prediction_error_.end() ? 0 : it->second.count;
}

double TelemetryHub::AdaptiveHedgeDelay(PredicateId i, size_t r) const {
  const uint64_t key = SlotKey(i, r);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = hedge_window_.find(key);
  if (it == hedge_window_.end() || it->second.count < kTelemetryMinSamples) {
    return QuietNaN();
  }
  // Exact windowed p90, not a P2 marker and not p95: see the header
  // comment - at a ~5% straggler fraction the 0.95 quantile is ambiguous
  // across the bulk/tail gap and P2 markers drift into it, hedging far
  // too late.
  return it->second.ExactQuantile(0.9);
}

void TelemetryHub::CaptureFleetHealth(const ReplicaFleet& fleet, double now) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  const size_t bound = fleet.max_configured_predicates();
  for (PredicateId i = 0; i < bound; ++i) {
    if (!fleet.configured(i)) continue;
    for (size_t r = 0; r < fleet.num_replicas(i); ++r) {
      const ReplicaRuntime& rt = fleet.runtime(i, r);
      ReplicaHealth h;
      h.predicate = i;
      h.replica = r;
      h.dead = rt.dead;
      // An already-elapsed cooldown is not worth carrying: the breaker
      // would admit a probe immediately anyway.
      h.breaker_open = rt.breaker_open && rt.breaker_open_until > now;
      h.cooldown_remaining = h.breaker_open ? rt.breaker_open_until - now : 0.0;
      h.breaker_consecutive = rt.breaker_consecutive;
      h.has_ewma = rt.has_ewma;
      h.ewma_latency = rt.ewma_latency;
      // Merge by slot: deaths are sticky across captures (another
      // worker's fleet view that never saw the death must not resurrect
      // the replica); everything else takes the fresh capture.
      auto [it, inserted] = health_.try_emplace(SlotKey(i, r), h);
      if (!inserted) {
        h.dead = h.dead || it->second.dead;
        it->second = h;
      }
    }
  }
}

void TelemetryHub::WarmFleet(ReplicaFleet* fleet) const {
  if (!enabled() || fleet == nullptr) return;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, h] : health_) {
    (void)key;
    if (!fleet->configured(h.predicate)) continue;
    if (h.replica >= fleet->num_replicas(h.predicate)) continue;
    ReplicaRuntime& rt = fleet->runtime(h.predicate, h.replica);
    // Deaths are sticky: a replica the session saw die stays routed
    // around until the embedder clears the hub (or reconfigures).
    rt.dead = rt.dead || h.dead;
    if (h.breaker_open) {
      rt.breaker_open = true;
      // The new query's elapsed-time clock starts at zero.
      rt.breaker_open_until = h.cooldown_remaining;
    }
    rt.breaker_consecutive = h.breaker_consecutive;
    if (h.has_ewma) {
      rt.has_ewma = true;
      rt.ewma_latency = h.ewma_latency;
    }
  }
}

bool TelemetryHub::has_fleet_health() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return !health_.empty();
}

std::vector<ReplicaHealth> TelemetryHub::fleet_health() const {
  std::vector<ReplicaHealth> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out.reserve(health_.size());
    for (const auto& [key, h] : health_) {
      (void)key;
      out.push_back(h);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ReplicaHealth& a, const ReplicaHealth& b) {
              if (a.predicate != b.predicate) return a.predicate < b.predicate;
              return a.replica < b.replica;
            });
  return out;
}

}  // namespace nc::obs
