// A small strict JSON parser for the repo's own machine artifacts.
//
// obs/json.h writes JSON; until now nothing in the tree could read it
// back, so the bench regression gate (obs/bench_gate.h, tools/bench_diff)
// had no way to diff two committed BENCH_*.json envelopes. This parser
// covers exactly RFC 8259: objects, arrays, strings (with escapes),
// numbers, booleans, null. Numbers parse through common/numeric.h, so a
// comma-decimal locale can never corrupt a document (the same guarantee
// the writer makes).
//
// Not a general-purpose library: documents are parsed into an owning
// tree (JsonValue), object members keep insertion order, duplicate keys
// keep the last occurrence, and nesting is capped to keep recursion
// bounded on hostile input.

#ifndef NC_OBS_JSON_PARSE_H_
#define NC_OBS_JSON_PARSE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace nc::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion order preserved; last occurrence wins on duplicate keys.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  // Convenience typed getters over Find: false (with *out untouched)
  // when the member is absent or of the wrong kind.
  bool GetNumber(std::string_view key, double* out) const;
  bool GetString(std::string_view key, std::string* out) const;
  bool GetBool(std::string_view key, bool* out) const;
};

// Parses one complete JSON document (trailing whitespace allowed,
// trailing garbage rejected). On failure returns InvalidArgument with a
// byte offset in the message; *out is untouched.
Status ParseJson(std::string_view text, JsonValue* out);

}  // namespace nc::obs

#endif  // NC_OBS_JSON_PARSE_H_
