// Minimal JSON emission for the observability exporters.
//
// The tracer, the metrics registry, the RunReport serializer, and the
// benchmark harness all need to write small, well-formed JSON documents
// without pulling in an external dependency. JsonWriter covers exactly
// that: objects, arrays, string escaping, and finite-number formatting
// (NaN/Inf serialize as null, which every JSON parser accepts). It is an
// emitter only - parsing never happens on this side of the tooling.

#ifndef NC_OBS_JSON_H_
#define NC_OBS_JSON_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace nc::obs {

// Escapes `s` per RFC 8259 and returns it wrapped in double quotes.
std::string JsonQuote(std::string_view s);

// Shortest round-trip decimal for a double; "null" for NaN/Inf.
std::string JsonNumber(double value);

// Streaming writer with automatic comma placement. Keys and scopes must
// be used coherently (object values need a preceding Key); the writer
// checks nesting depth but not full grammar - exporters are simple
// enough that golden tests pin their output.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream* out) : out_(out) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Splices pre-serialized JSON in as one value (e.g. a nested
  // RunReport::ToJson()); the caller vouches for its well-formedness.
  JsonWriter& Raw(std::string_view json);

 private:
  // Writes the separating comma when a value follows a sibling value.
  void PrepareValue();

  std::ostream* out_;
  // One flag per open scope: has this scope emitted a value yet?
  std::vector<bool> scope_has_value_;
  // A Key was just written; the next value attaches to it.
  bool pending_key_ = false;
};

}  // namespace nc::obs

#endif  // NC_OBS_JSON_H_
