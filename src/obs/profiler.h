// Hot-path profiling: where a query's *compute* cost goes.
//
// The paper's Eq. 1 meters every access-cost cell; the tracer records
// what the engine did. Neither answers the question the "10x faster"
// roadmap item starts from: of the ~2 ms a 10k-object query costs,
// how much is the optimizer's simulate loop, the bound heap, the access
// seam, the cache, the server queue? Profiler meters exactly that, in
// the house zero-cost-when-disabled style:
//
//   * A fixed enum of cost centers (CostCenter) names every known hot
//     region - the sorted/random access seam, replica failover and hedge
//     waits, cache probe/fill, optimizer simulation and hill-climb
//     sweeps, candidate-heap maintenance, certificate builds, checkpoint
//     serialization, and the server's queue/drain phases.
//   * NC_PROFILE_SCOPE(profiler, kCenter) opens a scoped timer; scopes
//     nest, so the report is a call tree over cost centers (self vs
//     total time), not just a flat tally. With a null Profiler* the
//     scope is one pointer test - nothing is constructed, nothing
//     allocates, and the differential tests prove answers are
//     bit-identical profiler on vs off.
//   * Allocation accounting rides along: release builds replace the
//     global operator new with a thread-local counting hook (see
//     profiler.cc), so every scope also reports how many heap
//     allocations and bytes it caused. Sanitizer builds keep the
//     sanitizer's own allocator (AllocAccountingActive() says which).
//
// A Profiler is thread-confined like QueryTracer: one per query (or per
// server worker), no locks on the hot path. Report() snapshots the tree
// into a ProfileReport (tree + flat views, locale-safe text, JSON);
// RecordProfileMetrics mirrors the flat view into nc_profile_* counters;
// TelemetryHub::ObserveProfile rolls per-center self-times up across
// queries as P-squared quantile sketches; attaching a QueryTracer makes
// every closed scope a kProfile event that renders as a nested slice in
// the Chrome trace exporter.

#ifndef NC_OBS_PROFILER_H_
#define NC_OBS_PROFILER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace nc::obs {

class MetricsRegistry;
class QueryTracer;

// The fixed cost-center vocabulary. Append-only: the hub's persisted
// profile sketches and the bench_diff envelopes key on these indices.
enum class CostCenter : uint8_t {
  kSortedAccess = 0,      // SourceSet::TrySortedAccess end to end.
  kRandomAccess,          // SourceSet::TryRandomAccess end to end.
  kReplicaFailover,       // Re-routed attempts after a replica failed.
  kHedgeWait,             // Issuing + billing the hedged duplicate.
  kCacheProbe,            // Cross-query cache lookup (hit or miss).
  kCacheFill,             // Publishing a fetched result to the cache.
  kOptimizerSimulate,     // SimulationCostEstimator sample runs.
  kHillClimbStep,         // One HClimb neighbor sweep.
  kCandidateHeap,         // Bound-heap PopTopK / Reinsert per iteration.
  kCertificateBuild,      // AnytimeCertificate construction.
  kCheckpointSerialize,   // Engine checkpoint serialization at drain.
  kServerQueue,           // Admission-to-worker queue wait (external).
  kServerDrain,           // Drain hook: checkpoint + budget clamp.
};

inline constexpr size_t kNumCostCenters = 13;

// Stable snake_case name ("sorted_access", ...); metric label, JSON key,
// tracer event name, and hub record token all use it.
const char* CostCenterName(CostCenter center);

// --- Allocation accounting -------------------------------------------

// True when the counting operator-new hook is linked in (release and
// debug builds); false under sanitizers, whose allocators must stay in
// charge. Reports carry the flag so consumers never misread zeros.
bool AllocAccountingActive();

// This thread's cumulative allocation count / bytes since thread start;
// both 0 when accounting is inactive. Monotonic - scopes snapshot and
// diff them.
uint64_t ThreadAllocCount();
uint64_t ThreadAllocBytes();

// --- The per-query report --------------------------------------------

struct ProfileReport {
  // One row per (path, center) tree node, preorder; depth 0 = root.
  struct TreeRow {
    CostCenter center = CostCenter::kSortedAccess;
    uint32_t depth = 0;
    uint64_t count = 0;
    uint64_t total_ns = 0;  // Wall time inside the scope, children included.
    uint64_t self_ns = 0;   // total_ns minus time in child scopes.
    uint64_t alloc_count = 0;
    uint64_t alloc_bytes = 0;
  };
  // One row per cost center that fired, summed over every tree position,
  // in enum order.
  struct FlatRow {
    CostCenter center = CostCenter::kSortedAccess;
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t self_ns = 0;
    uint64_t alloc_count = 0;
    uint64_t alloc_bytes = 0;
  };

  std::vector<TreeRow> tree;
  std::vector<FlatRow> flat;
  bool alloc_accounting = false;

  // Sum of root-level total_ns: everything metered, counted once.
  uint64_t TotalNs() const;
  // Sum of self_ns over the flat view (== TotalNs when every scope nests).
  uint64_t SelfNs() const;
  bool empty() const { return tree.empty(); }

  // Locale-safe fixed-width table (integers only - no decimal points to
  // corrupt under comma-decimal locales).
  std::string ToText() const;
  // {"alloc_accounting":...,"total_ns":...,"flat":[...],"tree":[...]}
  std::string ToJson() const;
};

// Mirrors the flat view into the registry: nc_profile_self_ns_total,
// nc_profile_total_ns_total, nc_profile_count_total, and (when
// accounting is active) nc_profile_alloc_total / nc_profile_alloc_bytes_
// total, all labeled {center="..."}.
void RecordProfileMetrics(const ProfileReport& report,
                          MetricsRegistry* metrics);

// --- The profiler ----------------------------------------------------

class Profiler {
 public:
  // Constructed enabled, like QueryTracer: attaching one expresses
  // intent to profile.
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }

  // Drops the recorded tree (any open scopes must have closed).
  void Clear();

  bool empty() const { return nodes_.empty(); }

  // Opens / closes one scope. Prefer NC_PROFILE_SCOPE; Begin/End exist
  // for non-lexical extents. End closes the innermost open scope.
  void Begin(CostCenter center);
  void End();

  // Adds a sample measured outside any scope (e.g. the server's
  // admission-queue wait, timed by the admission thread) as a
  // root-level node.
  void AddExternal(CostCenter center, uint64_t duration_ns);

  // Snapshots the tree. Open scopes are not included.
  ProfileReport Report() const;

  // Mirrors every closed scope as a kProfile trace event (nested slices
  // in the Chrome exporter). The tracer must outlive the profiler or be
  // detached first; nullptr detaches.
  void set_tracer(QueryTracer* tracer) { tracer_ = tracer; }

  // Replaces the monotonic nanosecond clock for deterministic tests.
  void set_clock_for_testing(std::function<uint64_t()> clock);

  // Open-scope depth; 0 when balanced. Exposed for tests and asserts.
  size_t open_scopes() const { return stack_.size(); }

 private:
  struct Node {
    CostCenter center = CostCenter::kSortedAccess;
    int32_t parent = -1;  // Index into nodes_; -1 = root level.
    uint32_t depth = 0;
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t child_ns = 0;  // Time attributed to direct children.
    uint64_t alloc_count = 0;
    uint64_t alloc_bytes = 0;
    uint64_t child_alloc_count = 0;
    uint64_t child_alloc_bytes = 0;
    std::vector<int32_t> children;  // First-seen order.
  };
  struct Frame {
    int32_t node = -1;
    uint64_t start_ns = 0;
    uint64_t start_alloc_count = 0;
    uint64_t start_alloc_bytes = 0;
  };

  uint64_t NowNs() const;
  // Finds or creates the child of `parent` (-1 = root) for `center`.
  int32_t Intern(int32_t parent, CostCenter center);
  void AppendSubtree(int32_t node, ProfileReport* report) const;

  bool enabled_ = true;
  std::vector<Node> nodes_;
  std::vector<int32_t> roots_;  // Root-level node indices, first-seen.
  std::vector<Frame> stack_;
  QueryTracer* tracer_ = nullptr;
  std::function<uint64_t()> clock_;
};

// The hot-path guard, mirroring ShouldTrace: one pointer/bool test.
inline bool ShouldProfile(const Profiler* profiler) {
  return profiler != nullptr && profiler->enabled();
}

// RAII scope. With a null or disabled profiler the constructor is the
// ShouldProfile test and nothing else.
class ProfileScope {
 public:
  ProfileScope(Profiler* profiler, CostCenter center) {
    if (ShouldProfile(profiler)) {
      profiler_ = profiler;
      profiler_->Begin(center);
    }
  }
  ~ProfileScope() {
    if (profiler_ != nullptr) profiler_->End();
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_ = nullptr;
};

#define NC_PROFILE_CONCAT_INNER(a, b) a##b
#define NC_PROFILE_CONCAT(a, b) NC_PROFILE_CONCAT_INNER(a, b)
// Times the rest of the enclosing block under `center` (an unqualified
// CostCenter enumerator). `profiler` may be null.
#define NC_PROFILE_SCOPE(profiler, center)                            \
  ::nc::obs::ProfileScope NC_PROFILE_CONCAT(nc_profile_scope_,        \
                                            __LINE__)(               \
      (profiler), ::nc::obs::CostCenter::center)

}  // namespace nc::obs

#endif  // NC_OBS_PROFILER_H_
