// RunReport: the one-stop summary of a finished query execution.
//
// Where the tracer answers "what happened, in order", the report answers
// "where did the cost go": the Eq. 1 split ns_i*cs_i + nr_i*cr_i per
// predicate and access type (priced access-by-access, so retries and
// mid-run cost swaps are included), the bound-convergence timeline of
// the ceiling threshold theta versus the k-th bound per unit cost, the
// fault/retry tallies, and wall-clock time. It renders as aligned text
// (the replacement for the ad-hoc printing that used to live in
// explain.cc and the bench harness) and as JSON (the machine-readable
// form every bench binary emits).
//
// Invariant: the per-predicate cost cells sum to total_cost exactly -
// both come from the same per-access accounting in SourceSet - so the
// report *is* the Eq. 1 cross-check (asserted in run_report_test.cc).

#ifndef NC_OBS_RUN_REPORT_H_
#define NC_OBS_RUN_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "access/source.h"
#include "core/estimator.h"
#include "obs/profiler.h"
#include "obs/tracer.h"

namespace nc::obs {

// One predicate's row of the Eq. 1 breakdown.
struct PredicateCost {
  std::string name;
  size_t sorted_accesses = 0;
  size_t random_accesses = 0;
  double sorted_cost = 0.0;
  double random_cost = 0.0;
  size_t retried_attempts = 0;
  bool source_down = false;
};

// One replica's row of the fleet breakdown (fleet runs only): its share
// of the Eq. 1 cost and the completion latencies of the accesses it won.
struct ReplicaCost {
  std::string predicate;
  std::string replica;
  size_t served = 0;
  size_t failovers = 0;      // Accesses that failed over away from it.
  size_t breaker_trips = 0;
  size_t hedges_issued = 0;  // Hedge requests issued to it.
  size_t hedge_wins = 0;
  double cost = 0.0;
  double mean_latency = 0.0;
  double max_latency = 0.0;
  bool dead = false;
};

// One predicate's predicted-vs-actual row of the cost audit: the
// optimizer's full-scale prediction (CostPrediction, Section 7.3's
// simulation estimate scaled by n / s) against the metered AccessStats
// of the real run. Counts are fractional on the predicted side.
struct PredicateAudit {
  std::string name;
  double predicted_sorted = 0.0;
  double actual_sorted = 0.0;
  double predicted_random = 0.0;
  double actual_random = 0.0;
  double predicted_cost = 0.0;
  double actual_cost = 0.0;
  // actual - predicted, and the symmetric relative error
  // |actual - predicted| / max(actual, predicted) in [0, 1] (0 when both
  // sides are 0), which stays finite when either side vanishes.
  double cost_error = 0.0;
  double cost_relative_error = 0.0;
};

// The audit of Eq. 1's prediction quality for one finished run. Only
// meaningful when the run executed the predicted plan on the predicted
// scenario (the planner's own flow guarantees this; ad-hoc runs may
// diff against any prediction they like).
struct CostAudit {
  bool valid = false;
  std::vector<PredicateAudit> predicates;
  double predicted_total = 0.0;
  double actual_total = 0.0;
  double total_error = 0.0;           // actual - predicted
  double total_relative_error = 0.0;  // symmetric, in [0, 1]
};

// Diffs `prediction` against the metered run in `sources`. Invalid when
// the prediction is invalid or its arity does not match.
CostAudit BuildCostAudit(const CostPrediction& prediction,
                         const SourceSet& sources);

// One sample of the bound-convergence timeline, taken per engine
// iteration: how the ceiling closes in on the k-th bound as cost is
// spent. `threshold` is monotonically non-increasing over a run.
struct ConvergencePoint {
  double cost = 0.0;       // Accrued cost when the sample was taken.
  double threshold = 0.0;  // Ceiling theta = F(last-seen bounds).
  double kth_bound = 0.0;  // Bound of the current k-th entry.
};

struct RunReport {
  std::string algorithm;  // "NC", "TA", ... (empty when unknown).
  size_t k = 0;

  // Eq. 1 totals and per-predicate split.
  double total_cost = 0.0;
  size_t total_sorted = 0;
  size_t total_random = 0;
  size_t duplicate_random = 0;
  std::vector<PredicateCost> predicates;

  // Fault layer tallies (all zero in fault-free runs).
  size_t retried_attempts = 0;
  size_t transient_failures = 0;
  size_t timeout_failures = 0;
  size_t abandoned_accesses = 0;
  size_t source_deaths = 0;

  // Resilience layer: circuit-breaker trips / unbilled fast-failures and
  // accesses refused by a budget, deadline, or quota bar.
  size_t breaker_trips = 0;
  size_t breaker_fast_failures = 0;
  size_t budget_refusals = 0;

  // Cross-query cache (all zero without an AccessCache attached):
  // accesses served from the shared cache instead of the source, and the
  // hit cost they accrued. The gap between this query's total_cost and
  // what the same accesses would have cost uncached is the sharing win
  // the CostAudit's predicted-vs-actual error also surfaces.
  size_t cache_sorted_hits = 0;
  size_t cache_random_hits = 0;
  size_t cache_inflight_merges = 0;
  double cache_hit_cost = 0.0;

  // Replica fleet (empty / zero without one attached).
  size_t replica_failovers = 0;
  size_t hedges_issued = 0;
  size_t hedge_wins = 0;
  std::vector<ReplicaCost> replicas;

  // Certified anytime answer, from the run's last kCertificate trace
  // event (absent without a tracer or when the run completed normally).
  bool certified = false;
  std::string termination_reason;  // "CostBudget", "Deadline", ...
  double certified_epsilon = 0.0;  // May be +inf (rendered null in JSON).

  // Predicted-vs-actual cost audit (valid only when BuildRunReport was
  // handed the plan's CostPrediction).
  CostAudit cost_audit;

  // From tracer iteration events; empty without a tracer.
  std::vector<ConvergencePoint> convergence;

  // Per-cost-center time/allocation breakdown (obs/profiler.h); empty
  // without a profiler.
  ProfileReport profile;

  double wall_ms = 0.0;

  // Aligned multi-line text rendering.
  std::string ToText() const;
  // Single JSON object (no trailing newline).
  std::string ToJson() const;
};

// Snapshots `sources` (and, when given, the tracer's iteration events)
// into a report. Call after the run, before Reset(). With a
// `prediction` (the executed plan's CostPrediction), the report also
// carries the cost audit. With a `profiler` (the one attached for the
// run), the report carries its per-cost-center breakdown.
RunReport BuildRunReport(const SourceSet& sources,
                         const QueryTracer* tracer = nullptr,
                         std::string algorithm = "", size_t k = 0,
                         const CostPrediction* prediction = nullptr,
                         const Profiler* profiler = nullptr);

class MetricsRegistry;

// Flushes one finished run's AccessStats into `registry` under the shared
// metric names every algorithm uses, so NC and baseline runs compare
// series-by-series:
//   nc_accesses_total{algorithm,predicate,type}
//   nc_access_cost_total{algorithm,predicate,type}
//   nc_access_retries_total{algorithm,predicate}
//   nc_access_faults_total{algorithm,kind}
//   nc_duplicate_random_total{algorithm}
//   nc_breaker_trips_total{algorithm}
//   nc_breaker_fast_failures_total{algorithm}
//   nc_budget_refusals_total{algorithm}
// With a replica fleet attached, additionally:
//   nc_replica_accesses_total{algorithm,predicate,replica}
//   nc_replica_cost_total{algorithm,predicate,replica}
//   nc_replica_failovers_total{algorithm,predicate,replica}
//   nc_hedges_issued_total{algorithm} / nc_hedge_wins_total{algorithm}
//   nc_hedge_win_rate{algorithm}            (histogram, per predicate)
//   nc_replica_completion_latency{algorithm} (histogram, cost units)
// Call after the run, before Reset().
void RecordSourceMetrics(MetricsRegistry* registry,
                         const std::string& algorithm,
                         const SourceSet& sources);

// Flushes a cost audit into `registry` (no-op when the audit is
// invalid):
//   nc_cost_predicted_total{algorithm,predicate}
//   nc_cost_actual_total{algorithm,predicate}
//   nc_cost_audit_relative_error{algorithm}  (histogram; one observation
//                                             per predicate + the total)
void RecordCostAuditMetrics(MetricsRegistry* registry,
                            const std::string& algorithm,
                            const CostAudit& audit);

}  // namespace nc::obs

#endif  // NC_OBS_RUN_REPORT_H_
