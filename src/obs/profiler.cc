#include "obs/profiler.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/check.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

// --- Allocation accounting hook ---------------------------------------
//
// Release and debug builds replace the global operator new/delete with a
// malloc-backed pair that bumps thread-local counters first, so every
// profiled scope can report the allocations it caused - the cheapest
// possible hook (two relaxed thread-local adds per allocation, nothing
// on free). Sanitizer builds (NC_SANITIZE_BUILD) keep the sanitizer's
// own allocator: ASan's quarantine/poisoning and TSan's interception
// must stay in charge, so there the counters read 0 and
// AllocAccountingActive() says so.

#if !defined(NC_SANITIZE_BUILD)

#include <cstdlib>
#include <new>

namespace nc::obs::profiler_internal {
thread_local uint64_t tl_alloc_count = 0;
thread_local uint64_t tl_alloc_bytes = 0;
}  // namespace nc::obs::profiler_internal

namespace {

inline void CountAlloc(std::size_t size) {
  ++nc::obs::profiler_internal::tl_alloc_count;
  nc::obs::profiler_internal::tl_alloc_bytes += size;
}

void* AllocOrHandler(std::size_t size) {
  if (size == 0) size = 1;  // Distinct-pointer guarantee.
  void* p = std::malloc(size);
  while (p == nullptr) {
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
    p = std::malloc(size);
  }
  return p;
}

void* AlignedAllocOrHandler(std::size_t size, std::size_t alignment) {
  // aligned_alloc wants size a multiple of alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
  while (p == nullptr) {
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
    p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  CountAlloc(size);
  void* p = AllocOrHandler(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  CountAlloc(size);
  void* p = AllocOrHandler(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  CountAlloc(size);
  return AllocOrHandler(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  CountAlloc(size);
  return AllocOrHandler(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  CountAlloc(size);
  void* p = AlignedAllocOrHandler(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  CountAlloc(size);
  void* p = AlignedAllocOrHandler(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  CountAlloc(size);
  return AlignedAllocOrHandler(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  CountAlloc(size);
  return AlignedAllocOrHandler(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // !defined(NC_SANITIZE_BUILD)

namespace nc::obs {

bool AllocAccountingActive() {
#if defined(NC_SANITIZE_BUILD)
  return false;
#else
  return true;
#endif
}

uint64_t ThreadAllocCount() {
#if defined(NC_SANITIZE_BUILD)
  return 0;
#else
  return profiler_internal::tl_alloc_count;
#endif
}

uint64_t ThreadAllocBytes() {
#if defined(NC_SANITIZE_BUILD)
  return 0;
#else
  return profiler_internal::tl_alloc_bytes;
#endif
}

const char* CostCenterName(CostCenter center) {
  switch (center) {
    case CostCenter::kSortedAccess:
      return "sorted_access";
    case CostCenter::kRandomAccess:
      return "random_access";
    case CostCenter::kReplicaFailover:
      return "replica_failover";
    case CostCenter::kHedgeWait:
      return "hedge_wait";
    case CostCenter::kCacheProbe:
      return "cache_probe";
    case CostCenter::kCacheFill:
      return "cache_fill";
    case CostCenter::kOptimizerSimulate:
      return "optimizer_simulate";
    case CostCenter::kHillClimbStep:
      return "hill_climb_step";
    case CostCenter::kCandidateHeap:
      return "candidate_heap";
    case CostCenter::kCertificateBuild:
      return "certificate_build";
    case CostCenter::kCheckpointSerialize:
      return "checkpoint_serialize";
    case CostCenter::kServerQueue:
      return "server_queue";
    case CostCenter::kServerDrain:
      return "server_drain";
  }
  return "unknown";
}

// --- ProfileReport -----------------------------------------------------

uint64_t ProfileReport::TotalNs() const {
  uint64_t total = 0;
  for (const TreeRow& row : tree) {
    if (row.depth == 0) total += row.total_ns;
  }
  return total;
}

uint64_t ProfileReport::SelfNs() const {
  uint64_t total = 0;
  for (const FlatRow& row : flat) total += row.self_ns;
  return total;
}

namespace {

// Locale-safe row formatting: integer columns only, so comma-decimal
// locales cannot corrupt the dump.
void AppendRow(std::string* out, const std::string& label, uint64_t count,
               uint64_t total_ns, uint64_t self_ns, uint64_t alloc_count,
               uint64_t alloc_bytes) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "  %-28s %8llu %14llu %14llu %10llu %12llu\n", label.c_str(),
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(total_ns),
                static_cast<unsigned long long>(self_ns),
                static_cast<unsigned long long>(alloc_count),
                static_cast<unsigned long long>(alloc_bytes));
  out->append(buffer);
}

}  // namespace

std::string ProfileReport::ToText() const {
  std::string out = "profile";
  char header[160];
  std::snprintf(header, sizeof(header),
                " (total %llu ns, alloc accounting %s)\n",
                static_cast<unsigned long long>(TotalNs()),
                alloc_accounting ? "on" : "off");
  out += header;
  std::snprintf(header, sizeof(header), "  %-28s %8s %14s %14s %10s %12s\n",
                "center", "count", "total_ns", "self_ns", "allocs", "bytes");
  out += header;
  for (const FlatRow& row : flat) {
    AppendRow(&out, CostCenterName(row.center), row.count, row.total_ns,
              row.self_ns, row.alloc_count, row.alloc_bytes);
  }
  if (!tree.empty()) {
    out += "  tree:\n";
    for (const TreeRow& row : tree) {
      std::string label(2 * row.depth, ' ');
      label += CostCenterName(row.center);
      AppendRow(&out, label, row.count, row.total_ns, row.self_ns,
                row.alloc_count, row.alloc_bytes);
    }
  }
  return out;
}

std::string ProfileReport::ToJson() const {
  std::ostringstream os;
  JsonWriter w(&os);
  w.BeginObject();
  w.Key("alloc_accounting").Bool(alloc_accounting);
  w.Key("total_ns").UInt(TotalNs());
  w.Key("self_ns").UInt(SelfNs());
  w.Key("flat").BeginArray();
  for (const FlatRow& row : flat) {
    w.BeginObject();
    w.Key("center").String(CostCenterName(row.center));
    w.Key("count").UInt(row.count);
    w.Key("total_ns").UInt(row.total_ns);
    w.Key("self_ns").UInt(row.self_ns);
    w.Key("alloc_count").UInt(row.alloc_count);
    w.Key("alloc_bytes").UInt(row.alloc_bytes);
    w.EndObject();
  }
  w.EndArray();
  w.Key("tree").BeginArray();
  for (const TreeRow& row : tree) {
    w.BeginObject();
    w.Key("center").String(CostCenterName(row.center));
    w.Key("depth").UInt(row.depth);
    w.Key("count").UInt(row.count);
    w.Key("total_ns").UInt(row.total_ns);
    w.Key("self_ns").UInt(row.self_ns);
    w.Key("alloc_count").UInt(row.alloc_count);
    w.Key("alloc_bytes").UInt(row.alloc_bytes);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return os.str();
}

void RecordProfileMetrics(const ProfileReport& report,
                          MetricsRegistry* metrics) {
  NC_CHECK(metrics != nullptr);
  for (const ProfileReport::FlatRow& row : report.flat) {
    const LabelSet labels = {{"center", CostCenterName(row.center)}};
    metrics->counter("nc_profile_count_total", labels)
        .Increment(static_cast<double>(row.count));
    metrics->counter("nc_profile_total_ns_total", labels)
        .Increment(static_cast<double>(row.total_ns));
    metrics->counter("nc_profile_self_ns_total", labels)
        .Increment(static_cast<double>(row.self_ns));
    if (report.alloc_accounting) {
      metrics->counter("nc_profile_alloc_total", labels)
          .Increment(static_cast<double>(row.alloc_count));
      metrics->counter("nc_profile_alloc_bytes_total", labels)
          .Increment(static_cast<double>(row.alloc_bytes));
    }
  }
}

// --- Profiler ----------------------------------------------------------

uint64_t Profiler::NowNs() const {
  if (clock_) return clock_();
  return MonotonicTimeNs();
}

void Profiler::set_clock_for_testing(std::function<uint64_t()> clock) {
  clock_ = std::move(clock);
}

void Profiler::Clear() {
  NC_CHECK(stack_.empty());  // Clearing under an open scope loses frames.
  nodes_.clear();
  roots_.clear();
}

int32_t Profiler::Intern(int32_t parent, CostCenter center) {
  const std::vector<int32_t>& siblings =
      parent < 0 ? roots_ : nodes_[static_cast<size_t>(parent)].children;
  for (const int32_t child : siblings) {
    if (nodes_[static_cast<size_t>(child)].center == center) return child;
  }
  const int32_t index = static_cast<int32_t>(nodes_.size());
  Node node;
  node.center = center;
  node.parent = parent;
  node.depth =
      parent < 0 ? 0 : nodes_[static_cast<size_t>(parent)].depth + 1;
  nodes_.push_back(std::move(node));
  if (parent < 0) {
    roots_.push_back(index);
  } else {
    nodes_[static_cast<size_t>(parent)].children.push_back(index);
  }
  return index;
}

void Profiler::Begin(CostCenter center) {
  if (!enabled_) return;
  const int32_t parent = stack_.empty() ? -1 : stack_.back().node;
  const int32_t node = Intern(parent, center);
  stack_.push_back(Frame{node, 0, 0, 0});
  Frame& frame = stack_.back();
  // Snapshot the counters last so the profiler's own bookkeeping
  // allocations (node/frame growth above) stay out of the scope's tally.
  frame.start_alloc_count = ThreadAllocCount();
  frame.start_alloc_bytes = ThreadAllocBytes();
  frame.start_ns = NowNs();
}

void Profiler::End() {
  if (!enabled_ && stack_.empty()) return;
  NC_CHECK(!stack_.empty());
  // Read the clocks before any bookkeeping below allocates.
  const uint64_t now = NowNs();
  const uint64_t alloc_count = ThreadAllocCount();
  const uint64_t alloc_bytes = ThreadAllocBytes();
  const Frame frame = stack_.back();
  stack_.pop_back();
  const uint64_t duration = now >= frame.start_ns ? now - frame.start_ns : 0;
  const uint64_t d_count = alloc_count - frame.start_alloc_count;
  const uint64_t d_bytes = alloc_bytes - frame.start_alloc_bytes;
  Node& node = nodes_[static_cast<size_t>(frame.node)];
  ++node.count;
  node.total_ns += duration;
  node.alloc_count += d_count;
  node.alloc_bytes += d_bytes;
  if (node.parent >= 0) {
    Node& parent = nodes_[static_cast<size_t>(node.parent)];
    parent.child_ns += duration;
    parent.child_alloc_count += d_count;
    parent.child_alloc_bytes += d_bytes;
  }
  if (ShouldTrace(tracer_)) {
    // Convert this profiler's monotonic instants onto the tracer's
    // wall_us clock so the kProfile slices align with spans and phases.
    uint64_t begin_us;
    uint64_t end_us;
    if (clock_) {
      begin_us = frame.start_ns / 1000;
      end_us = now / 1000;
    } else {
      const uint64_t anchor = tracer_->epoch_ns();
      begin_us =
          frame.start_ns > anchor ? (frame.start_ns - anchor) / 1000 : 0;
      end_us = now > anchor ? (now - anchor) / 1000 : 0;
    }
    if (end_us < begin_us) end_us = begin_us;
    tracer_->RecordProfile(CostCenterName(node.center), begin_us, end_us);
  }
}

void Profiler::AddExternal(CostCenter center, uint64_t duration_ns) {
  if (!enabled_) return;
  const int32_t index = Intern(-1, center);
  Node& node = nodes_[static_cast<size_t>(index)];
  ++node.count;
  node.total_ns += duration_ns;
}

void Profiler::AppendSubtree(int32_t index, ProfileReport* report) const {
  const Node& node = nodes_[static_cast<size_t>(index)];
  ProfileReport::TreeRow row;
  row.center = node.center;
  row.depth = node.depth;
  row.count = node.count;
  row.total_ns = node.total_ns;
  row.self_ns =
      node.total_ns >= node.child_ns ? node.total_ns - node.child_ns : 0;
  row.alloc_count = node.alloc_count >= node.child_alloc_count
                        ? node.alloc_count - node.child_alloc_count
                        : 0;
  row.alloc_bytes = node.alloc_bytes >= node.child_alloc_bytes
                        ? node.alloc_bytes - node.child_alloc_bytes
                        : 0;
  report->tree.push_back(row);
  for (const int32_t child : node.children) {
    AppendSubtree(child, report);
  }
}

ProfileReport Profiler::Report() const {
  ProfileReport report;
  report.alloc_accounting = AllocAccountingActive();
  for (const int32_t root : roots_) {
    AppendSubtree(root, &report);
  }
  // Flat view: sum the tree rows per center (self allocations, so the
  // flat totals never double-count nested same-center scopes' bytes).
  uint64_t count[kNumCostCenters] = {};
  uint64_t total[kNumCostCenters] = {};
  uint64_t self[kNumCostCenters] = {};
  uint64_t allocs[kNumCostCenters] = {};
  uint64_t bytes[kNumCostCenters] = {};
  bool seen[kNumCostCenters] = {};
  for (const ProfileReport::TreeRow& row : report.tree) {
    const size_t i = static_cast<size_t>(row.center);
    seen[i] = true;
    count[i] += row.count;
    total[i] += row.total_ns;
    self[i] += row.self_ns;
    allocs[i] += row.alloc_count;
    bytes[i] += row.alloc_bytes;
  }
  for (size_t i = 0; i < kNumCostCenters; ++i) {
    if (!seen[i]) continue;
    ProfileReport::FlatRow row;
    row.center = static_cast<CostCenter>(i);
    row.count = count[i];
    row.total_ns = total[i];
    row.self_ns = self[i];
    row.alloc_count = allocs[i];
    row.alloc_bytes = bytes[i];
    report.flat.push_back(row);
  }
  return report;
}

}  // namespace nc::obs
