#include "access/source.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "cache/cache.h"
#include "common/check.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace nc {

size_t AccessStats::TotalSorted() const {
  size_t total = 0;
  for (size_t c : sorted_count) total += c;
  return total;
}

size_t AccessStats::TotalRandom() const {
  size_t total = 0;
  for (size_t c : random_count) total += c;
  return total;
}

size_t AccessStats::TotalRetried() const {
  size_t total = 0;
  for (size_t c : retried_attempts) total += c;
  return total;
}

size_t AccessStats::TotalBreakerTrips() const {
  size_t total = 0;
  for (size_t c : breaker_trips) total += c;
  return total;
}

double AccessStats::TotalCost(const CostModel& model) const {
  NC_CHECK(model.num_predicates() == sorted_count.size());
  double total = 0.0;
  for (size_t i = 0; i < sorted_count.size(); ++i) {
    if (sorted_count[i] > 0) {
      // Pages: ns entries consume ceil(ns / b) charged requests.
      const size_t pages =
          (sorted_count[i] + model.page_size(static_cast<PredicateId>(i)) -
           1) /
          model.page_size(static_cast<PredicateId>(i));
      total += static_cast<double>(pages) * model.sorted_cost[i];
    }
    if (random_count[i] > 0) {
      total += static_cast<double>(random_count[i]) * model.random_cost[i];
    }
  }
  return total;
}

SourceSet::SourceSet(const Dataset* data, CostModel cost)
    : SourceSet(nullptr, std::make_unique<DatasetScoreProvider>(data), data,
                std::move(cost)) {}

SourceSet::SourceSet(ScoreProvider* provider, CostModel cost)
    : SourceSet(provider, nullptr, nullptr, std::move(cost)) {}

SourceSet::SourceSet(ScoreProvider* provider,
                     std::unique_ptr<DatasetScoreProvider> owned,
                     const Dataset* data, CostModel cost)
    : provider_(provider != nullptr ? provider : owned.get()),
      owned_provider_(std::move(owned)),
      data_(data),
      cost_(std::move(cost)),
      initial_cost_(cost_),
      latency_rng_(0),
      retry_rng_(0) {
  NC_CHECK(provider_ != nullptr);
  NC_CHECK(cost_.Validate().ok());
  NC_CHECK(cost_.num_predicates() == provider_->num_predicates());
  NC_CHECK(provider_->num_predicates() <= 64);
  const size_t m = provider_->num_predicates();
  stats_.sorted_count.assign(m, 0);
  stats_.random_count.assign(m, 0);
  stats_.sorted_cost_accrued.assign(m, 0.0);
  stats_.random_cost_accrued.assign(m, 0.0);
  stats_.retried_attempts.assign(m, 0);
  stats_.breaker_trips.assign(m, 0);
  positions_.assign(m, 0);
  last_seen_.assign(m, kMaxScore);
  source_down_.assign(m, false);
  breaker_state_.assign(m, BreakerState{});
}

Status SourceSet::AttemptAccess(const Access& access, double unit_cost) {
  fleet_serve_ = FleetServe{};
  if (fleet_ != nullptr && fleet_->configured(access.predicate)) {
    return AttemptFleetAccess(access, unit_cost);
  }
  if (injector_ == nullptr) return Status::OK();
  const PredicateId i = access.predicate;
  // Circuit breaker: an open breaker fast-fails until its cooldown
  // elapses (nothing billed, no injector draw); after that the access
  // becomes a half-open probe with a single attempt.
  size_t attempt_cap = retry_policy_.max_attempts;
  bool probing = false;
  if (breaker_.enabled() && breaker_state_[i].open) {
    if (elapsed_time() < breaker_state_[i].open_until) {
      ++stats_.breaker_fast_failures;
      return Status::Unavailable("p" + std::to_string(i) +
                                 ": circuit breaker open");
    }
    probing = true;
    attempt_cap = 1;
  }
  std::vector<double>& cost_accrued = access.type == AccessType::kSorted
                                          ? stats_.sorted_cost_accrued
                                          : stats_.random_cost_accrued;
  for (size_t attempt = 1;; ++attempt) {
    const FaultKind fault = injector_->NextOutcome(i);
    if (fault == FaultKind::kNone) {
      if (breaker_.enabled()) {
        breaker_state_[i].consecutive_failures = 0;
        breaker_state_[i].open = false;
      }
      return Status::OK();
    }
    if (fault == FaultKind::kSourceDown) {
      if (trace_enabled_) {
        attempt_trace_.push_back(AccessAttempt{access, fault, false});
      }
      if (obs::ShouldTrace(tracer_)) {
        tracer_->RecordAttempt(access.type, i, access.object,
                               obs::AccessOutcome::kSourceDown, 0.0,
                               accrued_cost_);
      }
      MarkSourceDown(i);
      return Status::Unavailable("source for p" + std::to_string(i) +
                                 " died permanently");
    }
    // The failed request was sent and billed; a timeout also held the
    // line for the full deadline.
    const double charged = retry_policy_.retry_cost_factor * unit_cost;
    accrued_cost_ += charged;
    cost_accrued[i] += charged;
    if (fault == FaultKind::kTransient) {
      ++stats_.transient_failures;
    } else {
      ++stats_.timeout_failures;
      const double served = retry_policy_.timeout_latency_factor * unit_cost;
      last_access_penalty_ += served;
      total_penalty_ += served;
    }
    const bool giving_up = attempt >= attempt_cap;
    if (trace_enabled_) {
      attempt_trace_.push_back(AccessAttempt{access, fault, giving_up});
    }
    if (obs::ShouldTrace(tracer_)) {
      tracer_->RecordAttempt(access.type, i, access.object,
                             giving_up ? obs::AccessOutcome::kAbandoned
                             : fault == FaultKind::kTransient
                                 ? obs::AccessOutcome::kTransient
                                 : obs::AccessOutcome::kTimeout,
                             charged, accrued_cost_);
    }
    if (giving_up) {
      ++stats_.abandoned_accesses;
      if (breaker_.enabled()) {
        BreakerState& state = breaker_state_[i];
        if (probing ||
            ++state.consecutive_failures >= breaker_.failure_threshold) {
          state.open = true;
          state.open_until = elapsed_time() + breaker_.cooldown;
          state.consecutive_failures = 0;
          ++stats_.breaker_trips[i];
        }
      }
      std::string message = "p";
      message += std::to_string(i);
      message += ": ";
      message += std::to_string(attempt);
      message += " attempts exhausted";
      return Status::Unavailable(std::move(message));
    }
    ++stats_.retried_attempts[i];
    const double backoff = retry_policy_.BackoffDelay(attempt, &retry_rng_);
    last_access_penalty_ += backoff;
    total_penalty_ += backoff;
  }
}

Status SourceSet::AttemptFleetAccess(const Access& access, double unit_cost) {
  const PredicateId i = access.predicate;
  ReplicaFleet& fleet = *fleet_;
  fleet_serve_.active = true;
  fleet_serve_.request = access.type == AccessType::kRandom ||
                         positions_[i] % cost_.page_size(i) == 0;
  const std::vector<size_t> order = fleet.RouteOrder(i, elapsed_time());
  if (order.empty()) {
    // No replica can serve: all dead (the predicate was downgraded when
    // the last one died) or every breaker open and cooling. Fast-fail
    // like a plain open breaker - nothing billed, nothing drawn.
    ++stats_.breaker_fast_failures;
    return Status::Unavailable("p" + std::to_string(i) +
                               ": every replica unavailable");
  }
  for (size_t idx = 0; idx < order.size(); ++idx) {
    const size_t r = order[idx];
    ReplicaRuntime& rt = fleet.runtime(i, r);
    // A cooled-down open breaker admits exactly one half-open probe.
    const bool probing = rt.breaker_open;
    const size_t attempt_cap =
        probing ? size_t{1} : retry_policy_.max_attempts;
    const bool is_last = idx + 1 == order.size();
    bool died = false;
    Status status;
    {
      // Re-routed attempts (idx > 0) are failover work: the time the
      // fleet spends recovering from a replica that already failed.
      obs::ProfileScope failover_scope(
          idx > 0 ? profiler_ : nullptr,
          obs::CostCenter::kReplicaFailover);
      status =
          AttemptOnReplica(access, unit_cost, i, r, attempt_cap, is_last,
                           &died);
    }
    if (status.ok()) {
      rt.breaker_open = false;
      rt.breaker_consecutive = 0;
      CompleteFleetRequest(access, unit_cost, i, r, order, probing);
      return Status::OK();
    }
    // Replica-level failure: trip its breaker (a failed probe reopens
    // immediately), then fail over to the next candidate.
    if (!died && breaker_.enabled()) {
      if (probing || ++rt.breaker_consecutive >= breaker_.failure_threshold) {
        rt.breaker_open = true;
        rt.breaker_open_until = elapsed_time() + breaker_.cooldown;
        rt.breaker_consecutive = 0;
        ++rt.breaker_trips;
        ++stats_.breaker_trips[i];
      }
    }
    if (!is_last) {
      ++rt.failovers;
      ++stats_.replica_failovers;
      if (obs::ShouldTrace(tracer_)) {
        tracer_->RecordReplicaEvent("replica_failover", i,
                                    static_cast<uint32_t>(r),
                                    static_cast<uint32_t>(order[idx + 1]),
                                    accrued_cost_);
      }
    }
  }
  ++stats_.abandoned_accesses;
  if (fleet.all_dead(i)) MarkSourceDown(i);
  return Status::Unavailable("p" + std::to_string(i) +
                             ": all replicas exhausted");
}

Status SourceSet::AttemptOnReplica(const Access& access, double unit_cost,
                                   PredicateId i, size_t r, size_t attempt_cap,
                                   bool is_last_replica, bool* died) {
  *died = false;
  ReplicaFleet& fleet = *fleet_;
  ReplicaRuntime& rt = fleet.runtime(i, r);
  // Every request to this replica - retries included - is priced at its
  // own multiplier.
  const double replica_unit =
      unit_cost * fleet.config(i).replicas[r].cost_multiplier;
  std::vector<double>& cost_accrued = access.type == AccessType::kSorted
                                          ? stats_.sorted_cost_accrued
                                          : stats_.random_cost_accrued;
  for (size_t attempt = 1;; ++attempt) {
    const FaultKind fault = fleet.NextFault(i, r);
    if (fault == FaultKind::kNone) return Status::OK();
    if (fault == FaultKind::kSourceDown) {
      rt.dead = true;
      if (trace_enabled_) {
        attempt_trace_.push_back(AccessAttempt{access, fault, false});
      }
      if (obs::ShouldTrace(tracer_)) {
        tracer_->RecordAttempt(access.type, i, access.object,
                               obs::AccessOutcome::kSourceDown, 0.0,
                               accrued_cost_);
        tracer_->RecordReplicaEvent("replica_down", i,
                                    static_cast<uint32_t>(r),
                                    static_cast<uint32_t>(r), accrued_cost_);
      }
      *died = true;
      return Status::Unavailable("replica of p" + std::to_string(i) +
                                 " died permanently");
    }
    const double charged = retry_policy_.retry_cost_factor * replica_unit;
    accrued_cost_ += charged;
    cost_accrued[i] += charged;
    rt.cost_accrued += charged;
    if (fault == FaultKind::kTransient) {
      ++stats_.transient_failures;
    } else {
      ++stats_.timeout_failures;
      const double served = retry_policy_.timeout_latency_factor * replica_unit;
      last_access_penalty_ += served;
      total_penalty_ += served;
    }
    const bool giving_up = attempt >= attempt_cap;
    // The access is "abandoned" only when the last replica gives up;
    // earlier exhaustions fail over instead.
    const bool abandoning = giving_up && is_last_replica;
    if (trace_enabled_) {
      attempt_trace_.push_back(AccessAttempt{access, fault, abandoning});
    }
    if (obs::ShouldTrace(tracer_)) {
      tracer_->RecordAttempt(access.type, i, access.object,
                             abandoning ? obs::AccessOutcome::kAbandoned
                             : fault == FaultKind::kTransient
                                 ? obs::AccessOutcome::kTransient
                                 : obs::AccessOutcome::kTimeout,
                             charged, accrued_cost_);
    }
    if (giving_up) {
      return Status::Unavailable("p" + std::to_string(i) + ": " +
                                 std::to_string(attempt) +
                                 " replica attempts exhausted");
    }
    ++stats_.retried_attempts[i];
    const double backoff = retry_policy_.BackoffDelay(attempt, &retry_rng_);
    last_access_penalty_ += backoff;
    total_penalty_ += backoff;
  }
}

void SourceSet::CompleteFleetRequest(const Access& access, double unit_cost,
                                     PredicateId i, size_t routed,
                                     const std::vector<size_t>& order,
                                     bool probed) {
  ReplicaFleet& fleet = *fleet_;
  fleet_serve_.routed = routed;
  fleet_serve_.winner = routed;
  if (probed && obs::ShouldTrace(tracer_)) {
    tracer_->RecordReplicaEvent("replica_restored", i,
                                static_cast<uint32_t>(routed),
                                static_cast<uint32_t>(routed), accrued_cost_);
  }
  if (!fleet_serve_.request) {
    // Mid-page sorted entry: already fetched with its page, no new
    // request, no latency.
    ++fleet.runtime(i, routed).served;
    return;
  }
  const ReplicaSetConfig& cfg = fleet.config(i);
  const double primary_latency = fleet.DrawLatency(i, routed, unit_cost);
  if (obs::ShouldSample(hub_)) {
    hub_->ObserveReplicaService(i, routed, primary_latency);
  }
  double completion = primary_latency;
  // The hedge trigger: the configured constant or, under an adaptive
  // policy with a warm hub, the routed replica's observed service p95.
  double hedge_delay = cfg.hedge.delay;
  if (cfg.hedge.adaptive && obs::ShouldSample(hub_)) {
    const double adaptive = hub_->AdaptiveHedgeDelay(i, routed);
    if (std::isfinite(adaptive)) hedge_delay = adaptive;
  }
  if (access.type == AccessType::kSorted && cfg.hedge.enabled() && !probed &&
      hedge_delay > 0.0 && primary_latency > hedge_delay) {
    // Hedge target: the next replica in routing preference whose breaker
    // is closed (cooling and probing replicas never receive hedges).
    size_t hedge = 0;
    bool found = false;
    for (size_t cand : order) {
      if (cand == routed) continue;
      const ReplicaRuntime& cand_rt = fleet.runtime(i, cand);
      if (cand_rt.dead || cand_rt.breaker_open) continue;
      hedge = cand;
      found = true;
      break;
    }
    if (found) {
      NC_PROFILE_SCOPE(profiler_, kHedgeWait);
      fleet_serve_.hedged = true;
      ++stats_.hedges_issued;
      ReplicaRuntime& hrt = fleet.runtime(i, hedge);
      ++hrt.hedges_issued;
      // The hedge request is sent and billed in full at the hedge
      // replica's price, win or lose: the honest Eq. 1 cost of cutting
      // the tail.
      const double hedge_charge =
          unit_cost * cfg.replicas[hedge].cost_multiplier;
      accrued_cost_ += hedge_charge;
      stats_.sorted_cost_accrued[i] += hedge_charge;
      hrt.cost_accrued += hedge_charge;
      if (obs::ShouldTrace(tracer_)) {
        tracer_->RecordReplicaEvent("hedge_issued", i,
                                    static_cast<uint32_t>(routed),
                                    static_cast<uint32_t>(hedge),
                                    accrued_cost_);
      }
      // One shot, no retries: a failed hedge just loses (a drawn death
      // still kills the replica), and never touches breaker state.
      const FaultKind fault = fleet.NextFault(i, hedge);
      if (fault == FaultKind::kTransient) ++stats_.transient_failures;
      if (fault == FaultKind::kTimeout) ++stats_.timeout_failures;
      if (fault == FaultKind::kSourceDown) {
        hrt.dead = true;
        if (obs::ShouldTrace(tracer_)) {
          tracer_->RecordReplicaEvent("replica_down", i,
                                      static_cast<uint32_t>(hedge),
                                      static_cast<uint32_t>(hedge),
                                      accrued_cost_);
        }
      }
      bool won = false;
      if (fault == FaultKind::kNone) {
        const double service = fleet.DrawLatency(i, hedge, unit_cost);
        const double hedge_completion = hedge_delay + service;
        fleet.ObserveLatency(i, hedge, service);
        if (obs::ShouldSample(hub_)) {
          hub_->ObserveReplicaService(i, hedge, service);
        }
        if (hedge_completion < completion) {
          won = true;
          completion = hedge_completion;
        }
      }
      if (won) {
        fleet_serve_.hedge_won = true;
        fleet_serve_.winner = hedge;
        ++stats_.hedge_wins;
        ++hrt.hedge_wins;
      }
      if (obs::ShouldTrace(tracer_)) {
        tracer_->RecordReplicaEvent(won ? "hedge_won" : "hedge_lost", i,
                                    static_cast<uint32_t>(routed),
                                    static_cast<uint32_t>(hedge),
                                    accrued_cost_);
      }
    }
  }
  // The routed replica's own service time is signal for kLeastLatency
  // routing even when a hedge beat it.
  fleet.ObserveLatency(i, routed, primary_latency);
  fleet.RecordCompletion(i, fleet_serve_.winner, completion);
  if (obs::ShouldSample(hub_)) hub_->ObserveCompletion(i, completion);
  ++fleet.runtime(i, fleet_serve_.winner).served;
  fleet_serve_.completion_latency = completion;
}

void SourceSet::MarkSourceDown(PredicateId i) {
  // A source dies as a unit: every predicate of its attribute group loses
  // both access types. The downgrade flows through set_cost_model so the
  // removal-only capability guard re-validates it.
  CostModel downgraded = cost_;
  bool changed = false;
  for (PredicateId j = 0; j < num_predicates(); ++j) {
    if (!cost_.same_group(i, j)) continue;
    if (downgraded.has_sorted(j) || downgraded.has_random(j)) changed = true;
    downgraded.sorted_cost[j] = kImpossibleCost;
    downgraded.random_cost[j] = kImpossibleCost;
    if (!source_down_[j]) {
      source_down_[j] = true;
      ++sources_down_;
      ++stats_.source_deaths;
    }
  }
  if (changed) NC_CHECK(set_cost_model(std::move(downgraded)).ok());
  // A death invalidates the shared cache for the whole attribute group:
  // conservative (cached scores are still exact), but a dead source's
  // entries should not keep serving other queries.
  if (access_cache_ != nullptr) {
    for (PredicateId j = 0; j < num_predicates(); ++j) {
      if (cost_.same_group(i, j)) access_cache_->InvalidatePredicate(j);
    }
  }
}

std::optional<SortedHit> SourceSet::SortedAccess(PredicateId i) {
  std::optional<SortedHit> hit;
  const Status status = TrySortedAccess(i, &hit);
  NC_CHECK(status.ok());  // Fault-tolerant callers use TrySortedAccess.
  return hit;
}

Status SourceSet::TrySortedAccess(PredicateId i,
                                  std::optional<SortedHit>* out) {
  NC_CHECK(out != nullptr);
  NC_CHECK(i < num_predicates());
  NC_PROFILE_SCOPE(profiler_, kSortedAccess);
  out->reset();
  last_access_penalty_ = 0.0;
  if (!cost_.has_sorted(i)) {
    // Distinguish a degraded source from a caller bug: sorted access on a
    // predicate that never supported it is a programmer error.
    NC_CHECK(initial_cost_.has_sorted(i));
    return Status::Unavailable("sa on p" + std::to_string(i) +
                               ": source down");
  }
  if (exhausted(i)) return Status::OK();
  if (access_barred(i)) {
    // Refused before anything is billed: the cap can overshoot by at
    // most the one access that crossed it.
    ++stats_.budget_refusals;
    return Status::ResourceExhausted("sa on p" + std::to_string(i) +
                                     ": budget exhausted");
  }
  // Cross-query cache fast path: a position inside the shared stream's
  // prefix is served without touching the source; the stream head claims
  // the single-flight slot and publishes the real access below.
  bool cache_owner = false;
  uint64_t cache_ticket = 0;
  uint64_t cache_topology = 0;
  const size_t cache_pos = positions_[i];
  if (access_cache_ != nullptr) {
    cache_topology = StreamTopology(i);
    cache::CachedSortedEntry cached;
    bool merged = false;
    cache::SortedLookup lookup;
    {
      NC_PROFILE_SCOPE(profiler_, kCacheProbe);
      lookup = access_cache_->AcquireSorted(i, cache_topology, cache_pos,
                                            &cached, &merged, &cache_ticket);
    }
    if (lookup == cache::SortedLookup::kHit) {
      return ServeSortedFromCache(i, cached, merged, out);
    }
    cache_owner = lookup == cache::SortedLookup::kOwner;
  }
  const Status attempted =
      AttemptAccess(Access::Sorted(i), cost_.sorted_cost[i]);
  if (!attempted.ok()) {
    if (cache_owner) {
      access_cache_->AbortSorted(i, cache_topology, cache_pos, cache_ticket);
    }
    return attempted;
  }
  ++stats_.sorted_count[i];
  // With a page model, the charge lands on the first entry of each page
  // (one request fetches the whole page). A replica fleet prices the
  // request at the serving replica's multiplier.
  const double unit_mult =
      fleet_serve_.active
          ? fleet_->config(i).replicas[fleet_serve_.routed].cost_multiplier
          : 1.0;
  double charged = 0.0;
  if (positions_[i] % cost_.page_size(i) == 0) {
    charged = cost_.sorted_cost[i] * unit_mult;
    accrued_cost_ += charged;
    stats_.sorted_cost_accrued[i] += charged;
  }
  if (fleet_serve_.active) {
    fleet_->runtime(i, fleet_serve_.routed).cost_accrued += charged;
    if (fleet_serve_.request) {
      // Any completion latency beyond the charge is extra wall-clock
      // wait: it lands on the deadline clock, never on the cost cap.
      const double wait =
          std::max(0.0, fleet_serve_.completion_latency - charged);
      if (wait > 0.0) {
        last_access_penalty_ += wait;
        total_penalty_ += wait;
      }
    }
  }
  if (trace_enabled_) {
    trace_.push_back(Access::Sorted(i));
    attempt_trace_.push_back(
        AccessAttempt{Access::Sorted(i), FaultKind::kNone, false});
  }
  if (obs::ShouldTrace(tracer_)) {
    tracer_->RecordAccess(AccessType::kSorted, i, 0, charged, accrued_cost_);
  }
  if (obs::ShouldSample(hub_)) {
    hub_->ObserveAccessCost(i, AccessType::kSorted, charged);
  }
  const SortedEntry entry = provider_->SortedEntryAt(i, positions_[i]);
  ++positions_[i];
  SortedHit hit;
  hit.object = entry.object;
  hit.score = entry.score;
  // A multi-attribute source row carries the whole group.
  if (!cost_.attribute_groups.empty()) {
    for (PredicateId j = 0; j < num_predicates(); ++j) {
      if (j != i && cost_.same_group(i, j)) {
        hit.bundled.emplace_back(j, provider_->ScoreOf(j, hit.object));
      }
    }
  }
  if (cache_owner) {
    NC_PROFILE_SCOPE(profiler_, kCacheFill);
    cache::CachedSortedEntry published;
    published.object = hit.object;
    published.score = hit.score;
    published.bundled = hit.bundled;
    access_cache_->PublishSorted(i, cache_topology, cache_pos, cache_ticket,
                                 std::move(published));
  }
  // Side effect: every unseen object on this list is now bounded by the
  // returned score; an exhausted list leaves no unseen objects, so the
  // bound collapses to 0.
  last_seen_[i] = exhausted(i) ? kMinScore : hit.score;
  *out = std::move(hit);
  return Status::OK();
}

Score SourceSet::RandomAccess(PredicateId i, ObjectId u) {
  Score score = 0.0;
  const Status status = TryRandomAccess(i, u, &score);
  NC_CHECK(status.ok());  // Fault-tolerant callers use TryRandomAccess.
  return score;
}

Status SourceSet::TryRandomAccess(PredicateId i, ObjectId u, Score* out) {
  NC_CHECK(out != nullptr);
  NC_CHECK(i < num_predicates());
  NC_CHECK(u < num_objects());
  NC_PROFILE_SCOPE(profiler_, kRandomAccess);
  last_access_penalty_ = 0.0;
  if (!cost_.has_random(i)) {
    NC_CHECK(initial_cost_.has_random(i));
    return Status::Unavailable("ra on p" + std::to_string(i) +
                               ": source down");
  }
  if (access_barred(i)) {
    ++stats_.budget_refusals;
    return Status::ResourceExhausted("ra on p" + std::to_string(i) +
                                     ": budget exhausted");
  }
  // Cross-query cache fast path: a cached (predicate, object) score is
  // served without touching the source; a miss claims the single-flight
  // slot so concurrent duplicates issue one underlying access.
  bool cache_owner = false;
  uint64_t cache_ticket = 0;
  if (access_cache_ != nullptr) {
    Score cached = 0.0;
    bool merged = false;
    cache::RandomLookup lookup;
    {
      NC_PROFILE_SCOPE(profiler_, kCacheProbe);
      lookup =
          access_cache_->AcquireRandom(i, u, &cached, &merged, &cache_ticket);
    }
    if (lookup == cache::RandomLookup::kHit) {
      return ServeRandomFromCache(i, u, cached, merged, out);
    }
    cache_owner = true;
  }
  const Status attempted =
      AttemptAccess(Access::Random(i, u), cost_.random_cost[i]);
  if (!attempted.ok()) {
    if (cache_owner) access_cache_->AbortRandom(i, u, cache_ticket);
    return attempted;
  }
  ++stats_.random_count[i];
  const double ra_charged =
      cost_.random_cost[i] *
      (fleet_serve_.active
           ? fleet_->config(i).replicas[fleet_serve_.routed].cost_multiplier
           : 1.0);
  accrued_cost_ += ra_charged;
  stats_.random_cost_accrued[i] += ra_charged;
  if (fleet_serve_.active) {
    fleet_->runtime(i, fleet_serve_.routed).cost_accrued += ra_charged;
    const double wait =
        std::max(0.0, fleet_serve_.completion_latency - ra_charged);
    if (wait > 0.0) {
      last_access_penalty_ += wait;
      total_penalty_ += wait;
    }
  }
  if (trace_enabled_) {
    trace_.push_back(Access::Random(i, u));
    attempt_trace_.push_back(
        AccessAttempt{Access::Random(i, u), FaultKind::kNone, false});
  }
  if (obs::ShouldTrace(tracer_)) {
    tracer_->RecordAccess(AccessType::kRandom, i, u, ra_charged,
                          accrued_cost_);
  }
  if (obs::ShouldSample(hub_)) {
    hub_->ObserveAccessCost(i, AccessType::kRandom, ra_charged);
  }
  uint64_t& mask = probed_[u];
  const uint64_t bit = uint64_t{1} << i;
  if ((mask & bit) != 0) ++stats_.duplicate_random_count;
  mask |= bit;
  *out = provider_->ScoreOf(i, u);
  if (cache_owner) {
    NC_PROFILE_SCOPE(profiler_, kCacheFill);
    access_cache_->PublishRandom(i, u, *out, cache_ticket);
  }
  return Status::OK();
}

Status SourceSet::ServeSortedFromCache(PredicateId i,
                                       const cache::CachedSortedEntry& entry,
                                       bool merged,
                                       std::optional<SortedHit>* out) {
  // Replicate every engine-visible effect of the real access - counts,
  // cursor, bound, trace - except the bill: the source was already paid
  // by whichever query materialized the entry, so only the configured
  // hit cost accrues, into the same Eq. 1 cells (billing conservation
  // holds). The injector, fleet, and telemetry hub are deliberately
  // untouched: no source was contacted, no fault could have been drawn.
  ++stats_.sorted_count[i];
  const double charged = access_cache_->config().hit_cost;
  accrued_cost_ += charged;
  stats_.sorted_cost_accrued[i] += charged;
  fleet_serve_ = FleetServe{};
  if (trace_enabled_) {
    trace_.push_back(Access::Sorted(i));
    attempt_trace_.push_back(
        AccessAttempt{Access::Sorted(i), FaultKind::kNone, false});
  }
  if (obs::ShouldTrace(tracer_)) {
    tracer_->RecordAccess(AccessType::kSorted, i, 0, charged, accrued_cost_);
    tracer_->RecordCacheEvent(merged ? "sorted_merge" : "sorted_hit", i,
                              entry.object, charged, accrued_cost_);
  }
  ++positions_[i];
  SortedHit hit;
  hit.object = entry.object;
  hit.score = entry.score;
  hit.bundled = entry.bundled;
  last_seen_[i] = exhausted(i) ? kMinScore : hit.score;
  ++cache_hits_.sorted_hits;
  if (merged) ++cache_hits_.inflight_merges;
  cache_hits_.hit_cost_accrued += charged;
  *out = std::move(hit);
  return Status::OK();
}

Status SourceSet::ServeRandomFromCache(PredicateId i, ObjectId u, Score score,
                                       bool merged, Score* out) {
  ++stats_.random_count[i];
  const double charged = access_cache_->config().hit_cost;
  accrued_cost_ += charged;
  stats_.random_cost_accrued[i] += charged;
  fleet_serve_ = FleetServe{};
  if (trace_enabled_) {
    trace_.push_back(Access::Random(i, u));
    attempt_trace_.push_back(
        AccessAttempt{Access::Random(i, u), FaultKind::kNone, false});
  }
  if (obs::ShouldTrace(tracer_)) {
    tracer_->RecordAccess(AccessType::kRandom, i, u, charged, accrued_cost_);
    tracer_->RecordCacheEvent(merged ? "random_merge" : "random_hit", i, u,
                              charged, accrued_cost_);
  }
  uint64_t& mask = probed_[u];
  const uint64_t bit = uint64_t{1} << i;
  if ((mask & bit) != 0) ++stats_.duplicate_random_count;
  mask |= bit;
  ++cache_hits_.random_hits;
  if (merged) ++cache_hits_.inflight_merges;
  cache_hits_.hit_cost_accrued += charged;
  *out = score;
  return Status::OK();
}

void SourceSet::set_access_cache(cache::AccessCache* cache) {
  access_cache_ = cache;
  cache_hits_ = QueryCacheHits{};
  if (access_cache_ != nullptr) {
    access_cache_->BindOrInvalidate(DatasetFingerprint());
  }
}

uint64_t SourceSet::DatasetFingerprint() const {
  // Content-derived identity: shape plus sampled scores, FNV-1a mixed.
  // Provider reads have no billing side effects, so probing is free. A
  // stale serve would need two datasets agreeing on shape and on every
  // sampled score bit pattern.
  uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  const size_t n = num_objects();
  const size_t m = num_predicates();
  mix(n);
  mix(m);
  if (n == 0) return h;
  const ObjectId samples[] = {0, static_cast<ObjectId>(n / 2),
                              static_cast<ObjectId>(n - 1)};
  for (PredicateId i = 0; i < m; ++i) {
    for (const ObjectId u : samples) {
      const double s = provider_->ScoreOf(i, u);
      uint64_t bits = 0;
      std::memcpy(&bits, &s, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

uint64_t SourceSet::StreamTopology(PredicateId i) const {
  if (fleet_ != nullptr && fleet_->configured(i)) {
    return fleet_->TopologyToken(i);
  }
  return 0;
}

Status SourceSet::set_cost_model(CostModel cost) {
  // Structure only: a swapped-in model may leave a dead predicate with no
  // capability at all, which Validate() (initial scenarios) rejects.
  NC_RETURN_IF_ERROR(cost.ValidateStructure());
  if (cost.num_predicates() != cost_.num_predicates()) {
    return Status::InvalidArgument("cost model predicate count changed");
  }
  for (PredicateId i = 0; i < cost_.num_predicates(); ++i) {
    // Downgrades (a source degrading or dying) are legal; a capability
    // that is impossible can never appear mid-run.
    if ((cost.has_sorted(i) && !cost_.has_sorted(i)) ||
        (cost.has_random(i) && !cost_.has_random(i))) {
      return Status::InvalidArgument(
          "capabilities may be removed mid-run but never added");
    }
  }
  cost_ = std::move(cost);
  return Status::OK();
}

Status SourceSet::set_budget(QueryBudget budget) {
  NC_RETURN_IF_ERROR(budget.Validate(num_predicates()));
  budget_ = std::move(budget);
  return Status::OK();
}

Status SourceSet::set_circuit_breaker(CircuitBreakerPolicy policy) {
  NC_RETURN_IF_ERROR(policy.Validate());
  breaker_ = policy;
  return Status::OK();
}

bool SourceSet::breaker_open(PredicateId i) const {
  NC_CHECK(i < num_predicates());
  if (fleet_ != nullptr && fleet_->configured(i)) {
    // With a fleet, one open replica breaker just steers routing; the
    // predicate fast-fails only when no replica can take the access.
    return fleet_->all_unavailable(i, elapsed_time());
  }
  if (!breaker_.enabled()) return false;
  const BreakerState& state = breaker_state_[i];
  return state.open && elapsed_time() < state.open_until;
}

bool SourceSet::any_breaker_open() const {
  for (PredicateId i = 0; i < num_predicates(); ++i) {
    if (breaker_open(i)) return true;
  }
  return false;
}

Status SourceSet::set_replica_fleet(ReplicaFleet* fleet) {
  if (fleet != nullptr &&
      fleet->max_configured_predicates() > num_predicates()) {
    return Status::InvalidArgument(
        "replica fleet configures predicates this SourceSet does not have");
  }
  fleet_ = fleet;
  fleet_serve_ = FleetServe{};
  return Status::OK();
}

void SourceSet::set_fault_injector(FaultInjector* injector) {
  injector_ = injector;
}

void SourceSet::set_retry_policy(const RetryPolicy& policy,
                                 uint64_t jitter_seed) {
  NC_CHECK(policy.Validate().ok());
  retry_policy_ = policy;
  retry_seed_ = jitter_seed;
  retry_rng_ = Rng(jitter_seed);
}

void SourceSet::KillSource(PredicateId i) {
  NC_CHECK(i < num_predicates());
  MarkSourceDown(i);
}

void SourceSet::set_telemetry_hub(obs::TelemetryHub* hub) {
  hub_ = hub;
  // Re-apply any captured health immediately: a fresh SourceSet (or one
  // the caller just Reset with the hub detached) starts warm. Idempotent
  // on an untouched fleet.
  if (fleet_ != nullptr && obs::ShouldSample(hub_)) hub_->WarmFleet(fleet_);
}

void SourceSet::Reset() {
  // Cross-query telemetry: capture the fleet's health on the dying
  // query's clock BEFORE the rewind wipes it (re-applied below).
  if (fleet_ != nullptr && obs::ShouldSample(hub_)) {
    hub_->CaptureFleetHealth(*fleet_, elapsed_time());
  }
  const size_t m = num_predicates();
  stats_.sorted_count.assign(m, 0);
  stats_.random_count.assign(m, 0);
  stats_.sorted_cost_accrued.assign(m, 0.0);
  stats_.random_cost_accrued.assign(m, 0.0);
  stats_.duplicate_random_count = 0;
  stats_.retried_attempts.assign(m, 0);
  stats_.transient_failures = 0;
  stats_.timeout_failures = 0;
  stats_.abandoned_accesses = 0;
  stats_.source_deaths = 0;
  stats_.breaker_trips.assign(m, 0);
  stats_.breaker_fast_failures = 0;
  stats_.budget_refusals = 0;
  stats_.replica_failovers = 0;
  stats_.hedges_issued = 0;
  stats_.hedge_wins = 0;
  accrued_cost_ = 0.0;
  positions_.assign(m, 0);
  last_seen_.assign(m, kMaxScore);
  probed_.clear();
  trace_.clear();
  attempt_trace_.clear();
  // Reruns must replay the same draws: reseed the latency and backoff
  // streams from their remembered seeds.
  latency_rng_ = Rng(latency_seed_);
  retry_rng_ = Rng(retry_seed_);
  last_access_penalty_ = 0.0;
  total_penalty_ = 0.0;
  breaker_state_.assign(m, BreakerState{});
  // Revive dead sources: their construction-time unit costs return.
  // (Dynamic cost swaps on live sources persist, as before.)
  if (sources_down_ > 0) {
    for (PredicateId i = 0; i < m; ++i) {
      if (!source_down_[i]) continue;
      cost_.sorted_cost[i] = initial_cost_.sorted_cost[i];
      cost_.random_cost[i] = initial_cost_.random_cost[i];
      source_down_[i] = false;
    }
    sources_down_ = 0;
  }
  if (injector_ != nullptr) injector_->Reset();
  // Replica health is runtime state, not configuration: back-to-back
  // repetitions must start with cold breakers, live replicas, and the
  // same fault/latency draws. With a telemetry hub attached, though, the
  // session's captured health is re-applied so the next query starts
  // warm (deaths sticky, cooldowns resumed, EWMAs carried over).
  if (fleet_ != nullptr) {
    fleet_->ResetRuntime();
    if (obs::ShouldSample(hub_)) hub_->WarmFleet(fleet_);
  }
  fleet_serve_ = FleetServe{};
  // Cross-query cache: re-bind against the (possibly changed) backing
  // data. Same data => shared entries survive into the next query;
  // changed data => everything is dropped, never served stale.
  if (access_cache_ != nullptr) {
    access_cache_->BindOrInvalidate(DatasetFingerprint());
  }
  cache_hits_ = QueryCacheHits{};
}

SourceCheckpoint SourceSet::Checkpoint() const {
  SourceCheckpoint ck;
  ck.positions = positions_;
  ck.last_seen = last_seen_;
  ck.stats = stats_;
  ck.accrued_cost = accrued_cost_;
  ck.last_access_penalty = last_access_penalty_;
  ck.total_penalty = total_penalty_;
  ck.probed.assign(probed_.begin(), probed_.end());
  std::sort(ck.probed.begin(), ck.probed.end());
  ck.sorted_cost = cost_.sorted_cost;
  ck.random_cost = cost_.random_cost;
  ck.source_down = source_down_;
  const size_t m = num_predicates();
  ck.breaker_consecutive.resize(m);
  ck.breaker_open.resize(m);
  ck.breaker_open_until.resize(m);
  for (size_t i = 0; i < m; ++i) {
    ck.breaker_consecutive[i] = breaker_state_[i].consecutive_failures;
    ck.breaker_open[i] = breaker_state_[i].open;
    ck.breaker_open_until[i] = breaker_state_[i].open_until;
  }
  ck.latency_rng_state = latency_rng_.SerializeState();
  ck.retry_rng_state = retry_rng_.SerializeState();
  ck.has_injector = injector_ != nullptr;
  if (injector_ != nullptr) {
    ck.injector_rng_state = injector_->rng_state();
    ck.injector_attempts = injector_->attempt_counters();
    ck.injector_script_pos = injector_->script_cursors();
  }
  ck.trace_enabled = trace_enabled_;
  ck.attempt_trace = attempt_trace_;
  ck.has_fleet = fleet_ != nullptr;
  if (fleet_ != nullptr) ck.fleet_state = fleet_->CheckpointState();
  return ck;
}

Status SourceSet::RestoreCheckpoint(const SourceCheckpoint& ck) {
  const size_t m = num_predicates();
  if (ck.positions.size() != m || ck.last_seen.size() != m ||
      ck.sorted_cost.size() != m || ck.random_cost.size() != m ||
      ck.source_down.size() != m || ck.breaker_consecutive.size() != m ||
      ck.breaker_open.size() != m || ck.breaker_open_until.size() != m ||
      ck.stats.sorted_count.size() != m || ck.stats.random_count.size() != m ||
      ck.stats.sorted_cost_accrued.size() != m ||
      ck.stats.random_cost_accrued.size() != m ||
      ck.stats.retried_attempts.size() != m ||
      ck.stats.breaker_trips.size() != m) {
    return Status::InvalidArgument(
        "checkpoint predicate count does not match this SourceSet");
  }
  if (ck.has_injector != (injector_ != nullptr)) {
    return Status::FailedPrecondition(
        "checkpoint and SourceSet disagree on fault-injector attachment");
  }
  if (ck.has_fleet != (fleet_ != nullptr)) {
    return Status::FailedPrecondition(
        "checkpoint and SourceSet disagree on replica-fleet attachment");
  }
  const size_t n = num_objects();
  for (size_t i = 0; i < m; ++i) {
    if (ck.positions[i] > n) {
      return Status::InvalidArgument("sorted cursor past end of stream");
    }
    // Capabilities may have been lost mid-run (deaths) but a checkpoint
    // can never claim a capability this scenario never had.
    if (std::isfinite(ck.sorted_cost[i]) &&
        !initial_cost_.has_sorted(static_cast<PredicateId>(i))) {
      return Status::InvalidArgument(
          "checkpoint enables sorted access the scenario never had");
    }
    if (std::isfinite(ck.random_cost[i]) &&
        !initial_cost_.has_random(static_cast<PredicateId>(i))) {
      return Status::InvalidArgument(
          "checkpoint enables random access the scenario never had");
    }
  }
  for (const auto& [object, mask] : ck.probed) {
    if (object >= n) {
      return Status::InvalidArgument("probed object out of range");
    }
    if (m < 64 && (mask >> m) != 0) {
      return Status::InvalidArgument("probed mask names unknown predicates");
    }
  }
  // RNG streams first: DeserializeState validates without touching the
  // rest of the state.
  NC_RETURN_IF_ERROR(latency_rng_.DeserializeState(ck.latency_rng_state));
  NC_RETURN_IF_ERROR(retry_rng_.DeserializeState(ck.retry_rng_state));
  if (injector_ != nullptr) {
    NC_RETURN_IF_ERROR(injector_->RestoreState(
        ck.injector_rng_state, ck.injector_attempts, ck.injector_script_pos));
  }
  if (fleet_ != nullptr) {
    NC_RETURN_IF_ERROR(fleet_->RestoreState(ck.fleet_state));
  }
  fleet_serve_ = FleetServe{};
  positions_ = ck.positions;
  last_seen_ = ck.last_seen;
  stats_ = ck.stats;
  accrued_cost_ = ck.accrued_cost;
  last_access_penalty_ = ck.last_access_penalty;
  total_penalty_ = ck.total_penalty;
  probed_.clear();
  for (const auto& [object, mask] : ck.probed) probed_[object] = mask;
  cost_.sorted_cost = ck.sorted_cost;
  cost_.random_cost = ck.random_cost;
  source_down_ = ck.source_down;
  sources_down_ = 0;
  for (size_t i = 0; i < m; ++i) {
    if (source_down_[i]) ++sources_down_;
  }
  breaker_state_.assign(m, BreakerState{});
  for (size_t i = 0; i < m; ++i) {
    breaker_state_[i].consecutive_failures = ck.breaker_consecutive[i];
    breaker_state_[i].open = ck.breaker_open[i];
    breaker_state_[i].open_until = ck.breaker_open_until[i];
  }
  trace_enabled_ = ck.trace_enabled;
  attempt_trace_ = ck.attempt_trace;
  trace_ = SuccessfulAccesses(attempt_trace_);
  return Status::OK();
}

void SourceSet::set_latency_jitter(double jitter, uint64_t seed) {
  NC_CHECK(jitter >= 0.0);
  latency_jitter_ = jitter;
  latency_seed_ = seed;
  latency_rng_ = Rng(seed);
}

double SourceSet::DrawLatency(AccessType type, PredicateId i) {
  NC_CHECK(i < num_predicates());
  // Sorted latency is amortized per entry under the page model (a page
  // arrives in one round trip; its entries stream out together).
  const double unit = type == AccessType::kSorted
                          ? cost_.sorted_entry_cost(i)
                          : cost_.random_cost[i];
  NC_CHECK(std::isfinite(unit));
  if (latency_jitter_ == 0.0) return unit;
  return unit * (1.0 + latency_jitter_ * latency_rng_.Uniform01());
}

}  // namespace nc
