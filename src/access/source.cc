#include "access/source.h"

#include "common/check.h"

namespace nc {

size_t AccessStats::TotalSorted() const {
  size_t total = 0;
  for (size_t c : sorted_count) total += c;
  return total;
}

size_t AccessStats::TotalRandom() const {
  size_t total = 0;
  for (size_t c : random_count) total += c;
  return total;
}

double AccessStats::TotalCost(const CostModel& model) const {
  NC_CHECK(model.num_predicates() == sorted_count.size());
  double total = 0.0;
  for (size_t i = 0; i < sorted_count.size(); ++i) {
    if (sorted_count[i] > 0) {
      // Pages: ns entries consume ceil(ns / b) charged requests.
      const size_t pages =
          (sorted_count[i] + model.page_size(static_cast<PredicateId>(i)) -
           1) /
          model.page_size(static_cast<PredicateId>(i));
      total += static_cast<double>(pages) * model.sorted_cost[i];
    }
    if (random_count[i] > 0) {
      total += static_cast<double>(random_count[i]) * model.random_cost[i];
    }
  }
  return total;
}

SourceSet::SourceSet(const Dataset* data, CostModel cost)
    : SourceSet(nullptr, std::make_unique<DatasetScoreProvider>(data), data,
                std::move(cost)) {}

SourceSet::SourceSet(ScoreProvider* provider, CostModel cost)
    : SourceSet(provider, nullptr, nullptr, std::move(cost)) {}

SourceSet::SourceSet(ScoreProvider* provider,
                     std::unique_ptr<DatasetScoreProvider> owned,
                     const Dataset* data, CostModel cost)
    : provider_(provider != nullptr ? provider : owned.get()),
      owned_provider_(std::move(owned)),
      data_(data),
      cost_(std::move(cost)),
      latency_rng_(0) {
  NC_CHECK(provider_ != nullptr);
  NC_CHECK(cost_.Validate().ok());
  NC_CHECK(cost_.num_predicates() == provider_->num_predicates());
  NC_CHECK(provider_->num_predicates() <= 64);
  const size_t m = provider_->num_predicates();
  stats_.sorted_count.assign(m, 0);
  stats_.random_count.assign(m, 0);
  positions_.assign(m, 0);
  last_seen_.assign(m, kMaxScore);
}

std::optional<SortedHit> SourceSet::SortedAccess(PredicateId i) {
  NC_CHECK(i < num_predicates());
  NC_CHECK(has_sorted(i));
  if (exhausted(i)) return std::nullopt;
  ++stats_.sorted_count[i];
  // With a page model, the charge lands on the first entry of each page
  // (one request fetches the whole page).
  if (positions_[i] % cost_.page_size(i) == 0) {
    accrued_cost_ += cost_.sorted_cost[i];
  }
  if (trace_enabled_) trace_.push_back(Access::Sorted(i));
  const SortedEntry entry = provider_->SortedEntryAt(i, positions_[i]);
  ++positions_[i];
  SortedHit hit;
  hit.object = entry.object;
  hit.score = entry.score;
  // A multi-attribute source row carries the whole group.
  if (!cost_.attribute_groups.empty()) {
    for (PredicateId j = 0; j < num_predicates(); ++j) {
      if (j != i && cost_.same_group(i, j)) {
        hit.bundled.emplace_back(j, provider_->ScoreOf(j, hit.object));
      }
    }
  }
  // Side effect: every unseen object on this list is now bounded by the
  // returned score; an exhausted list leaves no unseen objects, so the
  // bound collapses to 0.
  last_seen_[i] = exhausted(i) ? kMinScore : hit.score;
  return hit;
}

Score SourceSet::RandomAccess(PredicateId i, ObjectId u) {
  NC_CHECK(i < num_predicates());
  NC_CHECK(has_random(i));
  NC_CHECK(u < num_objects());
  ++stats_.random_count[i];
  accrued_cost_ += cost_.random_cost[i];
  if (trace_enabled_) trace_.push_back(Access::Random(i, u));
  uint64_t& mask = probed_[u];
  const uint64_t bit = uint64_t{1} << i;
  if ((mask & bit) != 0) ++stats_.duplicate_random_count;
  mask |= bit;
  return provider_->ScoreOf(i, u);
}

Status SourceSet::set_cost_model(CostModel cost) {
  NC_RETURN_IF_ERROR(cost.Validate());
  if (cost.num_predicates() != cost_.num_predicates()) {
    return Status::InvalidArgument("cost model predicate count changed");
  }
  for (PredicateId i = 0; i < cost_.num_predicates(); ++i) {
    if (cost.has_sorted(i) != cost_.has_sorted(i) ||
        cost.has_random(i) != cost_.has_random(i)) {
      return Status::InvalidArgument(
          "capability pattern must not change mid-run");
    }
  }
  cost_ = std::move(cost);
  return Status::OK();
}

void SourceSet::Reset() {
  const size_t m = num_predicates();
  stats_.sorted_count.assign(m, 0);
  stats_.random_count.assign(m, 0);
  stats_.duplicate_random_count = 0;
  accrued_cost_ = 0.0;
  positions_.assign(m, 0);
  last_seen_.assign(m, kMaxScore);
  probed_.clear();
  trace_.clear();
}

void SourceSet::set_latency_jitter(double jitter, uint64_t seed) {
  NC_CHECK(jitter >= 0.0);
  latency_jitter_ = jitter;
  latency_rng_ = Rng(seed);
}

double SourceSet::DrawLatency(AccessType type, PredicateId i) {
  NC_CHECK(i < num_predicates());
  // Sorted latency is amortized per entry under the page model (a page
  // arrives in one round trip; its entries stream out together).
  const double unit = type == AccessType::kSorted
                          ? cost_.sorted_entry_cost(i)
                          : cost_.random_cost[i];
  NC_CHECK(std::isfinite(unit));
  if (latency_jitter_ == 0.0) return unit;
  return unit * (1.0 + latency_jitter_ * latency_rng_.Uniform01());
}

}  // namespace nc
