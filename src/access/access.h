// A single physical source access: sorted access sa_i or random access
// ra_i(u). These are the atoms every algorithm schedules; the NC engine's
// "necessary choices" (Definition 2) are sets of them.

#ifndef NC_ACCESS_ACCESS_H_
#define NC_ACCESS_ACCESS_H_

#include <string>

#include "common/score.h"

namespace nc {

enum class AccessType {
  kSorted,
  kRandom,
};

struct Access {
  AccessType type = AccessType::kSorted;
  PredicateId predicate = 0;
  // Target object for random access; unused (0) for sorted access.
  ObjectId object = 0;

  static Access Sorted(PredicateId i) {
    return Access{AccessType::kSorted, i, 0};
  }
  static Access Random(PredicateId i, ObjectId u) {
    return Access{AccessType::kRandom, i, u};
  }

  friend bool operator==(const Access& a, const Access& b) {
    if (a.type != b.type || a.predicate != b.predicate) return false;
    return a.type == AccessType::kSorted || a.object == b.object;
  }

  // "sa_1" or "ra_0(u42)".
  std::string ToString() const;
};

}  // namespace nc

#endif  // NC_ACCESS_ACCESS_H_
