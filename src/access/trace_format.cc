#include "access/trace_format.h"

#include <sstream>

namespace nc {

namespace {

// True when consecutive accesses a and b belong to one rendered run.
bool SameRun(const Access& a, const Access& b, bool targets) {
  if (a.type != b.type || a.predicate != b.predicate) return false;
  // With targets shown, random accesses never collapse (each names its
  // object); without, runs collapse by predicate.
  return a.type == AccessType::kSorted || !targets;
}

void AppendRun(std::ostringstream* os, const Access& head, size_t length,
               bool targets) {
  if (length > 1) (*os) << length << "x";
  if (head.type == AccessType::kSorted || !targets) {
    (*os) << (head.type == AccessType::kSorted ? "sa_" : "ra_")
          << head.predicate;
  } else {
    (*os) << head.ToString();
  }
}

}  // namespace

std::string FormatTrace(const std::vector<Access>& trace,
                        const TraceFormatOptions& options) {
  std::ostringstream os;
  size_t segments = 0;
  size_t i = 0;
  while (i < trace.size()) {
    size_t j = i + 1;
    while (j < trace.size() &&
           SameRun(trace[i], trace[j], options.targets)) {
      ++j;
    }
    if (options.max_segments != 0 && segments >= options.max_segments) {
      if (segments > 0) os << ", ";
      size_t remaining = 0;
      for (size_t r = i; r < trace.size();) {
        size_t s = r + 1;
        while (s < trace.size() &&
               SameRun(trace[r], trace[s], options.targets)) {
          ++s;
        }
        ++remaining;
        r = s;
      }
      os << "... (+" << remaining << " more)";
      return os.str();
    }
    if (segments > 0) os << ", ";
    AppendRun(&os, trace[i], j - i, options.targets);
    ++segments;
    i = j;
  }
  return os.str();
}

std::string SerializeAttemptTrace(const std::vector<AccessAttempt>& trace) {
  std::ostringstream os;
  bool first = true;
  for (const AccessAttempt& attempt : trace) {
    if (!first) os << ", ";
    first = false;
    os << attempt.access.ToString();
    switch (attempt.fault) {
      case FaultKind::kNone:
        break;
      case FaultKind::kTransient:
        os << "~T";
        break;
      case FaultKind::kTimeout:
        os << "~O";
        break;
      case FaultKind::kSourceDown:
        os << "~D";
        break;
    }
    if (attempt.abandoned) os << "!";
  }
  return os.str();
}

namespace {

// Parses one serialized attempt token; false on malformed input.
bool ParseAttemptToken(const std::string& token, AccessAttempt* out) {
  size_t pos = 0;
  const auto parse_number = [&](uint32_t* value) {
    if (pos >= token.size() || token[pos] < '0' || token[pos] > '9') {
      return false;
    }
    uint64_t parsed = 0;
    while (pos < token.size() && token[pos] >= '0' && token[pos] <= '9') {
      parsed = parsed * 10 + static_cast<uint64_t>(token[pos] - '0');
      if (parsed > 0xffffffffull) return false;
      ++pos;
    }
    *value = static_cast<uint32_t>(parsed);
    return true;
  };

  *out = AccessAttempt{};
  if (token.rfind("sa_", 0) == 0) {
    pos = 3;
    PredicateId predicate = 0;
    if (!parse_number(&predicate)) return false;
    out->access = Access::Sorted(predicate);
  } else if (token.rfind("ra_", 0) == 0) {
    pos = 3;
    PredicateId predicate = 0;
    if (!parse_number(&predicate)) return false;
    if (pos + 1 >= token.size() || token[pos] != '(' || token[pos + 1] != 'u') {
      return false;
    }
    pos += 2;
    ObjectId object = 0;
    if (!parse_number(&object)) return false;
    if (pos >= token.size() || token[pos] != ')') return false;
    ++pos;
    out->access = Access::Random(predicate, object);
  } else {
    return false;
  }

  if (pos < token.size() && token[pos] == '~') {
    if (pos + 1 >= token.size()) return false;
    switch (token[pos + 1]) {
      case 'T':
        out->fault = FaultKind::kTransient;
        break;
      case 'O':
        out->fault = FaultKind::kTimeout;
        break;
      case 'D':
        out->fault = FaultKind::kSourceDown;
        break;
      default:
        return false;
    }
    pos += 2;
  }
  if (pos < token.size() && token[pos] == '!') {
    // Abandonment marks a *failed* final attempt.
    if (out->fault == FaultKind::kNone) return false;
    out->abandoned = true;
    ++pos;
  }
  return pos == token.size();
}

}  // namespace

Status ParseAttemptTrace(const std::string& text,
                         std::vector<AccessAttempt>* out) {
  out->clear();
  if (text.empty()) return Status::OK();
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(", ", start);
    if (end == std::string::npos) end = text.size();
    AccessAttempt attempt;
    if (!ParseAttemptToken(text.substr(start, end - start), &attempt)) {
      out->clear();
      return Status::InvalidArgument("malformed attempt token at offset " +
                                     std::to_string(start));
    }
    out->push_back(attempt);
    if (end == text.size()) break;
    start = end + 2;
  }
  return Status::OK();
}

std::vector<Access> SuccessfulAccesses(
    const std::vector<AccessAttempt>& trace) {
  std::vector<Access> out;
  out.reserve(trace.size());
  for (const AccessAttempt& attempt : trace) {
    if (attempt.fault == FaultKind::kNone) out.push_back(attempt.access);
  }
  return out;
}

std::string SummarizeTrace(const std::vector<Access>& trace,
                           size_t num_predicates) {
  std::vector<size_t> sorted(num_predicates, 0);
  std::vector<size_t> random(num_predicates, 0);
  for (const Access& a : trace) {
    if (a.predicate < num_predicates) {
      (a.type == AccessType::kSorted ? sorted : random)[a.predicate] += 1;
    }
  }
  std::ostringstream os;
  os << "sa=(";
  for (size_t i = 0; i < num_predicates; ++i) {
    if (i > 0) os << ",";
    os << sorted[i];
  }
  os << ") ra=(";
  for (size_t i = 0; i < num_predicates; ++i) {
    if (i > 0) os << ",";
    os << random[i];
  }
  os << ")";
  return os.str();
}

}  // namespace nc
