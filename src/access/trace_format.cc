#include "access/trace_format.h"

#include <sstream>

namespace nc {

namespace {

// True when consecutive accesses a and b belong to one rendered run.
bool SameRun(const Access& a, const Access& b, bool targets) {
  if (a.type != b.type || a.predicate != b.predicate) return false;
  // With targets shown, random accesses never collapse (each names its
  // object); without, runs collapse by predicate.
  return a.type == AccessType::kSorted || !targets;
}

void AppendRun(std::ostringstream* os, const Access& head, size_t length,
               bool targets) {
  if (length > 1) (*os) << length << "x";
  if (head.type == AccessType::kSorted || !targets) {
    (*os) << (head.type == AccessType::kSorted ? "sa_" : "ra_")
          << head.predicate;
  } else {
    (*os) << head.ToString();
  }
}

}  // namespace

std::string FormatTrace(const std::vector<Access>& trace,
                        const TraceFormatOptions& options) {
  std::ostringstream os;
  size_t segments = 0;
  size_t i = 0;
  while (i < trace.size()) {
    size_t j = i + 1;
    while (j < trace.size() &&
           SameRun(trace[i], trace[j], options.targets)) {
      ++j;
    }
    if (options.max_segments != 0 && segments >= options.max_segments) {
      if (segments > 0) os << ", ";
      size_t remaining = 0;
      for (size_t r = i; r < trace.size();) {
        size_t s = r + 1;
        while (s < trace.size() &&
               SameRun(trace[r], trace[s], options.targets)) {
          ++s;
        }
        ++remaining;
        r = s;
      }
      os << "... (+" << remaining << " more)";
      return os.str();
    }
    if (segments > 0) os << ", ";
    AppendRun(&os, trace[i], j - i, options.targets);
    ++segments;
    i = j;
  }
  return os.str();
}

std::string SummarizeTrace(const std::vector<Access>& trace,
                           size_t num_predicates) {
  std::vector<size_t> sorted(num_predicates, 0);
  std::vector<size_t> random(num_predicates, 0);
  for (const Access& a : trace) {
    if (a.predicate < num_predicates) {
      (a.type == AccessType::kSorted ? sorted : random)[a.predicate] += 1;
    }
  }
  std::ostringstream os;
  os << "sa=(";
  for (size_t i = 0; i < num_predicates; ++i) {
    if (i > 0) os << ",";
    os << sorted[i];
  }
  os << ") ra=(";
  for (size_t i = 0; i < num_predicates; ++i) {
    if (i > 0) os << ",";
    os << random[i];
  }
  os << ")";
  return os.str();
}

}  // namespace nc
