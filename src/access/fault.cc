#include "access/fault.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nc {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "None";
    case FaultKind::kTransient:
      return "Transient";
    case FaultKind::kTimeout:
      return "Timeout";
    case FaultKind::kSourceDown:
      return "SourceDown";
  }
  return "Unknown";
}

Status FaultProfile::Validate() const {
  for (double rate : {transient_rate, timeout_rate, death_rate}) {
    if (!(rate >= 0.0 && rate <= 1.0)) {
      return Status::InvalidArgument("fault rate outside [0, 1]");
    }
  }
  if (transient_rate + timeout_rate + death_rate > 1.0) {
    return Status::InvalidArgument("fault rates sum above 1");
  }
  return Status::OK();
}

Status RetryPolicy::Validate() const {
  if (max_attempts == 0) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (!(backoff_base >= 0.0) || !(backoff_multiplier >= 1.0) ||
      !(backoff_jitter >= 0.0)) {
    return Status::InvalidArgument("invalid backoff parameters");
  }
  if (!(timeout_latency_factor >= 0.0) || !(retry_cost_factor >= 0.0)) {
    return Status::InvalidArgument("invalid retry charge parameters");
  }
  return Status::OK();
}

double RetryPolicy::BackoffDelay(size_t retry, Rng* rng) const {
  NC_CHECK(retry >= 1);
  double delay = backoff_base *
                 std::pow(backoff_multiplier, static_cast<double>(retry - 1));
  if (backoff_jitter > 0.0) {
    NC_CHECK(rng != nullptr);
    delay *= 1.0 + backoff_jitter * rng->Uniform01();
  }
  return delay;
}

Status CircuitBreakerPolicy::Validate() const {
  if (!(cooldown >= 0.0) || !std::isfinite(cooldown)) {
    return Status::InvalidArgument("cooldown must be finite and >= 0");
  }
  return Status::OK();
}

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed), rng_(seed) {}

void FaultInjector::set_default_profile(const FaultProfile& profile) {
  NC_CHECK(profile.Validate().ok());
  default_profile_ = profile;
}

void FaultInjector::set_profile(PredicateId i, const FaultProfile& profile) {
  NC_CHECK(profile.Validate().ok());
  profiles_[i] = profile;
}

void FaultInjector::Script(PredicateId i, std::vector<FaultKind> outcomes) {
  std::vector<FaultKind>& script = scripts_[i];
  script.insert(script.end(), outcomes.begin(), outcomes.end());
}

const FaultProfile& FaultInjector::ProfileFor(PredicateId i) const {
  const auto it = profiles_.find(i);
  return it == profiles_.end() ? default_profile_ : it->second;
}

FaultKind FaultInjector::NextOutcome(PredicateId i) {
  const size_t attempt = ++attempts_[i];
  const auto script_it = scripts_.find(i);
  if (script_it != scripts_.end()) {
    size_t& pos = script_pos_[i];
    if (pos < script_it->second.size()) return script_it->second[pos++];
  }
  const FaultProfile& profile = ProfileFor(i);
  if (profile.die_after_attempts != 0 &&
      attempt > profile.die_after_attempts) {
    return FaultKind::kSourceDown;
  }
  const double total =
      profile.death_rate + profile.transient_rate + profile.timeout_rate;
  if (total <= 0.0) return FaultKind::kNone;
  const double u = rng_.Uniform01();
  if (u < profile.death_rate) return FaultKind::kSourceDown;
  if (u < profile.death_rate + profile.transient_rate) {
    return FaultKind::kTransient;
  }
  if (u < total) return FaultKind::kTimeout;
  return FaultKind::kNone;
}

size_t FaultInjector::attempts(PredicateId i) const {
  const auto it = attempts_.find(i);
  return it == attempts_.end() ? 0 : it->second;
}

void FaultInjector::Reset() {
  rng_ = Rng(seed_);
  attempts_.clear();
  script_pos_.clear();
}

namespace {

std::vector<std::pair<PredicateId, size_t>> SortedSnapshot(
    const std::unordered_map<PredicateId, size_t>& counters) {
  std::vector<std::pair<PredicateId, size_t>> snapshot(counters.begin(),
                                                       counters.end());
  std::sort(snapshot.begin(), snapshot.end());
  return snapshot;
}

}  // namespace

std::vector<std::pair<PredicateId, size_t>> FaultInjector::attempt_counters()
    const {
  return SortedSnapshot(attempts_);
}

std::vector<std::pair<PredicateId, size_t>> FaultInjector::script_cursors()
    const {
  return SortedSnapshot(script_pos_);
}

Status FaultInjector::RestoreState(
    const std::string& rng_state,
    const std::vector<std::pair<PredicateId, size_t>>& attempt_counters,
    const std::vector<std::pair<PredicateId, size_t>>& script_cursors) {
  for (const auto& [predicate, cursor] : script_cursors) {
    const auto it = scripts_.find(predicate);
    const size_t script_size = it == scripts_.end() ? 0 : it->second.size();
    if (cursor > script_size) {
      return Status::InvalidArgument(
          "script cursor past end of configured script");
    }
  }
  NC_RETURN_IF_ERROR(rng_.DeserializeState(rng_state));
  attempts_.clear();
  for (const auto& [predicate, count] : attempt_counters) {
    attempts_[predicate] = count;
  }
  script_pos_.clear();
  for (const auto& [predicate, cursor] : script_cursors) {
    script_pos_[predicate] = cursor;
  }
  return Status::OK();
}

}  // namespace nc
