#include "access/access.h"

namespace nc {

std::string Access::ToString() const {
  if (type == AccessType::kSorted) {
    return "sa_" + std::to_string(predicate);
  }
  return "ra_" + std::to_string(predicate) + "(u" + std::to_string(object) +
         ")";
}

}  // namespace nc
