// Query budgets: hard limits on what one query may spend.
//
// A production middleware cannot let a single top-k query run open-ended
// against priced, rate-limited Web sources (the per-source quota limits
// of deep-web APIs make this concrete). QueryBudget caps a run along
// three independent dimensions, all expressed in the units the paper
// already uses:
//
//   * max_cost - a cap on the accrued access cost (Eq. 1, priced
//     access-by-access including retry charges). Checked by SourceSet
//     before every access, so a budgeted run stops within one access's
//     worst case of the cap and never silently overshoots.
//   * deadline - a cap on elapsed time. The sequential engines read the
//     cost clock plus simulated penalties (timeouts, backoff waits) as
//     elapsed time - the paper's elapsed-time interpretation of Eq. 1;
//     the parallel executor additionally enforces it on its simulated
//     makespan.
//   * predicate_quota - per-predicate caps on performed accesses
//     (sorted + random), the shape of a per-source request limit. A
//     quota-spent predicate refuses further accesses while the rest of
//     the query keeps going.
//
// Exhaustion is not an error: engines return the current top-k as a
// *certified anytime answer* (core/result.h) carrying per-object score
// intervals and a proven precision bound epsilon.

#ifndef NC_ACCESS_BUDGET_H_
#define NC_ACCESS_BUDGET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace nc {

struct QueryBudget {
  // Cap on SourceSet::accrued_cost(); 0 = unlimited. Accesses are refused
  // once the accrued cost reaches the cap, so the overshoot is bounded by
  // one access's worst case (page charge plus retry charges).
  double max_cost = 0.0;

  // Cap on elapsed time, in cost units; 0 = none. See the header comment
  // for which clock each executor reads.
  double deadline = 0.0;

  // Per-predicate cap on performed accesses (sorted + random together).
  // Empty = no quotas; otherwise one entry per predicate, where an entry
  // of 0 means that predicate is unlimited (mirroring max_cost = 0).
  std::vector<size_t> predicate_quota;

  // True when no dimension is constrained.
  bool unlimited() const;

  // OK iff every dimension is well-formed: non-negative finite caps and a
  // quota vector that is empty or covers all `num_predicates` predicates.
  Status Validate(size_t num_predicates) const;

  // "cost<=120 deadline<=40 quota=(30,0,12)" for logs; "unlimited" when
  // nothing is constrained.
  std::string ToString() const;
};

}  // namespace nc

#endif  // NC_ACCESS_BUDGET_H_
