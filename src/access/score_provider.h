// The boundary between the middleware and the actual sources.
//
// Everything above SourceSet (engines, baselines, the optimizer) sees
// scores only through the sorted/random access primitives; ScoreProvider
// is where those primitives get their answers. The library ships a
// Dataset-backed provider (the simulation substrate every experiment
// uses); adopters wrap live services by implementing the three virtual
// calls - SourceSet layers capability checks, paging, bundling, cost
// accounting, and tracing on top, identically for either backing.

#ifndef NC_ACCESS_SCORE_PROVIDER_H_
#define NC_ACCESS_SCORE_PROVIDER_H_

#include "common/score.h"
#include "data/dataset.h"

namespace nc {

// One entry of a descending-sorted stream.
struct SortedEntry {
  ObjectId object = 0;
  Score score = 0.0;
};

// Supplies ranked streams and exact scores. Implementations must be
// consistent: SortedEntryAt(i, r) enumerates all objects exactly once in
// non-increasing score order, and ScoreOf agrees with those entries.
class ScoreProvider {
 public:
  virtual ~ScoreProvider() = default;

  virtual size_t num_objects() const = 0;
  virtual size_t num_predicates() const = 0;

  // The rank-th (0-based) entry of predicate i's descending stream;
  // rank < num_objects().
  virtual SortedEntry SortedEntryAt(PredicateId i, size_t rank) = 0;

  // The exact score p_i[u].
  virtual Score ScoreOf(PredicateId i, ObjectId u) = 0;
};

// The simulation substrate: serves a Dataset.
class DatasetScoreProvider final : public ScoreProvider {
 public:
  // `data` must outlive the provider.
  explicit DatasetScoreProvider(const Dataset* data) : data_(data) {}

  size_t num_objects() const override { return data_->num_objects(); }
  size_t num_predicates() const override { return data_->num_predicates(); }

  SortedEntry SortedEntryAt(PredicateId i, size_t rank) override {
    const ObjectId u = data_->SortedOrder(i)[rank];
    return SortedEntry{u, data_->score(u, i)};
  }

  Score ScoreOf(PredicateId i, ObjectId u) override {
    return data_->score(u, i);
  }

  const Dataset* dataset() const { return data_; }

 private:
  const Dataset* data_;
};

}  // namespace nc

#endif  // NC_ACCESS_SCORE_PROVIDER_H_
