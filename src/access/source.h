// Web sources: the single gateway through which every algorithm (the NC
// engine and all baselines) touches scores.
//
// A SourceSet wraps a ScoreProvider (by default the Dataset-backed
// simulation substrate) with the capability/cost matrix of a scenario. It
// implements the two access primitives of Section 3.2 with their defining
// behaviors:
//   * SortedAccess(i) is progressive - each call returns the next object
//     in descending p_i order - and has the side effect of lowering the
//     last-seen score l_i, which bounds every still-unseen object.
//   * RandomAccess(i, u) returns p_i[u] exactly and should never be
//     repeated (repeats are tolerated but counted separately so tests can
//     assert algorithms do not waste them).
//
// All accounting (access counts, accrued cost per Eq. 1) happens here, so
// benchmark numbers cannot drift from what algorithms actually did. The
// unit-cost vector may be swapped mid-run (set_cost_model) to model the
// dynamic Web; cost accrues at the rate in force when the access happens.

#ifndef NC_ACCESS_SOURCE_H_
#define NC_ACCESS_SOURCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "access/access.h"
#include "access/cost_model.h"
#include "access/score_provider.h"
#include "common/rng.h"
#include "common/score.h"
#include "common/status.h"
#include "data/dataset.h"

namespace nc {

// Result of one sorted access: the next-ranked object and its exact score
// on the accessed predicate, plus - for multi-attribute sources
// (CostModel::attribute_groups) - the object's scores on every other
// predicate the same source row carries.
struct SortedHit {
  ObjectId object = 0;
  Score score = 0.0;
  std::vector<std::pair<PredicateId, Score>> bundled;
};

// Per-scenario access counters.
struct AccessStats {
  std::vector<size_t> sorted_count;
  std::vector<size_t> random_count;
  // Random accesses that repeated an earlier (predicate, object) probe.
  size_t duplicate_random_count = 0;

  size_t TotalSorted() const;
  size_t TotalRandom() const;

  // Prices the counters against `model` (Eq. 1). Only meaningful for
  // static cost scenarios; dynamic runs should use
  // SourceSet::accrued_cost().
  double TotalCost(const CostModel& model) const;
};

class SourceSet {
 public:
  // Simulation substrate: `data` must outlive the SourceSet. `cost` must
  // validate and match data->num_predicates().
  SourceSet(const Dataset* data, CostModel cost);

  // Custom backing: `provider` must outlive the SourceSet. Use this to
  // serve live sources; the planner falls back to dummy-uniform samples
  // (no Dataset to draw from).
  SourceSet(ScoreProvider* provider, CostModel cost);

  size_t num_predicates() const { return provider_->num_predicates(); }
  size_t num_objects() const { return provider_->num_objects(); }

  // True when backed by an in-memory Dataset (dataset() is then legal).
  bool has_dataset() const { return data_ != nullptr; }
  const Dataset& dataset() const {
    NC_CHECK(data_ != nullptr);
    return *data_;
  }

  bool has_sorted(PredicateId i) const { return cost_.has_sorted(i); }
  bool has_random(PredicateId i) const { return cost_.has_random(i); }

  // Performs one sorted access on predicate i. Returns nullopt when the
  // source is exhausted. Must not be called on a predicate without sorted
  // support.
  std::optional<SortedHit> SortedAccess(PredicateId i);

  // Performs one random access for p_i[u]. Must not be called on a
  // predicate without random support.
  Score RandomAccess(PredicateId i, ObjectId u);

  // The last-seen score l_i from sorted accesses on predicate i: the upper
  // bound for any object not yet returned by sa_i. 1.0 before the first
  // access; 0.0 once the source is exhausted (no unseen object remains, so
  // the bound is vacuous).
  Score last_seen(PredicateId i) const { return last_seen_[i]; }

  // True once every object has been returned by sa_i.
  bool exhausted(PredicateId i) const {
    return positions_[i] >= provider_->num_objects();
  }

  // Number of sorted accesses performed so far on predicate i.
  size_t sorted_position(PredicateId i) const { return positions_[i]; }

  ScoreProvider& provider() const { return *provider_; }

  const CostModel& cost_model() const { return cost_; }

  // Swaps the unit costs mid-run (dynamic Web scenario). The capability
  // pattern (which accesses are impossible) must not change.
  Status set_cost_model(CostModel cost);

  const AccessStats& stats() const { return stats_; }

  // Cost accrued so far, priced access-by-access (robust to cost swaps).
  double accrued_cost() const { return accrued_cost_; }

  // Restores the SourceSet to its initial state: cursors rewound,
  // counters, accrued cost, and any trace cleared.
  void Reset();

  // --- Access tracing --------------------------------------------------
  // When enabled, every performed access is appended to trace() in order.
  // Used by diagnostics and by the plan-property tests (e.g. verifying
  // the SR shape of SR/G executions).
  void EnableTrace() { trace_enabled_ = true; }
  const std::vector<Access>& trace() const { return trace_; }

  // --- Latency model (used by the parallel executor) ------------------
  // Each access's simulated latency is unit_cost * (1 + jitter * U) with
  // U uniform in [0, 1). jitter = 0 (the default) makes latency equal the
  // unit cost, matching the paper's elapsed-time reading of Eq. 1.
  void set_latency_jitter(double jitter, uint64_t seed);

  // Draws the latency for one access of the given shape.
  double DrawLatency(AccessType type, PredicateId i);

 private:
  // Shared initialization for both constructors.
  SourceSet(ScoreProvider* provider,
            std::unique_ptr<DatasetScoreProvider> owned,
            const Dataset* data, CostModel cost);

  ScoreProvider* provider_;
  std::unique_ptr<DatasetScoreProvider> owned_provider_;
  // Non-null only for Dataset-backed sources.
  const Dataset* data_;
  CostModel cost_;
  AccessStats stats_;
  double accrued_cost_ = 0.0;
  // Cursor into Dataset::SortedOrder per predicate.
  std::vector<size_t> positions_;
  std::vector<Score> last_seen_;
  // Per-object bitmask of predicates already random-probed (m <= 64).
  std::unordered_map<ObjectId, uint64_t> probed_;
  double latency_jitter_ = 0.0;
  Rng latency_rng_;
  bool trace_enabled_ = false;
  std::vector<Access> trace_;
};

}  // namespace nc

#endif  // NC_ACCESS_SOURCE_H_
