// Web sources: the single gateway through which every algorithm (the NC
// engine and all baselines) touches scores.
//
// A SourceSet wraps a ScoreProvider (by default the Dataset-backed
// simulation substrate) with the capability/cost matrix of a scenario. It
// implements the two access primitives of Section 3.2 with their defining
// behaviors:
//   * SortedAccess(i) is progressive - each call returns the next object
//     in descending p_i order - and has the side effect of lowering the
//     last-seen score l_i, which bounds every still-unseen object.
//   * RandomAccess(i, u) returns p_i[u] exactly and should never be
//     repeated (repeats are tolerated but counted separately so tests can
//     assert algorithms do not waste them).
//
// All accounting (access counts, accrued cost per Eq. 1) happens here, so
// benchmark numbers cannot drift from what algorithms actually did. The
// unit-cost vector may be swapped mid-run (set_cost_model) to model the
// dynamic Web; cost accrues at the rate in force when the access happens.
//
// --- Failure model -----------------------------------------------------
// Autonomous sources fail. With a FaultInjector attached, every access
// attempt may draw a transient error, a timeout, or permanent source
// death (see access/fault.h). SourceSet retries failed attempts per its
// RetryPolicy, charging each attempt (retries inflate accrued_cost() and
// the AccessStats fault counters but never change what an access
// returns, its cursor effects, or the trace). The fallible entry points
// are TrySortedAccess/TryRandomAccess: they return kUnavailable when
// retries are exhausted or the source is down, leaving cursors, bounds,
// and probed-state untouched. A permanent death downgrades the
// capability in the cost model itself (through the set_cost_model guard
// path, which permits capability removal but never addition), so
// has_sorted/has_random, planners, and plan caches all observe the
// degraded scenario. The legacy SortedAccess/RandomAccess wrappers
// crash on an unrecovered failure; fault-tolerant callers (the NC
// engine, the parallel executor) use the Try* forms.
//
// --- Budgets and the circuit breaker ------------------------------------
// With a QueryBudget attached (set_budget), every Try* access first
// checks the cost cap, the deadline, and the predicate's quota; a barred
// access is refused with kResourceExhausted *before anything is billed*,
// so the accrued cost can overshoot the cap by at most one access's
// worst case. With a CircuitBreakerPolicy attached (set_circuit_breaker),
// a predicate whose accesses keep getting abandoned trips open and
// fast-fails (kUnavailable, nothing billed, nothing drawn from the
// injector) until a cooldown admits a half-open probe. Engines observe
// both conditions through quota_exhausted()/breaker_open() to steer
// around barred predicates and to emit certified anytime answers when no
// choice remains.

#ifndef NC_ACCESS_SOURCE_H_
#define NC_ACCESS_SOURCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "access/access.h"
#include "access/budget.h"
#include "access/cost_model.h"
#include "access/fault.h"
#include "access/score_provider.h"
#include "access/trace_format.h"
#include "common/rng.h"
#include "common/score.h"
#include "common/status.h"
#include "data/dataset.h"
#include "replica/replica.h"

namespace nc::obs {
class QueryTracer;
class TelemetryHub;
class Profiler;
}  // namespace nc::obs

namespace nc::cache {
class AccessCache;
struct CachedSortedEntry;
}  // namespace nc::cache

namespace nc {

// Result of one sorted access: the next-ranked object and its exact score
// on the accessed predicate, plus - for multi-attribute sources
// (CostModel::attribute_groups) - the object's scores on every other
// predicate the same source row carries.
struct SortedHit {
  ObjectId object = 0;
  Score score = 0.0;
  std::vector<std::pair<PredicateId, Score>> bundled;
};

// Per-scenario access counters.
struct AccessStats {
  std::vector<size_t> sorted_count;
  std::vector<size_t> random_count;
  // Cost accrued per predicate and access type, priced access-by-access
  // exactly like SourceSet::accrued_cost() (page charges land on the
  // sorted side; each failed attempt's retry charge lands on the type
  // being attempted). Invariant: the sums over both vectors equal
  // accrued_cost() - the Eq. 1 split the observability layer reports.
  std::vector<double> sorted_cost_accrued;
  std::vector<double> random_cost_accrued;
  // Random accesses that repeated an earlier (predicate, object) probe.
  size_t duplicate_random_count = 0;

  // --- Fault-tolerance counters (all zero in fault-free runs) ----------
  // Failed attempts that were retried, per predicate.
  std::vector<size_t> retried_attempts;
  // Attempts that failed with a transient error / a timeout.
  size_t transient_failures = 0;
  size_t timeout_failures = 0;
  // Accesses abandoned after exhausting RetryPolicy::max_attempts.
  size_t abandoned_accesses = 0;
  // Permanent source deaths observed (one per predicate whose
  // capabilities were downgraded).
  size_t source_deaths = 0;

  // --- Budget / circuit-breaker counters -------------------------------
  // Circuit-breaker trips per predicate (closed/half-open -> open). With
  // a replica fleet attached, per-replica trips aggregate here.
  std::vector<size_t> breaker_trips;
  // Accesses refused instantly by an open breaker (nothing billed). With
  // a fleet, counted only when *every* replica is open and cooling.
  size_t breaker_fast_failures = 0;
  // Accesses refused by the budget (cost cap, deadline, or quota) before
  // anything was billed.
  size_t budget_refusals = 0;

  // --- Replica-fleet counters (all zero without a fleet) ---------------
  // Accesses that moved on from a failing replica to the next healthy
  // one instead of abandoning the predicate.
  size_t replica_failovers = 0;
  // Hedge requests issued (each billed a full extra request) and hedges
  // whose second response arrived first.
  size_t hedges_issued = 0;
  size_t hedge_wins = 0;

  size_t TotalSorted() const;
  size_t TotalRandom() const;
  size_t TotalRetried() const;
  size_t TotalBreakerTrips() const;

  // Prices the counters against `model` (Eq. 1). Only meaningful for
  // static cost scenarios; dynamic runs (and runs with retries, which
  // are charged per attempt) should use SourceSet::accrued_cost().
  double TotalCost(const CostModel& model) const;
};

// A full snapshot of one SourceSet's mid-run state, sufficient to resume
// a query on an identically configured SourceSet (same dataset/provider,
// scenario, retry policy, budget, breaker policy, seeds, and injector
// configuration) with bit-identical behavior and zero re-issued accesses.
// Configuration itself is deliberately *not* captured: a checkpoint is
// state, the scenario is code. Produced by SourceSet::Checkpoint(),
// consumed by SourceSet::RestoreCheckpoint(); serialized (with the engine
// state around it) by core/checkpoint.*.
struct SourceCheckpoint {
  std::vector<size_t> positions;
  std::vector<Score> last_seen;
  AccessStats stats;
  double accrued_cost = 0.0;
  double last_access_penalty = 0.0;
  double total_penalty = 0.0;
  // Probed-predicate bitmasks, sorted by object for deterministic
  // serialization.
  std::vector<std::pair<ObjectId, uint64_t>> probed;
  // Current unit costs (reflecting mid-run deaths and dynamic swaps).
  std::vector<double> sorted_cost;
  std::vector<double> random_cost;
  std::vector<bool> source_down;
  // Circuit-breaker runtime state (empty when no breaker is configured).
  std::vector<size_t> breaker_consecutive;
  std::vector<bool> breaker_open;
  std::vector<double> breaker_open_until;
  // RNG stream states (Rng::SerializeState tokens).
  std::string latency_rng_state;
  std::string retry_rng_state;
  // Fault-injector state; has_injector records whether one was attached
  // (restore requires the same).
  bool has_injector = false;
  std::string injector_rng_state;
  std::vector<std::pair<PredicateId, size_t>> injector_attempts;
  std::vector<std::pair<PredicateId, size_t>> injector_script_pos;
  // Attempt trace (empty unless tracing was enabled); the classic access
  // trace is rebuilt from it on restore.
  bool trace_enabled = false;
  std::vector<AccessAttempt> attempt_trace;
  // Replica-fleet routing state; has_fleet records whether one was
  // attached (restore requires the same).
  bool has_fleet = false;
  ReplicaFleetState fleet_state;
};

class SourceSet {
 public:
  // Simulation substrate: `data` must outlive the SourceSet. `cost` must
  // validate and match data->num_predicates().
  SourceSet(const Dataset* data, CostModel cost);

  // Custom backing: `provider` must outlive the SourceSet. Use this to
  // serve live sources; the planner falls back to dummy-uniform samples
  // (no Dataset to draw from).
  SourceSet(ScoreProvider* provider, CostModel cost);

  size_t num_predicates() const { return provider_->num_predicates(); }
  size_t num_objects() const { return provider_->num_objects(); }

  // True when backed by an in-memory Dataset (dataset() is then legal).
  bool has_dataset() const { return data_ != nullptr; }
  const Dataset& dataset() const {
    NC_CHECK(data_ != nullptr);
    return *data_;
  }

  bool has_sorted(PredicateId i) const { return cost_.has_sorted(i); }
  bool has_random(PredicateId i) const { return cost_.has_random(i); }

  // Performs one sorted access on predicate i. Returns nullopt when the
  // source is exhausted. Must not be called on a predicate without sorted
  // support, and crashes if fault injection makes the access fail
  // unrecoverably - fault-tolerant callers use TrySortedAccess.
  std::optional<SortedHit> SortedAccess(PredicateId i);

  // Performs one random access for p_i[u]. Must not be called on a
  // predicate without random support; crashes on unrecovered failure -
  // fault-tolerant callers use TryRandomAccess.
  Score RandomAccess(PredicateId i, ObjectId u);

  // Fault-tolerant sorted access. On OK, *out is the hit (or nullopt when
  // the stream is exhausted). Returns kUnavailable when the source is
  // down or every retry attempt failed; the cursor, last_seen bound,
  // stats counts, and trace are untouched by a failed access (only cost
  // and the fault counters advance).
  Status TrySortedAccess(PredicateId i, std::optional<SortedHit>* out);

  // Fault-tolerant random access; same failure contract as
  // TrySortedAccess.
  Status TryRandomAccess(PredicateId i, ObjectId u, Score* out);

  // The last-seen score l_i from sorted accesses on predicate i: the upper
  // bound for any object not yet returned by sa_i. 1.0 before the first
  // access; 0.0 once the source is exhausted (no unseen object remains, so
  // the bound is vacuous). A dead source's l_i stays frozen at its last
  // value - still a sound bound, since object scores do not change.
  Score last_seen(PredicateId i) const { return last_seen_[i]; }

  // True once every object has been returned by sa_i.
  bool exhausted(PredicateId i) const {
    return positions_[i] >= provider_->num_objects();
  }

  // Number of sorted accesses performed so far on predicate i.
  size_t sorted_position(PredicateId i) const { return positions_[i]; }

  ScoreProvider& provider() const { return *provider_; }

  const CostModel& cost_model() const { return cost_; }

  // Swaps the unit costs mid-run (dynamic Web scenario). Capabilities may
  // be *removed* (a live source can degrade or die) but never added: an
  // access type that was impossible stays impossible for the run.
  Status set_cost_model(CostModel cost);

  // --- Query budget ----------------------------------------------------
  // Attaches a budget (validated against num_predicates()); every Try*
  // access is checked against it before anything is billed. The budget
  // is configuration: it persists across Reset(). Replace it with a
  // default-constructed QueryBudget to lift all limits.
  Status set_budget(QueryBudget budget);
  const QueryBudget& budget() const { return budget_; }

  // Elapsed time on the paper's Eq. 1 clock: accrued cost plus every
  // simulated penalty served so far (timeouts, backoff waits). The
  // sequential engines check the deadline against this; the parallel
  // executor additionally enforces it on its makespan.
  double elapsed_time() const { return accrued_cost_ + total_penalty_; }

  // True when the accrued cost reached the cost cap.
  bool cost_budget_exhausted() const {
    return budget_.max_cost > 0.0 && accrued_cost_ >= budget_.max_cost;
  }

  // True when elapsed_time() reached the deadline.
  bool deadline_exceeded() const {
    return budget_.deadline > 0.0 && elapsed_time() >= budget_.deadline;
  }

  // True when any *global* budget dimension is spent (cost or deadline).
  bool budget_exhausted() const {
    return cost_budget_exhausted() || deadline_exceeded();
  }

  // True when predicate i's access quota is spent.
  bool quota_exhausted(PredicateId i) const {
    NC_CHECK(i < num_predicates());
    if (budget_.predicate_quota.empty()) return false;
    const size_t quota = budget_.predicate_quota[i];
    return quota > 0 &&
           stats_.sorted_count[i] + stats_.random_count[i] >= quota;
  }

  // True when the budget would refuse the next access on predicate i
  // (globally spent or quota spent). Breaker state is separate:
  // see breaker_open().
  bool access_barred(PredicateId i) const {
    return budget_exhausted() || quota_exhausted(i);
  }

  // Records one budget refusal in AccessStats. For callers that check
  // access_barred() *before* issuing (the baselines' crashing wrappers
  // leave them no other choice), so proactively barred accesses count
  // exactly like Try*-level kResourceExhausted refusals.
  void NoteBudgetRefusal() { ++stats_.budget_refusals; }

  // --- Circuit breaker -------------------------------------------------
  // Attaches a breaker policy (validated). Like the budget, the policy
  // persists across Reset(); the runtime state (trip counts, open
  // breakers) does not.
  Status set_circuit_breaker(CircuitBreakerPolicy policy);
  const CircuitBreakerPolicy& circuit_breaker() const { return breaker_; }

  // True while predicate i's breaker is open and still cooling down
  // (the next access would fast-fail rather than probe). With a replica
  // fleet, true only when *every* replica of i is dead or cooling - a
  // single open replica breaker just steers routing.
  bool breaker_open(PredicateId i) const;

  // True when any predicate's breaker is currently open (cooling down).
  bool any_breaker_open() const;

  // --- Replica fleet ---------------------------------------------------
  // Attaches a replica fleet (nullptr detaches; must outlive the
  // SourceSet). Predicates the fleet configures are served through their
  // replica sets: per-replica fault draws (the plain fault injector is
  // bypassed for them), per-replica breaker state with failover, routing
  // policies, and hedged sorted access (docs/REPLICAS.md). Unconfigured
  // predicates keep the plain single-source path. Rejected when the
  // fleet names a predicate this SourceSet does not have.
  Status set_replica_fleet(ReplicaFleet* fleet);
  bool has_fleet() const { return fleet_ != nullptr; }
  const ReplicaFleet& fleet() const {
    NC_CHECK(fleet_ != nullptr);
    return *fleet_;
  }

  // --- Fault injection -------------------------------------------------
  // Attaches a fault injector (nullptr detaches; must outlive the
  // SourceSet). Without one, accesses never fail. Fleet-configured
  // predicates draw from their per-replica injectors instead.
  void set_fault_injector(FaultInjector* injector);

  // Configures retries; `jitter_seed` drives the backoff jitter draws.
  // The policy must validate.
  void set_retry_policy(const RetryPolicy& policy, uint64_t jitter_seed = 0);
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  // Permanently kills the source serving predicate i: both access types
  // are downgraded for the whole attribute group (a multi-attribute
  // source dies as a unit). Idempotent. Scripted counterpart of an
  // injector-drawn kSourceDown.
  void KillSource(PredicateId i);

  // True when predicate i lost at least one construction-time capability
  // to a source death.
  bool source_down(PredicateId i) const { return source_down_[i]; }

  // True when any source died during this run.
  bool any_source_down() const { return sources_down_ > 0; }

  // Simulated extra latency (timeouts served, backoff waits) of the most
  // recent Try*/plain access, in cost units. 0 when the access succeeded
  // on the first attempt. The parallel executor folds this into the
  // access's completion time.
  double last_access_penalty() const { return last_access_penalty_; }

  const AccessStats& stats() const { return stats_; }

  // Cost accrued so far, priced access-by-access (robust to cost swaps
  // and inflated by per-attempt retry charges).
  double accrued_cost() const { return accrued_cost_; }

  // Restores the SourceSet to its initial state: cursors rewound,
  // counters, accrued cost, and any trace cleared; latency and backoff
  // RNGs reseeded so reruns replay identical draws; dead sources revived
  // (their construction-time capabilities restored) and the fault
  // injector, if any, rewound. Budget and breaker *policies* persist
  // (they are configuration); breaker runtime state clears.
  void Reset();

  // --- Checkpoint / resume ---------------------------------------------
  // Snapshots the full mid-run state (cursors, bounds, stats, accrued
  // cost, probed masks, breaker state, RNG streams, injector state,
  // attempt trace). See SourceCheckpoint.
  SourceCheckpoint Checkpoint() const;

  // Restores a snapshot onto this SourceSet, which must be configured
  // identically to the one that produced it (same predicate count,
  // construction-time capabilities, injector attachment, scripts at
  // least as long as the restored cursors). InvalidArgument /
  // FailedPrecondition on mismatch, with no partial state applied for
  // shape mismatches.
  Status RestoreCheckpoint(const SourceCheckpoint& checkpoint);

  // --- Access tracing --------------------------------------------------
  // When enabled, every performed access is appended to trace() in order.
  // Failed attempts never enter the trace: a retried-then-successful
  // access traces exactly like an undisturbed one. Used by diagnostics
  // and by the plan-property tests (e.g. verifying the SR shape of SR/G
  // executions).
  void EnableTrace() { trace_enabled_ = true; }
  const std::vector<Access>& trace() const { return trace_; }

  // The replay trace: every attempt in order, failed ones included, so a
  // traced faulty run round-trips losslessly through
  // SerializeAttemptTrace / ParseAttemptTrace. Populated alongside
  // trace() while tracing is enabled.
  const std::vector<AccessAttempt>& attempt_trace() const {
    return attempt_trace_;
  }

  // --- Query-level observability ---------------------------------------
  // Attaches a tracer (nullptr detaches; must outlive the SourceSet).
  // Every performed access and every failed attempt is recorded with its
  // charge and the accrued-cost clock. A detached or disabled tracer
  // costs one branch per access.
  void set_tracer(obs::QueryTracer* tracer) { tracer_ = tracer; }
  obs::QueryTracer* tracer() const { return tracer_; }

  // Attaches a profiler (nullptr detaches; must outlive the SourceSet).
  // The access seam then times the sorted/random paths, cache
  // probe/fill, replica failover re-routes, and hedge issuance as
  // nested cost-center scopes (obs/profiler.h). A detached or disabled
  // profiler costs one branch per access; answers are bit-identical
  // either way (profiling never changes control flow).
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }
  obs::Profiler* profiler() const { return profiler_; }

  // --- Cross-query telemetry -------------------------------------------
  // Attaches a TelemetryHub (nullptr detaches; must outlive the
  // SourceSet). The hub is fed the per-replica service latencies,
  // per-access charges, and completion latencies of every access, and -
  // unlike everything else here - it SURVIVES Reset(): right before the
  // fleet's runtime is rewound, the hub captures its health (deaths,
  // open breakers, routing EWMAs) and re-applies it afterwards, so the
  // next query starts warm. With HedgePolicy::adaptive, the hub also
  // supplies the hedge trigger. A detached or disabled hub costs one
  // branch per access. Checkpoints deliberately exclude hub state (a
  // resumed query re-warms from the live hub; see obs/telemetry.h).
  // Attaching an enabled hub to an untouched fleet immediately re-applies
  // the hub's health snapshot (idempotent; a no-op without one).
  void set_telemetry_hub(obs::TelemetryHub* hub);
  obs::TelemetryHub* telemetry_hub() const { return hub_; }

  // --- Cross-query access cache ----------------------------------------
  // Attaches a shared AccessCache (nullptr detaches; must outlive the
  // SourceSet; typically one cache serves every worker of a
  // QueryServer). Sorted accesses whose position lies inside the shared
  // stream's materialized prefix, and random accesses whose (predicate,
  // object) is cached, are served from the cache: every engine-visible
  // effect (cursor, bound, counts, trace) matches the real access, but
  // only CacheConfig::hit_cost is billed - into the same Eq. 1 cells,
  // so billing conservation holds. Misses at the stream head claim a
  // single-flight slot, perform the real access, and publish it for
  // concurrent queries. Attaching (and every Reset()) binds the cache
  // to this provider's content fingerprint: a cache reused across
  // datasets is wiped instead of ever serving stale scores. Checkpoints
  // deliberately exclude cache state (a restored cursor past the shared
  // prefix simply bypasses the cache; see docs/CACHE.md).
  void set_access_cache(cache::AccessCache* cache);
  cache::AccessCache* access_cache() const { return access_cache_; }

  // Per-query cache tallies (zeroed by Reset(); kept outside
  // AccessStats so the checkpoint format is unchanged).
  struct QueryCacheHits {
    size_t sorted_hits = 0;
    size_t random_hits = 0;
    size_t inflight_merges = 0;
    double hit_cost_accrued = 0.0;
  };
  const QueryCacheHits& cache_hits() const { return cache_hits_; }

  // --- Latency model (used by the parallel executor) ------------------
  // Each access's simulated latency is unit_cost * (1 + jitter * U) with
  // U uniform in [0, 1). jitter = 0 (the default) makes latency equal the
  // unit cost, matching the paper's elapsed-time reading of Eq. 1.
  void set_latency_jitter(double jitter, uint64_t seed);

  // Draws the latency for one access of the given shape.
  double DrawLatency(AccessType type, PredicateId i);

 private:
  // Shared initialization for both constructors.
  SourceSet(ScoreProvider* provider,
            std::unique_ptr<DatasetScoreProvider> owned,
            const Dataset* data, CostModel cost);

  // What the replica layer decided for the access in flight, consumed by
  // the success-path billing in Try{Sorted,Random}Access. Inactive on
  // the plain single-source path.
  struct FleetServe {
    bool active = false;
    // True when this access issues a priced request (every random
    // access; sorted accesses at a page boundary).
    bool request = false;
    size_t routed = 0;  // Replica billed for the primary request.
    size_t winner = 0;  // Replica whose response completed the access.
    double completion_latency = 0.0;
    bool hedged = false;
    bool hedge_won = false;
  };

  // Runs the attempt/retry loop for `access` whose request costs
  // `unit_cost`. OK when an attempt succeeded; kUnavailable after a death
  // or once attempts are exhausted. Accumulates per-attempt charges and
  // last_access_penalty_, and records failed attempts in the attempt
  // trace and the tracer. Fleet-configured predicates route through
  // AttemptFleetAccess instead.
  Status AttemptAccess(const Access& access, double unit_cost);

  // The fleet analogue of the attempt loop: routes the access per the
  // predicate's policy, retries within a replica, fails over across
  // replicas, manages per-replica breakers, and (for priced sorted
  // requests) hedges. Fills fleet_serve_ on success.
  Status AttemptFleetAccess(const Access& access, double unit_cost);

  // Runs up to `attempt_cap` attempts against replica r. OK on success;
  // kUnavailable when the replica's attempts are exhausted or it died
  // (`*died` reports which).
  Status AttemptOnReplica(const Access& access, double unit_cost,
                          PredicateId i, size_t r, size_t attempt_cap,
                          bool is_last_replica, bool* died);

  // Books the completion of a successful fleet request: latency draw,
  // hedging (suppressed for half-open probes), EWMA/sample recording,
  // and fleet_serve_.
  void CompleteFleetRequest(const Access& access, double unit_cost,
                            PredicateId i, size_t routed,
                            const std::vector<size_t>& order, bool probed);

  // Downgrades the capabilities of predicate i's attribute group and
  // counts the death. `via_injector` marks deaths drawn by the injector
  // (vs scripted KillSource calls); both go through set_cost_model's
  // removal-only guard.
  void MarkSourceDown(PredicateId i);

  // Serves one access from the attached cache, replicating every
  // engine-visible effect of the real access except the bill (only the
  // configured hit cost accrues). `merged` marks an in-flight merge.
  Status ServeSortedFromCache(PredicateId i,
                              const cache::CachedSortedEntry& entry,
                              bool merged, std::optional<SortedHit>* out);
  Status ServeRandomFromCache(PredicateId i, ObjectId u, Score score,
                              bool merged, Score* out);

  // Content-derived identity of the backing provider (shape + sampled
  // scores), used to bind the attached cache to this dataset.
  uint64_t DatasetFingerprint() const;

  // Shared-stream topology component of the cache key: the fleet's
  // topology token for fleet-served predicates, 0 for the plain path.
  uint64_t StreamTopology(PredicateId i) const;

  ScoreProvider* provider_;
  std::unique_ptr<DatasetScoreProvider> owned_provider_;
  // Non-null only for Dataset-backed sources.
  const Dataset* data_;
  CostModel cost_;
  // Construction-time unit costs, used to revive dead sources on Reset.
  CostModel initial_cost_;
  AccessStats stats_;
  double accrued_cost_ = 0.0;
  // Cursor into Dataset::SortedOrder per predicate.
  std::vector<size_t> positions_;
  std::vector<Score> last_seen_;
  // Per-object bitmask of predicates already random-probed (m <= 64).
  std::unordered_map<ObjectId, uint64_t> probed_;
  double latency_jitter_ = 0.0;
  // Jitter seed, remembered so Reset() replays the same latency stream.
  uint64_t latency_seed_ = 0;
  Rng latency_rng_;
  FaultInjector* injector_ = nullptr;
  RetryPolicy retry_policy_;
  uint64_t retry_seed_ = 0;
  Rng retry_rng_;
  std::vector<bool> source_down_;
  size_t sources_down_ = 0;
  double last_access_penalty_ = 0.0;
  // Sum of every last_access_penalty_ charged this run; elapsed_time()
  // reads accrued_cost_ + total_penalty_.
  double total_penalty_ = 0.0;
  QueryBudget budget_;
  CircuitBreakerPolicy breaker_;
  struct BreakerState {
    size_t consecutive_failures = 0;
    bool open = false;
    // elapsed_time() value at which an open breaker admits a probe.
    double open_until = 0.0;
  };
  std::vector<BreakerState> breaker_state_;
  ReplicaFleet* fleet_ = nullptr;
  FleetServe fleet_serve_;
  bool trace_enabled_ = false;
  std::vector<Access> trace_;
  std::vector<AccessAttempt> attempt_trace_;
  obs::QueryTracer* tracer_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::TelemetryHub* hub_ = nullptr;
  cache::AccessCache* access_cache_ = nullptr;
  QueryCacheHits cache_hits_;
};

}  // namespace nc

#endif  // NC_ACCESS_SOURCE_H_
