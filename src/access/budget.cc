#include "access/budget.h"

#include <cmath>
#include <sstream>

namespace nc {

bool QueryBudget::unlimited() const {
  if (max_cost > 0.0 || deadline > 0.0) return false;
  for (size_t quota : predicate_quota) {
    if (quota > 0) return false;
  }
  return true;
}

Status QueryBudget::Validate(size_t num_predicates) const {
  if (!(max_cost >= 0.0) || !std::isfinite(max_cost)) {
    return Status::InvalidArgument("max_cost must be finite and >= 0");
  }
  if (!(deadline >= 0.0) || !std::isfinite(deadline)) {
    return Status::InvalidArgument("deadline must be finite and >= 0");
  }
  if (!predicate_quota.empty() &&
      predicate_quota.size() != num_predicates) {
    return Status::InvalidArgument(
        "predicate_quota must be empty or cover every predicate");
  }
  return Status::OK();
}

std::string QueryBudget::ToString() const {
  if (unlimited()) return "unlimited";
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << " ";
    first = false;
  };
  if (max_cost > 0.0) {
    sep();
    os << "cost<=" << max_cost;
  }
  if (deadline > 0.0) {
    sep();
    os << "deadline<=" << deadline;
  }
  bool any_quota = false;
  for (size_t quota : predicate_quota) any_quota = any_quota || quota > 0;
  if (any_quota) {
    sep();
    os << "quota=(";
    for (size_t i = 0; i < predicate_quota.size(); ++i) {
      if (i > 0) os << ",";
      os << predicate_quota[i];
    }
    os << ")";
  }
  return os.str();
}

}  // namespace nc
