// Fault injection and retry for the access path.
//
// The paper treats sources as autonomous Web services, and real Web
// sources fail: requests error out transiently, time out, and sources
// disappear mid-query. This header models those behaviors so every layer
// above SourceSet can be exercised against them:
//
//   * FaultInjector draws a FaultKind for each access *attempt* from
//     seeded per-predicate rates (plus optional scripted outcomes and a
//     deterministic die-after-N trigger), so failure scenarios replay
//     exactly from a seed.
//   * RetryPolicy configures how SourceSet reacts to a failed attempt:
//     how many attempts to make, and the exponential backoff (with
//     jitter) between them. Every attempt - failed or not - is paid for,
//     so retries inflate SourceSet::accrued_cost() and show up in
//     AccessStats; they never change what the access returns.
//
// A transient error or timeout makes one attempt fail; the access as a
// whole fails only when every attempt is exhausted (Status kUnavailable,
// no source state consumed). kSourceDown is permanent: the source's
// capabilities are downgraded for the rest of the run and every later
// attempt on it fails immediately. SourceSet::Reset() revives dead
// sources and resets the injector, so back-to-back runs replay the same
// failure sequence.

#ifndef NC_ACCESS_FAULT_H_
#define NC_ACCESS_FAULT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/score.h"
#include "common/status.h"

namespace nc {

// Outcome of one access attempt, drawn before the attempt is served.
enum class FaultKind {
  kNone,        // The attempt succeeds.
  kTransient,   // The attempt fails fast (e.g. HTTP 503); retryable.
  kTimeout,     // The attempt fails after a full timeout; retryable.
  kSourceDown,  // The source dies permanently; no retry can help.
};

// "Transient", "Timeout", ... for logs and test messages.
const char* FaultKindName(FaultKind kind);

// Per-predicate failure behavior. Rates are per *attempt* and must sum to
// at most 1; the remainder is the success probability.
struct FaultProfile {
  double transient_rate = 0.0;
  double timeout_rate = 0.0;
  // Probability that an attempt reveals the source died permanently.
  double death_rate = 0.0;
  // Deterministic death switch: the source dies on attempt number
  // `die_after_attempts` + 1 (0 disables). Useful for scripted
  // mid-run-death tests and benchmarks.
  size_t die_after_attempts = 0;

  Status Validate() const;
};

// How SourceSet reacts to failed attempts.
struct RetryPolicy {
  // Total attempts per access, including the first (>= 1).
  size_t max_attempts = 3;
  // Simulated wait before the r-th retry:
  //   backoff_base * backoff_multiplier^(r-1) * (1 + backoff_jitter * U)
  // with U uniform in [0, 1). Expressed in the same units as access costs
  // (the paper's elapsed-time reading of Eq. 1); feeds the parallel
  // executor's clock through SourceSet::last_access_penalty().
  double backoff_base = 0.25;
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.1;
  // Simulated time one timed-out attempt wastes, as a multiple of the
  // access's unit cost (a timeout holds the slot for the full deadline;
  // a transient error fails fast).
  double timeout_latency_factor = 1.0;
  // Fraction of the access's unit cost charged for each *failed* attempt
  // (the request was sent; the source billed it). The successful attempt
  // is charged through the normal accounting path.
  double retry_cost_factor = 1.0;

  Status Validate() const;

  // Simulated backoff delay before retry number `retry` (1-based). `rng`
  // supplies the jitter draw and may be null when backoff_jitter == 0.
  double BackoffDelay(size_t retry, Rng* rng) const;
};

// Per-predicate circuit breaker. When a predicate's accesses keep failing
// (every attempt exhausted, access abandoned), paying the full retry and
// backoff schedule on each subsequent access just burns budget. With a
// breaker configured, `failure_threshold` consecutive abandoned accesses
// trip the predicate's breaker *open*: accesses on it fail fast
// (kUnavailable) with no attempt made, nothing billed, and no penalty.
// After `cooldown` elapsed-time units the breaker turns *half-open*: the
// next access sends exactly one probe attempt. Success closes the breaker;
// another failure re-opens it for a fresh cooldown. Trips and fast-fails
// are counted in AccessStats and exported to MetricsRegistry.
struct CircuitBreakerPolicy {
  // Consecutive abandoned accesses on one predicate before its breaker
  // trips. 0 disables the breaker entirely.
  size_t failure_threshold = 0;
  // Elapsed time (cost units, SourceSet::elapsed_time() clock) an open
  // breaker waits before allowing a half-open probe.
  double cooldown = 4.0;

  bool enabled() const { return failure_threshold > 0; }

  Status Validate() const;
};

// Draws attempt outcomes. Deterministic given the seed: the sequence of
// NextOutcome calls fully determines every draw, and Reset() rewinds the
// injector to its construction state (scripts included).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  // Profile applied to predicates without an explicit one.
  void set_default_profile(const FaultProfile& profile);
  void set_profile(PredicateId i, const FaultProfile& profile);

  // Prepends scripted outcomes for predicate i: the next |outcomes|
  // attempts on i consume the script before any random draw happens.
  // Deterministic tests are built from scripts, not from rate tuning.
  void Script(PredicateId i, std::vector<FaultKind> outcomes);

  // Outcome of the next attempt on predicate i.
  FaultKind NextOutcome(PredicateId i);

  // Attempts drawn so far for predicate i (scripted and random).
  size_t attempts(PredicateId i) const;

  // Rewinds to the construction state: RNG reseeded, attempt counters
  // cleared, scripts restored.
  void Reset();

  // --- Checkpoint support ----------------------------------------------
  // The injector's replayable state: RNG stream, per-predicate attempt
  // counters, and per-predicate script cursors. Counter/cursor snapshots
  // are sorted by predicate so identical states serialize identically.
  std::string rng_state() const { return rng_.SerializeState(); }
  std::vector<std::pair<PredicateId, size_t>> attempt_counters() const;
  std::vector<std::pair<PredicateId, size_t>> script_cursors() const;

  // Restores a snapshot taken by the accessors above. Profiles and the
  // scripts themselves are configuration, not state: the caller is
  // expected to have configured this injector identically before
  // restoring. InvalidArgument on malformed RNG text or on a script
  // cursor pointing past its (current) script.
  Status RestoreState(
      const std::string& rng_state,
      const std::vector<std::pair<PredicateId, size_t>>& attempt_counters,
      const std::vector<std::pair<PredicateId, size_t>>& script_cursors);

 private:
  const FaultProfile& ProfileFor(PredicateId i) const;

  uint64_t seed_;
  Rng rng_;
  FaultProfile default_profile_;
  std::unordered_map<PredicateId, FaultProfile> profiles_;
  // Scripts as originally registered (restored by Reset) and the cursor
  // of each predicate into its script.
  std::unordered_map<PredicateId, std::vector<FaultKind>> scripts_;
  std::unordered_map<PredicateId, size_t> script_pos_;
  std::unordered_map<PredicateId, size_t> attempts_;
};

}  // namespace nc

#endif  // NC_ACCESS_FAULT_H_
