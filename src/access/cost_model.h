// The access cost model of Section 3.2.
//
// Each predicate p_i has a unit sorted-access cost cs_i and a unit
// random-access cost cr_i; either may be kImpossibleCost to mark the
// access type unsupported (Figure 2's capability matrix). The total cost
// of an execution is sum_i (ns_i * cs_i + nr_i * cr_i)  (Eq. 1).

#ifndef NC_ACCESS_COST_MODEL_H_
#define NC_ACCESS_COST_MODEL_H_

#include <cmath>
#include <string>
#include <vector>

#include "common/score.h"
#include "common/status.h"

namespace nc {

struct CostModel {
  // cs_i: unit cost of one sorted access on predicate i.
  std::vector<double> sorted_cost;
  // cr_i: unit cost of one random access on predicate i.
  std::vector<double> random_cost;
  // Optional page sizes b_i >= 1: Web sources return result *pages*, so
  // one sorted-access charge of cs_i buys b_i consecutive stream entries
  // (the charge lands on the first entry of each page). Empty means
  // b_i = 1 everywhere (the paper's per-entry model).
  std::vector<size_t> sorted_page_size;
  // Optional source groups: predicates served by the same multi-attribute
  // source share a group id, and a sorted hit on any of them carries the
  // object's scores for the *whole* group (Example 2: one hotels.com row
  // holds closeness, stars, and price). Empty means every predicate is
  // its own source. Group ids are arbitrary but equal-means-bundled.
  std::vector<int> attribute_groups;

  CostModel() = default;
  CostModel(std::vector<double> sorted, std::vector<double> random)
      : sorted_cost(std::move(sorted)), random_cost(std::move(random)) {}

  // A scenario where every predicate has sorted cost `cs` and random cost
  // `cr` (the classic symmetric settings, e.g. TA's cs = cr).
  static CostModel Uniform(size_t num_predicates, double cs, double cr);

  size_t num_predicates() const { return sorted_cost.size(); }

  bool has_sorted(PredicateId i) const {
    return std::isfinite(sorted_cost[i]);
  }
  bool has_random(PredicateId i) const {
    return std::isfinite(random_cost[i]);
  }
  bool any_sorted() const;
  bool any_random() const;

  // Page size for predicate i (1 when unset).
  size_t page_size(PredicateId i) const {
    return sorted_page_size.empty() ? 1 : sorted_page_size[i];
  }

  // Amortized per-entry sorted cost: cs_i / b_i.
  double sorted_entry_cost(PredicateId i) const {
    return sorted_cost[i] / static_cast<double>(page_size(i));
  }

  // True when predicates i and j are served by the same source row.
  bool same_group(PredicateId i, PredicateId j) const {
    if (attribute_groups.empty()) return i == j;
    return attribute_groups[i] == attribute_groups[j];
  }

  // OK iff the two vectors agree in size, are nonempty, and every finite
  // cost is nonnegative. On top of ValidateStructure, requires every
  // predicate to support at least one access type - the paper's notion of
  // a well-formed scenario, demanded of every *initial* cost model.
  Status Validate() const;

  // The structural subset of Validate: sizes, NaN/negativity, page sizes,
  // groups. A predicate with no capability at all passes - the shape a
  // source leaves behind when it dies mid-run.
  Status ValidateStructure() const;

  // e.g. "[cs=(1,1) cr=(10,inf)]".
  std::string ToString() const;
};

}  // namespace nc

#endif  // NC_ACCESS_COST_MODEL_H_
