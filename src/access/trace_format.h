// Access-trace rendering and the lossless replay format.
//
// Two trace shapes exist:
//
//   * The classic *access trace* (std::vector<Access>): the successful
//     accesses in execution order. FormatTrace run-length-encodes it
//     into the pattern a person actually wants to see:
//
//         3xsa_0, sa_1, ra_1(u42), 2xsa_0, ...
//
//     Consecutive sorted accesses on the same predicate collapse; random
//     accesses keep their targets (or collapse by predicate with
//     `targets=false`).
//
//   * The *attempt trace* (std::vector<AccessAttempt>): every attempt,
//     including the failed ones the fault layer injected, so a traced
//     faulty run round-trips losslessly through text. Serialized tokens
//     extend the access syntax with outcome suffixes:
//
//         sa_0, sa_0~T, sa_0~O!, ra_1(u42)~D
//
//     where ~T / ~O / ~D mark a transient error, a timeout, and a
//     permanent source death, and a trailing ! marks the attempt on
//     which the access was abandoned (retries exhausted). A token with
//     no suffix is a successful attempt. SerializeAttemptTrace and
//     ParseAttemptTrace invert each other exactly.

#ifndef NC_ACCESS_TRACE_FORMAT_H_
#define NC_ACCESS_TRACE_FORMAT_H_

#include <string>
#include <vector>

#include "access/access.h"
#include "access/fault.h"
#include "common/status.h"

namespace nc {

// One access attempt as SourceSet performed it. `fault` is kNone for a
// successful attempt; `abandoned` marks the final failed attempt of an
// access whose retries were exhausted (implies fault != kNone). A death
// (kSourceDown) always ends its access, so it never needs the flag.
struct AccessAttempt {
  Access access;
  FaultKind fault = FaultKind::kNone;
  bool abandoned = false;

  friend bool operator==(const AccessAttempt& a, const AccessAttempt& b) {
    return a.access == b.access && a.fault == b.fault &&
           a.abandoned == b.abandoned;
  }
};

struct TraceFormatOptions {
  // Include ra targets ("ra_1(u42)") or collapse runs by predicate
  // ("5xra_1").
  bool targets = true;
  // Truncate after this many rendered segments (0 = no limit); a
  // "... (+N more)" suffix reports the cut.
  size_t max_segments = 0;
};

std::string FormatTrace(const std::vector<Access>& trace,
                        const TraceFormatOptions& options = {});

// Per-predicate access-count summary: "sa=(12,3) ra=(0,7)".
std::string SummarizeTrace(const std::vector<Access>& trace,
                           size_t num_predicates);

// --- Replay format -----------------------------------------------------

// Comma-separated token form, one token per attempt, in order. Empty
// string for an empty trace.
std::string SerializeAttemptTrace(const std::vector<AccessAttempt>& trace);

// Parses SerializeAttemptTrace output back; *out is cleared first.
// InvalidArgument on malformed input (out is left cleared).
Status ParseAttemptTrace(const std::string& text,
                         std::vector<AccessAttempt>* out);

// Drops failed attempts, keeping the successful accesses: the classic
// access trace a replayed attempt trace reduces to.
std::vector<Access> SuccessfulAccesses(
    const std::vector<AccessAttempt>& trace);

}  // namespace nc

#endif  // NC_ACCESS_TRACE_FORMAT_H_
