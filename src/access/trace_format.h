// Compact rendering of access traces for logs and diagnostics.
//
// A raw trace of ten thousand accesses is unreadable; FormatTrace
// run-length-encodes it into the pattern a person actually wants to see:
//
//     3xsa_0, sa_1, ra_1(u42), 2xsa_0, ...
//
// Consecutive sorted accesses on the same predicate collapse; random
// accesses keep their targets (or collapse by predicate with
// `targets=false`).

#ifndef NC_ACCESS_TRACE_FORMAT_H_
#define NC_ACCESS_TRACE_FORMAT_H_

#include <string>
#include <vector>

#include "access/access.h"

namespace nc {

struct TraceFormatOptions {
  // Include ra targets ("ra_1(u42)") or collapse runs by predicate
  // ("5xra_1").
  bool targets = true;
  // Truncate after this many rendered segments (0 = no limit); a
  // "... (+N more)" suffix reports the cut.
  size_t max_segments = 0;
};

std::string FormatTrace(const std::vector<Access>& trace,
                        const TraceFormatOptions& options = {});

// Per-predicate access-count summary: "sa=(12,3) ra=(0,7)".
std::string SummarizeTrace(const std::vector<Access>& trace,
                           size_t num_predicates);

}  // namespace nc

#endif  // NC_ACCESS_TRACE_FORMAT_H_
