#include "access/cost_model.h"

#include <sstream>

namespace nc {

namespace {

void AppendCosts(std::ostringstream* os, const std::vector<double>& costs) {
  (*os) << "(";
  for (size_t i = 0; i < costs.size(); ++i) {
    if (i > 0) (*os) << ",";
    if (std::isfinite(costs[i])) {
      (*os) << costs[i];
    } else {
      (*os) << "inf";
    }
  }
  (*os) << ")";
}

}  // namespace

CostModel CostModel::Uniform(size_t num_predicates, double cs, double cr) {
  return CostModel(std::vector<double>(num_predicates, cs),
                   std::vector<double>(num_predicates, cr));
}

bool CostModel::any_sorted() const {
  for (size_t i = 0; i < sorted_cost.size(); ++i) {
    if (has_sorted(static_cast<PredicateId>(i))) return true;
  }
  return false;
}

bool CostModel::any_random() const {
  for (size_t i = 0; i < random_cost.size(); ++i) {
    if (has_random(static_cast<PredicateId>(i))) return true;
  }
  return false;
}

Status CostModel::Validate() const {
  NC_RETURN_IF_ERROR(ValidateStructure());
  for (size_t i = 0; i < sorted_cost.size(); ++i) {
    if (!has_sorted(static_cast<PredicateId>(i)) &&
        !has_random(static_cast<PredicateId>(i))) {
      return Status::InvalidArgument(
          "predicate " + std::to_string(i) +
          " supports neither sorted nor random access");
    }
  }
  return Status::OK();
}

Status CostModel::ValidateStructure() const {
  if (sorted_cost.empty()) {
    return Status::InvalidArgument("cost model has no predicates");
  }
  if (sorted_cost.size() != random_cost.size()) {
    return Status::InvalidArgument(
        "sorted_cost and random_cost sizes differ");
  }
  for (size_t i = 0; i < sorted_cost.size(); ++i) {
    if (std::isnan(sorted_cost[i]) || std::isnan(random_cost[i])) {
      return Status::InvalidArgument("cost is NaN");
    }
    if (sorted_cost[i] < 0.0 || random_cost[i] < 0.0) {
      return Status::InvalidArgument("negative access cost");
    }
  }
  if (!sorted_page_size.empty()) {
    if (sorted_page_size.size() != sorted_cost.size()) {
      return Status::InvalidArgument("sorted_page_size size mismatch");
    }
    for (size_t b : sorted_page_size) {
      if (b == 0) return Status::InvalidArgument("page size must be >= 1");
    }
  }
  if (!attribute_groups.empty() &&
      attribute_groups.size() != sorted_cost.size()) {
    return Status::InvalidArgument("attribute_groups size mismatch");
  }
  return Status::OK();
}

std::string CostModel::ToString() const {
  std::ostringstream os;
  os << "[cs=";
  AppendCosts(&os, sorted_cost);
  os << " cr=";
  AppendCosts(&os, random_cost);
  os << "]";
  return os.str();
}

}  // namespace nc
