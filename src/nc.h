// Umbrella header: the full public API of nc-topk.
//
//   #include "nc.h"
//
// pulls in everything an application needs - datasets and generators,
// sources and cost models, scoring functions, the NC engine with its
// policies and planner, the parallel/adaptive/session executors, and the
// baseline algorithms. Individual headers remain includable for faster
// builds; this is the convenience entry point.

#ifndef NC_NC_H_
#define NC_NC_H_

#include "access/access.h"
#include "access/cost_model.h"
#include "access/score_provider.h"
#include "access/source.h"
#include "access/trace_format.h"
#include "baselines/registry.h"
#include "common/rng.h"
#include "common/score.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/adaptive.h"
#include "core/engine.h"
#include "core/explain.h"
#include "core/parallel_executor.h"
#include "core/planner.h"
#include "core/random_policy.h"
#include "core/reference.h"
#include "core/result.h"
#include "core/session.h"
#include "core/srg_policy.h"
#include "core/tg.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/sampling.h"
#include "data/transforms.h"
#include "data/travel_agent.h"
#include "data/web_shop.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/tracer.h"
#include "scoring/scoring_function.h"

#endif  // NC_NC_H_
