// Monotonic scoring functions F(p_1, ..., p_m) -> [0, 1] (Section 3.1).
//
// Monotonicity is the only structural assumption the NC framework makes:
// it lets the engine compute an object's maximal-possible score by
// substituting each unevaluated predicate with its current upper bound
// (Eq. 3). The library ships the aggregates the paper uses (min for Query
// Q1, avg for Query Q2) plus the common middleware aggregates; users can
// subclass ScoringFunction for arbitrary monotone combinations.

#ifndef NC_SCORING_SCORING_FUNCTION_H_
#define NC_SCORING_SCORING_FUNCTION_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/score.h"

namespace nc {

// Interface for a monotone aggregate over `arity` predicate scores.
// Implementations must be monotonic: raising any input never lowers the
// output (the property tests in tests/scoring_function_test.cc sweep it).
class ScoringFunction {
 public:
  virtual ~ScoringFunction() = default;

  // Evaluates F at `x`; x.size() must equal arity(). Inputs and result are
  // in [0, 1].
  virtual Score Evaluate(std::span<const Score> x) const = 0;

  virtual size_t arity() const = 0;

  // Short label for reports, e.g. "min", "avg", "wsum(0.3,0.7)".
  virtual std::string name() const = 0;
};

// F = min(x_1..x_m): the fuzzy-conjunction semantics of Query Q1.
class MinFunction final : public ScoringFunction {
 public:
  explicit MinFunction(size_t arity);
  Score Evaluate(std::span<const Score> x) const override;
  size_t arity() const override { return arity_; }
  std::string name() const override { return "min"; }

 private:
  size_t arity_;
};

// F = max(x_1..x_m): fuzzy disjunction.
class MaxFunction final : public ScoringFunction {
 public:
  explicit MaxFunction(size_t arity);
  Score Evaluate(std::span<const Score> x) const override;
  size_t arity() const override { return arity_; }
  std::string name() const override { return "max"; }

 private:
  size_t arity_;
};

// F = (x_1 + ... + x_m) / m: Query Q2's avg.
class AverageFunction final : public ScoringFunction {
 public:
  explicit AverageFunction(size_t arity);
  Score Evaluate(std::span<const Score> x) const override;
  size_t arity() const override { return arity_; }
  std::string name() const override { return "avg"; }

 private:
  size_t arity_;
};

// F = sum_i w_i x_i with w_i >= 0 and sum w_i = 1 (weights are normalized
// at construction so the result stays in [0, 1]).
class WeightedSumFunction final : public ScoringFunction {
 public:
  explicit WeightedSumFunction(std::vector<double> weights);
  Score Evaluate(std::span<const Score> x) const override;
  size_t arity() const override { return weights_.size(); }
  std::string name() const override;
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
};

// F = prod_i x_i: probabilistic-AND.
class ProductFunction final : public ScoringFunction {
 public:
  explicit ProductFunction(size_t arity);
  Score Evaluate(std::span<const Score> x) const override;
  size_t arity() const override { return arity_; }
  std::string name() const override { return "product"; }

 private:
  size_t arity_;
};

// F = (prod_i x_i)^(1/m): geometric mean.
class GeometricMeanFunction final : public ScoringFunction {
 public:
  explicit GeometricMeanFunction(size_t arity);
  Score Evaluate(std::span<const Score> x) const override;
  size_t arity() const override { return arity_; }
  std::string name() const override { return "geomean"; }

 private:
  size_t arity_;
};

// F = t-th smallest of x_1..x_m ("at least m - t + 1 criteria must
// hold"): quota semantics. t = 1 is min, t = m is max. Monotone: raising
// any coordinate never lowers an order statistic.
class OrderStatisticFunction final : public ScoringFunction {
 public:
  // `t` is 1-based and must be in [1, arity].
  OrderStatisticFunction(size_t arity, size_t t);
  Score Evaluate(std::span<const Score> x) const override;
  size_t arity() const override { return arity_; }
  std::string name() const override;
  size_t t() const { return t_; }

 private:
  size_t arity_;
  size_t t_;
};

// F = min_i max(x_i, 1 - w_i): Fagin's weighted fuzzy conjunction. A
// predicate with weight 1 must fully hold; weight 0 removes it (its term
// is always 1). Weights are in [0, 1] and are not normalized.
class WeightedMinFunction final : public ScoringFunction {
 public:
  explicit WeightedMinFunction(std::vector<double> weights);
  Score Evaluate(std::span<const Score> x) const override;
  size_t arity() const override { return weights_.size(); }
  std::string name() const override;
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
};

// Named constructors used by benchmarks and the registry.
enum class ScoringKind {
  kMin,
  kMax,
  kAverage,
  kProduct,
  kGeometricMean,
};

std::unique_ptr<ScoringFunction> MakeScoringFunction(ScoringKind kind,
                                                     size_t arity);

// Numeric forward-difference dF/dx_i at `x`, clamped to the unit cube.
// Used by the Quick-Combine / Stream-Combine baselines' indicators (and
// only by them; the NC optimizer deliberately does not rely on
// derivatives, which the paper notes do not exist usefully for min).
double PartialDerivative(const ScoringFunction& f, std::span<const Score> x,
                         PredicateId i, double step = 1e-3);

}  // namespace nc

#endif  // NC_SCORING_SCORING_FUNCTION_H_
