#include "scoring/scoring_function.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace nc {

MinFunction::MinFunction(size_t arity) : arity_(arity) {
  NC_CHECK(arity > 0);
}

Score MinFunction::Evaluate(std::span<const Score> x) const {
  NC_DCHECK(x.size() == arity_);
  Score lowest = x[0];
  for (size_t i = 1; i < x.size(); ++i) lowest = std::min(lowest, x[i]);
  return lowest;
}

MaxFunction::MaxFunction(size_t arity) : arity_(arity) {
  NC_CHECK(arity > 0);
}

Score MaxFunction::Evaluate(std::span<const Score> x) const {
  NC_DCHECK(x.size() == arity_);
  Score highest = x[0];
  for (size_t i = 1; i < x.size(); ++i) highest = std::max(highest, x[i]);
  return highest;
}

AverageFunction::AverageFunction(size_t arity) : arity_(arity) {
  NC_CHECK(arity > 0);
}

Score AverageFunction::Evaluate(std::span<const Score> x) const {
  NC_DCHECK(x.size() == arity_);
  Score total = 0.0;
  for (Score v : x) total += v;
  return total / static_cast<Score>(x.size());
}

WeightedSumFunction::WeightedSumFunction(std::vector<double> weights)
    : weights_(std::move(weights)) {
  NC_CHECK(!weights_.empty());
  double total = 0.0;
  for (double w : weights_) {
    NC_CHECK(w >= 0.0);
    total += w;
  }
  NC_CHECK(total > 0.0);
  for (double& w : weights_) w /= total;
}

Score WeightedSumFunction::Evaluate(std::span<const Score> x) const {
  NC_DCHECK(x.size() == weights_.size());
  Score total = 0.0;
  for (size_t i = 0; i < x.size(); ++i) total += weights_[i] * x[i];
  return ClampScore(total);
}

std::string WeightedSumFunction::name() const {
  std::ostringstream os;
  os << "wsum(";
  for (size_t i = 0; i < weights_.size(); ++i) {
    if (i > 0) os << ",";
    os << weights_[i];
  }
  os << ")";
  return os.str();
}

ProductFunction::ProductFunction(size_t arity) : arity_(arity) {
  NC_CHECK(arity > 0);
}

Score ProductFunction::Evaluate(std::span<const Score> x) const {
  NC_DCHECK(x.size() == arity_);
  Score total = 1.0;
  for (Score v : x) total *= v;
  return total;
}

GeometricMeanFunction::GeometricMeanFunction(size_t arity) : arity_(arity) {
  NC_CHECK(arity > 0);
}

Score GeometricMeanFunction::Evaluate(std::span<const Score> x) const {
  NC_DCHECK(x.size() == arity_);
  Score total = 1.0;
  for (Score v : x) total *= v;
  return std::pow(total, 1.0 / static_cast<double>(arity_));
}

OrderStatisticFunction::OrderStatisticFunction(size_t arity, size_t t)
    : arity_(arity), t_(t) {
  NC_CHECK(arity > 0);
  NC_CHECK(t >= 1 && t <= arity);
}

Score OrderStatisticFunction::Evaluate(std::span<const Score> x) const {
  NC_DCHECK(x.size() == arity_);
  // Selection by partial sort on a small stack copy; m is small (<= 64).
  std::vector<Score> sorted(x.begin(), x.end());
  std::nth_element(sorted.begin(), sorted.begin() + (t_ - 1), sorted.end());
  return sorted[t_ - 1];
}

std::string OrderStatisticFunction::name() const {
  return "orderstat(" + std::to_string(t_) + "/" + std::to_string(arity_) +
         ")";
}

WeightedMinFunction::WeightedMinFunction(std::vector<double> weights)
    : weights_(std::move(weights)) {
  NC_CHECK(!weights_.empty());
  for (double w : weights_) {
    NC_CHECK(w >= 0.0 && w <= 1.0);
  }
}

Score WeightedMinFunction::Evaluate(std::span<const Score> x) const {
  NC_DCHECK(x.size() == weights_.size());
  Score lowest = kMaxScore;
  for (size_t i = 0; i < x.size(); ++i) {
    lowest = std::min(lowest, std::max(x[i], 1.0 - weights_[i]));
  }
  return lowest;
}

std::string WeightedMinFunction::name() const {
  std::ostringstream os;
  os << "wmin(";
  for (size_t i = 0; i < weights_.size(); ++i) {
    if (i > 0) os << ",";
    os << weights_[i];
  }
  os << ")";
  return os.str();
}

std::unique_ptr<ScoringFunction> MakeScoringFunction(ScoringKind kind,
                                                     size_t arity) {
  switch (kind) {
    case ScoringKind::kMin:
      return std::make_unique<MinFunction>(arity);
    case ScoringKind::kMax:
      return std::make_unique<MaxFunction>(arity);
    case ScoringKind::kAverage:
      return std::make_unique<AverageFunction>(arity);
    case ScoringKind::kProduct:
      return std::make_unique<ProductFunction>(arity);
    case ScoringKind::kGeometricMean:
      return std::make_unique<GeometricMeanFunction>(arity);
  }
  NC_CHECK(false);
  return nullptr;
}

double PartialDerivative(const ScoringFunction& f, std::span<const Score> x,
                         PredicateId i, double step) {
  NC_CHECK(i < x.size());
  NC_CHECK(step > 0.0);
  std::vector<Score> probe(x.begin(), x.end());
  // Difference within the unit cube: step down if at the ceiling.
  const double hi = std::min(kMaxScore, probe[i] + step);
  const double lo = std::max(kMinScore, probe[i] - step);
  if (hi == lo) return 0.0;
  probe[i] = hi;
  const Score f_hi = f.Evaluate(probe);
  probe[i] = lo;
  const Score f_lo = f.Evaluate(probe);
  return (f_hi - f_lo) / (hi - lo);
}

}  // namespace nc
