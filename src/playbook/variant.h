// Seeded variant generation: axis matrices + bounded perturbations.
//
// A playbook run does not enumerate hand-picked scenarios; it *generates*
// them. VariantAxes declares the discrete choices (cost regimes, scoring
// kinds, fault intensities, replica counts, routing policies, budget
// shapes, worker counts, kill switches) and the bounds of the continuous
// perturbations (correlation span, per-predicate cost wobble). The
// generator draws one value per axis plus the perturbations from a single
// seeded Rng stream, so the same (axes, seed, count) triple always yields
// the byte-identical variant list - the property the nightly soak's repro
// commands and the determinism tests stand on. Every drawn spec passes
// ScenarioSpec::Validate() by construction.

#ifndef NC_PLAYBOOK_VARIANT_H_
#define NC_PLAYBOOK_VARIANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "playbook/scenario.h"

namespace nc::playbook {

struct VariantAxes {
  // Name prefix: variants are "<prefix>-0000", "<prefix>-0001", ...
  std::string prefix = "variant";

  // --- Discrete axes (one entry drawn per variant; never empty) --------
  std::vector<size_t> object_counts;
  std::vector<size_t> predicate_counts;
  std::vector<ScoreDistribution> distributions;
  std::vector<ScoringKind> scorings;
  // Uniform (cs, cr) regimes; kImpossibleCost marks a capability hole.
  // Per-predicate wobble is applied on top (cost_log10_span).
  std::vector<std::pair<double, double>> cost_regimes;
  // Ceilings for the drawn transient/timeout rates; 0 = fault-free.
  std::vector<double> fault_intensities;
  // 0 = plain single-source predicates.
  std::vector<size_t> replica_counts;
  std::vector<RoutingPolicy> routings;
  // Fixed hedge trigger in cost units; < 0 selects adaptive hedging.
  // Only consulted when the drawn replica count is > 0.
  std::vector<double> hedge_delays;
  // Bitmask of budget dimensions: 1 = cost cap, 2 = deadline,
  // 4 = single-predicate quota. 0 = unlimited.
  std::vector<int> budget_shapes;
  // 0 = in-process engine; >= 1 = QueryServer with that many workers.
  std::vector<size_t> worker_counts;
  // true = checkpoint/kill mid-run. Only honored when the same draw
  // selected engine mode without adaptive hedging (the two combinations
  // ScenarioSpec::Validate forbids); conflicting draws keep kill off.
  std::vector<bool> kill_choices;
  // true = attach the cross-query access cache (cache/cache.h). Only
  // honored when the same draw left kill off (Validate forbids the
  // combination - cache state is excluded from checkpoints); a kill draw
  // wins and keeps the cache off. The draw stream consumes a value only
  // when this axis offers a real choice (size > 1), so axes pinned to
  // the default {false} reproduce pre-cache variant streams exactly.
  std::vector<bool> cache_choices = {false};

  // --- Bounded perturbations -------------------------------------------
  // correlation ~ U(-span, span).
  double correlation_span = 0.9;
  // Each finite unit cost is scaled by 10^U(-span, span).
  double cost_log10_span = 0.5;
  // Timeout ceiling as a fraction of the drawn transient ceiling.
  double timeout_fraction = 0.4;
  // Probability that a faulty variant arms die-after-N on the default
  // profile (N ~ 1 + U(60)), exercising graceful degradation.
  double death_probability = 0.25;

  // The chaos matrix the nightly soak explores: every scoring kind and
  // distribution, the Figure 2 regimes plus CA's (1, 50) cell, fault
  // intensities up to the fuzz suite's 12% ceiling, fleets up to 3
  // replicas under every routing policy, all budget shapes, server
  // variants, and mid-run kills.
  static VariantAxes ChaosDefaults();

  Status Validate() const;
};

// Expands axes into scenario variants. Same (axes, seed) => the same
// draw stream => byte-identical specs, independent of how many variants
// earlier Generate calls consumed.
class VariantGenerator {
 public:
  VariantGenerator(VariantAxes axes, uint64_t seed);

  // Draws the next variant (named "<prefix>-<index>", 4-digit index).
  ScenarioSpec Draw();

  // Draws `count` variants in sequence.
  std::vector<ScenarioSpec> Generate(size_t count);

 private:
  template <typename T>
  T Pick(const std::vector<T>& axis) {
    return axis[static_cast<size_t>(rng_.UniformInt(axis.size()))];
  }

  VariantAxes axes_;
  Rng rng_;
  size_t drawn_ = 0;
};

}  // namespace nc::playbook

#endif  // NC_PLAYBOOK_VARIANT_H_
