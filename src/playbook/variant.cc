#include "playbook/variant.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/score.h"

namespace nc::playbook {
namespace {

std::string IndexedName(const std::string& prefix, size_t index) {
  std::string digits = std::to_string(index);
  while (digits.size() < 4) digits.insert(digits.begin(), '0');
  return prefix + "-" + digits;
}

}  // namespace

VariantAxes VariantAxes::ChaosDefaults() {
  VariantAxes axes;
  axes.prefix = "chaos";
  axes.object_counts = {40, 120, 260};
  axes.predicate_counts = {1, 2, 3, 4};
  axes.distributions = {ScoreDistribution::kUniform,
                        ScoreDistribution::kGaussian, ScoreDistribution::kZipf};
  axes.scorings = {ScoringKind::kMin, ScoringKind::kMax, ScoringKind::kAverage,
                   ScoringKind::kProduct, ScoringKind::kGeometricMean};
  // Figure 2's answerable uniform regimes plus CA's expensive-random cell.
  axes.cost_regimes = {{1.0, 1.0},           {1.0, 10.0},
                       {10.0, 1.0},          {1.0, 50.0},
                       {1.0, kImpossibleCost}, {kImpossibleCost, 1.0}};
  axes.fault_intensities = {0.0, 0.06, 0.12};
  // No-fleet variants weighted double: the single-source path is the one
  // the paper's algorithms actually live on.
  axes.replica_counts = {0, 0, 2, 3};
  axes.routings = {RoutingPolicy::kPrimaryOnly, RoutingPolicy::kRoundRobin,
                   RoutingPolicy::kLeastLatency,
                   RoutingPolicy::kCheapestHealthy};
  axes.hedge_delays = {0.0, 2.0, -1.0};
  axes.budget_shapes = {0, 1, 2, 4, 3};
  axes.worker_counts = {0, 0, 0, 2};
  axes.kill_choices = {false, false, true};
  axes.cache_choices = {false, true};
  return axes;
}

Status VariantAxes::Validate() const {
  const struct {
    bool empty;
    const char* what;
  } axis_checks[] = {
      {object_counts.empty(), "object_counts"},
      {predicate_counts.empty(), "predicate_counts"},
      {distributions.empty(), "distributions"},
      {scorings.empty(), "scorings"},
      {cost_regimes.empty(), "cost_regimes"},
      {fault_intensities.empty(), "fault_intensities"},
      {replica_counts.empty(), "replica_counts"},
      {routings.empty(), "routings"},
      {hedge_delays.empty(), "hedge_delays"},
      {budget_shapes.empty(), "budget_shapes"},
      {worker_counts.empty(), "worker_counts"},
      {kill_choices.empty(), "kill_choices"},
      {cache_choices.empty(), "cache_choices"},
  };
  for (const auto& check : axis_checks) {
    if (check.empty) {
      return Status::InvalidArgument(std::string("empty axis: ") + check.what);
    }
  }
  for (size_t n : object_counts) {
    if (n < 2) return Status::InvalidArgument("object_counts entries must be >= 2");
  }
  for (size_t m : predicate_counts) {
    if (m == 0) return Status::InvalidArgument("predicate_counts entries must be >= 1");
  }
  for (const auto& [cs, cr] : cost_regimes) {
    if (cs == kImpossibleCost && cr == kImpossibleCost) {
      return Status::InvalidArgument("cost regime with no access type at all");
    }
  }
  for (double f : fault_intensities) {
    if (!(f >= 0.0 && f <= 0.5)) {
      return Status::InvalidArgument("fault_intensities must be in [0, 0.5]");
    }
  }
  if (!(correlation_span >= 0.0 && correlation_span <= 1.0)) {
    return Status::InvalidArgument("correlation_span must be in [0, 1]");
  }
  if (!(cost_log10_span >= 0.0) || !(timeout_fraction >= 0.0) ||
      !(death_probability >= 0.0 && death_probability <= 1.0)) {
    return Status::InvalidArgument("perturbation bounds malformed");
  }
  return Status::OK();
}

VariantGenerator::VariantGenerator(VariantAxes axes, uint64_t seed)
    : axes_(std::move(axes)), rng_(seed * 0x9e3779b97f4a7c15ULL + 1) {
  NC_CHECK(axes_.Validate().ok());
}

ScenarioSpec VariantGenerator::Draw() {
  ScenarioSpec spec;
  spec.name = IndexedName(axes_.prefix, drawn_++);

  // Dataset shape.
  spec.num_objects = Pick(axes_.object_counts);
  spec.num_predicates = Pick(axes_.predicate_counts);
  const size_t m = spec.num_predicates;
  spec.distribution = Pick(axes_.distributions);
  spec.correlation =
      axes_.correlation_span == 0.0
          ? 0.0
          : rng_.Uniform(-axes_.correlation_span, axes_.correlation_span);
  spec.data_seed = rng_.UniformInt(1u << 30);

  // Query.
  spec.scoring = Pick(axes_.scorings);
  spec.k = 1 + static_cast<size_t>(
                   rng_.UniformInt(std::max<size_t>(1, spec.num_objects / 2)));

  // Cost regime with bounded per-predicate wobble on finite cells.
  const auto [cs, cr] = Pick(axes_.cost_regimes);
  spec.sorted_cost.assign(m, cs);
  spec.random_cost.assign(m, cr);
  for (size_t i = 0; i < m; ++i) {
    if (std::isfinite(cs) && axes_.cost_log10_span > 0.0) {
      spec.sorted_cost[i] =
          cs * std::pow(10.0, rng_.Uniform(-axes_.cost_log10_span,
                                           axes_.cost_log10_span));
    }
    if (std::isfinite(cr) && axes_.cost_log10_span > 0.0) {
      spec.random_cost[i] =
          cr * std::pow(10.0, rng_.Uniform(-axes_.cost_log10_span,
                                           axes_.cost_log10_span));
    }
  }
  if (rng_.UniformInt(3) == 0) {
    spec.sorted_page_size.resize(m);
    for (size_t i = 0; i < m; ++i) {
      spec.sorted_page_size[i] = 1 + static_cast<size_t>(rng_.UniformInt(20));
    }
  }
  if (m > 1 && rng_.UniformInt(3) == 0) {
    spec.attribute_groups.resize(m);
    for (size_t i = 0; i < m; ++i) {
      spec.attribute_groups[i] = static_cast<int>(rng_.UniformInt(2));
    }
  }

  // Execution plan: random SR/G depths and a shuffled probe schedule,
  // mirroring the fuzz suite's plan coverage.
  spec.srg_depths.resize(m);
  spec.srg_schedule.resize(m);
  for (size_t i = 0; i < m; ++i) {
    spec.srg_depths[i] = 0.1 * static_cast<double>(rng_.UniformInt(11));
    spec.srg_schedule[i] = static_cast<PredicateId>(i);
  }
  rng_.Shuffle(&spec.srg_schedule);

  // Faults.
  const double intensity = Pick(axes_.fault_intensities);
  if (intensity > 0.0) {
    spec.fault.transient_rate = rng_.Uniform(0.0, intensity);
    spec.fault.timeout_rate =
        rng_.Uniform(0.0, intensity * axes_.timeout_fraction);
    if (rng_.Uniform01() < axes_.death_probability) {
      spec.fault.die_after_attempts = 1 + static_cast<size_t>(
                                              rng_.UniformInt(60));
    }
  }
  spec.fault_seed = 1 + rng_.UniformInt(1u << 30);
  spec.jitter_seed = rng_.UniformInt(1u << 20);

  // Replica topology. Fleet variants carry their faults on the replicas
  // (the default profile would be dead weight and would misreport
  // fault_free()), so the default draw above is discarded here.
  const size_t replica_count = Pick(axes_.replica_counts);
  if (replica_count > 0) {
    spec.fault = FaultProfile{};
    for (size_t r = 0; r < replica_count; ++r) {
      ReplicaSpec replica;
      replica.cost_multiplier = std::pow(10.0, rng_.Uniform(-0.3, 0.3));
      replica.latency.multiplier = rng_.Uniform(0.5, 2.0);
      replica.latency.jitter = rng_.Uniform(0.0, 0.5);
      replica.latency.tail_probability = rng_.Uniform(0.0, 0.1);
      replica.latency.tail_multiplier = 1.0 + rng_.Uniform(0.0, 19.0);
      if (intensity > 0.0) {
        replica.faults.transient_rate = rng_.Uniform(0.0, intensity);
        replica.faults.timeout_rate =
            rng_.Uniform(0.0, intensity * axes_.timeout_fraction);
        if (rng_.UniformInt(5) == 0) {
          // One replica dying mid-run is the failover case worth soaking.
          replica.faults.die_after_attempts =
              1 + static_cast<size_t>(rng_.UniformInt(40));
        }
      }
      spec.replicas.push_back(std::move(replica));
    }
    spec.routing = Pick(axes_.routings);
    const double hedge = Pick(axes_.hedge_delays);
    if (hedge < 0.0) {
      spec.adaptive_hedge = true;
    } else {
      spec.hedge_delay = hedge;
    }
    spec.fleet_seed = rng_.UniformInt(1u << 30);
  }

  // Budget.
  const int shape = Pick(axes_.budget_shapes);
  if ((shape & 1) != 0) spec.budget.max_cost = rng_.Uniform(5.0, 250.0);
  if ((shape & 2) != 0) spec.budget.deadline = rng_.Uniform(10.0, 400.0);
  if ((shape & 4) != 0) {
    spec.budget.predicate_quota.assign(m, 0);
    spec.budget.predicate_quota[rng_.UniformInt(m)] =
        1 + static_cast<size_t>(rng_.UniformInt(40));
  }

  // Execution mode + kill switch.
  spec.workers = Pick(axes_.worker_counts);
  const bool kill = Pick(axes_.kill_choices);
  if (kill) {
    const size_t kill_at = 1 + static_cast<size_t>(rng_.UniformInt(40));
    if (spec.workers == 0 && !spec.adaptive_hedge) {
      spec.kill_at_access = kill_at;
    }
  }

  // Cross-query cache. Draws only when the axis offers a real choice, so
  // the default {false} leaves pre-cache draw streams untouched. A kill
  // draw wins over cache (Validate forbids the combination).
  if (axes_.cache_choices.size() > 1) {
    const bool cache = Pick(axes_.cache_choices);
    if (cache && spec.kill_at_access == 0) {
      spec.cache_enabled = true;
    }
  } else {
    spec.cache_enabled = axes_.cache_choices[0] && spec.kill_at_access == 0;
  }

  NC_CHECK(spec.Validate().ok());
  return spec;
}

std::vector<ScenarioSpec> VariantGenerator::Generate(size_t count) {
  std::vector<ScenarioSpec> variants;
  variants.reserve(count);
  for (size_t i = 0; i < count; ++i) variants.push_back(Draw());
  return variants;
}

}  // namespace nc::playbook
