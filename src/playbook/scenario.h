// Declarative chaos-and-workload scenarios: the playbook's unit of work.
//
// The engine's scenario space is the cross product of everything the
// stack can vary - dataset shape, scoring function, k, cost regime,
// fault profile, replica topology, budget, routing/hedging, and server
// worker count - but until now each bench and test hand-rolled its own
// struct for the corner it exercised. ScenarioSpec is the one shared
// description: benches iterate catalogs of specs (playbook/catalog.h),
// the variant generator (playbook/variant.h) perturbs them, and the
// runner (playbook/runner.h) executes them under invariant oracles.
//
// Serialized form: a versioned, line-based, locale-safe text document
// ("ncplay 1") in the house style of "ncckpt" / "nchub": one `key
// value...` record per line, keys in sorted order, every double as a
// C-hexfloat (common/numeric.h - so +-inf cost cells and correlations
// round-trip byte-exactly), closed by "end". Serialize is canonical and
// deterministic; ParseScenario(Serialize(s)) == s and re-serializing
// reproduces the input byte for byte (pinned in playbook_test.cc).
// Parsing is atomic: records accumulate into temporaries and *out is
// only written when the whole document (and its semantic validation)
// succeeded; every malformed line is rejected with its line number.

#ifndef NC_PLAYBOOK_SCENARIO_H_
#define NC_PLAYBOOK_SCENARIO_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "access/budget.h"
#include "access/cost_model.h"
#include "access/fault.h"
#include "common/status.h"
#include "core/srg_policy.h"
#include "data/generator.h"
#include "replica/replica.h"
#include "scoring/scoring_function.h"

namespace nc::playbook {

// "min" / "max" / "avg" / "product" / "geomean" (the ScoringFunction
// name() values), and the reverse lookups the parser uses. FromName
// helpers return false on an unknown name with *out untouched.
const char* ScoringKindName(ScoringKind kind);
bool ScoringKindFromName(std::string_view name, ScoringKind* out);
bool ScoreDistributionFromName(std::string_view name, ScoreDistribution* out);
bool RoutingPolicyFromName(std::string_view name, RoutingPolicy* out);

// One replica endpoint of the scenario's (uniform per-predicate) fleet
// topology: its cost multiplier, latency model, and fault behavior.
struct ReplicaSpec {
  double cost_multiplier = 1.0;
  ReplicaLatencyModel latency;
  FaultProfile faults;

  Status Validate() const;
};

struct ScenarioSpec {
  // Identifier: one token of [A-Za-z0-9_.:-]+, used in reports, repro
  // commands, and baseline keys.
  std::string name = "scenario";

  // --- Dataset shape ----------------------------------------------------
  size_t num_objects = 1000;
  size_t num_predicates = 2;
  ScoreDistribution distribution = ScoreDistribution::kUniform;
  double correlation = 0.0;
  double gaussian_mean = 0.5;
  double gaussian_stddev = 0.2;
  double zipf_skew = 2.0;
  uint64_t data_seed = 42;

  // --- Query ------------------------------------------------------------
  ScoringKind scoring = ScoringKind::kAverage;
  size_t k = 10;

  // --- Cost regime (Eq. 1 unit costs; kImpossibleCost = unsupported) ---
  std::vector<double> sorted_cost;  // size num_predicates
  std::vector<double> random_cost;  // size num_predicates
  std::vector<size_t> sorted_page_size;  // empty, or size num_predicates
  std::vector<int> attribute_groups;     // empty, or size num_predicates

  // --- Fault profile (the per-predicate default injector) --------------
  FaultProfile fault;

  // --- Replica topology (empty = plain single-source predicates) ------
  // The same replica set fronts every predicate.
  std::vector<ReplicaSpec> replicas;
  RoutingPolicy routing = RoutingPolicy::kPrimaryOnly;
  double hedge_delay = 0.0;
  bool adaptive_hedge = false;

  // --- Budget -----------------------------------------------------------
  QueryBudget budget;

  // --- Cross-query cache (cache/cache.h) --------------------------------
  // Attach a shared AccessCache to the variant's stack: engine-mode
  // variants own a private one, server-mode variants enable the
  // QueryServer's shared one. cache_hit_cost is what a cache-served
  // access bills the query (Eq. 1 units; 0 = free hits). Excluded from
  // checkpoints, so kill_at_access rejects it at Validate time.
  bool cache_enabled = false;
  double cache_hit_cost = 0.0;

  // --- Execution plan ---------------------------------------------------
  // Empty = SRGConfig::Default(num_predicates); otherwise explicit depths
  // (in [0, 1]) and a schedule permutation, both sized num_predicates.
  std::vector<double> srg_depths;
  std::vector<PredicateId> srg_schedule;

  // 0 = run in-process through NCEngine; >= 1 = serve through a
  // QueryServer with that many workers.
  size_t workers = 0;

  // > 0: snapshot an engine checkpoint at this access count and have the
  // runner prove the killed variant resumes bit-identically. Engine mode
  // only (the runner rejects kill with workers > 0 at Validate time).
  size_t kill_at_access = 0;

  // --- Seeds ------------------------------------------------------------
  uint64_t fault_seed = 1;
  uint64_t jitter_seed = 0;
  uint64_t fleet_seed = 0;

  // --- Semantics --------------------------------------------------------
  // OK iff every field is well-formed and mutually consistent (vector
  // arities, cost-model validity, fault rates, replica models, budget
  // shape, SRG ranges, kill/worker exclusivity, adaptive-hedge/kill
  // exclusivity - adaptive hedge timing reads the telemetry hub, whose
  // mid-run state a checkpoint deliberately excludes, so a killed
  // adaptive run cannot promise bit-identical resume).
  Status Validate() const;

  // True when nothing in the scenario can fail an access: the default
  // fault profile and every replica's profile are all-zero. Fault-free
  // variants must answer bit-identically to brute force - the
  // instance-optimality oracle.
  bool fault_free() const;

  bool has_fleet() const { return !replicas.empty(); }

  // --- Builders (Validate() must hold) ----------------------------------
  Dataset MakeDataset() const;
  CostModel MakeCostModel() const;
  std::unique_ptr<ScoringFunction> MakeScoring() const;
  SRGConfig MakeSRGConfig() const;
  // Configures every predicate of `fleet` with this scenario's replica
  // set. No-op when has_fleet() is false.
  Status ConfigureFleet(ReplicaFleet* fleet) const;

  // One-line human summary for logs and packet headers.
  std::string Signature() const;

  // Canonical "ncplay 1" document (sorted keys, hexfloat doubles,
  // trailing "end\n"). Deterministic: equal specs serialize identically.
  std::string Serialize() const;
};

// Parses a Serialize() document. InvalidArgument naming the offending
// line on malformed input ("ncplay line N: ..."), or the semantic
// validation error; *out is written only on success.
Status ParseScenario(const std::string& text, ScenarioSpec* out);

}  // namespace nc::playbook

#endif  // NC_PLAYBOOK_SCENARIO_H_
