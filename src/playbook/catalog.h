// The named scenario catalogs the benches and the playbook share.
//
// Before the playbook existed, bench_scenario_matrix.cc and
// bench_native_scenarios.cc each hand-rolled the paper's Section-6/9
// experiment grids as local structs. Those grids are exactly the seed
// axis sets the variant generator expands, so they live here once, as
// ScenarioSpecs: Figure 2's access-scenario matrix (sorted x random
// regime in {cheap, expensive, impossible}) and Section 9's
// native-algorithm blocks (each paired with the baselines designed for
// its cell). Benches iterate these; VariantAxes::ChaosDefaults() starts
// from the same regimes.

#ifndef NC_PLAYBOOK_CATALOG_H_
#define NC_PLAYBOOK_CATALOG_H_

#include <string>
#include <vector>

#include "playbook/scenario.h"

namespace nc::playbook {

// The shared base shape of the paper's experiments: n=10000, m=2,
// uniform scores, F=avg, k=10. Callers override fields (seed, scoring)
// before expanding a catalog from it.
ScenarioSpec CatalogBase();

// One cell of Figure 2's capability matrix.
struct Figure2Cell {
  std::string sorted_regime;  // "cheap" / "expensive" / "impossible"
  std::string random_regime;
  ScenarioSpec spec;
};

// The 8 answerable cells (impossible x impossible is skipped), in row
// order, with cheap = 1.0 and expensive = 10.0 unit costs. Spec names
// are "fig2-<sorted>-<random>".
std::vector<Figure2Cell> Figure2Matrix(const ScenarioSpec& base);

// One Section-9 block: a scenario plus the native baselines designed
// for it (names resolvable via bench FindBaseline / AllBaselines).
struct NativeBlock {
  std::string title;
  std::vector<std::string> natives;
  ScenarioSpec spec;
};

// The five uniform-cost blocks (TA/FA/TAz/Quick-Combine, CA, NRA /
// Stream-Combine, MPro/Upper, the "?" cell) plus the mixed-capability
// TAz cell (p0 sorted+random, p1 random-only).
std::vector<NativeBlock> NativeBlocks(const ScenarioSpec& base);

}  // namespace nc::playbook

#endif  // NC_PLAYBOOK_CATALOG_H_
