#include "playbook/scenario.h"

#include <cmath>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/numeric.h"

namespace nc::playbook {
namespace {

// --- Token helpers, in the nchub house style --------------------------

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > start) tokens.push_back(line.substr(start, pos - start));
  }
  return tokens;
}

// Walks one record's tokens; every Take* reports failure by setting
// `failed` (sticky), so callers can chain reads and check once.
struct TokenCursor {
  const std::vector<std::string_view>& tokens;
  size_t next = 1;  // Token 0 is the record key.
  bool failed = false;

  bool Done() const { return failed || next == tokens.size(); }

  std::string_view TakeToken() {
    if (failed || next >= tokens.size()) {
      failed = true;
      return {};
    }
    return tokens[next++];
  }

  uint64_t TakeUInt() {
    uint64_t v = 0;
    std::string_view tok = TakeToken();
    if (failed || !ParseUInt64(tok, &v)) failed = true;
    return v;
  }

  double TakeDouble() {
    double v = 0.0;
    std::string_view tok = TakeToken();
    if (failed || !ParseDouble(tok, &v)) failed = true;
    return v;
  }

  bool TakeBool() {
    uint64_t v = TakeUInt();
    if (v > 1) failed = true;
    return v == 1;
  }
};

bool ValidNameToken(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == ':' ||
              c == '-';
    if (!ok) return false;
  }
  return true;
}

void AppendHex(std::string* out, double v) {
  out->push_back(' ');
  out->append(FormatHexDouble(v));
}

void AppendUInt(std::string* out, uint64_t v) {
  out->push_back(' ');
  out->append(std::to_string(v));
}

bool ZeroProfile(const FaultProfile& p) {
  return p.transient_rate == 0.0 && p.timeout_rate == 0.0 &&
         p.death_rate == 0.0 && p.die_after_attempts == 0;
}

}  // namespace

const char* ScoringKindName(ScoringKind kind) {
  switch (kind) {
    case ScoringKind::kMin:
      return "min";
    case ScoringKind::kMax:
      return "max";
    case ScoringKind::kAverage:
      return "avg";
    case ScoringKind::kProduct:
      return "product";
    case ScoringKind::kGeometricMean:
      return "geomean";
  }
  return "?";
}

bool ScoringKindFromName(std::string_view name, ScoringKind* out) {
  for (ScoringKind kind :
       {ScoringKind::kMin, ScoringKind::kMax, ScoringKind::kAverage,
        ScoringKind::kProduct, ScoringKind::kGeometricMean}) {
    if (name == ScoringKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ScoreDistributionFromName(std::string_view name, ScoreDistribution* out) {
  for (ScoreDistribution dist :
       {ScoreDistribution::kUniform, ScoreDistribution::kGaussian,
        ScoreDistribution::kZipf}) {
    if (name == ScoreDistributionName(dist)) {
      *out = dist;
      return true;
    }
  }
  return false;
}

bool RoutingPolicyFromName(std::string_view name, RoutingPolicy* out) {
  for (RoutingPolicy policy :
       {RoutingPolicy::kPrimaryOnly, RoutingPolicy::kRoundRobin,
        RoutingPolicy::kLeastLatency, RoutingPolicy::kCheapestHealthy}) {
    if (name == RoutingPolicyName(policy)) {
      *out = policy;
      return true;
    }
  }
  return false;
}

Status ReplicaSpec::Validate() const {
  if (!std::isfinite(cost_multiplier) || cost_multiplier <= 0.0) {
    return Status::InvalidArgument("replica cost_multiplier must be > 0");
  }
  NC_RETURN_IF_ERROR(latency.Validate());
  NC_RETURN_IF_ERROR(faults.Validate());
  return Status::OK();
}

Status ScenarioSpec::Validate() const {
  if (!ValidNameToken(name)) {
    return Status::InvalidArgument(
        "scenario name must be one token of [A-Za-z0-9_.:-]+");
  }
  if (num_objects == 0) {
    return Status::InvalidArgument("num_objects must be > 0");
  }
  if (num_predicates == 0) {
    return Status::InvalidArgument("num_predicates must be > 0");
  }
  if (!(correlation >= -1.0 && correlation <= 1.0)) {
    return Status::InvalidArgument("correlation must be in [-1, 1]");
  }
  if (!std::isfinite(gaussian_mean) || !std::isfinite(gaussian_stddev) ||
      gaussian_stddev <= 0.0) {
    return Status::InvalidArgument("gaussian parameters malformed");
  }
  if (!std::isfinite(zipf_skew) || zipf_skew <= 0.0) {
    return Status::InvalidArgument("zipf_skew must be finite and > 0");
  }
  if (k == 0 || k > num_objects) {
    return Status::InvalidArgument("k must be in [1, num_objects]");
  }
  if (sorted_cost.size() != num_predicates ||
      random_cost.size() != num_predicates) {
    return Status::InvalidArgument(
        "cost vectors must cover every predicate");
  }
  CostModel cost = MakeCostModel();
  NC_RETURN_IF_ERROR(cost.Validate());
  NC_RETURN_IF_ERROR(fault.Validate());
  for (const ReplicaSpec& replica : replicas) {
    NC_RETURN_IF_ERROR(replica.Validate());
  }
  if (has_fleet()) {
    if (!std::isfinite(hedge_delay) || hedge_delay < 0.0) {
      return Status::InvalidArgument("hedge_delay must be finite and >= 0");
    }
  } else if (hedge_delay != 0.0 || adaptive_hedge ||
             routing != RoutingPolicy::kPrimaryOnly) {
    return Status::InvalidArgument(
        "routing/hedge settings require a replica topology");
  }
  NC_RETURN_IF_ERROR(budget.Validate(num_predicates));
  if (srg_depths.empty() != srg_schedule.empty()) {
    return Status::InvalidArgument(
        "srg depths and schedule must be set together");
  }
  if (!srg_depths.empty()) {
    NC_RETURN_IF_ERROR(MakeSRGConfig().Validate(num_predicates));
  }
  if (kill_at_access > 0 && workers > 0) {
    return Status::InvalidArgument(
        "kill_at_access requires engine mode (workers == 0)");
  }
  // Adaptive hedge timing reads the telemetry hub, whose mid-run state a
  // checkpoint deliberately excludes (checkpoints re-warm from the live
  // hub), so a killed adaptive run cannot promise bit-identical resume.
  if (kill_at_access > 0 && adaptive_hedge) {
    return Status::InvalidArgument(
        "kill_at_access cannot be combined with adaptive hedging");
  }
  // Cache state is shared across queries and deliberately excluded from
  // checkpoints, so a killed cached run cannot promise bit-identical
  // resumed accrued cost: the resumed run's hits would depend on what
  // else touched the cache meanwhile.
  if (kill_at_access > 0 && cache_enabled) {
    return Status::InvalidArgument(
        "kill_at_access cannot be combined with the access cache");
  }
  if (!std::isfinite(cache_hit_cost) || cache_hit_cost < 0.0) {
    return Status::InvalidArgument("cache_hit_cost must be finite and >= 0");
  }
  if (!cache_enabled && cache_hit_cost != 0.0) {
    return Status::InvalidArgument(
        "cache_hit_cost requires cache_enabled (the canonical document "
        "drops it otherwise)");
  }
  return Status::OK();
}

bool ScenarioSpec::fault_free() const {
  if (!ZeroProfile(fault)) return false;
  for (const ReplicaSpec& replica : replicas) {
    if (!ZeroProfile(replica.faults)) return false;
  }
  return true;
}

Dataset ScenarioSpec::MakeDataset() const {
  GeneratorOptions options;
  options.num_objects = num_objects;
  options.num_predicates = num_predicates;
  options.distribution = distribution;
  options.correlation = correlation;
  options.gaussian_mean = gaussian_mean;
  options.gaussian_stddev = gaussian_stddev;
  options.zipf_skew = zipf_skew;
  options.seed = data_seed;
  return GenerateDataset(options);
}

CostModel ScenarioSpec::MakeCostModel() const {
  CostModel cost(sorted_cost, random_cost);
  cost.sorted_page_size = sorted_page_size;
  cost.attribute_groups = attribute_groups;
  return cost;
}

std::unique_ptr<ScoringFunction> ScenarioSpec::MakeScoring() const {
  return MakeScoringFunction(scoring, num_predicates);
}

SRGConfig ScenarioSpec::MakeSRGConfig() const {
  if (srg_depths.empty()) return SRGConfig::Default(num_predicates);
  SRGConfig config;
  config.depths = srg_depths;
  config.schedule = srg_schedule;
  return config;
}

Status ScenarioSpec::ConfigureFleet(ReplicaFleet* fleet) const {
  if (!has_fleet()) return Status::OK();
  ReplicaSetConfig config;
  for (const ReplicaSpec& replica : replicas) {
    ReplicaEndpoint endpoint;
    endpoint.cost_multiplier = replica.cost_multiplier;
    endpoint.latency = replica.latency;
    endpoint.faults = replica.faults;
    config.replicas.push_back(std::move(endpoint));
  }
  config.routing = routing;
  config.hedge.delay = hedge_delay;
  config.hedge.adaptive = adaptive_hedge;
  for (PredicateId i = 0; i < num_predicates; ++i) {
    NC_RETURN_IF_ERROR(fleet->Configure(i, config));
  }
  return Status::OK();
}

std::string ScenarioSpec::Signature() const {
  std::string out = name;
  out += " n=" + std::to_string(num_objects);
  out += " m=" + std::to_string(num_predicates);
  out += " k=" + std::to_string(k);
  out += " F=";
  out += ScoringKindName(scoring);
  out += " dist=";
  out += ScoreDistributionName(distribution);
  out += " cost=" + MakeCostModel().ToString();
  if (!ZeroProfile(fault)) {
    out += " fault=(t=" + FormatDouble(fault.transient_rate) +
           ",o=" + FormatDouble(fault.timeout_rate) +
           ",d=" + FormatDouble(fault.death_rate) +
           ",die@" + std::to_string(fault.die_after_attempts) + ")";
  }
  if (has_fleet()) {
    out += " replicas=" + std::to_string(replicas.size());
    out += "/";
    out += RoutingPolicyName(routing);
    if (adaptive_hedge) {
      out += "/hedge=adaptive";
    } else if (hedge_delay > 0.0) {
      out += "/hedge=" + FormatDouble(hedge_delay);
    }
  }
  if (!budget.unlimited()) out += " budget=[" + budget.ToString() + "]";
  if (workers > 0) out += " workers=" + std::to_string(workers);
  if (kill_at_access > 0) {
    out += " kill@" + std::to_string(kill_at_access);
  }
  if (cache_enabled) {
    out += " cache";
    if (cache_hit_cost > 0.0) out += "=" + FormatDouble(cache_hit_cost);
  }
  return out;
}

std::string ScenarioSpec::Serialize() const {
  // Records in sorted key order; optional records (groups/pages/quota/
  // replica/srg) are omitted when empty so the canonical form is minimal
  // and parse(serialize(s)) == s holds byte for byte.
  std::string out = "ncplay 1\n";

  out += "budget";
  AppendHex(&out, budget.max_cost);
  AppendHex(&out, budget.deadline);
  out += "\n";

  if (cache_enabled) {
    out += "cache";
    AppendUInt(&out, 1);
    AppendHex(&out, cache_hit_cost);
    out += "\n";
  }

  out += "cost";
  AppendUInt(&out, num_predicates);
  for (size_t i = 0; i < num_predicates; ++i) {
    AppendHex(&out, sorted_cost[i]);
    AppendHex(&out, random_cost[i]);
  }
  out += "\n";

  out += "data";
  AppendUInt(&out, num_objects);
  AppendUInt(&out, num_predicates);
  out.push_back(' ');
  out += ScoreDistributionName(distribution);
  AppendHex(&out, correlation);
  AppendUInt(&out, data_seed);
  out += "\n";

  out += "dist";
  AppendHex(&out, gaussian_mean);
  AppendHex(&out, gaussian_stddev);
  AppendHex(&out, zipf_skew);
  out += "\n";

  out += "fault";
  AppendHex(&out, fault.transient_rate);
  AppendHex(&out, fault.timeout_rate);
  AppendHex(&out, fault.death_rate);
  AppendUInt(&out, fault.die_after_attempts);
  out += "\n";

  if (!attribute_groups.empty()) {
    out += "groups";
    AppendUInt(&out, attribute_groups.size());
    for (int g : attribute_groups) {
      AppendUInt(&out, static_cast<uint64_t>(g));
    }
    out += "\n";
  }

  out += "hedge";
  AppendHex(&out, hedge_delay);
  AppendUInt(&out, adaptive_hedge ? 1 : 0);
  out += "\n";

  out += "kill";
  AppendUInt(&out, kill_at_access);
  out += "\n";

  out += "name ";
  out += name;
  out += "\n";

  if (!sorted_page_size.empty()) {
    out += "pages";
    AppendUInt(&out, sorted_page_size.size());
    for (size_t b : sorted_page_size) AppendUInt(&out, b);
    out += "\n";
  }

  out += "query ";
  out += ScoringKindName(scoring);
  AppendUInt(&out, k);
  out += "\n";

  if (!budget.predicate_quota.empty()) {
    out += "quota";
    AppendUInt(&out, budget.predicate_quota.size());
    for (size_t q : budget.predicate_quota) AppendUInt(&out, q);
    out += "\n";
  }

  for (size_t r = 0; r < replicas.size(); ++r) {
    const ReplicaSpec& replica = replicas[r];
    out += "replica";
    AppendUInt(&out, r);
    AppendHex(&out, replica.cost_multiplier);
    AppendHex(&out, replica.latency.multiplier);
    AppendHex(&out, replica.latency.jitter);
    AppendHex(&out, replica.latency.tail_probability);
    AppendHex(&out, replica.latency.tail_multiplier);
    AppendHex(&out, replica.faults.transient_rate);
    AppendHex(&out, replica.faults.timeout_rate);
    AppendHex(&out, replica.faults.death_rate);
    AppendUInt(&out, replica.faults.die_after_attempts);
    out += "\n";
  }

  out += "routing ";
  out += RoutingPolicyName(routing);
  out += "\n";

  out += "seeds";
  AppendUInt(&out, fault_seed);
  AppendUInt(&out, jitter_seed);
  AppendUInt(&out, fleet_seed);
  out += "\n";

  if (!srg_depths.empty()) {
    out += "srg";
    AppendUInt(&out, srg_depths.size());
    for (double d : srg_depths) AppendHex(&out, d);
    for (PredicateId i : srg_schedule) AppendUInt(&out, i);
    out += "\n";
  }

  out += "workers";
  AppendUInt(&out, workers);
  out += "\n";

  out += "end\n";
  return out;
}

Status ParseScenario(const std::string& text, ScenarioSpec* out) {
  // Parse into a fresh temporary; *out is only assigned after the whole
  // document, its footer, and semantic validation all succeed.
  ScenarioSpec spec;
  spec.name.clear();

  auto fail = [](size_t line_no, const std::string& why) {
    return Status::InvalidArgument("ncplay line " + std::to_string(line_no) +
                                   ": " + why);
  };

  bool saw_header = false;
  bool saw_end = false;
  bool saw_budget = false, saw_cache = false;
  bool saw_cost = false, saw_data = false;
  bool saw_dist = false, saw_fault = false, saw_groups = false;
  bool saw_hedge = false, saw_kill = false, saw_name = false;
  bool saw_pages = false, saw_query = false, saw_quota = false;
  bool saw_routing = false, saw_seeds = false, saw_srg = false;
  bool saw_workers = false;

  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      if (pos == text.size()) break;
      return fail(line_no + 1, "missing trailing newline");
    }
    std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    if (!saw_header) {
      if (line != "ncplay 1") {
        return fail(line_no, "expected header \"ncplay 1\"");
      }
      saw_header = true;
      continue;
    }
    if (saw_end) return fail(line_no, "content after \"end\"");
    if (line == "end") {
      saw_end = true;
      continue;
    }

    std::vector<std::string_view> tokens = SplitTokens(line);
    if (tokens.empty()) return fail(line_no, "empty record");
    std::string_view key = tokens[0];
    TokenCursor cur{tokens};

    auto duplicate = [&](bool seen) { return seen; };

    if (key == "budget") {
      if (duplicate(saw_budget)) return fail(line_no, "duplicate budget");
      saw_budget = true;
      double max_cost = cur.TakeDouble();
      double deadline = cur.TakeDouble();
      if (!cur.Done()) return fail(line_no, "malformed budget record");
      spec.budget.max_cost = max_cost;
      spec.budget.deadline = deadline;
    } else if (key == "cache") {
      if (duplicate(saw_cache)) return fail(line_no, "duplicate cache");
      saw_cache = true;
      bool enabled = cur.TakeBool();
      double hit_cost = cur.TakeDouble();
      if (!cur.Done()) return fail(line_no, "malformed cache record");
      spec.cache_enabled = enabled;
      spec.cache_hit_cost = hit_cost;
    } else if (key == "cost") {
      if (duplicate(saw_cost)) return fail(line_no, "duplicate cost");
      saw_cost = true;
      uint64_t m = cur.TakeUInt();
      if (cur.failed || m == 0 || m > 1u << 20) {
        return fail(line_no, "malformed cost arity");
      }
      std::vector<double> sorted(m), random(m);
      for (uint64_t i = 0; i < m; ++i) {
        sorted[i] = cur.TakeDouble();
        random[i] = cur.TakeDouble();
      }
      if (!cur.Done()) return fail(line_no, "malformed cost record");
      spec.sorted_cost = std::move(sorted);
      spec.random_cost = std::move(random);
    } else if (key == "data") {
      if (duplicate(saw_data)) return fail(line_no, "duplicate data");
      saw_data = true;
      uint64_t objects = cur.TakeUInt();
      uint64_t predicates = cur.TakeUInt();
      std::string_view dist_name = cur.TakeToken();
      ScoreDistribution dist = ScoreDistribution::kUniform;
      if (cur.failed || !ScoreDistributionFromName(dist_name, &dist)) {
        return fail(line_no, "unknown score distribution");
      }
      double correlation = cur.TakeDouble();
      uint64_t seed = cur.TakeUInt();
      if (!cur.Done()) return fail(line_no, "malformed data record");
      spec.num_objects = objects;
      spec.num_predicates = predicates;
      spec.distribution = dist;
      spec.correlation = correlation;
      spec.data_seed = seed;
    } else if (key == "dist") {
      if (duplicate(saw_dist)) return fail(line_no, "duplicate dist");
      saw_dist = true;
      double mean = cur.TakeDouble();
      double stddev = cur.TakeDouble();
      double skew = cur.TakeDouble();
      if (!cur.Done()) return fail(line_no, "malformed dist record");
      spec.gaussian_mean = mean;
      spec.gaussian_stddev = stddev;
      spec.zipf_skew = skew;
    } else if (key == "fault") {
      if (duplicate(saw_fault)) return fail(line_no, "duplicate fault");
      saw_fault = true;
      FaultProfile profile;
      profile.transient_rate = cur.TakeDouble();
      profile.timeout_rate = cur.TakeDouble();
      profile.death_rate = cur.TakeDouble();
      profile.die_after_attempts = static_cast<size_t>(cur.TakeUInt());
      if (!cur.Done()) return fail(line_no, "malformed fault record");
      spec.fault = profile;
    } else if (key == "groups") {
      if (duplicate(saw_groups)) return fail(line_no, "duplicate groups");
      saw_groups = true;
      uint64_t m = cur.TakeUInt();
      if (cur.failed || m == 0 || m > 1u << 20) {
        return fail(line_no, "malformed groups arity");
      }
      std::vector<int> groups(m);
      for (uint64_t i = 0; i < m; ++i) {
        groups[i] = static_cast<int>(cur.TakeUInt());
      }
      if (!cur.Done()) return fail(line_no, "malformed groups record");
      spec.attribute_groups = std::move(groups);
    } else if (key == "hedge") {
      if (duplicate(saw_hedge)) return fail(line_no, "duplicate hedge");
      saw_hedge = true;
      double delay = cur.TakeDouble();
      bool adaptive = cur.TakeBool();
      if (!cur.Done()) return fail(line_no, "malformed hedge record");
      spec.hedge_delay = delay;
      spec.adaptive_hedge = adaptive;
    } else if (key == "kill") {
      if (duplicate(saw_kill)) return fail(line_no, "duplicate kill");
      saw_kill = true;
      uint64_t at = cur.TakeUInt();
      if (!cur.Done()) return fail(line_no, "malformed kill record");
      spec.kill_at_access = static_cast<size_t>(at);
    } else if (key == "name") {
      if (duplicate(saw_name)) return fail(line_no, "duplicate name");
      saw_name = true;
      std::string_view name = cur.TakeToken();
      if (cur.failed || !cur.Done() || !ValidNameToken(name)) {
        return fail(line_no, "malformed name record");
      }
      spec.name = std::string(name);
    } else if (key == "pages") {
      if (duplicate(saw_pages)) return fail(line_no, "duplicate pages");
      saw_pages = true;
      uint64_t m = cur.TakeUInt();
      if (cur.failed || m == 0 || m > 1u << 20) {
        return fail(line_no, "malformed pages arity");
      }
      std::vector<size_t> pages(m);
      for (uint64_t i = 0; i < m; ++i) {
        pages[i] = static_cast<size_t>(cur.TakeUInt());
      }
      if (!cur.Done()) return fail(line_no, "malformed pages record");
      spec.sorted_page_size = std::move(pages);
    } else if (key == "query") {
      if (duplicate(saw_query)) return fail(line_no, "duplicate query");
      saw_query = true;
      std::string_view kind_name = cur.TakeToken();
      ScoringKind kind = ScoringKind::kAverage;
      if (cur.failed || !ScoringKindFromName(kind_name, &kind)) {
        return fail(line_no, "unknown scoring function");
      }
      uint64_t k = cur.TakeUInt();
      if (!cur.Done()) return fail(line_no, "malformed query record");
      spec.scoring = kind;
      spec.k = static_cast<size_t>(k);
    } else if (key == "quota") {
      if (duplicate(saw_quota)) return fail(line_no, "duplicate quota");
      saw_quota = true;
      uint64_t m = cur.TakeUInt();
      if (cur.failed || m == 0 || m > 1u << 20) {
        return fail(line_no, "malformed quota arity");
      }
      std::vector<size_t> quota(m);
      for (uint64_t i = 0; i < m; ++i) {
        quota[i] = static_cast<size_t>(cur.TakeUInt());
      }
      if (!cur.Done()) return fail(line_no, "malformed quota record");
      spec.budget.predicate_quota = std::move(quota);
    } else if (key == "replica") {
      // Replica records must arrive in index order 0, 1, 2, ... so the
      // canonical document admits exactly one serialization.
      uint64_t index = cur.TakeUInt();
      if (cur.failed || index != spec.replicas.size()) {
        return fail(line_no, "replica records must be sequential from 0");
      }
      ReplicaSpec replica;
      replica.cost_multiplier = cur.TakeDouble();
      replica.latency.multiplier = cur.TakeDouble();
      replica.latency.jitter = cur.TakeDouble();
      replica.latency.tail_probability = cur.TakeDouble();
      replica.latency.tail_multiplier = cur.TakeDouble();
      replica.faults.transient_rate = cur.TakeDouble();
      replica.faults.timeout_rate = cur.TakeDouble();
      replica.faults.death_rate = cur.TakeDouble();
      replica.faults.die_after_attempts = static_cast<size_t>(cur.TakeUInt());
      if (!cur.Done()) return fail(line_no, "malformed replica record");
      spec.replicas.push_back(std::move(replica));
    } else if (key == "routing") {
      if (duplicate(saw_routing)) return fail(line_no, "duplicate routing");
      saw_routing = true;
      std::string_view policy_name = cur.TakeToken();
      RoutingPolicy policy = RoutingPolicy::kPrimaryOnly;
      if (cur.failed || !cur.Done() ||
          !RoutingPolicyFromName(policy_name, &policy)) {
        return fail(line_no, "unknown routing policy");
      }
      spec.routing = policy;
    } else if (key == "seeds") {
      if (duplicate(saw_seeds)) return fail(line_no, "duplicate seeds");
      saw_seeds = true;
      uint64_t fault_seed = cur.TakeUInt();
      uint64_t jitter_seed = cur.TakeUInt();
      uint64_t fleet_seed = cur.TakeUInt();
      if (!cur.Done()) return fail(line_no, "malformed seeds record");
      spec.fault_seed = fault_seed;
      spec.jitter_seed = jitter_seed;
      spec.fleet_seed = fleet_seed;
    } else if (key == "srg") {
      if (duplicate(saw_srg)) return fail(line_no, "duplicate srg");
      saw_srg = true;
      uint64_t m = cur.TakeUInt();
      if (cur.failed || m == 0 || m > 1u << 20) {
        return fail(line_no, "malformed srg arity");
      }
      std::vector<double> depths(m);
      std::vector<PredicateId> schedule(m);
      for (uint64_t i = 0; i < m; ++i) depths[i] = cur.TakeDouble();
      for (uint64_t i = 0; i < m; ++i) {
        schedule[i] = static_cast<PredicateId>(cur.TakeUInt());
      }
      if (!cur.Done()) return fail(line_no, "malformed srg record");
      spec.srg_depths = std::move(depths);
      spec.srg_schedule = std::move(schedule);
    } else if (key == "workers") {
      if (duplicate(saw_workers)) return fail(line_no, "duplicate workers");
      saw_workers = true;
      uint64_t workers = cur.TakeUInt();
      if (!cur.Done()) return fail(line_no, "malformed workers record");
      spec.workers = static_cast<size_t>(workers);
    } else {
      return fail(line_no, "unknown record \"" + std::string(key) + "\"");
    }
  }

  if (!saw_header) return fail(1, "expected header \"ncplay 1\"");
  if (!saw_end) return fail(line_no + 1, "missing \"end\"");
  const std::pair<bool, const char*> required[] = {
      {saw_budget, "budget"}, {saw_cost, "cost"},       {saw_data, "data"},
      {saw_dist, "dist"},     {saw_fault, "fault"},     {saw_hedge, "hedge"},
      {saw_kill, "kill"},     {saw_name, "name"},       {saw_query, "query"},
      {saw_routing, "routing"}, {saw_seeds, "seeds"},   {saw_workers,
                                                         "workers"}};
  for (const auto& [seen, what] : required) {
    if (!seen) {
      return fail(line_no + 1, "missing record \"" + std::string(what) + "\"");
    }
  }

  NC_RETURN_IF_ERROR(spec.Validate());
  *out = std::move(spec);
  return Status::OK();
}

}  // namespace nc::playbook
