// PlaybookRunner: execute scenario variants under invariant oracles.
//
// The runner is the playbook's verdict machine. Each variant is executed
// through the stack the spec selects - the NC engine in-process
// (workers == 0) or a QueryServer (workers >= 1) - and then judged by
// the invariant oracles, every one of which is a promise the rest of the
// codebase already makes:
//
//   kDifferential - fault-free, unlimited-budget variants must answer
//       bit-identically to BruteForceTopK (instance-optimality's floor:
//       whatever the cost model, faults aside, the answer is THE answer).
//   kCertificate  - a returned AnytimeCertificate must hold against
//       ground truth: intervals contain true scores, the excluded
//       ceiling dominates every non-returned object, epsilon bounds the
//       rank error in the (1 + eps) * score(y) >= score(z) sense.
//   kBilling      - Eq. 1 conservation: the per-predicate AccessStats
//       cost cells sum to accrued_cost(), and RecordSourceMetrics
//       re-aggregates to the same totals in a MetricsRegistry.
//   kBudget       - a capped run stops within one worst-case access of
//       its cost cap / deadline (fleet cost multipliers and hedging
//       included), and never exceeds a predicate quota.
//   kResume       - a variant killed at kill_at_access must, when its
//       checkpoint is resumed on a freshly configured stack, replay to
//       the bit-identical answer, cost, elapsed time, access count, and
//       attempt trace.
//
// Runs stop early on the configured StopConditions (wall-clock cap,
// max flagged variants, stop-on-first-anomaly). The PlaybookReport is
// the "engineer packet": for every flagged variant it records the exact
// repro command line, the violated oracles, the anomaly diff against a
// recorded BENCH_PLAYBOOK.json baseline, and the full serialized spec -
// enough to reproduce without the generator.

#ifndef NC_PLAYBOOK_RUNNER_H_
#define NC_PLAYBOOK_RUNNER_H_

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "access/cost_model.h"
#include "access/fault.h"
#include "common/status.h"
#include "core/result.h"
#include "playbook/scenario.h"

namespace nc::playbook {

enum class Oracle {
  kDifferential,
  kCertificate,
  kBilling,
  kBudget,
  kResume,
};

// "Differential", "Certificate", ... for packets and logs.
const char* OracleName(Oracle oracle);

// The worst a single access can bill against a plain (fleet-less)
// source: the priciest live unit cost, with every preceding attempt
// failed and charged at the retry factor. Shared with the chaos fuzz
// suite; the budget oracle scales it by the fleet's worst cost
// multiplier and the hedging factor.
double WorstAccessBilling(const CostModel& cost, const RetryPolicy& retry);

// The worst a single access can advance the deadline clock: the billing
// above plus every attempt timing out plus maximal jittered backoff.
double WorstElapsedIncrement(const CostModel& cost, const RetryPolicy& retry);

// One oracle violation: the invariant that broke and the evidence.
struct Violation {
  Oracle oracle = Oracle::kDifferential;
  std::string detail;
};

// Everything the runner learned about one variant.
struct VariantVerdict {
  ScenarioSpec spec;
  // False when a stop condition skipped the variant before execution.
  bool executed = false;
  Status run_status;
  std::vector<Violation> violations;
  // Non-empty when the observed (cost, accesses) diverged from the
  // recorded baseline for this scenario name.
  std::string anomaly;

  // Observed outcome (valid when executed and run_status.ok()).
  double accrued_cost = 0.0;
  double elapsed_time = 0.0;
  size_t accesses = 0;
  size_t result_size = 0;
  bool exact = false;
  bool certified = false;
  double wall_seconds = 0.0;

  // A variant is flagged when anything at all went wrong.
  bool flagged() const {
    return !run_status.ok() || !violations.empty() || !anomaly.empty();
  }
};

struct StopConditions {
  // Stop starting new variants once this much wall time has elapsed;
  // 0 = no cap. Variants never started count as skipped, not failed.
  double max_wall_seconds = 0.0;
  // Stop after this many flagged variants; 0 = no cap.
  size_t max_failures = 0;
  // Stop at the first flagged variant (violation, anomaly, or error).
  bool stop_on_first_anomaly = false;
};

// Recorded expectation for one scenario name (from BENCH_PLAYBOOK.json).
// Runs are deterministic on the simulated cost clock, so cost and access
// counts must reproduce exactly.
struct BaselineEntry {
  double cost = 0.0;
  size_t accesses = 0;
};

struct RunnerOptions {
  StopConditions stop;
  // Floating-point slack for the certificate / billing / budget oracles
  // (never for the bit-identity ones).
  double tolerance = 1e-9;
  // Echoed into each flagged variant's repro line as
  // "<repro_prefix> --only <variant-name>". Leave empty to omit.
  std::string repro_prefix;
  // Per-scenario-name expectations to diff against (anomaly oracle).
  std::map<std::string, BaselineEntry> baseline;
  // TEST HOOK: invoked on every executed result before the oracles run.
  // Tests corrupt the result here (e.g. widen a certificate interval) to
  // prove the oracles catch and report it.
  std::function<void(const ScenarioSpec&, TopKResult*)> tamper;
};

// The engineer packet: aggregate counts plus per-variant verdicts.
struct PlaybookReport {
  size_t total = 0;
  size_t executed = 0;
  size_t passed = 0;
  size_t flagged = 0;
  size_t skipped = 0;
  size_t violations = 0;
  size_t anomalies = 0;
  bool stopped_early = false;
  std::string stop_reason;
  double wall_seconds = 0.0;
  std::string repro_prefix;
  std::vector<VariantVerdict> verdicts;

  // The repro command line for one verdict ("<prefix> --only <name>";
  // just the name when no prefix is configured).
  std::string ReproCommand(const VariantVerdict& verdict) const;

  // Human packet: summary line + one block per flagged variant.
  std::string ToText() const;
  // Machine packet (obs::JsonWriter): summary + flagged variants, each
  // with its repro command and full serialized spec.
  std::string ToJson() const;
};

class PlaybookRunner {
 public:
  explicit PlaybookRunner(RunnerOptions options = RunnerOptions());

  // Executes one variant and judges it. Invalid specs come back
  // unexecuted with run_status carrying the validation error.
  VariantVerdict RunOne(const ScenarioSpec& spec) const;

  // Executes `variants` in order under the stop conditions.
  PlaybookReport Run(const std::vector<ScenarioSpec>& variants) const;

  const RunnerOptions& options() const { return options_; }

 private:
  VariantVerdict RunEngineVariant(const ScenarioSpec& spec) const;
  VariantVerdict RunServerVariant(const ScenarioSpec& spec) const;

  RunnerOptions options_;
};

// Extracts the {"baseline": {"<name>": {"cost": c, "accesses": a}}} map
// from a BENCH_PLAYBOOK.json document (the subset of JSON bench_playbook
// emits; not a general parser). InvalidArgument when the document has no
// well-formed baseline object.
Status LoadBaseline(const std::string& json,
                    std::map<std::string, BaselineEntry>* out);

}  // namespace nc::playbook

#endif  // NC_PLAYBOOK_RUNNER_H_
