#include "playbook/catalog.h"

#include <utility>

#include "common/score.h"

namespace nc::playbook {
namespace {

constexpr double kCheap = 1.0;
constexpr double kExpensive = 10.0;

struct Regime {
  const char* name;
  double cost;
};

constexpr Regime kRegimes[] = {
    {"cheap", kCheap},
    {"expensive", kExpensive},
    {"impossible", kImpossibleCost},
};

ScenarioSpec WithUniformCost(const ScenarioSpec& base, double cs, double cr) {
  ScenarioSpec spec = base;
  spec.sorted_cost.assign(spec.num_predicates, cs);
  spec.random_cost.assign(spec.num_predicates, cr);
  return spec;
}

}  // namespace

ScenarioSpec CatalogBase() {
  ScenarioSpec base;
  base.name = "catalog";
  base.num_objects = 10000;
  base.num_predicates = 2;
  base.distribution = ScoreDistribution::kUniform;
  base.scoring = ScoringKind::kAverage;
  base.k = 10;
  base.sorted_cost.assign(2, 1.0);
  base.random_cost.assign(2, 1.0);
  return base;
}

std::vector<Figure2Cell> Figure2Matrix(const ScenarioSpec& base) {
  std::vector<Figure2Cell> cells;
  for (const Regime& sorted : kRegimes) {
    for (const Regime& random : kRegimes) {
      if (sorted.cost == kImpossibleCost && random.cost == kImpossibleCost) {
        continue;  // Unanswerable cell.
      }
      Figure2Cell cell;
      cell.sorted_regime = sorted.name;
      cell.random_regime = random.name;
      cell.spec = WithUniformCost(base, sorted.cost, random.cost);
      cell.spec.name =
          "fig2-" + cell.sorted_regime + "-" + cell.random_regime;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

std::vector<NativeBlock> NativeBlocks(const ScenarioSpec& base) {
  std::vector<NativeBlock> blocks;
  auto add = [&](const char* name, const char* title, double cs, double cr,
                 std::vector<std::string> natives) {
    NativeBlock block;
    block.title = title;
    block.natives = std::move(natives);
    block.spec = WithUniformCost(base, cs, cr);
    block.spec.name = name;
    blocks.push_back(std::move(block));
  };
  add("native-uniform", "uniform costs (cs=cr=1): TA / FA / TAz / Quick-Combine",
      1.0, 1.0, {"TA", "FA", "TAz", "Quick-Combine"});
  add("native-expensive-random", "expensive random (cr=50cs): CA", 1.0, 50.0,
      {"CA", "TA"});
  add("native-no-random", "no random access: NRA / Stream-Combine", 1.0,
      kImpossibleCost, {"NRA-exact", "NRA", "Stream-Combine"});
  add("native-no-sorted", "no sorted access: MPro / Upper", kImpossibleCost,
      1.0, {"MPro", "Upper"});
  add("native-cheap-random", "cheap random (cr=cs/10): the paper's '?' cell",
      10.0, 1.0, {"TA", "CA"});

  // Mixed per-predicate capabilities: p0 sorted + random, p1 random only
  // (TAz's cell - no other baseline runs here).
  NativeBlock mixed;
  mixed.title = "mixed capabilities (p1 random-only): TAz";
  mixed.natives = {"TAz"};
  mixed.spec = base;
  mixed.spec.name = "native-mixed-taz";
  mixed.spec.sorted_cost = {1.0, kImpossibleCost};
  mixed.spec.random_cost = {1.0, 1.0};
  blocks.push_back(std::move(mixed));
  return blocks;
}

}  // namespace nc::playbook
