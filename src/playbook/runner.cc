#include "playbook/runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "access/source.h"
#include "access/trace_format.h"
#include "cache/cache.h"
#include "common/check.h"
#include "common/numeric.h"
#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/reference.h"
#include "core/srg_policy.h"
#include "data/generator.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "replica/replica.h"
#include "server/server.h"

namespace nc::playbook {
namespace {

constexpr const char* kMetricsAlgorithm = "playbook";

// a == b within a relative tolerance anchored at 1 (costs near zero
// compare absolutely).
bool NearlyEqual(double a, double b, double tol) {
  return std::fabs(a - b) <=
         tol * std::max({1.0, std::fabs(a), std::fabs(b)});
}

Score TrueScore(const Dataset& data, const ScoringFunction& scoring,
                ObjectId u) {
  std::vector<Score> row(data.num_predicates());
  for (PredicateId i = 0; i < data.num_predicates(); ++i) {
    row[i] = data.score(u, i);
  }
  return scoring.Evaluate(row);
}

// One scenario's fully configured source stack, engine and server mode
// alike: the injector / fleet / hub a SourceSet needs, owned in
// construction order so `sources` may reference all of them. Identical
// specs build identical stacks - the resume oracle and the server's
// interchangeable-workers contract both stand on that.
struct SpecStack {
  FaultInjector injector;
  ReplicaFleet fleet;
  obs::TelemetryHub hub;
  // Engine-mode cache variants own a private AccessCache (server-mode
  // variants share the QueryServer's instead); within one run it still
  // exercises the full hit path on duplicate accesses.
  std::unique_ptr<cache::AccessCache> cache;
  SourceSet sources;

  SpecStack(const ScenarioSpec& spec, const Dataset* data)
      : injector(spec.fault_seed),
        fleet(spec.fleet_seed),
        sources(data, spec.MakeCostModel()) {
    sources.EnableTrace();
    if (spec.has_fleet()) {
      NC_CHECK(spec.ConfigureFleet(&fleet).ok());
      NC_CHECK(sources.set_replica_fleet(&fleet).ok());
    } else {
      // Fleet specs carry their faults on the replicas; the default
      // profile is only meaningful on the plain single-source path.
      injector.set_default_profile(spec.fault);
      sources.set_fault_injector(&injector);
    }
    if (spec.adaptive_hedge) sources.set_telemetry_hub(&hub);
    sources.set_retry_policy(RetryPolicy{}, spec.jitter_seed);
    if (spec.cache_enabled) {
      cache::CacheConfig cache_config;
      cache_config.hit_cost = spec.cache_hit_cost;
      cache = std::make_unique<cache::AccessCache>(cache_config);
      sources.set_access_cache(cache.get());
    }
  }
};

// The worker-confined stack a server variant's workers build. The
// request carries the budget, so the stack itself stays budget-free.
class SpecWorkerStack : public server::WorkerStack {
 public:
  SpecWorkerStack(const ScenarioSpec& spec, const Dataset* data)
      : stack_(spec, data) {}
  SourceSet& sources() override { return stack_.sources; }

 private:
  SpecStack stack_;
};

// Worst-case single-access factors for budget tightness under a fleet:
// every request may be served by the priciest replica, and a hedged
// access bills two requests.
double FleetCostFactor(const ScenarioSpec& spec) {
  double factor = 1.0;
  for (const ReplicaSpec& replica : spec.replicas) {
    factor = std::max(factor, replica.cost_multiplier);
  }
  if (spec.adaptive_hedge || spec.hedge_delay > 0.0) factor *= 2.0;
  return factor;
}

// Worst-case latency stretch of one request: slowest replica at maximal
// jitter landing in its tail.
double FleetLatencyFactor(const ScenarioSpec& spec) {
  double factor = 1.0;
  for (const ReplicaSpec& replica : spec.replicas) {
    factor = std::max(factor, replica.latency.multiplier *
                                  (1.0 + replica.latency.jitter) *
                                  replica.latency.tail_multiplier);
  }
  return factor;
}

void AddViolation(VariantVerdict* verdict, Oracle oracle,
                  std::string detail) {
  verdict->violations.push_back(Violation{oracle, std::move(detail)});
}

// --- The oracles ------------------------------------------------------

// Fault-free + unlimited budget: the answer IS the brute-force answer.
// Scores compare exactly (both sides evaluate F on the same rows);
// object identity is left to the score comparison because equal-score
// ties may legitimately rank either way.
void CheckDifferential(const Dataset& data, const ScoringFunction& scoring,
                       const ScenarioSpec& spec, const TopKResult& result,
                       bool exact, VariantVerdict* verdict) {
  if (!spec.fault_free() || !spec.budget.unlimited()) return;
  if (!exact) {
    AddViolation(verdict, Oracle::kDifferential,
                 "fault-free unlimited run not reported exact");
    return;
  }
  const TopKResult oracle = BruteForceTopK(data, scoring, spec.k);
  if (result.entries.size() != oracle.entries.size()) {
    AddViolation(verdict, Oracle::kDifferential,
                 "result size " + std::to_string(result.entries.size()) +
                     " != oracle size " +
                     std::to_string(oracle.entries.size()));
    return;
  }
  for (size_t r = 0; r < result.entries.size(); ++r) {
    if (result.entries[r].score != oracle.entries[r].score) {
      AddViolation(verdict, Oracle::kDifferential,
                   "rank " + std::to_string(r) + " score " +
                       FormatDouble(result.entries[r].score) +
                       " != oracle " +
                       FormatDouble(oracle.entries[r].score));
    }
  }
}

// A certificate's promises hold against ground truth: intervals contain
// the true scores, the excluded ceiling dominates every non-returned
// object, and epsilon bounds the rank error.
void CheckCertificate(const Dataset& data, const ScoringFunction& scoring,
                      const TopKResult& result, double tol,
                      VariantVerdict* verdict) {
  if (!result.certificate.has_value()) return;
  const AnytimeCertificate& cert = *result.certificate;
  if (cert.intervals.size() != result.entries.size()) {
    AddViolation(verdict, Oracle::kCertificate,
                 std::to_string(cert.intervals.size()) +
                     " intervals for " +
                     std::to_string(result.entries.size()) + " entries");
    return;
  }
  std::unordered_set<ObjectId> returned;
  Score min_true_returned = kMaxScore;
  for (size_t r = 0; r < result.entries.size(); ++r) {
    const ObjectId u = result.entries[r].object;
    const Score truth = TrueScore(data, scoring, u);
    if (!(cert.intervals[r].lower <= truth + tol) ||
        !(cert.intervals[r].upper + tol >= truth)) {
      AddViolation(verdict, Oracle::kCertificate,
                   "object " + std::to_string(u) + " truth " +
                       FormatDouble(truth) + " outside interval [" +
                       FormatDouble(cert.intervals[r].lower) + ", " +
                       FormatDouble(cert.intervals[r].upper) + "]");
    }
    min_true_returned = std::min(min_true_returned, truth);
    returned.insert(u);
  }
  for (ObjectId u = 0; u < data.num_objects(); ++u) {
    if (returned.count(u) != 0) continue;
    const Score truth = TrueScore(data, scoring, u);
    if (!(truth <= cert.excluded_ceiling + tol)) {
      AddViolation(verdict, Oracle::kCertificate,
                   "excluded object " + std::to_string(u) + " truth " +
                       FormatDouble(truth) + " above ceiling " +
                       FormatDouble(cert.excluded_ceiling));
    }
    if (!result.entries.empty() && std::isfinite(cert.epsilon) &&
        !(truth <= (1.0 + cert.epsilon) * min_true_returned + tol)) {
      AddViolation(verdict, Oracle::kCertificate,
                   "excluded object " + std::to_string(u) +
                       " breaks the epsilon bound: truth " +
                       FormatDouble(truth) + " vs (1+" +
                       FormatDouble(cert.epsilon) + ")*" +
                       FormatDouble(min_true_returned));
    }
  }
}

// Eq. 1 conservation: the per-predicate stats cells sum to the accrued
// cost, and re-aggregating through RecordSourceMetrics reproduces the
// same totals in a fresh registry.
void CheckBilling(const SourceSet& sources, double tol,
                  VariantVerdict* verdict) {
  const AccessStats& stats = sources.stats();
  double cells = 0.0;
  for (PredicateId i = 0; i < sources.num_predicates(); ++i) {
    cells += stats.sorted_cost_accrued[i] + stats.random_cost_accrued[i];
  }
  if (!NearlyEqual(cells, sources.accrued_cost(), tol)) {
    AddViolation(verdict, Oracle::kBilling,
                 "stats cost cells sum " + FormatDouble(cells) +
                     " != accrued_cost " +
                     FormatDouble(sources.accrued_cost()));
  }
  obs::MetricsRegistry registry;
  obs::RecordSourceMetrics(&registry, kMetricsAlgorithm, sources);
  const double metric_cost = registry.CounterSum(
      "nc_access_cost_total", {{"algorithm", kMetricsAlgorithm}});
  if (!NearlyEqual(metric_cost, sources.accrued_cost(), tol)) {
    AddViolation(verdict, Oracle::kBilling,
                 "nc_access_cost_total " + FormatDouble(metric_cost) +
                     " != accrued_cost " +
                     FormatDouble(sources.accrued_cost()));
  }
  const double metric_accesses = registry.CounterSum(
      "nc_accesses_total", {{"algorithm", kMetricsAlgorithm}});
  const double stat_accesses =
      static_cast<double>(stats.TotalSorted() + stats.TotalRandom());
  if (metric_accesses != stat_accesses) {
    AddViolation(verdict, Oracle::kBilling,
                 "nc_accesses_total " + FormatDouble(metric_accesses) +
                     " != stats total " + FormatDouble(stat_accesses));
  }
}

// Budget tightness: never more than one worst-case access past a cap,
// with the fleet's cost/latency stretch priced in; quotas are exact.
void CheckBudget(const ScenarioSpec& spec, const CostModel& cost,
                 double accrued, double elapsed,
                 const AccessStats* stats, double tol,
                 VariantVerdict* verdict) {
  if (spec.budget.unlimited()) return;
  const RetryPolicy retry;  // Stock policy, matching the stacks above.
  const double cost_factor = FleetCostFactor(spec);
  if (spec.budget.max_cost > 0.0) {
    const double bound = spec.budget.max_cost +
                         WorstAccessBilling(cost, retry) * cost_factor + tol;
    if (accrued > bound) {
      AddViolation(verdict, Oracle::kBudget,
                   "accrued cost " + FormatDouble(accrued) +
                       " overshoots cap " +
                       FormatDouble(spec.budget.max_cost) + " past " +
                       FormatDouble(bound));
    }
  }
  // Deadline and quota read the source-side clock and counters, which a
  // server response does not expose; engine mode passes stats, server
  // mode checks the cost cap only.
  if (stats == nullptr) return;
  if (spec.budget.deadline > 0.0) {
    const double bound =
        spec.budget.deadline +
        WorstElapsedIncrement(cost, retry) * cost_factor *
            FleetLatencyFactor(spec) +
        std::max(0.0, spec.hedge_delay) + tol;
    if (elapsed > bound) {
      AddViolation(verdict, Oracle::kBudget,
                   "elapsed time " + FormatDouble(elapsed) +
                       " overshoots deadline " +
                       FormatDouble(spec.budget.deadline) + " past " +
                       FormatDouble(bound));
    }
  }
  for (PredicateId i = 0; i < spec.budget.predicate_quota.size(); ++i) {
    const size_t quota = spec.budget.predicate_quota[i];
    if (quota == 0) continue;
    const size_t used = stats->sorted_count[i] + stats->random_count[i];
    if (used > quota) {
      AddViolation(verdict, Oracle::kBudget,
                   "predicate " + std::to_string(i) + " used " +
                       std::to_string(used) + " accesses over quota " +
                       std::to_string(quota));
    }
  }
}

}  // namespace

const char* OracleName(Oracle oracle) {
  switch (oracle) {
    case Oracle::kDifferential:
      return "Differential";
    case Oracle::kCertificate:
      return "Certificate";
    case Oracle::kBilling:
      return "Billing";
    case Oracle::kBudget:
      return "Budget";
    case Oracle::kResume:
      return "Resume";
  }
  return "?";
}

double WorstAccessBilling(const CostModel& cost, const RetryPolicy& retry) {
  double unit = 0.0;
  for (PredicateId i = 0; i < cost.num_predicates(); ++i) {
    if (cost.has_sorted(i)) unit = std::max(unit, cost.sorted_cost[i]);
    if (cost.has_random(i)) unit = std::max(unit, cost.random_cost[i]);
  }
  const double failures = static_cast<double>(retry.max_attempts - 1);
  return unit * (failures * retry.retry_cost_factor +
                 std::max(1.0, retry.retry_cost_factor));
}

double WorstElapsedIncrement(const CostModel& cost,
                             const RetryPolicy& retry) {
  double unit = 0.0;
  for (PredicateId i = 0; i < cost.num_predicates(); ++i) {
    if (cost.has_sorted(i)) unit = std::max(unit, cost.sorted_cost[i]);
    if (cost.has_random(i)) unit = std::max(unit, cost.random_cost[i]);
  }
  double backoff = 0.0;
  double delay = retry.backoff_base;
  for (size_t a = 1; a < retry.max_attempts; ++a) {
    backoff += delay * (1.0 + retry.backoff_jitter);
    delay *= retry.backoff_multiplier;
  }
  return WorstAccessBilling(cost, retry) +
         static_cast<double>(retry.max_attempts) *
             retry.timeout_latency_factor * unit +
         backoff;
}

PlaybookRunner::PlaybookRunner(RunnerOptions options)
    : options_(std::move(options)) {}

VariantVerdict PlaybookRunner::RunEngineVariant(
    const ScenarioSpec& spec) const {
  VariantVerdict verdict;
  verdict.spec = spec;
  verdict.executed = true;

  const Dataset data = spec.MakeDataset();
  const CostModel cost = spec.MakeCostModel();
  const std::unique_ptr<ScoringFunction> scoring = spec.MakeScoring();
  const SRGConfig config = spec.MakeSRGConfig();

  SpecStack stack(spec, &data);
  verdict.run_status = stack.sources.set_budget(spec.budget);
  if (!verdict.run_status.ok()) return verdict;

  SRGPolicy policy(config);
  EngineOptions options;
  options.k = spec.k;
  std::optional<EngineCheckpoint> checkpoint;
  NCEngine* engine_ptr = nullptr;
  if (spec.kill_at_access > 0) {
    const size_t kill = spec.kill_at_access;
    options.access_callback = [&checkpoint, &engine_ptr, kill](size_t count) {
      if (count == kill) checkpoint = engine_ptr->Checkpoint();
    };
  }
  NCEngine engine(&stack.sources, scoring.get(), &policy, options);
  engine_ptr = &engine;
  TopKResult result;
  verdict.run_status = engine.Run(&result);
  if (!verdict.run_status.ok()) return verdict;

  verdict.accrued_cost = stack.sources.accrued_cost();
  verdict.elapsed_time = stack.sources.elapsed_time();
  verdict.accesses = engine.accesses_performed();
  verdict.result_size = result.entries.size();
  verdict.exact = engine.last_run_exact();
  verdict.certified = result.certificate.has_value();

  // Crash-safety first, against the pristine result: resume the mid-run
  // snapshot (through the text format) on a freshly built identical
  // stack and demand a bit-identical continuation.
  if (checkpoint.has_value()) {
    const std::string text = SerializeCheckpoint(*checkpoint);
    EngineCheckpoint parsed;
    const Status parse_status = ParseCheckpoint(text, &parsed);
    if (!parse_status.ok()) {
      AddViolation(&verdict, Oracle::kResume,
                   "checkpoint failed to round-trip: " +
                       parse_status.ToString());
    } else {
      SpecStack resume_stack(spec, &data);
      const Status budget_status =
          resume_stack.sources.set_budget(spec.budget);
      NC_CHECK(budget_status.ok());
      SRGPolicy resume_policy(config);
      EngineOptions resume_options;
      resume_options.k = spec.k;
      NCEngine resume_engine(&resume_stack.sources, scoring.get(),
                             &resume_policy, resume_options);
      TopKResult resumed;
      const Status resume_status = resume_engine.Resume(parsed, &resumed);
      if (!resume_status.ok()) {
        AddViolation(&verdict, Oracle::kResume,
                     "resume failed: " + resume_status.ToString());
      } else {
        if (resumed.entries.size() != result.entries.size()) {
          AddViolation(&verdict, Oracle::kResume,
                       "resumed size " +
                           std::to_string(resumed.entries.size()) +
                           " != original " +
                           std::to_string(result.entries.size()));
        } else {
          for (size_t r = 0; r < resumed.entries.size(); ++r) {
            if (resumed.entries[r].object != result.entries[r].object ||
                resumed.entries[r].score != result.entries[r].score) {
              AddViolation(&verdict, Oracle::kResume,
                           "rank " + std::to_string(r) +
                               " diverged after resume");
            }
          }
        }
        if (resumed.certificate.has_value() !=
            result.certificate.has_value()) {
          AddViolation(&verdict, Oracle::kResume,
                       "certificate presence diverged after resume");
        }
        if (resume_stack.sources.accrued_cost() !=
            stack.sources.accrued_cost()) {
          AddViolation(
              &verdict, Oracle::kResume,
              "accrued cost diverged: " +
                  FormatDouble(resume_stack.sources.accrued_cost()) +
                  " != " + FormatDouble(stack.sources.accrued_cost()));
        }
        if (resume_stack.sources.elapsed_time() !=
            stack.sources.elapsed_time()) {
          AddViolation(&verdict, Oracle::kResume,
                       "elapsed time diverged after resume");
        }
        if (resume_engine.accesses_performed() !=
            engine.accesses_performed()) {
          AddViolation(&verdict, Oracle::kResume,
                       "access count diverged after resume");
        }
        if (SerializeAttemptTrace(resume_stack.sources.attempt_trace()) !=
            SerializeAttemptTrace(stack.sources.attempt_trace())) {
          AddViolation(&verdict, Oracle::kResume,
                       "attempt trace diverged after resume");
        }
      }
    }
  }

  if (options_.tamper) options_.tamper(spec, &result);

  CheckDifferential(data, *scoring, spec, result, verdict.exact, &verdict);
  CheckCertificate(data, *scoring, result, options_.tolerance, &verdict);
  CheckBilling(stack.sources, options_.tolerance, &verdict);
  CheckBudget(spec, cost, verdict.accrued_cost, verdict.elapsed_time,
              &stack.sources.stats(), options_.tolerance, &verdict);
  return verdict;
}

VariantVerdict PlaybookRunner::RunServerVariant(
    const ScenarioSpec& spec) const {
  VariantVerdict verdict;
  verdict.spec = spec;
  verdict.executed = true;

  const Dataset data = spec.MakeDataset();
  const CostModel cost = spec.MakeCostModel();
  const std::unique_ptr<ScoringFunction> scoring = spec.MakeScoring();

  server::ServerConfig config;
  config.num_workers = spec.workers;
  config.queue_capacity = 4;
  // Server-mode cache variants go through the QueryServer's shared
  // cache, so this path exercises the real cross-worker wiring.
  config.enable_cache = spec.cache_enabled;
  config.cache.hit_cost = spec.cache_hit_cost;
  server::QueryServer server(
      scoring.get(), config,
      [&spec, &data](size_t) {
        return std::make_unique<SpecWorkerStack>(spec, &data);
      });
  verdict.run_status = server.Start();
  if (!verdict.run_status.ok()) return verdict;

  server::QueryRequest request;
  request.k = spec.k;
  request.budget = spec.budget;
  std::future<server::QueryResponse> future;
  verdict.run_status = server.Submit(std::move(request), &future);
  if (!verdict.run_status.ok()) {
    server.Shutdown(true);
    return verdict;
  }
  server::QueryResponse response = future.get();
  server.Shutdown(true);

  verdict.run_status = response.status;
  if (!verdict.run_status.ok()) return verdict;
  if (response.outcome != server::ServeOutcome::kCompleted) {
    verdict.run_status = Status::Internal(
        std::string("server outcome ") +
        server::ServeOutcomeName(response.outcome));
    return verdict;
  }

  verdict.accrued_cost = response.accrued_cost;
  verdict.accesses = response.accesses;
  verdict.result_size = response.result.entries.size();
  verdict.exact = response.query_outcome == QueryOutcome::kExact;
  verdict.certified = response.result.certificate.has_value();

  if (options_.tamper) options_.tamper(spec, &response.result);

  CheckDifferential(data, *scoring, spec, response.result, verdict.exact,
                    &verdict);
  CheckCertificate(data, *scoring, response.result, options_.tolerance,
                   &verdict);
  // Eq. 1 conservation through the server's registry: the query's
  // recorded per-series costs must sum back to what the response billed.
  const double metric_cost = server.metrics().CounterSum(
      "nc_access_cost_total", {{"algorithm", "server"}});
  if (!NearlyEqual(metric_cost, response.accrued_cost,
                   options_.tolerance)) {
    AddViolation(&verdict, Oracle::kBilling,
                 "server nc_access_cost_total " + FormatDouble(metric_cost) +
                     " != response accrued_cost " +
                     FormatDouble(response.accrued_cost));
  }
  CheckBudget(spec, cost, verdict.accrued_cost, 0.0, nullptr,
              options_.tolerance, &verdict);
  return verdict;
}

VariantVerdict PlaybookRunner::RunOne(const ScenarioSpec& spec) const {
  const auto start = std::chrono::steady_clock::now();
  VariantVerdict verdict;
  const Status valid = spec.Validate();
  if (!valid.ok()) {
    verdict.spec = spec;
    verdict.run_status = valid;
  } else if (spec.workers == 0) {
    verdict = RunEngineVariant(spec);
  } else {
    verdict = RunServerVariant(spec);
  }
  if (verdict.executed && !options_.baseline.empty()) {
    const auto it = options_.baseline.find(spec.name);
    if (it != options_.baseline.end()) {
      const BaselineEntry& expected = it->second;
      if (!NearlyEqual(verdict.accrued_cost, expected.cost,
                       options_.tolerance) ||
          verdict.accesses != expected.accesses) {
        verdict.anomaly =
            "cost " + FormatDouble(verdict.accrued_cost) + " accesses " +
            std::to_string(verdict.accesses) + " vs baseline cost " +
            FormatDouble(expected.cost) + " accesses " +
            std::to_string(expected.accesses);
      }
    }
  }
  verdict.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return verdict;
}

PlaybookReport PlaybookRunner::Run(
    const std::vector<ScenarioSpec>& variants) const {
  const auto start = std::chrono::steady_clock::now();
  PlaybookReport report;
  report.total = variants.size();
  report.repro_prefix = options_.repro_prefix;
  const StopConditions& stop = options_.stop;
  for (const ScenarioSpec& spec : variants) {
    if (report.stopped_early) {
      VariantVerdict skipped;
      skipped.spec = spec;
      report.verdicts.push_back(std::move(skipped));
      ++report.skipped;
      continue;
    }
    if (stop.max_wall_seconds > 0.0) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      if (elapsed >= stop.max_wall_seconds) {
        report.stopped_early = true;
        report.stop_reason = "wall-clock cap reached";
        VariantVerdict skipped;
        skipped.spec = spec;
        report.verdicts.push_back(std::move(skipped));
        ++report.skipped;
        continue;
      }
    }
    VariantVerdict verdict = RunOne(spec);
    ++report.executed;
    if (verdict.flagged()) {
      ++report.flagged;
      report.violations += verdict.violations.size();
      if (!verdict.anomaly.empty()) ++report.anomalies;
    } else {
      ++report.passed;
    }
    const bool over_failures =
        stop.max_failures > 0 && report.flagged >= stop.max_failures;
    const bool first_anomaly =
        stop.stop_on_first_anomaly && report.flagged > 0;
    report.verdicts.push_back(std::move(verdict));
    if (over_failures || first_anomaly) {
      report.stopped_early = true;
      report.stop_reason = first_anomaly && !over_failures
                               ? "first anomaly"
                               : "max failures reached";
    }
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

std::string PlaybookReport::ReproCommand(
    const VariantVerdict& verdict) const {
  if (repro_prefix.empty()) return verdict.spec.name;
  return repro_prefix + " --only " + verdict.spec.name;
}

std::string PlaybookReport::ToText() const {
  std::string out = "playbook: total=" + std::to_string(total) +
                    " executed=" + std::to_string(executed) +
                    " passed=" + std::to_string(passed) +
                    " flagged=" + std::to_string(flagged) +
                    " skipped=" + std::to_string(skipped) +
                    " violations=" + std::to_string(violations) +
                    " anomalies=" + std::to_string(anomalies) + " wall=" +
                    FormatDouble(wall_seconds) + "s\n";
  if (stopped_early) out += "stopped early: " + stop_reason + "\n";
  for (const VariantVerdict& verdict : verdicts) {
    if (!verdict.executed || !verdict.flagged()) continue;
    out += "--- " + verdict.spec.name + " ---\n";
    out += "  spec: " + verdict.spec.Signature() + "\n";
    if (!verdict.run_status.ok()) {
      out += "  status: " + verdict.run_status.ToString() + "\n";
    }
    for (const Violation& violation : verdict.violations) {
      out += std::string("  violation[") + OracleName(violation.oracle) +
             "]: " + violation.detail + "\n";
    }
    if (!verdict.anomaly.empty()) {
      out += "  anomaly: " + verdict.anomaly + "\n";
    }
    out += "  repro: " + ReproCommand(verdict) + "\n";
  }
  return out;
}

std::string PlaybookReport::ToJson() const {
  std::ostringstream os;
  obs::JsonWriter json(&os);
  json.BeginObject();
  json.Key("schema_version");
  json.Int(1);
  json.Key("summary");
  json.BeginObject();
  json.Key("total");
  json.UInt(total);
  json.Key("executed");
  json.UInt(executed);
  json.Key("passed");
  json.UInt(passed);
  json.Key("flagged");
  json.UInt(flagged);
  json.Key("skipped");
  json.UInt(skipped);
  json.Key("violations");
  json.UInt(violations);
  json.Key("anomalies");
  json.UInt(anomalies);
  json.Key("stopped_early");
  json.Bool(stopped_early);
  json.Key("stop_reason");
  json.String(stop_reason);
  json.Key("wall_seconds");
  json.Number(wall_seconds);
  json.EndObject();
  json.Key("flagged_variants");
  json.BeginArray();
  for (const VariantVerdict& verdict : verdicts) {
    if (!verdict.executed || !verdict.flagged()) continue;
    json.BeginObject();
    json.Key("name");
    json.String(verdict.spec.name);
    json.Key("signature");
    json.String(verdict.spec.Signature());
    json.Key("repro");
    json.String(ReproCommand(verdict));
    json.Key("status");
    json.String(verdict.run_status.ToString());
    json.Key("violations");
    json.BeginArray();
    for (const Violation& violation : verdict.violations) {
      json.BeginObject();
      json.Key("oracle");
      json.String(OracleName(violation.oracle));
      json.Key("detail");
      json.String(violation.detail);
      json.EndObject();
    }
    json.EndArray();
    json.Key("anomaly");
    json.String(verdict.anomaly);
    json.Key("cost");
    json.Number(verdict.accrued_cost);
    json.Key("accesses");
    json.UInt(verdict.accesses);
    json.Key("spec");
    json.String(verdict.spec.Serialize());
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  os << "\n";
  return os.str();
}

namespace {

// Minimal cursor over the JSON subset bench_playbook emits.
struct JsonCursor {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\t' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Expect(char c) {
    SkipSpace();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos < text.size() && text[pos] == c;
  }

  // Parses a quoted string (escapes rejected - names are plain tokens).
  bool TakeString(std::string* out) {
    if (!Expect('"')) return false;
    const size_t start = pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') return false;
      ++pos;
    }
    if (pos >= text.size()) return false;
    *out = std::string(text.substr(start, pos - start));
    ++pos;
    return true;
  }

  bool TakeNumber(double* out) {
    SkipSpace();
    const size_t start = pos;
    while (pos < text.size() && text[pos] != ',' && text[pos] != '}' &&
           text[pos] != ']' && text[pos] != ' ' && text[pos] != '\n') {
      ++pos;
    }
    return ParseDouble(text.substr(start, pos - start), out);
  }
};

}  // namespace

Status LoadBaseline(const std::string& json,
                    std::map<std::string, BaselineEntry>* out) {
  const size_t key = json.find("\"baseline\"");
  if (key == std::string::npos) {
    return Status::InvalidArgument("no \"baseline\" object in document");
  }
  JsonCursor cur{json, key + std::string("\"baseline\"").size()};
  if (!cur.Expect(':') || !cur.Expect('{')) {
    return Status::InvalidArgument("malformed baseline object");
  }
  std::map<std::string, BaselineEntry> baseline;
  if (!cur.Peek('}')) {
    while (true) {
      std::string name;
      if (!cur.TakeString(&name) || !cur.Expect(':') || !cur.Expect('{')) {
        return Status::InvalidArgument("malformed baseline entry");
      }
      BaselineEntry entry;
      bool saw_cost = false, saw_accesses = false;
      while (true) {
        std::string field;
        double value = 0.0;
        if (!cur.TakeString(&field) || !cur.Expect(':') ||
            !cur.TakeNumber(&value)) {
          return Status::InvalidArgument("malformed baseline field for \"" +
                                         name + "\"");
        }
        if (field == "cost") {
          entry.cost = value;
          saw_cost = true;
        } else if (field == "accesses") {
          entry.accesses = static_cast<size_t>(value);
          saw_accesses = true;
        } else {
          return Status::InvalidArgument("unknown baseline field \"" +
                                         field + "\"");
        }
        if (cur.Peek('}')) break;
        if (!cur.Expect(',')) {
          return Status::InvalidArgument("malformed baseline entry for \"" +
                                         name + "\"");
        }
      }
      cur.Expect('}');
      if (!saw_cost || !saw_accesses) {
        return Status::InvalidArgument("baseline entry \"" + name +
                                       "\" missing cost or accesses");
      }
      baseline[name] = entry;
      if (cur.Peek('}')) break;
      if (!cur.Expect(',')) {
        return Status::InvalidArgument("malformed baseline object");
      }
    }
  }
  cur.Expect('}');
  *out = std::move(baseline);
  return Status::OK();
}

}  // namespace nc::playbook
