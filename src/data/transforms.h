// Turning raw attributes into predicate scores.
//
// Real data rarely arrives as [0,1] scores: prices are dollars, distances
// are miles, ratings are 1-5 stars. These helpers map raw columns into
// the score space the middleware ranks over, preserving the orderings
// that matter (monotone transforms) so sorted streams stay meaningful.

#ifndef NC_DATA_TRANSFORMS_H_
#define NC_DATA_TRANSFORMS_H_

#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace nc {

// Linear min-max rescale: the column minimum maps to 0, the maximum to 1.
// A constant column maps to all 0.5. `descending` flips the orientation
// (smaller raw value = better score), e.g. for prices or distances.
std::vector<Score> MinMaxScores(const std::vector<double>& raw,
                                bool descending = false);

// Rank-based normalization: the r-th smallest raw value maps to
// r / (count - 1), making the score distribution uniform regardless of
// the raw distribution's shape (ties share the average of their ranks).
// `descending` flips the orientation.
std::vector<Score> RankScores(const std::vector<double>& raw,
                              bool descending = false);

// Exponential decay: score = exp(-raw / scale) for nonnegative raw values
// (distance-to-closeness, price-above-budget, staleness). Larger raw =
// lower score; raw <= 0 maps to 1. `scale` > 0 sets the half-life-ish
// falloff.
std::vector<Score> ExpDecayScores(const std::vector<double>& raw,
                                  double scale);

// Builds a Dataset from raw attribute columns, one transform result per
// predicate. All columns must be equally sized and nonempty.
Status DatasetFromScoreColumns(
    const std::vector<std::vector<Score>>& columns, Dataset* out);

}  // namespace nc

#endif  // NC_DATA_TRANSFORMS_H_
