// The paper's Web travel-agent benchmark scenario (Examples 1 and 2),
// rebuilt as synthetic workloads.
//
// The paper queries live sources (dineme.com, superpages.com, hotels.com);
// we generate datasets whose score distributions have the qualitative
// properties those predicates would have, and attach the access-cost
// scenarios of Figure 1:
//
//   Query Q1 (restaurants): F = min(rating, closeness), k = 5.
//     Figure 1(a): both sources support sorted and random access; random
//     accesses cost more in both, with different scales and ratios.
//   Query Q2 (hotels): F = avg(closeness, stars, cheap), k = 5.
//     Figure 1(b): hotels.com serves all attributes via sorted access, so
//     a random access after the first sorted hit is free (cr = 0).
//
// The concrete latency constants are reconstructed (the surviving text
// garbles Figure 1's numbers); see DESIGN.md section 3.

#ifndef NC_DATA_TRAVEL_AGENT_H_
#define NC_DATA_TRAVEL_AGENT_H_

#include <cstdint>
#include <memory>

#include "access/cost_model.h"
#include "data/dataset.h"
#include "scoring/scoring_function.h"

namespace nc {

// A ready-to-run benchmark query: data + cost scenario + query shape.
struct TravelAgentQuery {
  Dataset data;
  CostModel cost;
  std::unique_ptr<ScoringFunction> scoring;
  size_t k = 5;
  const char* label = "";
};

// Q1: top-5 restaurants by min(rating, closeness).
//   rating    - discrete half-star ratings, roughly bell-shaped around 3.5
//               of 5 stars.
//   closeness - exp-decay of distance to the user; restaurants cluster in
//               a few neighborhoods, so closeness is multi-modal.
// Costs (seconds): rating cs=0.9 cr=1.5; closeness cs=0.2 cr=0.6.
TravelAgentQuery MakeRestaurantQuery(size_t num_restaurants, uint64_t seed);

// Q2: top-5 hotels by avg(closeness, stars, cheap).
//   closeness - as above; stars - discrete 1..5 stars scaled to [0,1];
//   cheap     - budget fit, decaying with price; price correlates with
//               stars (pricier hotels have more stars), making the
//               predicates anti-correlated the way real hotel data is.
// Costs: cs=1.0 on every predicate, cr=0 (attributes ride along with any
// sorted hit).
TravelAgentQuery MakeHotelQuery(size_t num_hotels, uint64_t seed);

}  // namespace nc

#endif  // NC_DATA_TRAVEL_AGENT_H_
