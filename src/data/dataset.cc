#include "data/dataset.h"

#include <algorithm>

#include "common/check.h"

namespace nc {

Dataset::Dataset(size_t num_objects, size_t num_predicates)
    : num_objects_(num_objects),
      columns_(num_predicates, std::vector<Score>(num_objects, 0.0)),
      predicate_names_(num_predicates),
      sorted_orders_(num_predicates) {
  for (size_t i = 0; i < num_predicates; ++i) {
    // Built via a local and move-assigned: GCC 12's -Wrestrict
    // false-positives on the char*-assignment paths here.
    std::string name = std::to_string(i);
    name.insert(name.begin(), 'p');
    predicate_names_[i] = std::move(name);
  }
}

Status Dataset::FromRows(const std::vector<std::vector<Score>>& rows,
                         Dataset* out) {
  NC_CHECK(out != nullptr);
  if (rows.empty()) {
    return Status::InvalidArgument("dataset needs at least one object");
  }
  const size_t m = rows[0].size();
  if (m == 0) {
    return Status::InvalidArgument("dataset needs at least one predicate");
  }
  for (const auto& row : rows) {
    if (row.size() != m) {
      return Status::InvalidArgument("ragged score rows");
    }
    for (Score s : row) {
      if (!IsValidScore(s)) {
        return Status::InvalidArgument("score outside [0, 1]");
      }
    }
  }
  Dataset result(rows.size(), m);
  for (size_t u = 0; u < rows.size(); ++u) {
    for (size_t i = 0; i < m; ++i) {
      result.columns_[i][u] = rows[u][i];
    }
  }
  *out = std::move(result);
  return Status::OK();
}

void Dataset::SetScore(ObjectId u, PredicateId i, Score s) {
  NC_CHECK(i < columns_.size());
  NC_CHECK(u < num_objects_);
  NC_CHECK(IsValidScore(s));
  columns_[i][u] = s;
  sorted_orders_[i].clear();
}

const std::vector<ObjectId>& Dataset::SortedOrder(PredicateId i) const {
  NC_CHECK(i < columns_.size());
  std::vector<ObjectId>& order = sorted_orders_[i];
  if (order.empty() && num_objects_ > 0) {
    order.resize(num_objects_);
    for (size_t u = 0; u < num_objects_; ++u) {
      order[u] = static_cast<ObjectId>(u);
    }
    const std::vector<Score>& column = columns_[i];
    std::sort(order.begin(), order.end(), [&column](ObjectId a, ObjectId b) {
      if (column[a] != column[b]) return column[a] > column[b];
      return a > b;
    });
  }
  return order;
}

void Dataset::SetPredicateName(PredicateId i, std::string name) {
  NC_CHECK(i < predicate_names_.size());
  predicate_names_[i] = std::move(name);
}

const std::string& Dataset::predicate_name(PredicateId i) const {
  NC_CHECK(i < predicate_names_.size());
  return predicate_names_[i];
}

void Dataset::SetObjectName(ObjectId u, std::string name) {
  NC_CHECK(u < num_objects_);
  if (object_names_.empty()) object_names_.resize(num_objects_);
  object_names_[u] = std::move(name);
}

std::string Dataset::object_name(ObjectId u) const {
  NC_CHECK(u < num_objects_);
  if (u < object_names_.size() && !object_names_[u].empty()) {
    return object_names_[u];
  }
  return "object-" + std::to_string(u);
}

}  // namespace nc
