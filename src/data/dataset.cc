#include "data/dataset.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace nc {

Dataset::Dataset(size_t num_objects, size_t num_predicates)
    : num_objects_(num_objects),
      columns_(num_predicates, std::vector<Score>(num_objects, 0.0)),
      predicate_names_(num_predicates),
      sorted_orders_(num_predicates) {
  for (size_t i = 0; i < num_predicates; ++i) {
    // Built via a local and move-assigned: GCC 12's -Wrestrict
    // false-positives on the char*-assignment paths here.
    std::string name = std::to_string(i);
    name.insert(name.begin(), 'p');
    predicate_names_[i] = std::move(name);
  }
}

Dataset::Dataset(const Dataset& other)
    : num_objects_(other.num_objects_),
      columns_(other.columns_),
      predicate_names_(other.predicate_names_),
      object_names_(other.object_names_),
      sorted_orders_(other.sorted_orders_.size()) {
  for (size_t i = 0; i < sorted_orders_.size(); ++i) {
    if (other.sorted_orders_[i].ready.load(std::memory_order_acquire)) {
      sorted_orders_[i].order = other.sorted_orders_[i].order;
      sorted_orders_[i].ready.store(true, std::memory_order_relaxed);
    }
  }
}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  Dataset copy(other);
  *this = std::move(copy);
  return *this;
}

Dataset::Dataset(Dataset&& other) noexcept
    : num_objects_(other.num_objects_),
      columns_(std::move(other.columns_)),
      predicate_names_(std::move(other.predicate_names_)),
      object_names_(std::move(other.object_names_)),
      sorted_orders_(std::move(other.sorted_orders_)) {}

Dataset& Dataset::operator=(Dataset&& other) noexcept {
  if (this == &other) return *this;
  num_objects_ = other.num_objects_;
  columns_ = std::move(other.columns_);
  predicate_names_ = std::move(other.predicate_names_);
  object_names_ = std::move(other.object_names_);
  sorted_orders_ = std::move(other.sorted_orders_);
  return *this;
}

Status Dataset::FromRows(const std::vector<std::vector<Score>>& rows,
                         Dataset* out) {
  NC_CHECK(out != nullptr);
  if (rows.empty()) {
    return Status::InvalidArgument("dataset needs at least one object");
  }
  const size_t m = rows[0].size();
  if (m == 0) {
    return Status::InvalidArgument("dataset needs at least one predicate");
  }
  for (const auto& row : rows) {
    if (row.size() != m) {
      return Status::InvalidArgument("ragged score rows");
    }
    for (Score s : row) {
      if (!IsValidScore(s)) {
        return Status::InvalidArgument("score outside [0, 1]");
      }
    }
  }
  Dataset result(rows.size(), m);
  for (size_t u = 0; u < rows.size(); ++u) {
    for (size_t i = 0; i < m; ++i) {
      result.columns_[i][u] = rows[u][i];
    }
  }
  *out = std::move(result);
  return Status::OK();
}

void Dataset::SetScore(ObjectId u, PredicateId i, Score s) {
  NC_CHECK(i < columns_.size());
  NC_CHECK(u < num_objects_);
  NC_CHECK(IsValidScore(s));
  columns_[i][u] = s;
  const std::lock_guard<std::mutex> lock(sorted_mu_);
  sorted_orders_[i].order.clear();
  sorted_orders_[i].ready.store(false, std::memory_order_release);
}

const std::vector<ObjectId>& Dataset::SortedOrder(PredicateId i) const {
  NC_CHECK(i < columns_.size());
  SortedColumn& cache = sorted_orders_[i];
  // Double-checked build: a QueryServer's workers share one dataset, so
  // the first touches of a predicate can race. Builders serialize on the
  // mutex and sort into a local, publishing only the finished order —
  // past the acquire load no reader can observe a half-sorted
  // permutation (which used to scramble the stream's (object, score)
  // pairing under load).
  if (!cache.ready.load(std::memory_order_acquire)) {
    const std::lock_guard<std::mutex> lock(sorted_mu_);
    if (!cache.ready.load(std::memory_order_relaxed)) {
      std::vector<ObjectId> order(num_objects_);
      for (size_t u = 0; u < num_objects_; ++u) {
        order[u] = static_cast<ObjectId>(u);
      }
      const std::vector<Score>& column = columns_[i];
      std::sort(order.begin(), order.end(),
                [&column](ObjectId a, ObjectId b) {
                  if (column[a] != column[b]) return column[a] > column[b];
                  return a > b;
                });
      cache.order = std::move(order);
      cache.ready.store(true, std::memory_order_release);
    }
  }
  return cache.order;
}

void Dataset::SetPredicateName(PredicateId i, std::string name) {
  NC_CHECK(i < predicate_names_.size());
  predicate_names_[i] = std::move(name);
}

const std::string& Dataset::predicate_name(PredicateId i) const {
  NC_CHECK(i < predicate_names_.size());
  return predicate_names_[i];
}

void Dataset::SetObjectName(ObjectId u, std::string name) {
  NC_CHECK(u < num_objects_);
  if (object_names_.empty()) object_names_.resize(num_objects_);
  object_names_[u] = std::move(name);
}

std::string Dataset::object_name(ObjectId u) const {
  NC_CHECK(u < num_objects_);
  if (u < object_names_.size() && !object_names_[u].empty()) {
    return object_names_[u];
  }
  return "object-" + std::to_string(u);
}

}  // namespace nc
