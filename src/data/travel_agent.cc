#include "data/travel_agent.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace nc {

namespace {

// Distance-to-score decay: closeness 1 at distance 0, ~0.1 at the far edge
// of town (distance 1).
Score Closeness(double distance) {
  return ClampScore(std::exp(-2.3 * distance));
}

// Draws a position in a town with a few dense neighborhoods: with
// probability 0.7 the venue sits near one of `centers` cluster centers,
// otherwise anywhere in [0,1]^2.
struct Point {
  double x;
  double y;
};

Point DrawVenuePosition(Rng* rng) {
  static constexpr Point kCenters[] = {
      {0.2, 0.3}, {0.7, 0.6}, {0.5, 0.9}, {0.85, 0.15}};
  if (rng->Uniform01() < 0.7) {
    const Point& c = kCenters[rng->UniformInt(4)];
    return Point{ClampScore(rng->Gaussian(c.x, 0.07)),
                 ClampScore(rng->Gaussian(c.y, 0.07))};
  }
  return Point{rng->Uniform01(), rng->Uniform01()};
}

double Distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

// Rounds a continuous quality in [0,1] to half-star granularity on a
// 5-star scale (0.1 steps in score space).
Score HalfStarRating(double quality) {
  const double stars10 = std::round(ClampScore(quality) * 10.0);
  return ClampScore(stars10 / 10.0);
}

}  // namespace

TravelAgentQuery MakeRestaurantQuery(size_t num_restaurants, uint64_t seed) {
  NC_CHECK(num_restaurants > 0);
  Rng rng(seed);
  const Point user{0.35, 0.4};  // "myaddr": near downtown.

  Dataset data(num_restaurants, 2);
  data.SetPredicateName(0, "rating");
  data.SetPredicateName(1, "closeness");
  for (ObjectId u = 0; u < num_restaurants; ++u) {
    // Ratings cluster around 3.5/5 stars.
    data.SetScore(u, 0, HalfStarRating(rng.Gaussian(0.7, 0.15)));
    const Point pos = DrawVenuePosition(&rng);
    data.SetScore(u, 1, Closeness(Distance(user, pos)));
  }

  TravelAgentQuery query;
  query.data = std::move(data);
  // Figure 1(a): random access pricier than sorted in both sources, with
  // different scales (rating from dineme.com, closeness from
  // superpages.com).
  query.cost = CostModel({0.9, 0.2}, {1.5, 0.6});
  query.scoring = std::make_unique<MinFunction>(2);
  query.k = 5;
  query.label = "Q1-restaurants";
  return query;
}

TravelAgentQuery MakeHotelQuery(size_t num_hotels, uint64_t seed) {
  NC_CHECK(num_hotels > 0);
  Rng rng(seed);
  const Point user{0.35, 0.4};

  Dataset data(num_hotels, 3);
  data.SetPredicateName(0, "closeness");
  data.SetPredicateName(1, "stars");
  data.SetPredicateName(2, "cheap");
  for (ObjectId u = 0; u < num_hotels; ++u) {
    const Point pos = DrawVenuePosition(&rng);
    data.SetScore(u, 0, Closeness(Distance(user, pos)));
    // Stars 1..5, skewed toward 2-4.
    const double star_quality = ClampScore(rng.Gaussian(0.55, 0.2));
    const double stars = 1.0 + std::floor(star_quality * 4.999);
    data.SetScore(u, 1, ClampScore(stars / 5.0));
    // Nightly price grows with stars plus noise; the budget-fit score
    // decays with price, anti-correlating "cheap" with "stars".
    const double price =
        40.0 + 60.0 * stars + rng.Gaussian(0.0, 40.0);  // dollars
    const double budget = 150.0;
    data.SetScore(u, 2,
                  ClampScore(std::exp(-std::max(0.0, price - budget) /
                                      budget)));
  }

  TravelAgentQuery query;
  query.data = std::move(data);
  // Figure 1(b): hotels.com returns all attributes with each sorted hit,
  // so follow-up random accesses are free.
  query.cost = CostModel({1.0, 1.0, 1.0}, {0.0, 0.0, 0.0});
  query.scoring = std::make_unique<AverageFunction>(3);
  query.k = 5;
  query.label = "Q2-hotels";
  return query;
}

}  // namespace nc
