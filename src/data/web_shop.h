// A second benchmark domain: comparison shopping across four Web sources
// with genuinely heterogeneous capabilities - the scenario class where no
// single published algorithm applies at all and cost-based optimization
// is the only game in town.
//
//   relevance  - search engine: ranked listings only (no "what is item
//                X's relevance" endpoint): sorted cheap, random impossible.
//   rating     - review site: browsable ranking and per-item pages:
//                sorted + random, random pricier.
//   price-fit  - shop API: ranked-by-price listing and cheap item lookup.
//   shipping   - logistics API: per-item quote only: random-only,
//                moderately priced.
//
// Raw attributes (dollars, days, stars, relevance weights) are mapped
// into score space with data/transforms.h - the same path real imports
// take.

#ifndef NC_DATA_WEB_SHOP_H_
#define NC_DATA_WEB_SHOP_H_

#include <cstdint>
#include <memory>

#include "access/cost_model.h"
#include "data/dataset.h"
#include "scoring/scoring_function.h"

namespace nc {

struct WebShopQuery {
  Dataset data;
  CostModel cost;
  std::unique_ptr<ScoringFunction> scoring;
  size_t k = 10;
  const char* label = "web-shop";
};

// Builds the catalog and query: top-k products by
// wsum(0.4*relevance, 0.3*rating, 0.2*price_fit, 0.1*shipping).
WebShopQuery MakeWebShopQuery(size_t num_products, uint64_t seed);

}  // namespace nc

#endif  // NC_DATA_WEB_SHOP_H_
