#include "data/generator.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace nc {

namespace {

// One independent marginal draw in [0, 1].
Score DrawMarginal(const GeneratorOptions& options, Rng* rng) {
  switch (options.distribution) {
    case ScoreDistribution::kUniform:
      return rng->Uniform01();
    case ScoreDistribution::kGaussian:
      return ClampScore(
          rng->Gaussian(options.gaussian_mean, options.gaussian_stddev));
    case ScoreDistribution::kZipf:
      // Power transform of a uniform draw: P(score > s) = (1-s)^(1/skew)
      // shape; skew > 1 concentrates mass near 0, matching a Zipf-like
      // "few objects score high" marginal.
      return std::pow(rng->Uniform01(), options.zipf_skew);
  }
  NC_CHECK(false);
  return 0.0;
}

}  // namespace

const char* ScoreDistributionName(ScoreDistribution dist) {
  switch (dist) {
    case ScoreDistribution::kUniform:
      return "uniform";
    case ScoreDistribution::kGaussian:
      return "gaussian";
    case ScoreDistribution::kZipf:
      return "zipf";
  }
  return "unknown";
}

Dataset GenerateDataset(const GeneratorOptions& options) {
  NC_CHECK(options.num_objects > 0);
  NC_CHECK(options.num_predicates > 0);
  NC_CHECK(options.correlation >= -1.0 && options.correlation <= 1.0);
  Rng rng(options.seed);
  Dataset data(options.num_objects, options.num_predicates);

  const double rho = std::abs(options.correlation);
  const bool anti = options.correlation < 0.0;
  for (ObjectId u = 0; u < options.num_objects; ++u) {
    // Latent per-object quality shared across predicates.
    const Score latent = DrawMarginal(options, &rng);
    for (PredicateId i = 0; i < options.num_predicates; ++i) {
      const Score independent = DrawMarginal(options, &rng);
      // For anti-correlation, odd predicates see the inverted latent, so
      // adjacent predicates pull in opposite directions.
      const Score base =
          (anti && (i % 2 == 1)) ? (kMaxScore - latent) : latent;
      const Score mixed = ClampScore(rho * base + (1.0 - rho) * independent);
      data.SetScore(u, i, mixed);
    }
  }
  return data;
}

}  // namespace nc
