#include "data/transforms.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nc {

std::vector<Score> MinMaxScores(const std::vector<double>& raw,
                                bool descending) {
  NC_CHECK(!raw.empty());
  const auto [lo_it, hi_it] = std::minmax_element(raw.begin(), raw.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  std::vector<Score> scores(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    const double unit =
        hi == lo ? 0.5 : (raw[i] - lo) / (hi - lo);
    scores[i] = ClampScore(descending ? 1.0 - unit : unit);
  }
  return scores;
}

std::vector<Score> RankScores(const std::vector<double>& raw,
                              bool descending) {
  NC_CHECK(!raw.empty());
  const size_t n = raw.size();
  if (n == 1) return {0.5};

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return raw[a] < raw[b]; });

  // Ties share the average of their rank range.
  std::vector<Score> scores(n);
  size_t start = 0;
  while (start < n) {
    size_t end = start;
    while (end + 1 < n && raw[order[end + 1]] == raw[order[start]]) ++end;
    const double mean_rank =
        static_cast<double>(start + end) / 2.0 / static_cast<double>(n - 1);
    for (size_t r = start; r <= end; ++r) {
      scores[order[r]] =
          ClampScore(descending ? 1.0 - mean_rank : mean_rank);
    }
    start = end + 1;
  }
  return scores;
}

std::vector<Score> ExpDecayScores(const std::vector<double>& raw,
                                  double scale) {
  NC_CHECK(!raw.empty());
  NC_CHECK(scale > 0.0);
  std::vector<Score> scores(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    scores[i] = ClampScore(std::exp(-std::max(0.0, raw[i]) / scale));
  }
  return scores;
}

Status DatasetFromScoreColumns(
    const std::vector<std::vector<Score>>& columns, Dataset* out) {
  NC_CHECK(out != nullptr);
  if (columns.empty() || columns[0].empty()) {
    return Status::InvalidArgument("need at least one nonempty column");
  }
  const size_t n = columns[0].size();
  for (const std::vector<Score>& column : columns) {
    if (column.size() != n) {
      return Status::InvalidArgument("columns differ in length");
    }
    for (const Score s : column) {
      if (!IsValidScore(s)) {
        return Status::InvalidArgument("score outside [0, 1]");
      }
    }
  }
  Dataset data(n, columns.size());
  for (PredicateId i = 0; i < columns.size(); ++i) {
    for (ObjectId u = 0; u < n; ++u) {
      data.SetScore(u, i, columns[i][u]);
    }
  }
  *out = std::move(data);
  return Status::OK();
}

}  // namespace nc
