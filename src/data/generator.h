// Synthetic dataset generation for the experiments (Section 9 evaluates
// "a wider range of synthesized middleware settings").
//
// Marginal score distributions:
//   kUniform  - scores uniform on [0, 1].
//   kGaussian - scores drawn from N(mean, stddev), clamped to [0, 1].
//   kZipf     - heavily skewed marginal: most objects score low, few score
//               high (power-transform of a uniform draw; skew > 1 pushes
//               mass toward 0).
//
// Cross-predicate correlation is controlled by `correlation` in [-1, 1]:
// positive values mix a shared latent draw into every predicate (good
// objects are good everywhere), negative values anti-correlate alternating
// predicates (a bargain on one predicate costs on another — the hard case
// for top-k pruning).

#ifndef NC_DATA_GENERATOR_H_
#define NC_DATA_GENERATOR_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace nc {

enum class ScoreDistribution {
  kUniform,
  kGaussian,
  kZipf,
};

// Short lowercase label ("uniform", "gaussian", "zipf") for reports.
const char* ScoreDistributionName(ScoreDistribution dist);

struct GeneratorOptions {
  size_t num_objects = 1000;
  size_t num_predicates = 2;
  ScoreDistribution distribution = ScoreDistribution::kUniform;
  // Cross-predicate correlation in [-1, 1]; 0 = independent.
  double correlation = 0.0;
  // Gaussian parameters (used when distribution == kGaussian).
  double gaussian_mean = 0.5;
  double gaussian_stddev = 0.2;
  // Zipf skew exponent (used when distribution == kZipf); > 0.
  double zipf_skew = 2.0;
  uint64_t seed = 42;
};

// Generates a dataset per `options`. Deterministic given the seed.
Dataset GenerateDataset(const GeneratorOptions& options);

}  // namespace nc

#endif  // NC_DATA_GENERATOR_H_
