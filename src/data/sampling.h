// Sample acquisition for the optimizer's simulation-based cost estimation
// (Section 7.3). Two modes:
//   * SampleDataset    - draw s objects without replacement from the real
//                        database (offline samples / a-priori knowledge).
//   * DummyUniformSample - when samples are unavailable, generate dummy
//                        uniform samples; they cannot capture the actual
//                        score distribution but still let the optimizer
//                        adapt to F, k, and the cost scenario (the paper's
//                        worst-case validation mode).

#ifndef NC_DATA_SAMPLING_H_
#define NC_DATA_SAMPLING_H_

#include <cstdint>

#include "data/dataset.h"

namespace nc {

// Draws `sample_size` objects (without replacement) from `data`.
// `sample_size` is clamped to data.num_objects().
Dataset SampleDataset(const Dataset& data, size_t sample_size, uint64_t seed);

// Builds a sample of `sample_size` objects with `num_predicates` scores
// drawn independently and uniformly from [0, 1].
Dataset DummyUniformSample(size_t num_predicates, size_t sample_size,
                           uint64_t seed);

// The paper's proportional retrieval-size rule: a top-k query over n
// objects becomes a top-k' query over an s-object sample with
// k' = ceil(k * s / n), clamped to [1, s].
size_t ScaledSampleK(size_t k, size_t database_size, size_t sample_size);

}  // namespace nc

#endif  // NC_DATA_SAMPLING_H_
