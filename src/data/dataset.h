// In-memory database of objects with per-predicate scores.
//
// The middleware model (Section 3.1): a database D of n objects, each with
// a score in [0,1] for every predicate p_1..p_m. The Dataset is the ground
// truth that simulated Web sources (access/source.h) expose through sorted
// and random accesses; algorithms never touch it directly except through
// those accessors (the brute-force reference oracle being the one
// deliberate exception).

#ifndef NC_DATA_DATASET_H_
#define NC_DATA_DATASET_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "common/score.h"
#include "common/status.h"

namespace nc {

// Immutable-after-construction score table, column-major by predicate.
class Dataset {
 public:
  // An empty dataset (0 objects, 0 predicates); assign over it.
  Dataset() : Dataset(0, 0) {}

  // Creates an n-by-m dataset with all scores 0. Builders fill it with
  // SetScore before first use of SortedOrder.
  Dataset(size_t num_objects, size_t num_predicates);

  // Copies/moves carry any already-built sorted orders along. Neither is
  // safe concurrently with SetScore or SortedOrder on the source.
  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&& other) noexcept;
  Dataset& operator=(Dataset&& other) noexcept;

  // Builds a dataset from row-major scores: rows[u][i] = p_i[u].
  // Returns InvalidArgument if rows are ragged or scores fall outside
  // [0, 1].
  static Status FromRows(const std::vector<std::vector<Score>>& rows,
                         Dataset* out);

  size_t num_objects() const { return num_objects_; }
  size_t num_predicates() const { return columns_.size(); }

  // The exact score p_i[u].
  Score score(ObjectId u, PredicateId i) const {
    return columns_[i][u];
  }

  // Sets p_i[u] = s. Invalidates any cached sorted order for predicate i.
  // `s` must be in [0, 1].
  void SetScore(ObjectId u, PredicateId i, Score s);

  // Objects in descending p_i order; ties broken by descending ObjectId
  // (the paper's deterministic tie-breaker, Example 9). Computed lazily
  // and cached; safe to call from concurrent readers (server workers
  // share one dataset), but not concurrently with SetScore.
  const std::vector<ObjectId>& SortedOrder(PredicateId i) const;

  // Optional human-readable names for benchmarks and examples.
  void SetPredicateName(PredicateId i, std::string name);
  const std::string& predicate_name(PredicateId i) const;
  void SetObjectName(ObjectId u, std::string name);
  // Returns the assigned name, or "object-<id>" if none was set.
  std::string object_name(ObjectId u) const;

 private:
  // One predicate's lazily built descending order. `ready` flips to true
  // (release) only after `order` is fully built, and readers acquire it
  // before touching `order`, so concurrent first accesses from several
  // worker threads are safe: builders serialize on `sorted_mu_`, and no
  // thread ever observes a half-sorted permutation.
  struct SortedColumn {
    std::atomic<bool> ready{false};
    std::vector<ObjectId> order;
  };

  size_t num_objects_;
  std::vector<std::vector<Score>> columns_;
  std::vector<std::string> predicate_names_;
  std::vector<std::string> object_names_;
  mutable std::mutex sorted_mu_;
  mutable std::vector<SortedColumn> sorted_orders_;
};

}  // namespace nc

#endif  // NC_DATA_DATASET_H_
