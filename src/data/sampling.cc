#include "data/sampling.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace nc {

Dataset SampleDataset(const Dataset& data, size_t sample_size,
                      uint64_t seed) {
  const size_t n = data.num_objects();
  const size_t m = data.num_predicates();
  sample_size = std::min(sample_size, n);
  NC_CHECK(sample_size > 0);
  Rng rng(seed);
  const std::vector<uint64_t> picks =
      rng.SampleWithoutReplacement(n, sample_size);
  Dataset sample(sample_size, m);
  for (size_t row = 0; row < picks.size(); ++row) {
    const ObjectId u = static_cast<ObjectId>(picks[row]);
    for (PredicateId i = 0; i < m; ++i) {
      sample.SetScore(static_cast<ObjectId>(row), i, data.score(u, i));
    }
  }
  for (PredicateId i = 0; i < m; ++i) {
    sample.SetPredicateName(i, data.predicate_name(i));
  }
  return sample;
}

Dataset DummyUniformSample(size_t num_predicates, size_t sample_size,
                           uint64_t seed) {
  NC_CHECK(sample_size > 0);
  NC_CHECK(num_predicates > 0);
  Rng rng(seed);
  Dataset sample(sample_size, num_predicates);
  for (ObjectId u = 0; u < sample_size; ++u) {
    for (PredicateId i = 0; i < num_predicates; ++i) {
      sample.SetScore(u, i, rng.Uniform01());
    }
  }
  return sample;
}

size_t ScaledSampleK(size_t k, size_t database_size, size_t sample_size) {
  NC_CHECK(database_size > 0);
  NC_CHECK(sample_size > 0);
  const double scaled = static_cast<double>(k) *
                        static_cast<double>(sample_size) /
                        static_cast<double>(database_size);
  size_t k_prime = static_cast<size_t>(std::ceil(scaled));
  k_prime = std::max<size_t>(1, k_prime);
  return std::min(k_prime, sample_size);
}

}  // namespace nc
