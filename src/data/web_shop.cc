#include "data/web_shop.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "data/transforms.h"

namespace nc {

WebShopQuery MakeWebShopQuery(size_t num_products, uint64_t seed) {
  NC_CHECK(num_products > 0);
  Rng rng(seed);

  // Raw catalog attributes.
  std::vector<double> relevance_raw(num_products);
  std::vector<double> price(num_products);
  std::vector<double> stars(num_products);
  std::vector<double> shipping_days(num_products);
  for (size_t u = 0; u < num_products; ++u) {
    // Relevance: heavy-tailed (few items match the query well).
    relevance_raw[u] = std::pow(rng.Uniform01(), 4.0);
    // Price: log-normal-ish dollars; pricier items tend to rate better.
    const double quality = rng.Uniform01();
    price[u] = 15.0 * std::exp(1.8 * quality + 0.5 * rng.Gaussian(0, 1));
    stars[u] =
        std::round(std::min(5.0, std::max(1.0, 1.0 + 4.0 * quality +
                                                   rng.Gaussian(0, 0.7))) *
                   2.0) /
        2.0;  // Half-star granularity.
    // Shipping: 1-14 days, mostly fast.
    shipping_days[u] = 1.0 + 13.0 * std::pow(rng.Uniform01(), 2.0);
  }

  Dataset data;
  const Status status = DatasetFromScoreColumns(
      {MinMaxScores(relevance_raw),
       RankScores(stars),
       MinMaxScores(price, /*descending=*/true),
       ExpDecayScores(shipping_days, /*scale=*/4.0)},
      &data);
  NC_CHECK(status.ok());
  data.SetPredicateName(0, "relevance");
  data.SetPredicateName(1, "rating");
  data.SetPredicateName(2, "price-fit");
  data.SetPredicateName(3, "shipping");

  WebShopQuery query;
  query.data = std::move(data);
  // Capabilities per the header: relevance has no probe endpoint;
  // shipping has no ranking endpoint.
  query.cost = CostModel({0.3, 1.0, 0.5, kImpossibleCost},
                         {kImpossibleCost, 2.5, 0.5, 1.5});
  query.scoring =
      std::make_unique<WeightedSumFunction>(std::vector<double>{
          0.4, 0.3, 0.2, 0.1});
  query.k = 10;
  return query;
}

}  // namespace nc
