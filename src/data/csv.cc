#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/numeric.h"

namespace nc {

namespace {

// Splits one CSV line on commas (no quoting: scores and simple names only).
std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (const char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

// Locale-safe (common/numeric.h): strtod honors the global C locale and
// would silently truncate "0.5" to 0 under a comma-decimal locale.
bool ParseScore(const std::string& field, Score* out) {
  double value = 0.0;
  if (!ParseDouble(field, &value)) return false;
  if (!IsValidScore(value)) return false;
  *out = value;
  return true;
}

}  // namespace

Status SaveDatasetCsv(const Dataset& data, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  const size_t m = data.num_predicates();
  for (PredicateId i = 0; i < m; ++i) {
    if (i > 0) file << ",";
    file << data.predicate_name(i);
  }
  file << "\n";
  for (ObjectId u = 0; u < data.num_objects(); ++u) {
    for (PredicateId i = 0; i < m; ++i) {
      if (i > 0) file << ",";
      // Shortest exact round-trip, '.' decimal point in every locale.
      file << FormatDouble(data.score(u, i));
    }
    file << "\n";
  }
  file.flush();
  if (!file.good()) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

Status ParseDatasetCsv(const std::string& text, Dataset* out) {
  NC_CHECK(out != nullptr);
  std::istringstream stream(text);
  std::string line;
  if (!std::getline(stream, line)) {
    return Status::InvalidArgument("empty CSV");
  }
  const std::vector<std::string> header = SplitLine(line);
  const size_t m = header.size();
  if (m == 0 || (m == 1 && header[0].empty())) {
    return Status::InvalidArgument("CSV header has no predicates");
  }

  std::vector<std::vector<Score>> rows;
  size_t line_number = 1;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.empty() || line == "\r") continue;  // Tolerate blank lines.
    const std::vector<std::string> fields = SplitLine(line);
    if (fields.size() != m) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(m) + " fields, got " +
          std::to_string(fields.size()));
    }
    std::vector<Score> row(m);
    for (size_t i = 0; i < m; ++i) {
      if (!ParseScore(fields[i], &row[i])) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ": bad score '" +
            fields[i] + "'");
      }
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("CSV has a header but no objects");
  }
  NC_RETURN_IF_ERROR(Dataset::FromRows(rows, out));
  for (PredicateId i = 0; i < m; ++i) {
    if (!header[i].empty()) out->SetPredicateName(i, header[i]);
  }
  return Status::OK();
}

Status LoadDatasetCsv(const std::string& path, Dataset* out) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open: " + path);
  }
  std::ostringstream text;
  text << file.rdbuf();
  return ParseDatasetCsv(text.str(), out);
}

}  // namespace nc
