// CSV persistence for datasets, so workloads can be exchanged with other
// tools (and real score tables can be imported instead of synthesized).
//
// Format: one header line with predicate names, then one row per object
// with m comma-separated scores in [0, 1]. ObjectIds are row order.
//
//     rating,closeness
//     0.65,0.9
//     0.6,0.8
//     0.7,0.7

#ifndef NC_DATA_CSV_H_
#define NC_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace nc {

// Writes `data` to `path`. Overwrites. Scores are written with enough
// precision to round-trip exactly.
Status SaveDatasetCsv(const Dataset& data, const std::string& path);

// Parses a dataset from `path`. Returns InvalidArgument on malformed
// rows, non-numeric fields, or out-of-range scores.
Status LoadDatasetCsv(const std::string& path, Dataset* out);

// Parses CSV text already in memory (the file-free core of
// LoadDatasetCsv; handy for tests and embedded snippets).
Status ParseDatasetCsv(const std::string& text, Dataset* out);

}  // namespace nc

#endif  // NC_DATA_CSV_H_
