// Replica fleets: N endpoints behind every predicate's source.
//
// The paper's cost model treats each predicate as one autonomous Web
// source, but a production middleware fronts *fleets* of replicas with
// independent fault and latency profiles. ReplicaFleet models that layer
// underneath SourceSet's access primitives: replicas never change WHAT an
// access returns (every replica serves the same logical ranked stream and
// the same exact scores, so sorted-access order, the l_i bounds, and the
// Theorem 1/2 guarantees are untouched) - they only change what the
// access costs, how long it takes, and whether it fails. Concretely:
//
//   * Failover - each replica has its own fault injector (reusing
//     FaultProfile / FaultInjector) and its own circuit-breaker state
//     under the SourceSet's CircuitBreakerPolicy. When one replica's
//     attempts are exhausted, its breaker trips, or it dies, the access
//     fails over to the next healthy replica instead of fast-failing the
//     predicate; the predicate is abandoned only when no healthy replica
//     remains.
//   * Hedged sorted access - when a sorted request's drawn latency
//     exceeds HedgePolicy::delay, the same request is issued to a second
//     replica and the earlier completion wins. Both requests are billed
//     (against the accrued cost and therefore the QueryBudget), so the
//     cost / tail-latency trade is priced honestly on the Eq. 1 clock.
//   * Routing policies - primary-only, round-robin, least-latency (EWMA
//     of observed completion latency), and cheapest-healthy, selectable
//     per predicate; unhealthy replicas are skipped in every policy.
//
// SourceSet drives the per-access loop (it owns billing, stats, tracing,
// and the retry policy); ReplicaFleet owns configuration and the mutable
// per-replica runtime state (breakers, EWMA, counters, injectors, the
// latency RNG), all of it deterministic from the fleet seed and
// checkpointable (ReplicaFleetState) for crash-safe resume. Attach with
// SourceSet::set_replica_fleet; see docs/REPLICAS.md.

#ifndef NC_REPLICA_REPLICA_H_
#define NC_REPLICA_REPLICA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "access/fault.h"
#include "common/rng.h"
#include "common/score.h"
#include "common/status.h"

namespace nc {

// How a predicate's replica set picks the replica that serves the next
// access. Every policy skips dead and cooling (breaker-open) replicas;
// the policy orders the remaining candidates, and failover walks that
// order.
enum class RoutingPolicy {
  kPrimaryOnly,      // Replica 0 first, then index order.
  kRoundRobin,       // Rotate the starting replica per access.
  kLeastLatency,     // Lowest EWMA of observed completion latency.
  kCheapestHealthy,  // Lowest cost multiplier among healthy replicas.
};

// "primary_only", "round_robin", ... for logs, JSON, and tests.
const char* RoutingPolicyName(RoutingPolicy policy);

// One replica's latency behavior, as a multiple of the request's unit
// cost (the paper's elapsed-time reading of Eq. 1):
//   latency = unit * multiplier * (1 + jitter * U) * tail
// with U uniform in [0, 1) and tail = tail_multiplier with probability
// tail_probability (1 otherwise). The tail terms model the heavy-tailed
// stragglers hedging exists to cut.
struct ReplicaLatencyModel {
  double multiplier = 1.0;        // > 0, finite.
  double jitter = 0.0;            // >= 0.
  double tail_probability = 0.0;  // in [0, 1].
  double tail_multiplier = 1.0;   // >= 1, finite.

  Status Validate() const;
};

// Static description of one replica endpoint.
struct ReplicaEndpoint {
  // For reports and metrics; defaults to "r<index>" when empty.
  std::string name;
  // Scales the predicate's unit costs for every request this replica
  // serves (a mirror in a pricier region, a cheap read-only cache, ...).
  double cost_multiplier = 1.0;
  // Per-attempt failure behavior, drawn by this replica's own injector.
  FaultProfile faults;
  ReplicaLatencyModel latency;

  Status Validate() const;
};

// Hedged sorted access: when the routed replica's drawn request latency
// exceeds the hedge trigger, the same request is issued to the next
// healthy replica and the earlier completion wins. Both requests are
// billed. The trigger is either the fixed `delay`, or - with `adaptive`
// set and a TelemetryHub attached to the SourceSet - the routed
// replica's observed service-latency p90 over a recent sliding window
// (obs/telemetry.h), falling back to `delay` while the hub is cold or
// detached.
struct HedgePolicy {
  // Cost units after which the hedge fires; 0 disables hedging (and,
  // under `adaptive`, leaves hedging off until the hub warms up).
  double delay = 0.0;
  // Read the trigger from the session's telemetry instead of `delay`.
  bool adaptive = false;

  bool enabled() const { return adaptive || delay > 0.0; }

  Status Validate() const;
};

// One predicate's fleet configuration.
struct ReplicaSetConfig {
  std::vector<ReplicaEndpoint> replicas;  // Non-empty; replica 0 = primary.
  RoutingPolicy routing = RoutingPolicy::kPrimaryOnly;
  HedgePolicy hedge;

  Status Validate() const;
};

// Mutable per-replica runtime state. Owned by ReplicaFleet, mutated by
// SourceSet's access loop; read-only for everyone else (reports, tests).
struct ReplicaRuntime {
  // Circuit breaker (under the SourceSet's CircuitBreakerPolicy).
  size_t breaker_consecutive = 0;
  bool breaker_open = false;
  // elapsed_time() value at which the open breaker admits a probe.
  double breaker_open_until = 0.0;
  bool dead = false;

  // EWMA of observed completion latency, used by kLeastLatency routing.
  bool has_ewma = false;
  double ewma_latency = 0.0;

  // Counters and the per-replica Eq. 1 share.
  size_t served = 0;          // Logical accesses this replica answered.
  size_t failovers = 0;       // Accesses that failed over AWAY from it.
  size_t breaker_trips = 0;
  size_t hedges_issued = 0;   // Hedge requests issued TO this replica.
  size_t hedge_wins = 0;      // Hedges this replica won.
  double cost_accrued = 0.0;  // Everything billed to this replica.

  // Completion-latency aggregate of the requests this replica won.
  size_t latency_count = 0;
  double latency_sum = 0.0;
  double latency_min = 0.0;
  double latency_max = 0.0;

  void RecordLatency(double latency);
  double mean_latency() const {
    return latency_count == 0 ? 0.0
                              : latency_sum / static_cast<double>(latency_count);
  }
};

// Checkpoint of one (predicate, replica) runtime slot, in the flattened
// order the fleet enumerates them ((predicate, replica) ascending).
struct ReplicaSlotState {
  PredicateId predicate = 0;
  size_t replica = 0;
  ReplicaRuntime runtime;
  // The replica's private injector: RNG stream, attempt counter, script
  // cursor (each injector keys everything under predicate 0).
  std::string injector_rng_state;
  size_t injector_attempts = 0;
  size_t injector_script_pos = 0;
};

// Full replayable fleet state: everything routing decisions depend on.
// (The raw latency-sample buffer used for percentile reporting is NOT
// state - it never feeds a decision - and is not captured.)
struct ReplicaFleetState {
  std::string latency_rng_state;
  // Round-robin cursor per configured predicate, (predicate, cursor).
  std::vector<std::pair<PredicateId, size_t>> rr_cursors;
  std::vector<ReplicaSlotState> slots;
};

// The fleet: per-predicate replica sets plus their runtime state. One
// fleet serves one SourceSet (attach with set_replica_fleet; the fleet
// must outlive it). Deterministic: every draw flows through the fleet
// seed, and SourceSet::Reset() calls ResetRuntime() so reruns replay the
// same failures and latencies.
class ReplicaFleet {
 public:
  explicit ReplicaFleet(uint64_t seed = 0);

  // Configures predicate i's replica set (validated; replaces any prior
  // configuration and resets that predicate's runtime slots). Predicates
  // never configured keep SourceSet's plain single-source path.
  Status Configure(PredicateId i, ReplicaSetConfig config);

  bool configured(PredicateId i) const;
  // Largest configured predicate + 1 (0 when nothing is configured);
  // SourceSet validates this against its own predicate count on attach.
  size_t max_configured_predicates() const;

  const ReplicaSetConfig& config(PredicateId i) const;
  size_t num_replicas(PredicateId i) const;
  // The endpoint's display name ("r<index>" default).
  std::string replica_name(PredicateId i, size_t r) const;

  // A stable hash of predicate i's configured topology (replica count,
  // routing policy, cost multipliers); 0 when i is unconfigured. The
  // cross-query cache keys its shared sorted streams by this token, so
  // queries only share a stream with queries over the same topology.
  uint64_t TopologyToken(PredicateId i) const;

  // Prepends scripted outcomes for replica r of predicate i (the
  // deterministic-test hook, mirroring FaultInjector::Script).
  void ScriptFaults(PredicateId i, size_t r, std::vector<FaultKind> outcomes);

  // --- Runtime state (SourceSet's access loop mutates; others read) ----
  ReplicaRuntime& runtime(PredicateId i, size_t r);
  const ReplicaRuntime& runtime(PredicateId i, size_t r) const;
  FaultInjector& injector(PredicateId i, size_t r);
  // Draws the next fault outcome from replica r's private injector.
  FaultKind NextFault(PredicateId i, size_t r);

  // True when replica r cannot serve right now: dead, or breaker open
  // and still cooling at elapsed-time `now`.
  bool replica_unavailable(PredicateId i, size_t r, double now) const;
  // True when the open breaker's cooldown has elapsed: the next access
  // may send a single half-open probe.
  bool probe_eligible(PredicateId i, size_t r, double now) const;

  // Replicas able to take traffic or a probe at `now`.
  size_t available_replicas(PredicateId i, double now) const;
  // True when every replica is dead.
  bool all_dead(PredicateId i) const;
  // True when no replica can serve at `now` (all dead or cooling) - the
  // fleet analogue of an open predicate breaker.
  bool all_unavailable(PredicateId i, double now) const;

  // The failover order for one access: available replicas (probe-eligible
  // included) in the configured policy's preference order. Advances the
  // round-robin cursor, so call exactly once per logical access.
  std::vector<size_t> RouteOrder(PredicateId i, double now);

  // Draws one completion latency for replica r serving a request whose
  // base (pre-multiplier) charge is `unit`.
  double DrawLatency(PredicateId i, size_t r, double unit);

  // Records the access's completion latency (the winner's aggregate and
  // the per-predicate sample buffer used for percentile reporting).
  void RecordCompletion(PredicateId i, size_t winner, double latency);
  // Folds one observed *service* latency into replica r's EWMA - called
  // for every replica that answered, winners and hedge losers alike, so
  // kLeastLatency routing learns from both.
  void ObserveLatency(PredicateId i, size_t r, double latency);

  // Raw completion-latency samples per predicate, in access order
  // (reporting only; cleared by ResetRuntime, excluded from state).
  const std::vector<double>& latency_samples(PredicateId i) const;

  // Fleet-wide tallies, summed over every slot.
  size_t total_failovers() const;
  size_t total_hedges_issued() const;
  size_t total_hedge_wins() const;
  size_t total_replica_deaths() const;

  // Rewinds every runtime slot, injector, cursor, sample buffer, and the
  // latency RNG to the post-configuration state.
  void ResetRuntime();

  // --- Checkpoint support ----------------------------------------------
  ReplicaFleetState CheckpointState() const;
  // Restores CheckpointState() output onto an identically configured
  // fleet. InvalidArgument / FailedPrecondition on shape mismatch.
  Status RestoreState(const ReplicaFleetState& state);

 private:
  struct Slot {
    ReplicaRuntime runtime;
    std::unique_ptr<FaultInjector> injector;
  };
  struct PredicateFleet {
    ReplicaSetConfig config;
    std::vector<Slot> slots;
    size_t rr_cursor = 0;
    std::vector<double> samples;
  };

  const PredicateFleet& fleet_for(PredicateId i) const;
  PredicateFleet& fleet_for(PredicateId i);
  uint64_t SlotSeed(PredicateId i, size_t r) const;

  uint64_t seed_;
  Rng latency_rng_;
  // Sparse per-predicate configuration, index = predicate.
  std::vector<std::unique_ptr<PredicateFleet>> fleets_;
};

// EWMA smoothing factor for kLeastLatency routing: one observation moves
// the estimate 30% of the way to the sample.
inline constexpr double kReplicaEwmaAlpha = 0.3;

}  // namespace nc

#endif  // NC_REPLICA_REPLICA_H_
