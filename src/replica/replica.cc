#include "replica/replica.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"

namespace nc {

namespace {

// Every per-replica injector files its draws under this key: each
// injector serves exactly one (predicate, replica) slot.
constexpr PredicateId kSlotKey = 0;

bool FinitePositive(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

const char* RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kPrimaryOnly:
      return "primary_only";
    case RoutingPolicy::kRoundRobin:
      return "round_robin";
    case RoutingPolicy::kLeastLatency:
      return "least_latency";
    case RoutingPolicy::kCheapestHealthy:
      return "cheapest_healthy";
  }
  return "unknown";
}

Status ReplicaLatencyModel::Validate() const {
  if (!FinitePositive(multiplier)) {
    return Status::InvalidArgument("latency multiplier must be > 0, finite");
  }
  if (!std::isfinite(jitter) || jitter < 0.0) {
    return Status::InvalidArgument("latency jitter must be >= 0");
  }
  if (!std::isfinite(tail_probability) || tail_probability < 0.0 ||
      tail_probability > 1.0) {
    return Status::InvalidArgument("tail probability must be in [0, 1]");
  }
  if (!std::isfinite(tail_multiplier) || tail_multiplier < 1.0) {
    return Status::InvalidArgument("tail multiplier must be >= 1, finite");
  }
  return Status::OK();
}

Status ReplicaEndpoint::Validate() const {
  if (!FinitePositive(cost_multiplier)) {
    return Status::InvalidArgument("cost multiplier must be > 0, finite");
  }
  NC_RETURN_IF_ERROR(faults.Validate());
  return latency.Validate();
}

Status HedgePolicy::Validate() const {
  if (!std::isfinite(delay) || delay < 0.0) {
    return Status::InvalidArgument("hedge delay must be >= 0, finite");
  }
  return Status::OK();
}

Status ReplicaSetConfig::Validate() const {
  if (replicas.empty()) {
    return Status::InvalidArgument("a replica set needs at least one replica");
  }
  for (const ReplicaEndpoint& endpoint : replicas) {
    NC_RETURN_IF_ERROR(endpoint.Validate());
  }
  return hedge.Validate();
}

void ReplicaRuntime::RecordLatency(double latency) {
  if (latency_count == 0) {
    latency_min = latency;
    latency_max = latency;
  } else {
    latency_min = std::min(latency_min, latency);
    latency_max = std::max(latency_max, latency);
  }
  ++latency_count;
  latency_sum += latency;
}

ReplicaFleet::ReplicaFleet(uint64_t seed) : seed_(seed), latency_rng_(seed) {}

uint64_t ReplicaFleet::SlotSeed(PredicateId i, size_t r) const {
  // splitmix-style spread so neighbouring slots draw unrelated streams.
  uint64_t x = seed_ + 0x9e3779b97f4a7c15ull * (uint64_t{i} * 64 + r + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x;
}

Status ReplicaFleet::Configure(PredicateId i, ReplicaSetConfig config) {
  NC_RETURN_IF_ERROR(config.Validate());
  if (fleets_.size() <= i) fleets_.resize(i + 1);
  auto fleet = std::make_unique<PredicateFleet>();
  fleet->config = std::move(config);
  fleet->slots.resize(fleet->config.replicas.size());
  for (size_t r = 0; r < fleet->slots.size(); ++r) {
    auto injector = std::make_unique<FaultInjector>(SlotSeed(i, r));
    injector->set_default_profile(fleet->config.replicas[r].faults);
    fleet->slots[r].injector = std::move(injector);
  }
  fleets_[i] = std::move(fleet);
  return Status::OK();
}

bool ReplicaFleet::configured(PredicateId i) const {
  return i < fleets_.size() && fleets_[i] != nullptr;
}

size_t ReplicaFleet::max_configured_predicates() const {
  for (size_t i = fleets_.size(); i > 0; --i) {
    if (fleets_[i - 1] != nullptr) return i;
  }
  return 0;
}

const ReplicaFleet::PredicateFleet& ReplicaFleet::fleet_for(
    PredicateId i) const {
  NC_CHECK(configured(i));
  return *fleets_[i];
}

ReplicaFleet::PredicateFleet& ReplicaFleet::fleet_for(PredicateId i) {
  NC_CHECK(configured(i));
  return *fleets_[i];
}

const ReplicaSetConfig& ReplicaFleet::config(PredicateId i) const {
  return fleet_for(i).config;
}

size_t ReplicaFleet::num_replicas(PredicateId i) const {
  return fleet_for(i).slots.size();
}

uint64_t ReplicaFleet::TopologyToken(PredicateId i) const {
  if (!configured(i)) return 0;
  const ReplicaSetConfig& cfg = config(i);
  // FNV-1a over the fields that shape what a served stream costs and how
  // it routes. Never 0 for a configured predicate (the seed constant
  // survives the mixing), so "unconfigured" stays unambiguous.
  uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ull;
  };
  mix(cfg.replicas.size());
  mix(static_cast<uint64_t>(cfg.routing));
  for (const ReplicaEndpoint& endpoint : cfg.replicas) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(endpoint.cost_multiplier),
                  "cost multipliers hash by bit pattern");
    std::memcpy(&bits, &endpoint.cost_multiplier, sizeof(bits));
    mix(bits);
  }
  return h == 0 ? 1 : h;
}

std::string ReplicaFleet::replica_name(PredicateId i, size_t r) const {
  const ReplicaSetConfig& cfg = config(i);
  NC_CHECK(r < cfg.replicas.size());
  if (!cfg.replicas[r].name.empty()) return cfg.replicas[r].name;
  std::string name = "r";
  name += std::to_string(r);
  return name;
}

void ReplicaFleet::ScriptFaults(PredicateId i, size_t r,
                                std::vector<FaultKind> outcomes) {
  injector(i, r).Script(kSlotKey, std::move(outcomes));
}

ReplicaRuntime& ReplicaFleet::runtime(PredicateId i, size_t r) {
  PredicateFleet& fleet = fleet_for(i);
  NC_CHECK(r < fleet.slots.size());
  return fleet.slots[r].runtime;
}

const ReplicaRuntime& ReplicaFleet::runtime(PredicateId i, size_t r) const {
  const PredicateFleet& fleet = fleet_for(i);
  NC_CHECK(r < fleet.slots.size());
  return fleet.slots[r].runtime;
}

FaultInjector& ReplicaFleet::injector(PredicateId i, size_t r) {
  PredicateFleet& fleet = fleet_for(i);
  NC_CHECK(r < fleet.slots.size());
  return *fleet.slots[r].injector;
}

FaultKind ReplicaFleet::NextFault(PredicateId i, size_t r) {
  return injector(i, r).NextOutcome(kSlotKey);
}

bool ReplicaFleet::replica_unavailable(PredicateId i, size_t r,
                                       double now) const {
  const ReplicaRuntime& rt = runtime(i, r);
  if (rt.dead) return true;
  return rt.breaker_open && now < rt.breaker_open_until;
}

bool ReplicaFleet::probe_eligible(PredicateId i, size_t r, double now) const {
  const ReplicaRuntime& rt = runtime(i, r);
  return !rt.dead && rt.breaker_open && now >= rt.breaker_open_until;
}

size_t ReplicaFleet::available_replicas(PredicateId i, double now) const {
  const size_t n = num_replicas(i);
  size_t available = 0;
  for (size_t r = 0; r < n; ++r) {
    if (!replica_unavailable(i, r, now)) ++available;
  }
  return available;
}

bool ReplicaFleet::all_dead(PredicateId i) const {
  const size_t n = num_replicas(i);
  for (size_t r = 0; r < n; ++r) {
    if (!runtime(i, r).dead) return false;
  }
  return true;
}

bool ReplicaFleet::all_unavailable(PredicateId i, double now) const {
  return available_replicas(i, now) == 0;
}

std::vector<size_t> ReplicaFleet::RouteOrder(PredicateId i, double now) {
  PredicateFleet& fleet = fleet_for(i);
  const size_t n = fleet.slots.size();
  std::vector<size_t> order;
  order.reserve(n);
  const size_t start = fleet.config.routing == RoutingPolicy::kRoundRobin
                           ? fleet.rr_cursor
                           : 0;
  if (fleet.config.routing == RoutingPolicy::kRoundRobin) {
    fleet.rr_cursor = (fleet.rr_cursor + 1) % n;
  }
  for (size_t step = 0; step < n; ++step) {
    const size_t r = (start + step) % n;
    if (!replica_unavailable(i, r, now)) order.push_back(r);
  }
  const auto stable_by = [&order](auto key) {
    std::stable_sort(order.begin(), order.end(),
                     [&key](size_t a, size_t b) { return key(a) < key(b); });
  };
  switch (fleet.config.routing) {
    case RoutingPolicy::kPrimaryOnly:
    case RoutingPolicy::kRoundRobin:
      break;
    case RoutingPolicy::kLeastLatency:
      // Unsampled replicas rank by their configured multiplier - the
      // model's own prior for how slow they are.
      stable_by([this, i](size_t r) {
        const ReplicaRuntime& rt = runtime(i, r);
        return rt.has_ewma ? rt.ewma_latency
                           : config(i).replicas[r].latency.multiplier;
      });
      break;
    case RoutingPolicy::kCheapestHealthy:
      stable_by(
          [this, i](size_t r) { return config(i).replicas[r].cost_multiplier; });
      break;
  }
  return order;
}

double ReplicaFleet::DrawLatency(PredicateId i, size_t r, double unit) {
  const ReplicaLatencyModel& model = config(i).replicas[r].latency;
  NC_CHECK(std::isfinite(unit) && unit >= 0.0);
  double latency = unit * model.multiplier;
  if (model.jitter > 0.0) {
    latency *= 1.0 + model.jitter * latency_rng_.Uniform01();
  }
  if (model.tail_probability > 0.0 &&
      latency_rng_.Uniform01() < model.tail_probability) {
    latency *= model.tail_multiplier;
  }
  return latency;
}

void ReplicaFleet::ObserveLatency(PredicateId i, size_t r, double latency) {
  ReplicaRuntime& rt = runtime(i, r);
  if (!rt.has_ewma) {
    rt.has_ewma = true;
    rt.ewma_latency = latency;
  } else {
    rt.ewma_latency += kReplicaEwmaAlpha * (latency - rt.ewma_latency);
  }
}

void ReplicaFleet::RecordCompletion(PredicateId i, size_t winner,
                                    double latency) {
  runtime(i, winner).RecordLatency(latency);
  fleet_for(i).samples.push_back(latency);
}

const std::vector<double>& ReplicaFleet::latency_samples(PredicateId i) const {
  return fleet_for(i).samples;
}

size_t ReplicaFleet::total_failovers() const {
  size_t total = 0;
  for (const auto& fleet : fleets_) {
    if (fleet == nullptr) continue;
    for (const Slot& slot : fleet->slots) total += slot.runtime.failovers;
  }
  return total;
}

size_t ReplicaFleet::total_hedges_issued() const {
  size_t total = 0;
  for (const auto& fleet : fleets_) {
    if (fleet == nullptr) continue;
    for (const Slot& slot : fleet->slots) total += slot.runtime.hedges_issued;
  }
  return total;
}

size_t ReplicaFleet::total_hedge_wins() const {
  size_t total = 0;
  for (const auto& fleet : fleets_) {
    if (fleet == nullptr) continue;
    for (const Slot& slot : fleet->slots) total += slot.runtime.hedge_wins;
  }
  return total;
}

size_t ReplicaFleet::total_replica_deaths() const {
  size_t total = 0;
  for (const auto& fleet : fleets_) {
    if (fleet == nullptr) continue;
    for (const Slot& slot : fleet->slots) {
      if (slot.runtime.dead) ++total;
    }
  }
  return total;
}

void ReplicaFleet::ResetRuntime() {
  latency_rng_ = Rng(seed_);
  for (auto& fleet : fleets_) {
    if (fleet == nullptr) continue;
    fleet->rr_cursor = 0;
    fleet->samples.clear();
    for (Slot& slot : fleet->slots) {
      slot.runtime = ReplicaRuntime{};
      slot.injector->Reset();
    }
  }
}

ReplicaFleetState ReplicaFleet::CheckpointState() const {
  ReplicaFleetState state;
  state.latency_rng_state = latency_rng_.SerializeState();
  for (size_t i = 0; i < fleets_.size(); ++i) {
    const auto& fleet = fleets_[i];
    if (fleet == nullptr) continue;
    const PredicateId predicate = static_cast<PredicateId>(i);
    state.rr_cursors.emplace_back(predicate, fleet->rr_cursor);
    for (size_t r = 0; r < fleet->slots.size(); ++r) {
      const Slot& slot = fleet->slots[r];
      ReplicaSlotState snapshot;
      snapshot.predicate = predicate;
      snapshot.replica = r;
      snapshot.runtime = slot.runtime;
      snapshot.injector_rng_state = slot.injector->rng_state();
      // Each slot injector keys everything under kSlotKey.
      for (const auto& [key, attempts] : slot.injector->attempt_counters()) {
        if (key == kSlotKey) snapshot.injector_attempts = attempts;
      }
      for (const auto& [key, pos] : slot.injector->script_cursors()) {
        if (key == kSlotKey) snapshot.injector_script_pos = pos;
      }
      state.slots.push_back(std::move(snapshot));
    }
  }
  return state;
}

Status ReplicaFleet::RestoreState(const ReplicaFleetState& state) {
  // Shape check first: the snapshot must name exactly this fleet's slots
  // and cursors, in order, so nothing is partially applied on mismatch.
  const ReplicaFleetState current = CheckpointState();
  if (state.rr_cursors.size() != current.rr_cursors.size() ||
      state.slots.size() != current.slots.size()) {
    return Status::FailedPrecondition(
        "replica fleet state does not match this fleet's configuration");
  }
  for (size_t c = 0; c < state.rr_cursors.size(); ++c) {
    if (state.rr_cursors[c].first != current.rr_cursors[c].first) {
      return Status::FailedPrecondition(
          "replica fleet state names a different predicate set");
    }
  }
  for (size_t s = 0; s < state.slots.size(); ++s) {
    if (state.slots[s].predicate != current.slots[s].predicate ||
        state.slots[s].replica != current.slots[s].replica) {
      return Status::FailedPrecondition(
          "replica fleet state names different replica slots");
    }
  }
  // RNG texts validate before anything is applied (DeserializeState
  // leaves its target untouched on malformed input).
  Rng restored_rng(seed_);
  NC_RETURN_IF_ERROR(restored_rng.DeserializeState(state.latency_rng_state));
  for (const ReplicaSlotState& slot : state.slots) {
    Rng probe(0);
    NC_RETURN_IF_ERROR(probe.DeserializeState(slot.injector_rng_state));
  }
  latency_rng_ = restored_rng;
  for (const auto& [predicate, cursor] : state.rr_cursors) {
    fleet_for(predicate).rr_cursor = cursor % num_replicas(predicate);
    fleet_for(predicate).samples.clear();
  }
  for (const ReplicaSlotState& slot : state.slots) {
    PredicateFleet& fleet = fleet_for(slot.predicate);
    Slot& live = fleet.slots[slot.replica];
    live.runtime = slot.runtime;
    std::vector<std::pair<PredicateId, size_t>> scripts;
    if (slot.injector_script_pos != 0) {
      scripts.emplace_back(kSlotKey, slot.injector_script_pos);
    }
    NC_RETURN_IF_ERROR(live.injector->RestoreState(
        slot.injector_rng_state, {{kSlotKey, slot.injector_attempts}},
        scripts));
  }
  return Status::OK();
}

}  // namespace nc
