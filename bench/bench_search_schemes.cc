// The Appendix's search-scheme comparison: Naive grid vs Strategies vs
// HClimb. For each scheme: optimization overhead (plan simulations
// executed on the sample), the estimated cost of the chosen plan, and -
// the number that matters - the *actual* cost of running that plan on the
// full database. The paper's conclusion: HClimb is the most effective
// overhead/quality trade-off; Strategies is nearly as good when F fits
// one of its families; Naive pays an order of magnitude more overhead for
// marginal gains.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/estimator.h"
#include "core/schedule.h"
#include "data/generator.h"
#include "data/sampling.h"

int main() {
  using namespace nc;
  using namespace nc::bench;

  constexpr size_t kObjects = 10000;
  constexpr size_t kK = 10;
  constexpr size_t kSample = 200;

  struct Setting {
    const char* label;
    ScoringKind kind;
    double cr;
  };
  const Setting kSettings[] = {
      {"avg, cs=cr=1", ScoringKind::kAverage, 1.0},
      {"min, cs=cr=1", ScoringKind::kMin, 1.0},
      {"avg, cr=20cs", ScoringKind::kAverage, 20.0},
      {"min, cr=20cs", ScoringKind::kMin, 20.0},
  };

  for (const Setting& setting : kSettings) {
    const auto scoring = MakeScoringFunction(setting.kind, 2);
    GeneratorOptions g;
    g.num_objects = kObjects;
    g.num_predicates = 2;
    g.seed = 555;
    const Dataset data = GenerateDataset(g);
    const CostModel cost = CostModel::Uniform(2, 1.0, setting.cr);
    const Dataset sample = SampleDataset(data, kSample, /*seed=*/556);
    const std::vector<PredicateId> schedule = OptimizeSchedule(sample, cost);

    PrintHeader(std::string("Search schemes, ") + setting.label +
                ", uniform, n=10000, k=10, sample=200");
    std::printf("%-12s %12s %12s %12s   %s\n", "scheme", "simulations",
                "est. cost", "actual cost", "plan");
    PrintRule(84);

    struct SchemeRun {
      const char* name;
      std::unique_ptr<DepthOptimizer> optimizer;
    };
    std::vector<SchemeRun> schemes;
    schemes.push_back({"Naive", std::make_unique<NaiveGridOptimizer>(0.05)});
    schemes.push_back(
        {"Strategies", std::make_unique<StrategiesOptimizer>(0.05)});
    schemes.push_back(
        {"HClimb", std::make_unique<HClimbOptimizer>(4, 0.05, 557)});

    for (const SchemeRun& scheme : schemes) {
      SimulationCostEstimator estimator(
          sample, cost, scoring.get(), ScaledSampleK(kK, kObjects, kSample));
      OptimizerResult plan;
      NC_CHECK(scheme.optimizer->Optimize(&estimator, schedule, &plan).ok());
      const RunStats actual =
          RunFixedNC(data, cost, *scoring, kK, plan.config);
      NC_CHECK(actual.correct);
      std::printf("%-12s %12zu %12.1f %12.1f   %s\n", scheme.name,
                  plan.simulations, plan.estimated_cost, actual.cost,
                  plan.config.ToString().c_str());
    }
  }
  nc::bench::WriteBenchJson("search_schemes");
  return 0;
}
