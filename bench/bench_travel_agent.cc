// The real-life benchmark of Section 9, rebuilt: the Web travel-agent
// queries of Examples 1 and 2.
//
//   Q1 (restaurants): top-5 by min(rating, closeness) under Figure 1(a)'s
//      costs (random pricier than sorted, different scales per source).
//   Q2 (hotels): top-5 by avg(closeness, stars, cheap) under Figure
//      1(b)'s costs (random free after sorted discovery - the scenario no
//      published algorithm targets).
//
// For each query: the cost-based NC plan, every applicable baseline, and
// the parallel execution of the NC plan at several concurrency limits.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/parallel_executor.h"
#include "data/travel_agent.h"

namespace nc::bench {
namespace {

void RunQuery(const TravelAgentQuery& q) {
  PrintHeader(std::string("Travel-agent query ") + q.label + "  (F=" +
              q.scoring->name() + ", k=" + std::to_string(q.k) + ", n=" +
              std::to_string(q.data.num_objects()) + ", costs " +
              q.cost.ToString() + ")");

  const RunStats nc_stats =
      RunOptimized(q.data, q.cost, *q.scoring, q.k);
  std::printf("  %-16s cost=%9.1f  (sa=%zu ra=%zu correct=%d) %s\n",
              "NC (cost-based)", nc_stats.cost, nc_stats.sorted,
              nc_stats.random, nc_stats.correct, nc_stats.plan.c_str());

  for (const AlgorithmInfo& info : AllBaselines()) {
    bool ran = false;
    const RunStats stats =
        RunBaseline(info, q.data, q.cost, *q.scoring, q.k, &ran);
    if (!ran) continue;
    std::printf("  %-16s cost=%9.1f  (sa=%zu ra=%zu correct=%d)%s\n",
                info.name.c_str(), stats.cost, stats.sorted, stats.random,
                stats.correct,
                info.exact_scores ? "" : "  [set-only semantics]");
  }

  // Parallelize the cost-based plan (Section 9.1.1).
  SourceSet plan_sources(&q.data, q.cost);
  PlannerOptions planner_options;
  planner_options.sample_size = 200;
  CostBasedPlanner planner(q.scoring.get(), planner_options);
  OptimizerResult plan;
  NC_CHECK(planner.Plan(plan_sources, q.k, &plan).ok());
  std::printf("  parallel execution of the NC plan (spec = speculative\n"
              "  reads per epoch; 0 = cost-minimal, 1 = pipelined):\n");
  for (const size_t c : {1ul, 2ul, 4ul, 8ul}) {
    for (const size_t spec : {0ul, 1ul}) {
      SourceSet sources(&q.data, q.cost);
      SRGPolicy policy(plan.config);
      ParallelOptions options;
      options.k = q.k;
      options.concurrency = c;
      options.max_speculation = spec;
      ParallelResult result;
      NC_CHECK(RunParallelNC(&sources, *q.scoring, &policy, options, &result)
                   .ok());
      std::printf(
          "    C=%zu spec=%zu  elapsed=%8.1f  total-cost=%8.1f  wasted=%zu\n",
          c, spec, result.elapsed_time, result.total_cost,
          result.wasted_accesses);
    }
  }
}

}  // namespace
}  // namespace nc::bench

int main() {
  const nc::TravelAgentQuery q1 = nc::MakeRestaurantQuery(10000, 1);
  nc::bench::RunQuery(q1);
  const nc::TravelAgentQuery q2 = nc::MakeHotelQuery(10000, 2);
  nc::bench::RunQuery(q2);
  nc::bench::WriteBenchJson("travel_agent");
  return 0;
}
