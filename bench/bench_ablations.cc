// Ablations for the design choices DESIGN.md calls out:
//   1. the global random-access schedule (the "G" of SR/G): optimized vs
//      identity vs deliberately reversed, on a workload with heterogeneous
//      probe costs and selectivities;
//   2. simulation-based estimation: plan quality as the sample size, the
//      replica count, and the sample mode (real draws vs the paper's dummy
//      uniform fallback) vary;
//   3. cost-based selection itself: the planner's plan vs the default
//      SR/G configuration vs random-but-valid scheduling over the same
//      necessary-choice sets.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/random_policy.h"
#include "core/schedule.h"
#include "core/tg.h"
#include "data/generator.h"
#include "data/sampling.h"

namespace nc::bench {
namespace {

// Workload for the schedule ablation: p0 cheap+selective (probe first!),
// p1 cheap but unselective, p2 selective but expensive, p3 mediocre.
Dataset ScheduleWorkload(size_t n) {
  GeneratorOptions base;
  base.num_objects = n;
  base.num_predicates = 4;
  base.seed = 404;
  Dataset data = GenerateDataset(base);
  Rng rng(405);
  for (ObjectId u = 0; u < n; ++u) {
    data.SetScore(u, 0, std::pow(rng.Uniform01(), 3.0));  // E ~ 0.25
    data.SetScore(u, 1, ClampScore(0.8 + 0.2 * rng.Uniform01()));  // E ~ 0.9
    data.SetScore(u, 2, std::pow(rng.Uniform01(), 3.0));
    data.SetScore(u, 3, rng.Uniform01());
  }
  return data;
}

void ScheduleAblation() {
  PrintHeader(
      "Ablation 1 - global probe schedule (m=4, probe-only scenario, "
      "F=min, k=10, n=5000)");
  const Dataset data = ScheduleWorkload(5000);
  // Probe-only, so the schedule is the entire plan. Costs: p2's probes
  // are 10x pricier.
  const CostModel cost({kImpossibleCost, kImpossibleCost, kImpossibleCost,
                        kImpossibleCost},
                       {1.0, 1.0, 10.0, 2.0});
  MinFunction fmin(4);

  const Dataset sample = SampleDataset(data, 300, /*seed=*/406);
  const std::vector<PredicateId> optimized = OptimizeSchedule(sample, cost);
  std::vector<PredicateId> identity{0, 1, 2, 3};
  std::vector<PredicateId> reversed = optimized;
  std::reverse(reversed.begin(), reversed.end());

  const auto run = [&](const char* label,
                       const std::vector<PredicateId>& schedule) {
    SRGConfig config;
    config.depths.assign(4, 1.0);
    config.schedule = schedule;
    const RunStats stats = RunFixedNC(data, cost, fmin, 10, config);
    NC_CHECK(stats.correct);
    std::printf("  %-10s sched=(%u,%u,%u,%u)  cost=%10.0f\n", label,
                schedule[0], schedule[1], schedule[2], schedule[3],
                stats.cost);
    return stats.cost;
  };
  const double opt = run("optimized", optimized);
  const double ident = run("identity", identity);
  const double rev = run("reversed", reversed);
  std::printf("  optimized saves %.0f%% vs identity, %.0f%% vs reversed\n",
              100.0 * (ident - opt) / ident, 100.0 * (rev - opt) / rev);
}

void SamplingAblation() {
  PrintHeader(
      "Ablation 2 - estimation sampling (min, cs=cr=1, n=10000, k=10; "
      "actual cost of the chosen plan)");
  GeneratorOptions g;
  g.num_objects = 10000;
  g.num_predicates = 2;
  g.seed = 500;
  const Dataset data = GenerateDataset(g);
  const CostModel cost = CostModel::Uniform(2, 1.0, 1.0);
  MinFunction fmin(2);

  std::printf("%8s %9s %8s %14s   %s\n", "samples", "replicas", "mode",
              "actual cost", "plan");
  PrintRule(72);
  for (const SampleMode mode :
       {SampleMode::kFromData, SampleMode::kDummyUniform}) {
    for (const size_t sample_size : {50ul, 100ul, 200ul, 400ul}) {
      for (const size_t replicas : {1ul, 3ul}) {
        SourceSet sources(&data, cost);
        PlannerOptions options;
        options.sample_size = sample_size;
        options.sample_replicas = replicas;
        options.sample_mode = mode;
        TopKResult result;
        OptimizerResult plan;
        NC_CHECK(RunOptimizedNC(&sources, fmin, 10, options, &result, &plan)
                     .ok());
        std::printf("%8zu %9zu %8s %14.0f   %s\n", sample_size, replicas,
                    mode == SampleMode::kFromData ? "data" : "dummy",
                    sources.accrued_cost(), plan.config.ToString().c_str());
      }
    }
  }
}

void PolicyAblation() {
  PrintHeader(
      "Ablation 3 - what cost-based selection buys (min, cr=10cs, "
      "n=10000, k=10)");
  GeneratorOptions g;
  g.num_objects = 10000;
  g.num_predicates = 2;
  g.seed = 600;
  const Dataset data = GenerateDataset(g);
  const CostModel cost = CostModel::Uniform(2, 1.0, 10.0);
  MinFunction fmin(2);

  const RunStats optimized = RunOptimized(data, cost, fmin, 10);
  std::printf("  %-24s cost=%10.0f  %s\n", "planner (HClimb)",
              optimized.cost, optimized.plan.c_str());

  const RunStats fallback =
      RunFixedNC(data, cost, fmin, 10, SRGConfig::Default(2));
  std::printf("  %-24s cost=%10.0f\n", "default SR/G (H=0.5)",
              fallback.cost);

  double random_total = 0.0;
  constexpr int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    SourceSet sources(&data, cost);
    RandomSelectPolicy policy(static_cast<uint64_t>(trial));
    EngineOptions options;
    options.k = 10;
    TopKResult result;
    NC_CHECK(RunNC(&sources, &fmin, &policy, options, &result).ok());
    random_total += sources.accrued_cost();
  }
  std::printf("  %-24s cost=%10.0f  (mean of %d seeds)\n",
              "random valid scheduling", random_total / kTrials, kTrials);
  std::printf(
      "  -> the plan space matters: even inside Framework NC's necessary\n"
      "     choices, arbitrary scheduling pays %.1fx the optimized plan.\n",
      random_total / kTrials / optimized.cost);
}

// A TG policy that drains streams before probing: the reading-heavy shape
// under which TG's legal pool balloons with every seen-but-unprobed
// object.
class SortedFirstTG final : public TGSelectPolicy {
 public:
  Access Select(std::span<const Access> pool_accesses,
                const TGView& view) override {
    (void)view;
    for (const Access& a : pool_accesses) {
      if (a.type == AccessType::kSorted) return a;
    }
    return pool_accesses[0];
  }
};

void FrameworkAblation() {
  PrintHeader(
      "Ablation 4 - Framework TG vs Framework NC (Section 6.2's "
      "specificity contrast; avg, k=10)");
  // Width: how large a choice set must a TG optimizer reason about per
  // step (reading-heavy execution, cs=cr=1)? NC's necessary choices stay
  // <= 2m regardless.
  std::printf("%8s %18s %18s\n", "n", "TG choice width", "NC choice width");
  PrintRule(48);
  for (const size_t n : {500ul, 2000ul, 8000ul}) {
    GeneratorOptions g;
    g.num_objects = n;
    g.num_predicates = 2;
    g.seed = 700;
    const Dataset data = GenerateDataset(g);
    const CostModel cost = CostModel::Uniform(2, 1.0, 1.0);
    AverageFunction avg(2);

    SourceSet tg_sources(&data, cost);
    SortedFirstTG tg_policy;
    TGOptions tg_options;
    tg_options.k = 10;
    TopKResult tg_result;
    TGReport report;
    NC_CHECK(RunTG(&tg_sources, avg, &tg_policy, tg_options, &tg_result,
                   &report)
                 .ok());

    SourceSet nc_sources(&data, cost);
    SRGPolicy nc_policy(SRGConfig::Default(2));
    EngineOptions nc_options;
    nc_options.k = 10;
    NCEngine engine(&nc_sources, &avg, &nc_policy, nc_options);
    TopKResult nc_result;
    NC_CHECK(engine.Run(&nc_result).ok());

    std::printf("%8zu %18.1f %18.1f\n", n, report.mean_choice_width,
                engine.mean_choice_width());
  }

  // Cost: what does an arbitrary walk over TG's pool pay once costs are
  // asymmetric (cr = 10cs)?
  std::printf("\n%8s %16s %16s %10s\n", "n", "TG random cost",
              "NC plan cost", "ratio");
  PrintRule(54);
  for (const size_t n : {500ul, 2000ul, 8000ul}) {
    GeneratorOptions g;
    g.num_objects = n;
    g.num_predicates = 2;
    g.seed = 700;
    const Dataset data = GenerateDataset(g);
    const CostModel cost = CostModel::Uniform(2, 1.0, 10.0);
    AverageFunction avg(2);

    double tg_total = 0.0;
    constexpr int kTrials = 3;
    for (int trial = 0; trial < kTrials; ++trial) {
      SourceSet tg_sources(&data, cost);
      TGRandomPolicy tg_policy(static_cast<uint64_t>(trial));
      TGOptions tg_options;
      tg_options.k = 10;
      TopKResult tg_result;
      NC_CHECK(
          RunTG(&tg_sources, avg, &tg_policy, tg_options, &tg_result).ok());
      tg_total += tg_sources.accrued_cost();
    }
    const double tg_mean = tg_total / kTrials;

    const RunStats nc_stats = RunOptimized(data, cost, avg, 10);
    std::printf("%8zu %16.0f %16.0f %9.1fx\n", n, tg_mean, nc_stats.cost,
                tg_mean / nc_stats.cost);
  }
  std::printf(
      "  -> TG is complete but unfocused: its per-step choice pool scales\n"
      "     with the seen objects (NC's stays <= 2m), and arbitrary\n"
      "     scheduling over it pays multiples of the cost-based plan.\n");
}

void ApproximationAblation() {
  // Anti-correlated data is where exactness is expensive: upper bounds
  // stay loose the longest, so confirming the exact boundary costs a
  // near-full scan - and where a small theta buys the most.
  PrintHeader(
      "Ablation 5 - the theta-approximation dial (avg, anti-correlated "
      "rho=-0.8, cs=cr=1, n=10000, k=10; exact cost = theta 1.0)");
  GeneratorOptions g;
  g.num_objects = 10000;
  g.num_predicates = 2;
  g.correlation = -0.8;
  g.seed = 800;
  const Dataset data = GenerateDataset(g);
  AverageFunction fmin(2);
  const TopKResult oracle = BruteForceTopK(data, fmin, 10);

  std::printf("%8s %12s %10s %10s\n", "theta", "cost", "vs exact",
              "recall");
  PrintRule(44);
  double exact_cost = 0.0;
  for (const double theta : {1.0, 1.02, 1.05, 1.1, 1.25, 1.5, 2.0}) {
    SourceSet sources(&data, CostModel::Uniform(2, 1.0, 1.0));
    SRGPolicy policy(SRGConfig::Default(2));
    EngineOptions options;
    options.k = 10;
    options.approximation_theta = theta;
    NCEngine engine(&sources, &fmin, &policy, options);
    TopKResult result;
    NC_CHECK(engine.Run(&result).ok());
    if (theta == 1.0) exact_cost = sources.accrued_cost();
    size_t hits = 0;
    for (const TopKEntry& e : result.entries) {
      for (const TopKEntry& o : oracle.entries) {
        if (o.object == e.object) ++hits;
      }
    }
    std::printf("%8.2f %12.0f %9.0f%% %9.1f%%\n", theta,
                sources.accrued_cost(),
                100.0 * sources.accrued_cost() / exact_cost,
                100.0 * static_cast<double>(hits) / 10.0);
  }
}

void PageSizeAblation() {
  PrintHeader(
      "Ablation 6 - paged sorted access (one request fetches b entries; "
      "min, cs=cr=1, n=10000, k=10)");
  GeneratorOptions g;
  g.num_objects = 10000;
  g.num_predicates = 2;
  g.seed = 900;
  const Dataset data = GenerateDataset(g);
  MinFunction fmin(2);

  std::printf("%8s %14s %14s   %s\n", "b", "planned cost", "sa entries",
              "plan");
  PrintRule(70);
  for (const size_t b : {1ul, 2ul, 5ul, 10ul, 50ul}) {
    CostModel cost = CostModel::Uniform(2, 1.0, 1.0);
    cost.sorted_page_size = {b, b};
    SourceSet sources(&data, cost);
    PlannerOptions options;
    options.sample_size = 200;
    TopKResult result;
    OptimizerResult plan;
    NC_CHECK(RunOptimizedNC(&sources, fmin, 10, options, &result, &plan)
                 .ok());
    std::printf("%8zu %14.0f %14zu   %s\n", b, sources.accrued_cost(),
                sources.stats().TotalSorted(),
                plan.config.ToString().c_str());
  }
  std::printf(
      "  -> pages shift the plan toward stream reading: the same query\n"
      "     gets cheaper as each request carries more entries.\n");
}

void JointSearchAblation() {
  PrintHeader(
      "Ablation 7 - two-step (H then schedule) vs joint (H x m! "
      "schedules) optimization (min, m=3, heterogeneous probe costs, "
      "n=5000, k=10)");
  const Dataset data = ScheduleWorkload(5000);
  // Mixed capabilities so both depths and schedule matter.
  const CostModel cost({1.0, 1.0, 1.0, 1.0}, {1.0, 1.0, 10.0, 2.0});
  MinFunction fmin(4);

  std::printf("%-10s %12s %12s %14s   %s\n", "mode", "simulations",
              "est. cost", "actual cost", "plan");
  PrintRule(90);
  for (const bool joint : {false, true}) {
    SourceSet sources(&data, cost);
    PlannerOptions options;
    options.sample_size = 200;
    options.joint_schedule_search = joint;
    TopKResult result;
    OptimizerResult plan;
    NC_CHECK(RunOptimizedNC(&sources, fmin, 10, options, &result, &plan)
                 .ok());
    std::printf("%-10s %12zu %12.1f %14.0f   %s\n",
                joint ? "joint" : "two-step", plan.simulations,
                plan.estimated_cost, sources.accrued_cost(),
                plan.config.ToString().c_str());
  }
  std::printf(
      "  -> the two-step approximation (Section 7.2) holds up: the joint\n"
      "     search pays m! times the overhead for little actual gain.\n");
}

}  // namespace
}  // namespace nc::bench

int main() {
  nc::bench::ScheduleAblation();
  nc::bench::SamplingAblation();
  nc::bench::PolicyAblation();
  nc::bench::FrameworkAblation();
  nc::bench::ApproximationAblation();
  nc::bench::PageSizeAblation();
  nc::bench::JointSearchAblation();
  nc::bench::WriteBenchJson("ablations");
  return 0;
}
