// Cross-query cache effectiveness: effective per-query Eq. 1 cost with
// and without the shared access cache (cache/cache.h).
//
//   $ ./build/bench/bench_cache [--quick]
//
// A 4-worker QueryServer serves two workloads over one dataset:
// "high-overlap" (a handful of query shapes, repeated - the web-source
// regime the cache exists for) and "low-overlap" (every query distinct).
// Each workload runs cache-off then cache-on, and the answers of the two
// runs are compared entry by entry: cache hits replay the exact bytes a
// real access would have produced, so the runs must match bit for bit.
// Emits BENCH_CACHE.json with per-run cost/QPS/hit-rate rows plus the
// top-level `hit_rate`, `differential_bit_identical`, and
// `cost_reduction_high_overlap` keys the CI smoke asserts on. The
// headline number - cost_reduction_high_overlap - must be >= 2x: that
// is the acceptance bar for the cache paying its way at 4 workers.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cache/cache.h"
#include "data/generator.h"
#include "server/server.h"

namespace nc {
namespace {

constexpr size_t kNumObjects = 4000;
constexpr size_t kNumPredicates = 2;
constexpr size_t kWorkers = 4;
constexpr size_t kStallMicros = 20;

class BenchStack : public server::WorkerStack {
 public:
  BenchStack(const Dataset* data, CostModel cost)
      : sources_(data, std::move(cost)) {}
  SourceSet& sources() override { return sources_; }

 private:
  SourceSet sources_;
};

struct WorkloadRun {
  std::string workload;
  bool cache = false;
  size_t queries = 0;
  double total_seconds = 0.0;
  double qps = 0.0;
  double total_cost = 0.0;  // Sum of per-query Eq. 1 accrued cost.
  double mean_cost = 0.0;
  double hit_rate = 0.0;
  cache::CacheStatsSnapshot snapshot;
  std::vector<server::QueryResponse> responses;
};

WorkloadRun RunWorkload(const Dataset& data, const ScoringFunction& scoring,
                        const std::string& workload,
                        const std::vector<size_t>& ks, bool enable_cache) {
  const CostModel cost = CostModel::Uniform(kNumPredicates, 1.0, 2.0);
  server::ServerConfig config;
  config.num_workers = kWorkers;
  config.queue_capacity = ks.size();
  config.planner.sample_size = 100;
  config.simulated_access_stall_us = kStallMicros;
  config.enable_cache = enable_cache;
  server::QueryServer server(&scoring, config, [&](size_t) {
    return std::make_unique<BenchStack>(&data, cost);
  });
  NC_CHECK(server.Start().ok());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<server::QueryResponse>> futures(ks.size());
  for (size_t j = 0; j < ks.size(); ++j) {
    server::QueryRequest request;
    request.k = ks[j];
    NC_CHECK(server.Submit(std::move(request), &futures[j]).ok());
  }
  WorkloadRun run;
  run.workload = workload;
  run.cache = enable_cache;
  run.queries = ks.size();
  run.responses.reserve(ks.size());
  for (auto& future : futures) {
    run.responses.push_back(future.get());
    NC_CHECK(run.responses.back().status.ok());
    run.total_cost += run.responses.back().accrued_cost;
  }
  run.total_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  if (server.access_cache() != nullptr) {
    run.snapshot = server.access_cache()->Snapshot();
    run.hit_rate = run.snapshot.hit_rate();
  }
  server.Shutdown(/*finish_queued=*/true);

  run.qps = static_cast<double>(run.queries) / run.total_seconds;
  run.mean_cost = run.total_cost / static_cast<double>(run.queries);
  return run;
}

// Entry-for-entry, bit-for-bit comparison of two runs' answers
// (TopKEntry::operator== compares the double scores exactly).
bool BitIdentical(const WorkloadRun& a, const WorkloadRun& b) {
  if (a.responses.size() != b.responses.size()) return false;
  for (size_t j = 0; j < a.responses.size(); ++j) {
    const TopKResult& x = a.responses[j].result;
    const TopKResult& y = b.responses[j].result;
    if (x.entries.size() != y.entries.size()) return false;
    for (size_t r = 0; r < x.entries.size(); ++r) {
      if (!(x.entries[r] == y.entries[r])) return false;
    }
    if (x.certificate.has_value() != y.certificate.has_value()) return false;
  }
  return true;
}

void PrintRow(const WorkloadRun& run) {
  std::printf("%-12s %5s %8zu %11.1f %11.2f %9.1f %8zu %8zu\n",
              run.workload.c_str(), run.cache ? "on" : "off", run.queries,
              run.qps, run.mean_cost, 100.0 * run.hit_rate,
              run.snapshot.hits(), run.snapshot.evictions);
}

int Main(bool quick) {
  GeneratorOptions g;
  g.num_objects = kNumObjects;
  g.num_predicates = kNumPredicates;
  g.seed = 91;
  const Dataset data = GenerateDataset(g);
  const AverageFunction avg(kNumPredicates);
  const size_t queries = quick ? 16 : 64;

  // High overlap: four query shapes, repeated - consecutive queries walk
  // the same sorted prefixes and probe the same objects.
  std::vector<size_t> high;
  high.reserve(queries);
  const size_t shapes[] = {5, 8, 3, 10};
  for (size_t j = 0; j < queries; ++j) high.push_back(shapes[j % 4]);
  // Low overlap: every query a different depth.
  std::vector<size_t> low;
  low.reserve(queries);
  for (size_t j = 0; j < queries; ++j) low.push_back(2 + (j * 7) % 50);

  std::printf("Access cache at %zu workers: %zu objects, %zu queries per "
              "run%s\n",
              kWorkers, kNumObjects, queries, quick ? " (quick)" : "");
  std::printf("%-12s %5s %8s %11s %11s %9s %8s %8s\n", "workload", "cache",
              "queries", "qps", "cost/query", "hit %", "hits", "evicted");

  std::vector<WorkloadRun> runs;
  runs.push_back(RunWorkload(data, avg, "high-overlap", high, false));
  runs.push_back(RunWorkload(data, avg, "high-overlap", high, true));
  runs.push_back(RunWorkload(data, avg, "low-overlap", low, false));
  runs.push_back(RunWorkload(data, avg, "low-overlap", low, true));
  for (const WorkloadRun& run : runs) PrintRow(run);

  const bool identical =
      BitIdentical(runs[0], runs[1]) && BitIdentical(runs[2], runs[3]);
  const double reduction = runs[0].total_cost / runs[1].total_cost;
  const double hit_rate = runs[1].hit_rate;
  std::printf("high-overlap Eq. 1 cost reduction: %.1fx, bit-identical: %s\n",
              reduction, identical ? "yes" : "no");

  // The acceptance bar: answers must not change, hits must actually
  // happen, and the cache must at least halve the effective cost on the
  // overlapping workload. All deterministic (cost is simulated).
  NC_CHECK(identical);
  NC_CHECK(hit_rate > 0.0);
  NC_CHECK(reduction >= 2.0);

  bench::WriteBenchJsonDoc("cache", "cache", [&](obs::JsonWriter& w) {
    w.Key("num_objects").Int(static_cast<int64_t>(kNumObjects));
    w.Key("num_predicates").Int(static_cast<int64_t>(kNumPredicates));
    w.Key("workers").Int(static_cast<int64_t>(kWorkers));
    w.Key("queries_per_run").Int(static_cast<int64_t>(queries));
    w.Key("quick").Bool(quick);
    w.Key("hit_rate").Number(hit_rate);
    w.Key("differential_bit_identical").Bool(identical);
    w.Key("cost_reduction_high_overlap").Number(reduction);
    w.Key("rows").BeginArray();
    for (const WorkloadRun& run : runs) {
      w.BeginObject();
      w.Key("workload").String(run.workload);
      w.Key("cache").Bool(run.cache);
      w.Key("queries").Int(static_cast<int64_t>(run.queries));
      w.Key("total_seconds").Number(run.total_seconds);
      w.Key("qps").Number(run.qps);
      w.Key("total_cost").Number(run.total_cost);
      w.Key("mean_cost_per_query").Number(run.mean_cost);
      w.Key("hit_rate").Number(run.hit_rate);
      w.Key("hits").Int(static_cast<int64_t>(run.snapshot.hits()));
      w.Key("misses").Int(static_cast<int64_t>(run.snapshot.misses()));
      w.Key("inflight_merges")
          .Int(static_cast<int64_t>(run.snapshot.inflight_merges));
      w.Key("evictions").Int(static_cast<int64_t>(run.snapshot.evictions));
      w.EndObject();
    }
    w.EndArray();
  });
  return 0;
}

}  // namespace
}  // namespace nc

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  return nc::Main(quick);
}
