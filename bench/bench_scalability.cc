// Scalability sweeps (reconstructed from Section 9's setup): access cost
// of the cost-based NC plan and the TA reference as the database size n,
// the retrieval size k, and the predicate count m grow. Expected shape:
// cost grows sublinearly with n (only the top region of each stream is
// touched), roughly linearly with k, and with m via both deeper scans and
// wider probes; NC tracks or beats TA throughout.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/generator.h"

namespace nc::bench {
namespace {

void Measure(size_t n, size_t m, size_t k, ScoringKind kind) {
  GeneratorOptions g;
  g.num_objects = n;
  g.num_predicates = m;
  g.seed = 31337;
  const Dataset data = GenerateDataset(g);
  const CostModel cost = CostModel::Uniform(m, 1.0, 1.0);
  const auto scoring = MakeScoringFunction(kind, m);

  const RunStats nc_stats = RunOptimized(data, cost, *scoring, k);
  const AlgorithmInfo* ta = FindBaseline("TA");
  const RunStats ta_stats = RunBaseline(*ta, data, cost, *scoring, k);
  NC_CHECK(nc_stats.correct);
  NC_CHECK(ta_stats.correct);
  std::printf("%8zu %4zu %5zu %8s %12.0f %12.0f %8.2f\n", n, m, k,
              scoring->name().c_str(), nc_stats.cost, ta_stats.cost,
              nc_stats.cost / ta_stats.cost);
}

}  // namespace
}  // namespace nc::bench

int main() {
  using namespace nc;
  using namespace nc::bench;

  PrintHeader("Scalability: varying n (m=2, k=10, uniform, cs=cr=1)");
  std::printf("%8s %4s %5s %8s %12s %12s %8s\n", "n", "m", "k", "F", "NC",
              "TA", "NC/TA");
  PrintRule(64);
  for (const size_t n : {1000ul, 5000ul, 10000ul, 50000ul, 100000ul}) {
    Measure(n, 2, 10, ScoringKind::kAverage);
  }
  for (const size_t n : {1000ul, 5000ul, 10000ul, 50000ul, 100000ul}) {
    Measure(n, 2, 10, ScoringKind::kMin);
  }

  PrintHeader("Scalability: varying k (n=10000, m=2)");
  std::printf("%8s %4s %5s %8s %12s %12s %8s\n", "n", "m", "k", "F", "NC",
              "TA", "NC/TA");
  PrintRule(64);
  for (const size_t k : {1ul, 5ul, 10ul, 25ul, 50ul, 100ul}) {
    Measure(10000, 2, k, ScoringKind::kAverage);
  }

  PrintHeader("Scalability: varying m (n=10000, k=10)");
  std::printf("%8s %4s %5s %8s %12s %12s %8s\n", "n", "m", "k", "F", "NC",
              "TA", "NC/TA");
  PrintRule(64);
  for (const size_t m : {2ul, 3ul, 4ul, 5ul}) {
    Measure(10000, m, 10, ScoringKind::kAverage);
  }
  for (const size_t m : {2ul, 3ul, 4ul, 5ul}) {
    Measure(10000, m, 10, ScoringKind::kMin);
  }
  nc::bench::WriteBenchJson("scalability");
  return 0;
}
