// Replica fleets: what failover, routing, and hedged sorted access cost.
//
// Three sweeps over the NC engine running against replicated sources with
// heavy-tailed latency (a small fraction of requests straggle at many
// times the normal service time - the regime hedging exists for):
//
//   1. Hedge delay: completion-latency percentiles (p50/p95/p99) and the
//      Eq. 1 cost as the hedge fires earlier. The headline check: any
//      enabled hedge must cut p99 versus primary-only, and the extra
//      requests it issues are billed, so the cost column *is* the price
//      of the tail cut.
//   2. Replica count: how much fleet width buys under round-robin.
//   3. Routing policy: cost, failovers, and exactness when the primary
//      is flaky (30% transient attempts).
//
// Every run's full Eq. 1 breakdown lands in BENCH_REPLICA.json. Pass
// --quick for a CI-smoke-sized dataset.

#include <cstdio>
#include <cstring>
#include <vector>

#include "access/fault.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/engine.h"
#include "core/reference.h"
#include "core/srg_policy.h"
#include "data/generator.h"
#include "replica/replica.h"

namespace {

using namespace nc;
using namespace nc::bench;

// One replica with the shared heavy-tail latency profile: 5% of requests
// straggle at 20x.
ReplicaEndpoint HeavyTailEndpoint(double cost_multiplier = 1.0) {
  ReplicaEndpoint e;
  e.cost_multiplier = cost_multiplier;
  e.latency.multiplier = 1.0;
  e.latency.jitter = 0.3;
  e.latency.tail_probability = 0.05;
  e.latency.tail_multiplier = 20.0;
  return e;
}

struct FleetRun {
  RunStats stats;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  size_t hedges = 0;
  size_t hedge_wins = 0;
  size_t failovers = 0;
  double elapsed = 0.0;
};

// Runs NC over `data` with every predicate served by `config`, pooling
// the completion-latency samples of all predicates.
FleetRun RunFleet(const Dataset& data, const ScoringFunction& scoring,
                  size_t k, const ReplicaSetConfig& config,
                  const std::string& label) {
  ReplicaFleet fleet(/*seed=*/97);
  for (PredicateId i = 0; i < data.num_predicates(); ++i) {
    NC_CHECK(fleet.Configure(i, config).ok());
  }
  const CostModel cost = CostModel::Uniform(data.num_predicates(), 1.0, 1.0);
  SourceSet sources(&data, cost);
  RetryPolicy retry;
  retry.max_attempts = 4;
  sources.set_retry_policy(retry, /*jitter_seed=*/5);
  CircuitBreakerPolicy breaker;
  breaker.failure_threshold = 6;
  breaker.cooldown = 8.0;
  NC_CHECK(sources.set_circuit_breaker(breaker).ok());
  NC_CHECK(sources.set_replica_fleet(&fleet).ok());

  SRGPolicy policy(SRGConfig::Default(data.num_predicates()));
  EngineOptions options;
  options.k = k;
  TopKResult result;
  NC_CHECK(RunNC(&sources, &scoring, &policy, options, &result).ok());

  FleetRun run;
  run.stats.cost = sources.accrued_cost();
  run.stats.sorted = sources.stats().TotalSorted();
  run.stats.random = sources.stats().TotalRandom();
  run.stats.correct = result == BruteForceTopK(data, scoring, k);
  run.stats.report = obs::BuildRunReport(sources, nullptr, "NC", k);
  std::vector<double> samples;
  for (PredicateId i = 0; i < data.num_predicates(); ++i) {
    const std::vector<double>& s = fleet.latency_samples(i);
    samples.insert(samples.end(), s.begin(), s.end());
  }
  run.p50 = Percentile(samples, 0.50);
  run.p95 = Percentile(samples, 0.95);
  run.p99 = Percentile(samples, 0.99);
  run.hedges = fleet.total_hedges_issued();
  run.hedge_wins = fleet.total_hedge_wins();
  run.failovers = fleet.total_failovers();
  run.elapsed = sources.elapsed_time();
  AddJsonRow(label, run.stats);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const size_t kObjects = quick ? 200 : 2000;
  const size_t kPredicates = 3;
  const size_t kK = 10;

  GeneratorOptions g;
  g.num_objects = kObjects;
  g.num_predicates = kPredicates;
  g.seed = 2026;
  const Dataset data = GenerateDataset(g);
  AverageFunction scoring(kPredicates);

  // --- Sweep 1: hedge delay under heavy-tail latency -------------------
  PrintHeader("Hedged sorted access vs hedge delay, 3 replicas, "
              "5% stragglers at 20x, F=avg, k=10");
  std::printf("%10s %10s %8s %8s %8s %8s %8s %8s %6s\n", "delay", "cost",
              "p50", "p95", "p99", "hedges", "wins", "elapsed", "exact");
  PrintRule(74);
  double primary_only_p99 = 0.0;
  double primary_only_cost = 0.0;
  for (const double delay : {0.0, 1.2, 1.5, 2.0, 4.0}) {
    ReplicaSetConfig config;
    config.replicas = {HeavyTailEndpoint(), HeavyTailEndpoint(),
                       HeavyTailEndpoint()};
    config.routing = RoutingPolicy::kPrimaryOnly;
    config.hedge.delay = delay;
    const FleetRun run =
        RunFleet(data, scoring, kK, config,
                 "NC hedge=" + std::to_string(delay));
    if (delay == 0.0) {
      primary_only_p99 = run.p99;
      primary_only_cost = run.stats.cost;
    }
    std::printf("%10.1f %10.1f %8.2f %8.2f %8.2f %8zu %8zu %8.1f %6s\n",
                delay, run.stats.cost, run.p50, run.p95, run.p99,
                run.hedges, run.hedge_wins, run.elapsed,
                run.stats.correct ? "yes" : "NO");
    if (delay > 0.0) {
      // The whole point of hedging: the tail comes down, and the cost
      // honestly reports what that cut. A regression here means the
      // hedge path stopped firing or stopped winning.
      NC_CHECK(run.stats.correct);
      NC_CHECK(run.p99 < primary_only_p99);
      std::printf("%10s p99 %.2fx lower than primary-only, cost %+.1f%%\n",
                  "", primary_only_p99 / run.p99,
                  100.0 * (run.stats.cost - primary_only_cost) /
                      primary_only_cost);
    }
  }

  // --- Sweep 2: replica count ------------------------------------------
  PrintHeader("Tail latency vs replica count, round-robin, hedge "
              "delay 1.5");
  std::printf("%10s %10s %8s %8s %8s %8s %6s\n", "replicas", "cost", "p50",
              "p99", "hedges", "elapsed", "exact");
  PrintRule(62);
  for (const size_t replicas : {1u, 2u, 3u, 4u}) {
    ReplicaSetConfig config;
    for (size_t r = 0; r < replicas; ++r) {
      config.replicas.push_back(HeavyTailEndpoint());
    }
    config.routing = RoutingPolicy::kRoundRobin;
    // A single replica has nobody to hedge to.
    config.hedge.delay = replicas > 1 ? 1.5 : 0.0;
    const FleetRun run =
        RunFleet(data, scoring, kK, config,
                 "NC replicas=" + std::to_string(replicas));
    std::printf("%10zu %10.1f %8.2f %8.2f %8zu %8.1f %6s\n", replicas,
                run.stats.cost, run.p50, run.p99, run.hedges, run.elapsed,
                run.stats.correct ? "yes" : "NO");
  }

  // --- Sweep 3: routing policies with a flaky primary ------------------
  PrintHeader("Routing policies with a flaky primary (30% transient "
              "attempts, 1.5x cost)");
  std::printf("%18s %10s %10s %10s %8s %6s\n", "policy", "cost",
              "failovers", "p99", "elapsed", "exact");
  PrintRule(68);
  const RoutingPolicy policies[] = {
      RoutingPolicy::kPrimaryOnly, RoutingPolicy::kRoundRobin,
      RoutingPolicy::kLeastLatency, RoutingPolicy::kCheapestHealthy};
  for (const RoutingPolicy routing : policies) {
    ReplicaSetConfig config;
    ReplicaEndpoint flaky = HeavyTailEndpoint(1.5);
    flaky.faults.transient_rate = 0.3;
    config.replicas = {flaky, HeavyTailEndpoint(1.0),
                       HeavyTailEndpoint(1.2)};
    config.routing = routing;
    const FleetRun run =
        RunFleet(data, scoring, kK, config,
                 std::string("NC routing=") + RoutingPolicyName(routing));
    std::printf("%18s %10.1f %10zu %10.2f %8.1f %6s\n",
                RoutingPolicyName(routing), run.stats.cost, run.failovers,
                run.p99, run.elapsed, run.stats.correct ? "yes" : "NO");
    NC_CHECK(run.stats.correct);
  }

  WriteBenchJson("replica");
  return 0;
}
