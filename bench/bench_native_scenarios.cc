// Section 9's head-to-head claim: the cost-based framework matches or
// beats each existing algorithm *in the scenario that algorithm was
// designed for*. One block per native scenario; within each block, the
// native algorithm(s), the cost-based NC plan, and the NC/native cost
// ratio. Ratios at or below 1.0 reproduce the paper's conclusion.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/generator.h"

int main() {
  using namespace nc;
  using namespace nc::bench;

  constexpr size_t kObjects = 10000;
  constexpr size_t kK = 10;

  struct Block {
    const char* scenario;
    double cs;
    double cr;
    std::vector<const char*> natives;
  };
  const std::vector<Block> blocks = {
      {"uniform costs (cs=cr=1): TA / FA / TAz / Quick-Combine", 1.0, 1.0,
       {"TA", "FA", "TAz", "Quick-Combine"}},
      {"expensive random (cr=50cs): CA", 1.0, 50.0, {"CA", "TA"}},
      {"no random access: NRA / Stream-Combine", 1.0, kImpossibleCost,
       {"NRA-exact", "NRA", "Stream-Combine"}},
      {"no sorted access: MPro / Upper", kImpossibleCost, 1.0,
       {"MPro", "Upper"}},
      {"cheap random (cr=cs/10): the paper's '?' cell", 10.0, 1.0,
       {"TA", "CA"}},
  };

  for (const ScoringKind kind : {ScoringKind::kAverage, ScoringKind::kMin}) {
    const auto scoring = MakeScoringFunction(kind, 2);
    PrintHeader("Native-scenario comparison, F=" + scoring->name() +
                ", uniform scores, n=10000, k=10");
    for (const Block& block : blocks) {
      GeneratorOptions g;
      g.num_objects = kObjects;
      g.num_predicates = 2;
      g.seed = 99;
      const Dataset data = GenerateDataset(g);
      const CostModel cost = CostModel::Uniform(2, block.cs, block.cr);

      std::printf("\nscenario: %s\n", block.scenario);
      const RunStats nc_stats = RunOptimized(data, cost, *scoring, kK);
      std::printf("  %-16s cost=%10.0f  %s\n", "NC (cost-based)",
                  nc_stats.cost, nc_stats.plan.c_str());
      for (const char* name : block.natives) {
        const AlgorithmInfo* info = FindBaseline(name);
        bool ran = false;
        const RunStats stats =
            RunBaseline(*info, data, cost, *scoring, kK, &ran);
        if (!ran) continue;
        std::printf("  %-16s cost=%10.0f  NC/native=%.2f%s\n", name,
                    stats.cost, nc_stats.cost / stats.cost,
                    info->exact_scores ? "" : "  [set-only semantics]");
      }
    }

    // Mixed per-predicate capabilities: p0 sorted + random, p1 random
    // only (TAz's cell - no other baseline runs here).
    {
      GeneratorOptions g;
      g.num_objects = kObjects;
      g.num_predicates = 2;
      g.seed = 99;
      const Dataset data = GenerateDataset(g);
      const CostModel cost({1.0, kImpossibleCost}, {1.0, 1.0});
      std::printf("\nscenario: mixed capabilities (p1 random-only): TAz\n");
      const RunStats nc_stats = RunOptimized(data, cost, *scoring, kK);
      std::printf("  %-16s cost=%10.0f  %s\n", "NC (cost-based)",
                  nc_stats.cost, nc_stats.plan.c_str());
      const AlgorithmInfo* taz = FindBaseline("TAz");
      const RunStats stats = RunBaseline(*taz, data, cost, *scoring, kK);
      std::printf("  %-16s cost=%10.0f  NC/native=%.2f\n", "TAz",
                  stats.cost, nc_stats.cost / stats.cost);
    }
  }
  nc::bench::WriteBenchJson("native_scenarios");
  return 0;
}
