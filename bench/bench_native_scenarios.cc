// Section 9's head-to-head claim: the cost-based framework matches or
// beats each existing algorithm *in the scenario that algorithm was
// designed for*. One block per native scenario; within each block, the
// native algorithm(s), the cost-based NC plan, and the NC/native cost
// ratio. Ratios at or below 1.0 reproduce the paper's conclusion.
//
// The blocks come from the shared scenario catalog (playbook/catalog.h),
// each paired with the baselines designed for its cell.

#include <cstdio>

#include "bench/bench_util.h"
#include "playbook/catalog.h"

int main() {
  using namespace nc;
  using namespace nc::bench;

  playbook::ScenarioSpec base = playbook::CatalogBase();
  base.data_seed = 99;
  const Dataset data = base.MakeDataset();

  for (const ScoringKind kind : {ScoringKind::kAverage, ScoringKind::kMin}) {
    base.scoring = kind;
    const auto scoring = base.MakeScoring();
    PrintHeader("Native-scenario comparison, F=" + scoring->name() +
                ", uniform scores, n=10000, k=10");
    for (const playbook::NativeBlock& block : playbook::NativeBlocks(base)) {
      const CostModel cost = block.spec.MakeCostModel();

      std::printf("\nscenario: %s\n", block.title.c_str());
      const RunStats nc_stats =
          RunOptimized(data, cost, *scoring, block.spec.k);
      std::printf("  %-16s cost=%10.0f  %s\n", "NC (cost-based)",
                  nc_stats.cost, nc_stats.plan.c_str());
      for (const std::string& name : block.natives) {
        const AlgorithmInfo* info = FindBaseline(name);
        bool ran = false;
        const RunStats stats =
            RunBaseline(*info, data, cost, *scoring, block.spec.k, &ran);
        if (!ran) continue;
        std::printf("  %-16s cost=%10.0f  NC/native=%.2f%s\n", name.c_str(),
                    stats.cost, nc_stats.cost / stats.cost,
                    info->exact_scores ? "" : "  [set-only semantics]");
      }
    }
  }
  nc::bench::WriteBenchJson("native_scenarios");
  return 0;
}
