// Playbook soak bench: run a seeded chaos-variant fleet under the
// invariant oracles and publish the per-variant cost fingerprints.
//
// Two jobs in one binary:
//   * Prove the health headline - a seeded soak (faults, budgets,
//     replicas, kills, server variants included) with zero oracle
//     violations, plus a same-seed regeneration check (determinism_ok).
//   * Record the baseline map BENCH_PLAYBOOK.json carries: each
//     variant's (cost, accesses) fingerprint, which ncplaybook soak
//     --baseline and the nightly CI soak diff against to catch silent
//     cost drift that no correctness oracle would flag.
//
// --quick runs the smoke-sized fleet for CI; the default is the full
// soak. Exit is non-zero when any variant is flagged, so CI fails loudly.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "playbook/runner.h"
#include "playbook/variant.h"

namespace nc::playbook {
namespace {

constexpr uint64_t kSoakSeed = 20260809;

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const size_t count = quick ? 60 : 250;

  // Same seed => byte-identical variant list; regenerate and compare so
  // the repro contract is re-proven on every bench run.
  VariantGenerator generator(VariantAxes::ChaosDefaults(), kSoakSeed);
  const std::vector<ScenarioSpec> variants = generator.Generate(count);
  bool determinism_ok = true;
  {
    std::string first_bytes, second_bytes;
    for (const ScenarioSpec& spec : variants) first_bytes += spec.Serialize();
    VariantGenerator again(VariantAxes::ChaosDefaults(), kSoakSeed);
    for (const ScenarioSpec& spec : again.Generate(count)) {
      second_bytes += spec.Serialize();
    }
    determinism_ok = first_bytes == second_bytes;
  }

  RunnerOptions options;
  options.repro_prefix =
      "ncplaybook soak --seed " + std::to_string(kSoakSeed) + " --count " +
      std::to_string(count);
  PlaybookRunner runner(std::move(options));
  const PlaybookReport report = runner.Run(variants);

  std::printf("%s", report.ToText().c_str());
  std::printf("determinism_ok=%s\n", determinism_ok ? "true" : "false");

  bench::WriteBenchJsonDoc("playbook", "playbook", [&](obs::JsonWriter& w) {
    w.Key("seed").UInt(kSoakSeed);
    w.Key("count").UInt(count);
    w.Key("determinism_ok").Bool(determinism_ok);
    w.Key("executed").UInt(report.executed);
    w.Key("failed").UInt(report.flagged);
    w.Key("violations").UInt(report.violations);
    w.Key("rows").BeginArray();
    for (const VariantVerdict& verdict : report.verdicts) {
      w.BeginObject();
      w.Key("name").String(verdict.spec.name);
      w.Key("signature").String(verdict.spec.Signature());
      w.Key("executed").Bool(verdict.executed);
      w.Key("flagged").Bool(verdict.flagged());
      w.Key("cost").Number(verdict.accrued_cost);
      w.Key("accesses").UInt(verdict.accesses);
      w.EndObject();
    }
    w.EndArray();
    w.Key("baseline").BeginObject();
    for (const VariantVerdict& verdict : report.verdicts) {
      if (!verdict.executed || verdict.flagged()) continue;
      w.Key(verdict.spec.name).BeginObject();
      w.Key("cost").Number(verdict.accrued_cost);
      w.Key("accesses").UInt(verdict.accesses);
      w.EndObject();
    }
    w.EndObject();
  });

  return (report.flagged == 0 && determinism_ok) ? 0 : 1;
}

}  // namespace
}  // namespace nc::playbook

int main(int argc, char** argv) { return nc::playbook::Main(argc, argv); }
