// Figure 11: contour plots of plan cost over the depth space (H1, H2).
//
// Scenario w1: F = avg, uniform scores, cs = cr = 1 - the symmetric case
// where the optimum sits on the equal-depth diagonal and NC's plan
// coincides with TA's behavior (Figure 11(a)).
// Scenario w2: F = min, otherwise identical - the asymmetric case where
// the optimum is a *focused* plan and NC saves ~30% over TA
// (Figure 11(b)).
//
// For each scenario we print the cost matrix over a depth mesh (the
// paper's contour plot as numbers), the argmin cell, the cost-based
// plan the optimizer actually finds, and TA's cost for reference.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "data/generator.h"

namespace nc::bench {
namespace {

constexpr size_t kObjects = 1000;
constexpr size_t kK = 50;

void Contour(const char* label, const ScoringFunction& scoring) {
  GeneratorOptions g;
  g.num_objects = kObjects;
  g.num_predicates = 2;
  g.seed = 2005;
  const Dataset data = GenerateDataset(g);
  const CostModel cost = CostModel::Uniform(2, 1.0, 1.0);

  PrintHeader(std::string("Figure 11 - cost contour, scenario ") + label +
              " (F=" + scoring.name() + ", uniform, cs=cr=1, n=" +
              std::to_string(kObjects) + ", k=" + std::to_string(kK) + ")");

  const std::vector<double> axis{0.0, 0.5, 0.6, 0.7, 0.75,
                                 0.8, 0.85, 0.9, 0.95, 1.0};
  std::printf("%8s", "H1\\H2");
  for (const double h2 : axis) std::printf("%8.2f", h2);
  std::printf("\n");

  double best_cost = -1.0;
  double best_h1 = 0.0;
  double best_h2 = 0.0;
  for (const double h1 : axis) {
    std::printf("%8.2f", h1);
    for (const double h2 : axis) {
      SRGConfig config;
      config.depths = {h1, h2};
      config.schedule = {0, 1};
      const RunStats stats = RunFixedNC(data, cost, scoring, kK, config);
      NC_CHECK(stats.correct);
      std::printf("%8.0f", stats.cost);
      if (best_cost < 0.0 || stats.cost < best_cost) {
        best_cost = stats.cost;
        best_h1 = h1;
        best_h2 = h2;
      }
    }
    std::printf("\n");
  }
  std::printf("grid minimum: H=(%.2f,%.2f) cost=%.0f\n", best_h1, best_h2,
              best_cost);

  const RunStats optimized =
      RunOptimized(data, cost, scoring, kK, SearchScheme::kHClimb,
                   /*sample_size=*/300);
  std::printf("cost-based plan: %s cost=%.0f (correct=%d)\n",
              optimized.plan.c_str(), optimized.cost, optimized.correct);

  const AlgorithmInfo* ta = FindBaseline("TA");
  const RunStats ta_stats = RunBaseline(*ta, data, cost, scoring, kK);
  std::printf("TA reference: cost=%.0f -> NC/TA = %.2f\n", ta_stats.cost,
              optimized.cost / ta_stats.cost);
}

}  // namespace
}  // namespace nc::bench

int main() {
  const nc::AverageFunction avg(2);
  const nc::MinFunction fmin(2);
  nc::bench::Contour("w1", avg);
  nc::bench::Contour("w2", fmin);
  nc::bench::WriteBenchJson("fig11_contour");
  return 0;
}
