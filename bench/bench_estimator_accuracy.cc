// Quantitative validation of Section 7.3's simulation-based estimation:
// how well do sampled costs predict full-database costs?
//
// For a mesh of SR/G configurations we report the Pearson correlation
// between estimate and actual, the mean absolute relative error of the
// scaled estimate (estimate * n / s), and the regret of trusting the
// estimator (actual cost of its argmin vs the true best config) - per
// sample size, replica count, and sample mode.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/estimator.h"
#include "core/schedule.h"
#include "data/generator.h"
#include "data/sampling.h"

int main() {
  using namespace nc;
  using namespace nc::bench;

  constexpr size_t kObjects = 10000;
  constexpr size_t kK = 10;

  for (const ScoringKind kind : {ScoringKind::kAverage, ScoringKind::kMin}) {
    const auto scoring = MakeScoringFunction(kind, 2);
    GeneratorOptions g;
    g.num_objects = kObjects;
    g.num_predicates = 2;
    g.seed = 4242;
    const Dataset data = GenerateDataset(g);
    const CostModel cost = CostModel::Uniform(2, 1.0, 3.0);

    // The configuration mesh under evaluation.
    std::vector<SRGConfig> configs;
    for (const double h0 : {0.0, 0.5, 0.9, 0.95, 1.0}) {
      for (const double h1 : {0.0, 0.5, 0.9, 0.95, 1.0}) {
        SRGConfig config;
        config.depths = {h0, h1};
        config.schedule = {0, 1};
        configs.push_back(config);
      }
    }

    // Ground truth.
    std::vector<double> actual;
    double best_actual = -1.0;
    for (const SRGConfig& config : configs) {
      const RunStats stats = RunFixedNC(data, cost, *scoring, kK, config);
      NC_CHECK(stats.correct);
      actual.push_back(stats.cost);
      if (best_actual < 0.0 || stats.cost < best_actual) {
        best_actual = stats.cost;
      }
    }

    PrintHeader("Estimator accuracy, F=" + scoring->name() +
                ", uniform, n=10000, k=10, cr=3cs (25-config mesh)");
    std::printf("%8s %9s %8s %12s %10s %10s\n", "samples", "replicas",
                "mode", "correlation", "MARE", "regret");
    PrintRule(64);

    for (const bool dummy : {false, true}) {
      for (const size_t sample_size : {50ul, 200ul, 800ul}) {
        for (const size_t replicas : {1ul, 3ul}) {
          // Build the estimator exactly the way the planner does.
          std::vector<Dataset> samples;
          for (size_t r = 0; r < replicas; ++r) {
            samples.push_back(
                dummy ? DummyUniformSample(2, sample_size, 900 + r)
                      : SampleDataset(data, sample_size, 900 + r));
          }
          const size_t k_prime = ScaledSampleK(kK, kObjects, sample_size);
          SimulationCostEstimator estimator(samples, cost, scoring.get(),
                                            k_prime);

          std::vector<double> estimates;
          size_t argmin = 0;
          for (size_t c = 0; c < configs.size(); ++c) {
            estimates.push_back(estimator.EstimateCost(configs[c]));
            if (estimates[c] < estimates[argmin]) argmin = c;
          }

          // Scale estimates to database units for the error metric. The
          // scale factor mixes k'-quantization with s/n, so use the
          // best-fit single factor (relative shape is what argmin needs).
          const double scale = Mean(actual) / Mean(estimates);
          std::vector<double> errors;
          for (size_t c = 0; c < configs.size(); ++c) {
            errors.push_back(
                std::abs(estimates[c] * scale - actual[c]) / actual[c]);
          }

          std::printf("%8zu %9zu %8s %12.3f %9.1f%% %9.1f%%\n", sample_size,
                      replicas, dummy ? "dummy" : "data",
                      PearsonCorrelation(estimates, actual),
                      100.0 * Mean(errors),
                      100.0 * (actual[argmin] - best_actual) / best_actual);
        }
      }
    }
  }
  nc::bench::WriteBenchJson("estimator_accuracy");
  return 0;
}
