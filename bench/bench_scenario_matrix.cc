// Figure 2's access-scenario matrix, regenerated: each cell pairs a
// sorted-access regime (cheap / expensive / impossible) with a
// random-access regime, and the paper annotates it with the algorithms
// designed for it. This harness runs *every* applicable algorithm plus the
// cost-based NC plan in every cell, demonstrating the unification claim:
// one optimizer covers the whole matrix, including the "?" cell (random
// cheaper than sorted) that no published algorithm targets.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/generator.h"

namespace {

constexpr double kCheap = 1.0;
constexpr double kExpensive = 10.0;

struct Regime {
  const char* name;
  double cost;
};

constexpr Regime kRegimes[] = {
    {"cheap", kCheap},
    {"expensive", kExpensive},
    {"impossible", nc::kImpossibleCost},
};

}  // namespace

int main() {
  using namespace nc;
  using namespace nc::bench;

  constexpr size_t kObjects = 10000;
  constexpr size_t kK = 10;
  GeneratorOptions g;
  g.num_objects = kObjects;
  g.num_predicates = 2;
  g.seed = 22;
  const Dataset data = GenerateDataset(g);
  const AverageFunction avg(2);

  PrintHeader(
      "Figure 2 matrix - every algorithm in every supported cell "
      "(F=avg, uniform, n=10000, k=10; total access cost)");

  for (const Regime& sorted : kRegimes) {
    for (const Regime& random : kRegimes) {
      if (sorted.cost == kImpossibleCost && random.cost == kImpossibleCost) {
        continue;  // Unanswerable cell.
      }
      const CostModel cost = CostModel::Uniform(2, sorted.cost, random.cost);
      std::printf("\ncell: sorted=%s, random=%s  %s\n", sorted.name,
                  random.name, cost.ToString().c_str());

      const RunStats nc_stats = RunOptimized(data, cost, avg, kK);
      std::printf("  %-16s cost=%10.0f  (sa=%zu ra=%zu correct=%d) %s\n",
                  "NC (cost-based)", nc_stats.cost, nc_stats.sorted,
                  nc_stats.random, nc_stats.correct, nc_stats.plan.c_str());

      for (const AlgorithmInfo& info : AllBaselines()) {
        bool ran = false;
        const RunStats stats =
            RunBaseline(info, data, cost, avg, kK, &ran);
        if (!ran) continue;
        std::printf("  %-16s cost=%10.0f  (sa=%zu ra=%zu correct=%d)\n",
                    info.name.c_str(), stats.cost, stats.sorted,
                    stats.random, stats.correct);
      }
    }
  }
  nc::bench::WriteBenchJson("scenario_matrix");
  return 0;
}
