// Figure 2's access-scenario matrix, regenerated: each cell pairs a
// sorted-access regime (cheap / expensive / impossible) with a
// random-access regime, and the paper annotates it with the algorithms
// designed for it. This harness runs *every* applicable algorithm plus the
// cost-based NC plan in every cell, demonstrating the unification claim:
// one optimizer covers the whole matrix, including the "?" cell (random
// cheaper than sorted) that no published algorithm targets.
//
// The cells themselves come from the shared scenario catalog
// (playbook/catalog.h) - the same grid the chaos playbook's variant
// generator seeds from.

#include <cstdio>

#include "bench/bench_util.h"
#include "playbook/catalog.h"

int main() {
  using namespace nc;
  using namespace nc::bench;

  playbook::ScenarioSpec base = playbook::CatalogBase();
  base.data_seed = 22;
  const Dataset data = base.MakeDataset();
  const auto scoring = base.MakeScoring();

  PrintHeader(
      "Figure 2 matrix - every algorithm in every supported cell "
      "(F=avg, uniform, n=10000, k=10; total access cost)");

  for (const playbook::Figure2Cell& cell : playbook::Figure2Matrix(base)) {
    const CostModel cost = cell.spec.MakeCostModel();
    std::printf("\ncell: sorted=%s, random=%s  %s\n",
                cell.sorted_regime.c_str(), cell.random_regime.c_str(),
                cost.ToString().c_str());

    const RunStats nc_stats =
        RunOptimized(data, cost, *scoring, cell.spec.k);
    std::printf("  %-16s cost=%10.0f  (sa=%zu ra=%zu correct=%d) %s\n",
                "NC (cost-based)", nc_stats.cost, nc_stats.sorted,
                nc_stats.random, nc_stats.correct, nc_stats.plan.c_str());

    for (const AlgorithmInfo& info : AllBaselines()) {
      bool ran = false;
      const RunStats stats =
          RunBaseline(info, data, cost, *scoring, cell.spec.k, &ran);
      if (!ran) continue;
      std::printf("  %-16s cost=%10.0f  (sa=%zu ra=%zu correct=%d)\n",
                  info.name.c_str(), stats.cost, stats.sorted,
                  stats.random, stats.correct);
    }
  }
  nc::bench::WriteBenchJson("scenario_matrix");
  return 0;
}
