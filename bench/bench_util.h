// Shared plumbing for the experiment harnesses: one-line runners for NC
// (fixed-config, cost-optimized, adaptive) and the baselines, plus simple
// fixed-width table printing so every binary reports rows the way the
// paper's figures/tables do.

#ifndef NC_BENCH_BENCH_UTIL_H_
#define NC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/check.h"
#include "core/planner.h"
#include "core/reference.h"
#include "core/srg_policy.h"

namespace nc::bench {

// Outcome of one measured execution.
struct RunStats {
  double cost = 0.0;
  size_t sorted = 0;
  size_t random = 0;
  bool correct = false;  // Exact match against the brute-force oracle.
  std::string plan;      // SR/G config for NC runs; empty for baselines.
};

// Runs NC with a fixed SR/G configuration.
inline RunStats RunFixedNC(const Dataset& data, const CostModel& cost,
                           const ScoringFunction& scoring, size_t k,
                           const SRGConfig& config) {
  SourceSet sources(&data, cost);
  SRGPolicy policy(config);
  EngineOptions options;
  options.k = k;
  TopKResult result;
  const Status status = RunNC(&sources, &scoring, &policy, options, &result);
  NC_CHECK(status.ok());
  RunStats stats;
  stats.cost = sources.accrued_cost();
  stats.sorted = sources.stats().TotalSorted();
  stats.random = sources.stats().TotalRandom();
  stats.correct = result == BruteForceTopK(data, scoring, k);
  stats.plan = config.ToString();
  return stats;
}

// Runs the full cost-based pipeline (plan with the given scheme, then
// execute). Optimization overhead is not part of the reported access cost,
// matching the paper's accounting (estimation runs on samples, not on the
// priced sources).
inline RunStats RunOptimized(const Dataset& data, const CostModel& cost,
                             const ScoringFunction& scoring, size_t k,
                             SearchScheme scheme = SearchScheme::kHClimb,
                             size_t sample_size = 200) {
  SourceSet sources(&data, cost);
  PlannerOptions options;
  options.scheme = scheme;
  options.sample_size = sample_size;
  TopKResult result;
  OptimizerResult plan;
  const Status status =
      RunOptimizedNC(&sources, scoring, k, options, &result, &plan);
  NC_CHECK(status.ok());
  RunStats stats;
  stats.cost = sources.accrued_cost();
  stats.sorted = sources.stats().TotalSorted();
  stats.random = sources.stats().TotalRandom();
  stats.correct = result == BruteForceTopK(data, scoring, k);
  stats.plan = plan.config.ToString();
  return stats;
}

// Runs a registered baseline. Returns false in `*ran` when the baseline's
// scenario does not cover `cost`.
inline RunStats RunBaseline(const AlgorithmInfo& info, const Dataset& data,
                            const CostModel& cost,
                            const ScoringFunction& scoring, size_t k,
                            bool* ran = nullptr) {
  RunStats stats;
  if (!info.applicable(cost)) {
    if (ran != nullptr) *ran = false;
    return stats;
  }
  SourceSet sources(&data, cost);
  TopKResult result;
  const Status status = info.run(&sources, scoring, k, &result);
  NC_CHECK(status.ok());
  stats.cost = sources.accrued_cost();
  stats.sorted = sources.stats().TotalSorted();
  stats.random = sources.stats().TotalRandom();
  if (info.exact_scores) {
    stats.correct = result == BruteForceTopK(data, scoring, k);
  } else {
    // Set-only semantics: compare object sets.
    const TopKResult oracle = BruteForceTopK(data, scoring, k);
    stats.correct = result.entries.size() == oracle.entries.size();
    for (const TopKEntry& e : result.entries) {
      bool found = false;
      for (const TopKEntry& o : oracle.entries) {
        if (o.object == e.object) found = true;
      }
      stats.correct = stats.correct && found;
    }
  }
  if (ran != nullptr) *ran = true;
  return stats;
}

// --- Table printing ---------------------------------------------------

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n");
  PrintRule(72);
  std::printf("%s\n", title.c_str());
  PrintRule(72);
}

}  // namespace nc::bench

#endif  // NC_BENCH_BENCH_UTIL_H_
