// Shared plumbing for the experiment harnesses: one-line runners for NC
// (fixed-config, cost-optimized, adaptive) and the baselines, simple
// fixed-width table printing so every binary reports rows the way the
// paper's figures/tables do, and a process-wide JSON sink so every
// binary also emits its rows machine-readably.
//
// JSON emission: each Run* helper snapshots its finished run into an
// obs::RunReport and records a row in the sink under the current
// scenario label (PrintHeader doubles as the scenario marker). A bench
// main ends with WriteBenchJson("name"), which writes BENCH_<NAME>.json
// into the working directory:
//   {"bench":"name","rows":[{"scenario":...,"algorithm":...,
//     "correct":...,"plan":...,"report":{<RunReport::ToJson()>}}]}

#ifndef NC_BENCH_BENCH_UTIL_H_
#define NC_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/registry.h"
#include "common/check.h"
#include "core/planner.h"
#include "core/reference.h"
#include "core/srg_policy.h"
#include "obs/json.h"
#include "obs/run_report.h"

namespace nc::bench {

// Outcome of one measured execution.
struct RunStats {
  double cost = 0.0;
  size_t sorted = 0;
  size_t random = 0;
  bool correct = false;  // Exact match against the brute-force oracle.
  std::string plan;      // SR/G config for NC runs; empty for baselines.
  // The full Eq. 1 breakdown of the run, for the JSON sink.
  obs::RunReport report;
};

// --- JSON sink --------------------------------------------------------

struct JsonRow {
  std::string scenario;
  std::string algorithm;
  RunStats stats;
};

// Rows accumulated by this process, in recording order.
inline std::vector<JsonRow>& JsonRows() {
  static std::vector<JsonRow>* rows = new std::vector<JsonRow>();
  return *rows;
}

// The scenario label attached to subsequently recorded rows.
inline std::string& CurrentScenario() {
  static std::string* scenario = new std::string();
  return *scenario;
}

inline void SetScenario(const std::string& scenario) {
  CurrentScenario() = scenario;
}

inline void AddJsonRow(const std::string& algorithm, const RunStats& stats) {
  JsonRows().push_back(JsonRow{CurrentScenario(), algorithm, stats});
}

// Schema of the BENCH_*.json envelope; bump when the row shape changes
// so the perf trajectory stays comparable across PRs.
inline constexpr int kBenchJsonSchemaVersion = 2;

// UTC wall-clock in ISO 8601 ("2026-01-31T12:34:56Z").
inline std::string IsoTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

// How this binary was compiled, so numbers from sanitizer CI runs are
// never mistaken for release measurements.
inline const char* BuildType() {
#if defined(NC_SANITIZE_BUILD)
  return "Sanitize";
#elif defined(NDEBUG)
  return "Release";
#else
  return "Debug";
#endif
}

// The one JSON emitter every bench binary funnels through: writes
// BENCH_<FILE_BASE>.json (upper-cased) holding the shared envelope
// (bench, schema_version, timestamp, build_type) plus whatever keys
// `body` adds inside the top-level object. `bench_name` is the "bench"
// key's value (usually equal to file_base).
template <typename Body>
inline void WriteBenchJsonDoc(const std::string& file_base,
                              const std::string& bench_name, Body&& body) {
  std::string file_name = "BENCH_";
  for (const char c : file_base) {
    file_name.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  file_name += ".json";
  std::ostringstream os;
  obs::JsonWriter w(&os);
  w.BeginObject();
  w.Key("bench").String(bench_name);
  w.Key("schema_version").Int(kBenchJsonSchemaVersion);
  w.Key("timestamp").String(IsoTimestampUtc());
  w.Key("build_type").String(BuildType());
  body(w);
  w.EndObject();
  std::ofstream file(file_name);
  NC_CHECK(file.good());
  file << os.str() << "\n";
  std::printf("\nwrote %s\n", file_name.c_str());
}

// Writes BENCH_<NAME>.json (name upper-cased) with every recorded row.
inline void WriteBenchJson(const std::string& bench_name) {
  WriteBenchJsonDoc(bench_name, bench_name, [](obs::JsonWriter& w) {
    w.Key("rows").BeginArray();
    for (const JsonRow& row : JsonRows()) {
      w.BeginObject();
      if (!row.scenario.empty()) w.Key("scenario").String(row.scenario);
      w.Key("algorithm").String(row.algorithm);
      w.Key("correct").Bool(row.stats.correct);
      if (!row.stats.plan.empty()) w.Key("plan").String(row.stats.plan);
      w.Key("report").Raw(row.stats.report.ToJson());
      w.EndObject();
    }
    w.EndArray();
  });
  std::printf("  (%zu rows)\n", JsonRows().size());
}

// --- Runners ----------------------------------------------------------

// Runs NC with a fixed SR/G configuration.
inline RunStats RunFixedNC(const Dataset& data, const CostModel& cost,
                           const ScoringFunction& scoring, size_t k,
                           const SRGConfig& config) {
  SourceSet sources(&data, cost);
  SRGPolicy policy(config);
  EngineOptions options;
  options.k = k;
  TopKResult result;
  const Status status = RunNC(&sources, &scoring, &policy, options, &result);
  NC_CHECK(status.ok());
  RunStats stats;
  stats.cost = sources.accrued_cost();
  stats.sorted = sources.stats().TotalSorted();
  stats.random = sources.stats().TotalRandom();
  stats.correct = result == BruteForceTopK(data, scoring, k);
  stats.plan = config.ToString();
  stats.report = obs::BuildRunReport(sources, nullptr, "NC", k);
  AddJsonRow("NC", stats);
  return stats;
}

// Runs the full cost-based pipeline (plan with the given scheme, then
// execute). Optimization overhead is not part of the reported access cost,
// matching the paper's accounting (estimation runs on samples, not on the
// priced sources).
inline RunStats RunOptimized(const Dataset& data, const CostModel& cost,
                             const ScoringFunction& scoring, size_t k,
                             SearchScheme scheme = SearchScheme::kHClimb,
                             size_t sample_size = 200) {
  SourceSet sources(&data, cost);
  PlannerOptions options;
  options.scheme = scheme;
  options.sample_size = sample_size;
  TopKResult result;
  OptimizerResult plan;
  const Status status =
      RunOptimizedNC(&sources, scoring, k, options, &result, &plan);
  NC_CHECK(status.ok());
  RunStats stats;
  stats.cost = sources.accrued_cost();
  stats.sorted = sources.stats().TotalSorted();
  stats.random = sources.stats().TotalRandom();
  stats.correct = result == BruteForceTopK(data, scoring, k);
  stats.plan = plan.config.ToString();
  stats.report = obs::BuildRunReport(sources, nullptr, "NC-opt", k);
  AddJsonRow("NC-opt", stats);
  return stats;
}

// Runs a registered baseline. Returns false in `*ran` when the baseline's
// scenario does not cover `cost`.
inline RunStats RunBaseline(const AlgorithmInfo& info, const Dataset& data,
                            const CostModel& cost,
                            const ScoringFunction& scoring, size_t k,
                            bool* ran = nullptr) {
  RunStats stats;
  if (!info.applicable(cost)) {
    if (ran != nullptr) *ran = false;
    return stats;
  }
  SourceSet sources(&data, cost);
  TopKResult result;
  const Status status = info.run(&sources, scoring, k, &result);
  NC_CHECK(status.ok());
  stats.cost = sources.accrued_cost();
  stats.sorted = sources.stats().TotalSorted();
  stats.random = sources.stats().TotalRandom();
  if (info.exact_scores) {
    stats.correct = result == BruteForceTopK(data, scoring, k);
  } else {
    // Set-only semantics: compare object sets.
    const TopKResult oracle = BruteForceTopK(data, scoring, k);
    stats.correct = result.entries.size() == oracle.entries.size();
    for (const TopKEntry& e : result.entries) {
      bool found = false;
      for (const TopKEntry& o : oracle.entries) {
        if (o.object == e.object) found = true;
      }
      stats.correct = stats.correct && found;
    }
  }
  stats.report = obs::BuildRunReport(sources, nullptr, info.name, k);
  AddJsonRow(info.name, stats);
  if (ran != nullptr) *ran = true;
  return stats;
}

// --- Table printing ---------------------------------------------------

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n");
  PrintRule(72);
  std::printf("%s\n", title.c_str());
  PrintRule(72);
  // The printed section doubles as the JSON rows' scenario label.
  SetScenario(title);
}

}  // namespace nc::bench

#endif  // NC_BENCH_BENCH_UTIL_H_
