// Cross-query telemetry: what the TelemetryHub costs and what adaptive
// hedging buys.
//
// Two measurements, both written to BENCH_TELEMETRY.json:
//
//   1. Hub overhead: one NC query over a 3-replica fleet, timed with the
//      hub detached vs. attached-and-enabled. Like bench_micro's
//      observability report, the two states are interleaved within every
//      repetition and compared on their minima.
//   2. Adaptive hedge-delay sweep: the fixed hedge delays bench_replica
//      sweeps {0, 1.2, 1.5, 2.0, 4.0} against HedgePolicy::adaptive,
//      which hedges at the routed replica's hub-observed service p90.
//      Every configuration gets one warm-up query (feeding the hub) and
//      one measured query across a SourceSet::Reset(), so adaptive runs
//      with a warm sketch the way a session's second query would. The
//      headline check, asserted here and re-validated by CI: NO fixed
//      delay Pareto-dominates adaptive on (p99 completion latency, Eq. 1
//      cost) - adaptive sits on the frontier without hand-tuning.
//
// Pass --quick for a CI-smoke-sized dataset.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/engine.h"
#include "core/reference.h"
#include "core/srg_policy.h"
#include "data/generator.h"
#include "obs/telemetry.h"
#include "replica/replica.h"

namespace {

using namespace nc;
using namespace nc::bench;

// bench_replica's shared heavy-tail profile: 5% of requests straggle at
// 20x the unit service time; normal requests land in [1.0, 1.3].
ReplicaEndpoint HeavyTailEndpoint() {
  ReplicaEndpoint e;
  e.latency.multiplier = 1.0;
  e.latency.jitter = 0.3;
  e.latency.tail_probability = 0.05;
  e.latency.tail_multiplier = 20.0;
  return e;
}

ReplicaSetConfig HedgeConfig(bool adaptive, double delay) {
  ReplicaSetConfig config;
  config.replicas = {HeavyTailEndpoint(), HeavyTailEndpoint(),
                     HeavyTailEndpoint()};
  config.routing = RoutingPolicy::kPrimaryOnly;
  config.hedge.adaptive = adaptive;
  config.hedge.delay = delay;
  return config;
}

struct SweepRow {
  std::string mode;  // "fixed" or "adaptive"
  double delay = 0.0;  // Configured delay; 0 for adaptive.
  double cost = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  size_t hedges = 0;
  size_t hedge_wins = 0;
  bool correct = false;
};

// One warm-up query plus one measured query over the same fleet and hub.
// The warm-up feeds the hub's per-replica service sketches (and, for
// fixed configs, keeps the harness identical); the row reports the
// measured query only - Reset() rewinds the per-query meters, the hub
// carries across.
SweepRow RunHedgeSweepPoint(const Dataset& data,
                            const ScoringFunction& scoring, size_t k,
                            bool adaptive, double delay) {
  ReplicaFleet fleet(/*seed=*/97);
  const ReplicaSetConfig config = HedgeConfig(adaptive, delay);
  for (PredicateId i = 0; i < data.num_predicates(); ++i) {
    NC_CHECK(fleet.Configure(i, config).ok());
  }
  const CostModel cost = CostModel::Uniform(data.num_predicates(), 1.0, 1.0);
  SourceSet sources(&data, cost);
  NC_CHECK(sources.set_replica_fleet(&fleet).ok());
  obs::TelemetryHub hub;
  sources.set_telemetry_hub(&hub);

  SRGPolicy policy(SRGConfig::Default(data.num_predicates()));
  EngineOptions options;
  options.k = k;
  TopKResult result;
  NC_CHECK(RunNC(&sources, &scoring, &policy, options, &result).ok());
  sources.Reset();
  NC_CHECK(RunNC(&sources, &scoring, &policy, options, &result).ok());

  SweepRow row;
  row.mode = adaptive ? "adaptive" : "fixed";
  row.delay = delay;
  row.cost = sources.accrued_cost();
  std::vector<double> samples;
  for (PredicateId i = 0; i < data.num_predicates(); ++i) {
    const std::vector<double>& s = fleet.latency_samples(i);
    samples.insert(samples.end(), s.begin(), s.end());
  }
  row.p50 = Percentile(samples, 0.50);
  row.p95 = Percentile(samples, 0.95);
  row.p99 = Percentile(samples, 0.99);
  row.hedges = fleet.total_hedges_issued();
  row.hedge_wins = fleet.total_hedge_wins();
  row.correct = result == BruteForceTopK(data, scoring, k);
  return row;
}

// `a` weakly dominates `b` with at least one strict improvement.
bool Dominates(const SweepRow& a, const SweepRow& b) {
  return a.p99 <= b.p99 && a.cost <= b.cost &&
         (a.p99 < b.p99 || a.cost < b.cost);
}

// --- Hub overhead ------------------------------------------------------

double TimeFleetQueryNs(const Dataset& data, const ScoringFunction& scoring,
                        size_t k, obs::TelemetryHub* hub) {
  ReplicaFleet fleet(/*seed=*/97);
  const ReplicaSetConfig config = HedgeConfig(/*adaptive=*/false, 1.5);
  for (PredicateId i = 0; i < data.num_predicates(); ++i) {
    NC_CHECK(fleet.Configure(i, config).ok());
  }
  const CostModel cost = CostModel::Uniform(data.num_predicates(), 1.0, 1.0);
  SourceSet sources(&data, cost);
  NC_CHECK(sources.set_replica_fleet(&fleet).ok());
  if (hub != nullptr) sources.set_telemetry_hub(hub);
  SRGPolicy policy(SRGConfig::Default(data.num_predicates()));
  EngineOptions options;
  options.k = k;
  TopKResult result;
  const auto start = std::chrono::steady_clock::now();
  NC_CHECK(RunNC(&sources, &scoring, &policy, options, &result).ok());
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const size_t kObjects = quick ? 200 : 2000;
  const size_t kPredicates = 3;
  const size_t kK = 10;
  const int kReps = quick ? 11 : 31;

  GeneratorOptions g;
  g.num_objects = kObjects;
  g.num_predicates = kPredicates;
  g.seed = 2026;
  const Dataset data = GenerateDataset(g);
  AverageFunction scoring(kPredicates);

  // --- Hub overhead: detached vs enabled, interleaved ------------------
  PrintHeader("TelemetryHub overhead: one fleet query, hub detached vs "
              "enabled");
  obs::TelemetryHub hub;
  std::vector<double> detached_ns, enabled_ns;
  for (int r = -2; r < kReps; ++r) {
    const double a = TimeFleetQueryNs(data, scoring, kK, nullptr);
    const double b = TimeFleetQueryNs(data, scoring, kK, &hub);
    if (r < 0) continue;  // Warm-up rounds.
    detached_ns.push_back(a);
    enabled_ns.push_back(b);
  }
  const double detached_min =
      *std::min_element(detached_ns.begin(), detached_ns.end());
  const double enabled_min =
      *std::min_element(enabled_ns.begin(), enabled_ns.end());
  const double overhead_pct =
      100.0 * (enabled_min - detached_min) / detached_min;
  std::printf("  hub detached %12.0f ns\n  hub enabled  %12.0f ns (%+.2f%%)\n",
              detached_min, enabled_min, overhead_pct);

  // --- Adaptive hedge-delay sweep --------------------------------------
  PrintHeader("Hedge delay: fixed sweep vs adaptive (hub-observed p90), "
              "3 replicas, 5% stragglers at 20x");
  std::printf("%10s %10s %8s %8s %8s %8s %8s %6s\n", "delay", "cost", "p50",
              "p95", "p99", "hedges", "wins", "exact");
  PrintRule(72);
  std::vector<SweepRow> rows;
  for (const double delay : {0.0, 1.2, 1.5, 2.0, 4.0}) {
    rows.push_back(
        RunHedgeSweepPoint(data, scoring, kK, /*adaptive=*/false, delay));
  }
  rows.push_back(
      RunHedgeSweepPoint(data, scoring, kK, /*adaptive=*/true, 0.0));
  for (const SweepRow& row : rows) {
    char delay_label[16];
    if (row.mode == "adaptive") {
      std::snprintf(delay_label, sizeof(delay_label), "adaptive");
    } else {
      std::snprintf(delay_label, sizeof(delay_label), "%.1f", row.delay);
    }
    std::printf("%10s %10.1f %8.2f %8.2f %8.2f %8zu %8zu %6s\n", delay_label,
                row.cost, row.p50, row.p95, row.p99, row.hedges,
                row.hedge_wins, row.correct ? "yes" : "NO");
    NC_CHECK(row.correct);
  }

  // The headline: adaptive sits on the (p99, cost) Pareto frontier - no
  // hand-picked fixed delay beats it on both axes.
  const SweepRow& adaptive = rows.back();
  bool adaptive_not_dominated = true;
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    if (Dominates(rows[i], adaptive)) {
      adaptive_not_dominated = false;
      std::printf("  DOMINATED by fixed delay %.1f (p99 %.2f<=%.2f, cost "
                  "%.1f<=%.1f)\n",
                  rows[i].delay, rows[i].p99, adaptive.p99, rows[i].cost,
                  adaptive.cost);
    }
  }
  NC_CHECK(adaptive_not_dominated);
  std::printf("  adaptive on the (p99, cost) frontier: hedged %zu, p99 "
              "%.2f at cost %.1f\n",
              adaptive.hedges, adaptive.p99, adaptive.cost);

  WriteBenchJsonDoc("telemetry", "telemetry", [&](obs::JsonWriter& w) {
    w.Key("query").BeginObject();
    w.Key("objects").UInt(kObjects);
    w.Key("predicates").UInt(kPredicates);
    w.Key("k").UInt(kK);
    w.EndObject();
    w.Key("overhead").BeginObject();
    w.Key("repetitions").Int(kReps);
    w.Key("min_ns").BeginObject();
    w.Key("hub_detached").Number(detached_min);
    w.Key("hub_enabled").Number(enabled_min);
    w.EndObject();
    w.Key("overhead_pct").Number(overhead_pct);
    w.EndObject();
    w.Key("adaptive_not_dominated").Bool(adaptive_not_dominated);
    w.Key("rows").BeginArray();
    for (const SweepRow& row : rows) {
      w.BeginObject();
      w.Key("mode").String(row.mode);
      if (row.mode == "fixed") w.Key("delay").Number(row.delay);
      w.Key("cost").Number(row.cost);
      w.Key("p50").Number(row.p50);
      w.Key("p95").Number(row.p95);
      w.Key("p99").Number(row.p99);
      w.Key("hedges").UInt(row.hedges);
      w.Key("hedge_wins").UInt(row.hedge_wins);
      w.Key("correct").Bool(row.correct);
      w.EndObject();
    }
    w.EndArray();
  });
  return 0;
}
