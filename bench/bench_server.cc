// Server throughput: QPS and tail latency vs worker count.
//
//   $ ./build/bench/bench_server [--quick]
//
// One 10k-object workload, served by the QueryServer at 1, 2, and 4
// workers. Each access carries a simulated network stall (web sources
// spend their latency off-CPU), so the scaling measured here is the
// overlap of source waiting - the thing a concurrent server exists to
// exploit - not CPU parallelism, and it holds on small machines.
// Emits BENCH_SERVER.json with per-worker-count QPS, p50/p99 service
// latency, and speedup over the single-worker baseline.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "data/generator.h"
#include "server/server.h"

namespace nc {
namespace {

constexpr size_t kNumObjects = 10000;
constexpr size_t kNumPredicates = 2;
constexpr size_t kStallMicros = 50;

struct ServerRun {
  size_t workers = 0;
  size_t queries = 0;
  double total_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_accesses = 0.0;
  size_t completed = 0;
};

class BenchStack : public server::WorkerStack {
 public:
  BenchStack(const Dataset* data, CostModel cost)
      : sources_(data, std::move(cost)) {}
  SourceSet& sources() override { return sources_; }

 private:
  SourceSet sources_;
};

ServerRun RunAtWorkerCount(const Dataset& data, const ScoringFunction& scoring,
                           size_t workers, size_t queries) {
  const CostModel cost = CostModel::Uniform(kNumPredicates, 1.0, 2.0);
  server::ServerConfig config;
  config.num_workers = workers;
  config.queue_capacity = queries;
  config.planner.sample_size = 100;
  config.simulated_access_stall_us = kStallMicros;
  server::QueryServer server(&scoring, config, [&](size_t) {
    return std::make_unique<BenchStack>(&data, cost);
  });
  NC_CHECK(server.Start().ok());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<server::QueryResponse>> responses(queries);
  for (size_t j = 0; j < queries; ++j) {
    server::QueryRequest request;
    request.k = 5 + j % 11;  // Mixed k in [5, 15].
    NC_CHECK(server.Submit(request, &responses[j]).ok());
  }
  ServerRun run;
  std::vector<double> service_micros;
  service_micros.reserve(queries);
  double total_accesses = 0.0;
  for (auto& response : responses) {
    const server::QueryResponse served = response.get();
    NC_CHECK(served.status.ok());
    if (served.outcome == server::ServeOutcome::kCompleted) ++run.completed;
    service_micros.push_back(served.wall_micros);
    total_accesses += static_cast<double>(served.accesses);
  }
  run.total_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  server.Shutdown(/*finish_queued=*/true);

  run.workers = workers;
  run.queries = queries;
  run.qps = static_cast<double>(queries) / run.total_seconds;
  run.p50_ms = Percentile(service_micros, 0.5) / 1000.0;
  run.p99_ms = Percentile(service_micros, 0.99) / 1000.0;
  run.mean_accesses = total_accesses / static_cast<double>(queries);
  return run;
}

int Main(bool quick) {
  GeneratorOptions g;
  g.num_objects = kNumObjects;
  g.num_predicates = kNumPredicates;
  g.seed = 77;
  const Dataset data = GenerateDataset(g);
  const AverageFunction avg(kNumPredicates);
  const size_t queries = quick ? 8 : 48;

  std::printf("QueryServer throughput: %zu objects, %zu queries, %zuus "
              "simulated stall per access%s\n",
              kNumObjects, queries, kStallMicros, quick ? " (quick)" : "");
  std::printf("%8s %10s %10s %10s %10s %12s\n", "workers", "qps", "p50 ms",
              "p99 ms", "speedup", "accesses/q");

  std::vector<ServerRun> runs;
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    runs.push_back(RunAtWorkerCount(data, avg, workers, queries));
    const ServerRun& run = runs.back();
    NC_CHECK(run.completed == queries);
    const double speedup = run.qps / runs.front().qps;
    std::printf("%8zu %10.1f %10.2f %10.2f %9.2fx %12.0f\n", run.workers,
                run.qps, run.p50_ms, run.p99_ms, speedup, run.mean_accesses);
  }

  bench::WriteBenchJsonDoc("server", "server", [&](obs::JsonWriter& w) {
    w.Key("num_objects").Int(static_cast<int64_t>(kNumObjects));
    w.Key("num_predicates").Int(static_cast<int64_t>(kNumPredicates));
    w.Key("queries_per_run").Int(static_cast<int64_t>(queries));
    w.Key("stall_us").Int(static_cast<int64_t>(kStallMicros));
    w.Key("quick").Bool(quick);
    w.Key("rows").BeginArray();
    for (const ServerRun& run : runs) {
      w.BeginObject();
      w.Key("workers").Int(static_cast<int64_t>(run.workers));
      w.Key("queries").Int(static_cast<int64_t>(run.queries));
      w.Key("completed").Int(static_cast<int64_t>(run.completed));
      w.Key("total_seconds").Number(run.total_seconds);
      w.Key("qps").Number(run.qps);
      w.Key("p50_ms").Number(run.p50_ms);
      w.Key("p99_ms").Number(run.p99_ms);
      w.Key("speedup_vs_1").Number(run.qps / runs.front().qps);
      w.Key("mean_accesses_per_query").Number(run.mean_accesses);
      w.EndObject();
    }
    w.EndArray();
  });
  return 0;
}

}  // namespace
}  // namespace nc

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  return nc::Main(quick);
}
