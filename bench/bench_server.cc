// Server throughput: QPS and tail latency vs worker count.
//
//   $ ./build/bench/bench_server [--quick]
//
// One 10k-object workload, served by the QueryServer at 1, 2, and 4
// workers. Each access carries a simulated network stall (web sources
// spend their latency off-CPU), so the scaling measured here is the
// overlap of source waiting - the thing a concurrent server exists to
// exploit - not CPU parallelism, and it holds on small machines.
// Emits BENCH_SERVER.json with per-worker-count QPS, p50/p99 service
// latency, and speedup over the single-worker baseline.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "data/generator.h"
#include "server/server.h"

namespace nc {
namespace {

constexpr size_t kNumObjects = 10000;
constexpr size_t kNumPredicates = 2;
constexpr size_t kStallMicros = 50;

struct ServerRun {
  size_t workers = 0;
  size_t queries = 0;
  double total_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_accesses = 0.0;
  size_t completed = 0;
};

class BenchStack : public server::WorkerStack {
 public:
  BenchStack(const Dataset* data, CostModel cost)
      : sources_(data, std::move(cost)) {}
  SourceSet& sources() override { return sources_; }

 private:
  SourceSet sources_;
};

ServerRun RunAtWorkerCount(const Dataset& data, const ScoringFunction& scoring,
                           size_t workers, size_t queries) {
  const CostModel cost = CostModel::Uniform(kNumPredicates, 1.0, 2.0);
  server::ServerConfig config;
  config.num_workers = workers;
  config.queue_capacity = queries;
  config.planner.sample_size = 100;
  config.simulated_access_stall_us = kStallMicros;
  server::QueryServer server(&scoring, config, [&](size_t) {
    return std::make_unique<BenchStack>(&data, cost);
  });
  NC_CHECK(server.Start().ok());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<server::QueryResponse>> responses(queries);
  for (size_t j = 0; j < queries; ++j) {
    server::QueryRequest request;
    request.k = 5 + j % 11;  // Mixed k in [5, 15].
    NC_CHECK(server.Submit(request, &responses[j]).ok());
  }
  ServerRun run;
  std::vector<double> service_micros;
  service_micros.reserve(queries);
  double total_accesses = 0.0;
  for (auto& response : responses) {
    const server::QueryResponse served = response.get();
    NC_CHECK(served.status.ok());
    if (served.outcome == server::ServeOutcome::kCompleted) ++run.completed;
    service_micros.push_back(served.wall_micros);
    total_accesses += static_cast<double>(served.accesses);
  }
  run.total_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  server.Shutdown(/*finish_queued=*/true);

  run.workers = workers;
  run.queries = queries;
  run.qps = static_cast<double>(queries) / run.total_seconds;
  run.p50_ms = Percentile(service_micros, 0.5) / 1000.0;
  run.p99_ms = Percentile(service_micros, 0.99) / 1000.0;
  run.mean_accesses = total_accesses / static_cast<double>(queries);
  return run;
}

// One loopback HTTP GET against the stats endpoint; returns the wall
// time in microseconds (or a negative value on failure).
double TimedScrape(uint16_t port, const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1.0;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1.0;
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  NC_CHECK(::send(fd, request.data(), request.size(), 0) ==
           static_cast<ssize_t>(request.size()));
  size_t received = 0;
  char buffer[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    received += static_cast<size_t>(n);
  }
  ::close(fd);
  NC_CHECK(received > 0);
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct ObsRun {
  double metrics_scrape_p50_us = 0.0;
  double varz_scrape_p50_us = 0.0;
  double cold_start_us = 0.0;
  double warm_start_us = 0.0;
  size_t snapshot_bytes = 0;
};

// Measures the observability plane itself: what a Prometheus scrape
// costs against a serving instance, and what the hub snapshot adds to
// startup (warm restart parses + loads the whole "nchub 1" file).
ObsRun RunObservability(const Dataset& data, const ScoringFunction& scoring,
                        size_t queries, size_t scrapes) {
  const CostModel cost = CostModel::Uniform(kNumPredicates, 1.0, 2.0);
  const std::string snapshot = "/tmp/nc_bench_server.nchub";
  std::remove(snapshot.c_str());
  ObsRun obs;
  const auto build = [&](size_t) {
    return std::make_unique<BenchStack>(&data, cost);
  };

  {
    server::ServerConfig config;
    config.num_workers = 2;
    config.queue_capacity = queries;
    config.planner.sample_size = 100;
    config.stats_port = 0;
    config.hub_snapshot_path = snapshot;
    server::QueryServer server(&scoring, config, build);
    const auto t0 = std::chrono::steady_clock::now();
    NC_CHECK(server.Start().ok());
    obs.cold_start_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    // Populate the hub and the metrics registry before scraping.
    std::vector<std::future<server::QueryResponse>> responses(queries);
    for (size_t j = 0; j < queries; ++j) {
      server::QueryRequest request;
      request.k = 5 + j % 11;
      NC_CHECK(server.Submit(request, &responses[j]).ok());
    }
    for (auto& response : responses) NC_CHECK(response.get().status.ok());

    const uint16_t port = server.stats_port();
    std::vector<double> metrics_us, varz_us;
    for (size_t s = 0; s < scrapes; ++s) {
      metrics_us.push_back(TimedScrape(port, "/metrics"));
      varz_us.push_back(TimedScrape(port, "/varz"));
    }
    obs.metrics_scrape_p50_us = Percentile(metrics_us, 0.5);
    obs.varz_scrape_p50_us = Percentile(varz_us, 0.5);
    server.Shutdown(/*finish_queued=*/true);  // Writes the snapshot.
  }

  {
    std::FILE* f = std::fopen(snapshot.c_str(), "rb");
    NC_CHECK(f != nullptr);
    std::fseek(f, 0, SEEK_END);
    obs.snapshot_bytes = static_cast<size_t>(std::ftell(f));
    std::fclose(f);
  }

  {
    server::ServerConfig config;
    config.num_workers = 2;
    config.planner.sample_size = 100;
    config.hub_snapshot_path = snapshot;
    server::QueryServer server(&scoring, config, build);
    const auto t0 = std::chrono::steady_clock::now();
    NC_CHECK(server.Start().ok());
    obs.warm_start_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    NC_CHECK(server.warm_started());
    server.Shutdown(true);
  }
  std::remove(snapshot.c_str());
  return obs;
}

// CI smoke mode: bind the stats endpoint on `port`, serve a few queries
// so every metric family exists, then hold the process alive while an
// external scraper (curl in the workflow) probes /metrics and /varz.
int ServeForScrape(uint16_t port, int seconds) {
  GeneratorOptions g;
  g.num_objects = 2000;
  g.num_predicates = kNumPredicates;
  g.seed = 77;
  const Dataset data = GenerateDataset(g);
  const AverageFunction avg(kNumPredicates);
  const CostModel cost = CostModel::Uniform(kNumPredicates, 1.0, 2.0);

  server::ServerConfig config;
  config.num_workers = 2;
  config.planner.sample_size = 100;
  config.stats_port = port;
  // Cache on, so the scraper sees the /varz cache section populated by
  // real cross-query hits (the repeated k=5 queries below overlap fully).
  config.enable_cache = true;
  // Profiler on, so /profilez serves a real last-request tree and
  // cross-query per-center quantiles instead of {"enabled":false}.
  config.enable_profiler = true;
  server::QueryServer server(&avg, config, [&](size_t) {
    return std::make_unique<BenchStack>(&data, cost);
  });
  NC_CHECK(server.Start().ok());
  for (int j = 0; j < 6; ++j) {
    server::QueryRequest request;
    request.k = 5;
    std::future<server::QueryResponse> response;
    NC_CHECK(server.Submit(request, &response).ok());
    NC_CHECK(response.get().status.ok());
  }
  std::printf("serving stats on 127.0.0.1:%u for %ds\n", server.stats_port(),
              seconds);
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  server.Shutdown(/*finish_queued=*/true);
  return 0;
}

int Main(bool quick) {
  GeneratorOptions g;
  g.num_objects = kNumObjects;
  g.num_predicates = kNumPredicates;
  g.seed = 77;
  const Dataset data = GenerateDataset(g);
  const AverageFunction avg(kNumPredicates);
  const size_t queries = quick ? 8 : 48;

  std::printf("QueryServer throughput: %zu objects, %zu queries, %zuus "
              "simulated stall per access%s\n",
              kNumObjects, queries, kStallMicros, quick ? " (quick)" : "");
  std::printf("%8s %10s %10s %10s %10s %12s\n", "workers", "qps", "p50 ms",
              "p99 ms", "speedup", "accesses/q");

  std::vector<ServerRun> runs;
  for (const size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    runs.push_back(RunAtWorkerCount(data, avg, workers, queries));
    const ServerRun& run = runs.back();
    NC_CHECK(run.completed == queries);
    const double speedup = run.qps / runs.front().qps;
    std::printf("%8zu %10.1f %10.2f %10.2f %9.2fx %12.0f\n", run.workers,
                run.qps, run.p50_ms, run.p99_ms, speedup, run.mean_accesses);
  }

  const ObsRun obs =
      RunObservability(data, avg, queries, /*scrapes=*/quick ? 5 : 25);
  std::printf("observability: /metrics p50 %.0fus, /varz p50 %.0fus, "
              "snapshot %zuB, start cold %.0fus warm %.0fus\n",
              obs.metrics_scrape_p50_us, obs.varz_scrape_p50_us,
              obs.snapshot_bytes, obs.cold_start_us, obs.warm_start_us);

  bench::WriteBenchJsonDoc("server", "server", [&](obs::JsonWriter& w) {
    w.Key("num_objects").Int(static_cast<int64_t>(kNumObjects));
    w.Key("num_predicates").Int(static_cast<int64_t>(kNumPredicates));
    w.Key("queries_per_run").Int(static_cast<int64_t>(queries));
    w.Key("stall_us").Int(static_cast<int64_t>(kStallMicros));
    w.Key("quick").Bool(quick);
    w.Key("rows").BeginArray();
    for (const ServerRun& run : runs) {
      w.BeginObject();
      w.Key("workers").Int(static_cast<int64_t>(run.workers));
      w.Key("queries").Int(static_cast<int64_t>(run.queries));
      w.Key("completed").Int(static_cast<int64_t>(run.completed));
      w.Key("total_seconds").Number(run.total_seconds);
      w.Key("qps").Number(run.qps);
      w.Key("p50_ms").Number(run.p50_ms);
      w.Key("p99_ms").Number(run.p99_ms);
      w.Key("speedup_vs_1").Number(run.qps / runs.front().qps);
      w.Key("mean_accesses_per_query").Number(run.mean_accesses);
      w.EndObject();
    }
    w.EndArray();
    w.Key("observability").BeginObject();
    w.Key("metrics_scrape_p50_us").Number(obs.metrics_scrape_p50_us);
    w.Key("varz_scrape_p50_us").Number(obs.varz_scrape_p50_us);
    w.Key("hub_snapshot_bytes").Int(static_cast<int64_t>(obs.snapshot_bytes));
    w.Key("cold_start_us").Number(obs.cold_start_us);
    w.Key("warm_start_us").Number(obs.warm_start_us);
    w.EndObject();
  });
  return 0;
}

}  // namespace
}  // namespace nc

int main(int argc, char** argv) {
  if (argc > 3 && std::strcmp(argv[1], "--serve") == 0) {
    return nc::ServeForScrape(static_cast<uint16_t>(std::atoi(argv[2])),
                              std::atoi(argv[3]));
  }
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  return nc::Main(quick);
}
